// psaflow-router — consistent-hash front door for psaflowd shards.
//
// Clients point at the router exactly as they would at a daemon (same
// framed wire protocol, byte-identical responses); the router spreads
// compile requests across shards by module-content digest so repeat
// compiles keep hitting warm caches, consistent-hashes cas_get/cas_put
// onto home shards (a shared artifact tier when shards set
// --cas-upstream to the router), health-checks every shard, fails over
// with jittered backoff, and supports graceful drain/rejoin:
//
//   psaflow-router --socket /tmp/psaflow.sock \
//       --shard a=127.0.0.1:7401 --shard b=127.0.0.1:7402
//
//   psaflow-client --socket /tmp/psaflow.sock --app nbody   # unchanged
//
// Drain shard a for a rolling restart (and rejoin with draining=false):
//
//   {"type":"drain","shard":"a","draining":true}   # any frame client
//
// SIGTERM/SIGINT shut down gracefully (in-flight relays finish).
#include <csignal>
#include <iostream>

#include "cluster/router.hpp"
#include "support/cli.hpp"

namespace {

psaflow::cluster::Router* g_router = nullptr;

void handle_signal(int) {
    if (g_router != nullptr) g_router->notify_shutdown();
}

} // namespace

int main(int argc, char** argv) {
    using namespace psaflow;

    cluster::RouterOptions options;
    std::vector<std::string> shard_specs;
    long long vnodes = static_cast<long long>(cluster::HashRing::kDefaultVnodes);
    long long health_interval_ms = 500;
    long long max_attempts = 3;
    long long backoff_base_ms = 50;
    long long backoff_max_ms = 2000;
    long long recv_timeout_ms = 30000;
    long long seed = 0;

    cli::OptionParser parser(
        argv[0],
        {"[--socket <path>] [--listen <host:port>] --shard <name=endpoint>\n"
         "      [--shard <name=endpoint> ...] [--vnodes <n>]\n"
         "      [--health-interval-ms <n>] [--max-attempts <n>]\n"
         "      [--backoff-base-ms <n>] [--backoff-max-ms <n>]\n"
         "      [--recv-timeout-ms <n>] [--seed <n>]"});
    parser.str("--socket", "<path>", "Unix-domain socket to listen on",
               &options.socket_path);
    parser.str("--listen", "<host:port>",
               "also listen on TCP (port 0 = ephemeral, printed on start)",
               &options.listen_tcp);
    parser.multi("--shard", "<name=endpoint>",
                 "a psaflowd shard (repeatable); endpoint is host:port or "
                 "a socket path",
                 &shard_specs);
    parser.integer("--vnodes", "<n>",
                   "ring points per shard (default 64)", &vnodes,
                   /*min=*/1);
    parser.integer("--health-interval-ms", "<n>",
                   "shard ping interval (default 500)", &health_interval_ms,
                   /*min=*/1);
    parser.integer("--max-attempts", "<n>",
                   "shards tried per request before giving up (default 3)",
                   &max_attempts, /*min=*/1);
    parser.integer("--backoff-base-ms", "<n>",
                   "failover backoff window for the first retry "
                   "(default 50)",
                   &backoff_base_ms, /*min=*/1);
    parser.integer("--backoff-max-ms", "<n>",
                   "failover backoff window cap (default 2000)",
                   &backoff_max_ms, /*min=*/1);
    parser.integer("--recv-timeout-ms", "<n>",
                   "shard response stall cap (default 30000)",
                   &recv_timeout_ms, /*min=*/0);
    parser.integer("--seed", "<n>",
                   "backoff jitter seed (0 = built-in default)", &seed,
                   /*min=*/0);

    if (!parser.parse(argc, argv)) return 2;
    if (shard_specs.empty() ||
        (options.socket_path.empty() && options.listen_tcp.empty())) {
        std::cerr << parser.usage();
        return 2;
    }
    for (const std::string& spec : shard_specs) {
        std::string error;
        auto config = cluster::parse_shard_spec(spec, &error);
        if (!config.has_value()) {
            std::cerr << "psaflow-router: " << error << "\n";
            return 2;
        }
        options.shards.push_back(std::move(*config));
    }
    options.vnodes = static_cast<std::size_t>(vnodes);
    options.health_interval_ms = health_interval_ms;
    options.retry.max_attempts = static_cast<int>(max_attempts);
    options.retry.base_ms = backoff_base_ms;
    options.retry.max_ms = backoff_max_ms;
    options.recv_timeout_ms = recv_timeout_ms;
    if (seed != 0) options.seed = static_cast<std::uint64_t>(seed);

    cluster::Router router(options);
    if (auto error = router.start()) {
        std::cerr << "psaflow-router: " << *error << "\n";
        return 1;
    }

    g_router = &router;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "psaflow-router: serving on ";
    if (!options.socket_path.empty()) std::cout << options.socket_path;
    if (!options.listen_tcp.empty()) {
        if (!options.socket_path.empty()) std::cout << " and ";
        std::cout << "tcp port " << router.tcp_port();
    }
    std::cout << " for " << options.shards.size() << " shard(s)\n"
              << std::flush;
    router.run();

    std::cout << "psaflow-router: drained\n";
    g_router = nullptr;
    return 0;
}
