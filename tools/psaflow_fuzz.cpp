// psaflow-fuzz — generative fuzzing driver for the whole toolchain.
//
// Generates deterministic random HLC programs (one per seed) and checks
// every differential oracle over each: frontend round-trip, sema
// acceptance, transform equivalence under the interpreter, crash-free
// codegen through all three emitters, and flow-engine determinism at
// jobs=1 vs jobs=N. Failures can be delta-reduced (--shrink) and are
// persisted as replayable .psa files (--corpus-dir).
//
//   psaflow-fuzz --seed 1 --runs 200
//   psaflow-fuzz --seed 7 --runs 50 --shrink --corpus-dir corpus/
//   psaflow-fuzz --replay tests/corpus
//   psaflow-fuzz --emit-seeds tests/corpus --seed 1 --runs 20
//   psaflow-fuzz --seed 1 --max-seconds 60 --runs 1000000   # smoke budget
#include <chrono>
#include <iostream>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "support/string_util.hpp"

using namespace psaflow;

namespace {

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--seed <n>] [--runs <n>] [--shrink] [--corpus-dir <dir>]\n"
        << "       " << argv0 << " --replay <dir>\n"
        << "       " << argv0 << " --emit-seeds <dir> [--seed <n>] [--runs "
           "<n>]\n"
        << "options:\n"
        << "  --seed <n>         base seed; run i uses seed + i (default 1)\n"
        << "  --runs <n>         programs to generate (default 100)\n"
        << "  --shrink           delta-reduce each failure before saving\n"
        << "  --corpus-dir <dir> persist failures as replayable .psa files\n"
        << "  --replay <dir>     re-check every .psa file in <dir>\n"
        << "  --emit-seeds <dir> write the generated programs as a seed "
           "corpus\n"
        << "  --problem-size <n> workload base size (default 24)\n"
        << "  --flow-jobs <n>    parallel jobs compared against 1 (default "
           "3)\n"
        << "  --max-seconds <n>  stop fuzzing after a wall-clock budget\n"
        << "  --no-transforms / --no-codegen / --no-flow / --no-roundtrip\n";
    return 2;
}

void print_failure(std::uint64_t seed, const fuzz::OracleFailure& f) {
    std::cerr << "FAIL seed=" << seed << " oracle=" << f.oracle << "\n"
              << "     " << f.detail << "\n";
}

} // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 1;
    long long runs = 100;
    bool shrink = false;
    std::string corpus_dir;
    std::string replay_dir;
    std::string emit_dir;
    long long max_seconds = 0;
    fuzz::OracleOptions oracle_options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        auto next_int = [&]() -> long long {
            const char* raw = next();
            if (auto value = parse_int(raw)) return *value;
            std::cerr << "invalid integer '" << raw << "' for " << arg
                      << "\n";
            std::exit(usage(argv[0]));
        };
        if (arg == "--seed") {
            const long long v = next_int();
            if (v < 0) {
                std::cerr << "--seed must be >= 0\n";
                return usage(argv[0]);
            }
            seed = static_cast<std::uint64_t>(v);
        } else if (arg == "--runs") {
            runs = next_int();
            if (runs <= 0) {
                std::cerr << "--runs must be > 0\n";
                return usage(argv[0]);
            }
        } else if (arg == "--shrink") {
            shrink = true;
        } else if (arg == "--corpus-dir") {
            corpus_dir = next();
        } else if (arg == "--replay") {
            replay_dir = next();
        } else if (arg == "--emit-seeds") {
            emit_dir = next();
        } else if (arg == "--problem-size") {
            const long long v = next_int();
            if (v < 8) { // fixed-bound loops index buffers up to 8
                std::cerr << "--problem-size must be >= 8\n";
                return usage(argv[0]);
            }
            oracle_options.problem_size = static_cast<int>(v);
        } else if (arg == "--flow-jobs") {
            const long long v = next_int();
            if (v < 2) {
                std::cerr << "--flow-jobs must be >= 2\n";
                return usage(argv[0]);
            }
            oracle_options.flow_jobs = static_cast<int>(v);
        } else if (arg == "--max-seconds") {
            max_seconds = next_int();
            if (max_seconds <= 0) {
                std::cerr << "--max-seconds must be > 0\n";
                return usage(argv[0]);
            }
        } else if (arg == "--no-transforms") {
            oracle_options.check_transforms = false;
        } else if (arg == "--no-codegen") {
            oracle_options.check_codegen = false;
        } else if (arg == "--no-flow") {
            oracle_options.check_flow = false;
        } else if (arg == "--no-roundtrip") {
            oracle_options.check_roundtrip = false;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(argv[0]);
        }
    }

    // ---- replay mode -------------------------------------------------
    if (!replay_dir.empty()) {
        const auto corpus = fuzz::load_corpus(replay_dir);
        if (corpus.empty()) {
            std::cerr << "no .psa files under '" << replay_dir << "'\n";
            return 2;
        }
        int failed = 0;
        for (const auto& entry : corpus) {
            const auto outcome = fuzz::run_oracles(entry.source,
                                                   oracle_options);
            if (!outcome.ok()) {
                ++failed;
                for (const auto& f : outcome.failures)
                    std::cerr << "FAIL " << entry.path << " oracle="
                              << f.oracle << "\n     " << f.detail << "\n";
            }
        }
        std::cout << "replayed " << corpus.size() << " corpus file(s), "
                  << failed << " failing\n";
        return failed == 0 ? 0 : 1;
    }

    // ---- emit-seeds mode ---------------------------------------------
    fuzz::GenOptions gen_options;
    gen_options.problem_size = oracle_options.problem_size;
    if (!emit_dir.empty()) {
        for (long long i = 0; i < runs; ++i) {
            const std::uint64_t s = seed + static_cast<std::uint64_t>(i);
            const auto program = fuzz::generate_program(s, gen_options);
            const std::string path = fuzz::save_corpus_entry(
                emit_dir, s, "", "", program.source);
            std::cout << "wrote " << path << "\n";
        }
        return 0;
    }

    // ---- fuzzing loop ------------------------------------------------
    const auto start = std::chrono::steady_clock::now();
    auto out_of_budget = [&] {
        if (max_seconds <= 0) return false;
        const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start);
        return elapsed.count() >= max_seconds;
    };

    long long executed = 0;
    long long failures = 0;
    long long oracles = 0;
    long long applied = 0;
    long long skipped = 0;
    for (long long i = 0; i < runs && !out_of_budget(); ++i) {
        const std::uint64_t s = seed + static_cast<std::uint64_t>(i);
        const auto program = fuzz::generate_program(s, gen_options);
        ++executed;

        // Generator determinism is itself an acceptance criterion.
        const auto again = fuzz::generate_program(s, gen_options);
        if (again.source != program.source) {
            ++failures;
            print_failure(s, {"determinism",
                              "same seed generated different programs"});
            continue;
        }

        const auto outcome = fuzz::run_oracles(program.source,
                                               oracle_options);
        oracles += outcome.oracles_run;
        applied += outcome.transforms_applied;
        skipped += outcome.transforms_skipped;
        if (outcome.ok()) continue;

        failures += static_cast<long long>(outcome.failures.size());
        for (const auto& f : outcome.failures) print_failure(s, f);

        // Reduce and persist the first failure of the run.
        const auto& first = outcome.failures.front();
        std::string reproducer = program.source;
        if (shrink) {
            const auto predicate =
                fuzz::make_failure_predicate(first.oracle, oracle_options);
            const auto reduced =
                fuzz::shrink_source(program.source, predicate);
            std::cerr << "     shrunk by " << reduced.edits_applied
                      << " edit(s) in " << reduced.checks_used
                      << " check(s)\n";
            reproducer = reduced.source;
        }
        if (!corpus_dir.empty()) {
            const std::string path = fuzz::save_corpus_entry(
                corpus_dir, s, first.oracle, first.detail, reproducer);
            std::cerr << "     saved " << path << "\n";
        } else if (shrink) {
            std::cerr << "----- reduced reproducer -----\n"
                      << reproducer << "------------------------------\n";
        }
    }

    std::cout << executed << " run(s), " << oracles << " oracle(s), "
              << applied << " transform(s) applied, " << skipped
              << " skipped, " << failures << " failure(s)\n";
    return failures == 0 ? 0 : 1;
}
