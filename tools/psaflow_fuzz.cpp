// psaflow-fuzz — generative fuzzing driver for the whole toolchain.
//
// Generates deterministic random HLC programs (one per seed) and checks
// every differential oracle over each: frontend round-trip, sema
// acceptance, transform equivalence under the interpreter, crash-free
// codegen through all three emitters, flow-engine determinism at jobs=1 vs
// jobs=N and (with --check-cache) cold-vs-warm persistent-cache identity.
// Failures can be delta-reduced (--shrink) and are persisted as replayable
// .psa files (--corpus-dir).
//
//   psaflow-fuzz --seed 1 --runs 200
//   psaflow-fuzz --seed 7 --runs 50 --shrink --corpus-dir corpus/
//   psaflow-fuzz --replay tests/corpus
//   psaflow-fuzz --emit-seeds tests/corpus --seed 1 --runs 20
//   psaflow-fuzz --seed 1 --runs 25 --check-cache
//   psaflow-fuzz --seed 1 --max-seconds 60 --runs 1000000   # smoke budget
//   psaflow-fuzz --check-manifest --seed 1 --runs 200
//       # manifest mode: random valid flow manifests, differentially
//       # checked against programmatic flows (fuzz/manifest_fuzz.hpp)
#include <chrono>
#include <iostream>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/manifest_fuzz.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "interp/interpreter.hpp"
#include "support/cli.hpp"

using namespace psaflow;

namespace {

void print_failure(std::uint64_t seed, const fuzz::OracleFailure& f) {
    std::cerr << "FAIL seed=" << seed << " oracle=" << f.oracle << "\n"
              << "     " << f.detail << "\n";
}

} // namespace

int main(int argc, char** argv) {
    long long seed = 1;
    long long runs = 100;
    bool shrink = false;
    std::string corpus_dir;
    std::string replay_dir;
    std::string emit_dir;
    long long max_seconds = 0;
    long long problem_size = 24;
    long long flow_jobs = 3;
    bool check_cache = false;
    bool check_vm = false;
    bool check_manifest = false;
    std::string interp_engine;
    std::string cache_dir;
    bool no_transforms = false;
    bool no_codegen = false;
    bool no_flow = false;
    bool no_roundtrip = false;

    cli::OptionParser parser(
        argv[0],
        {"[--seed <n>] [--runs <n>] [--shrink] [--corpus-dir <dir>]",
         "--replay <dir>",
         "--emit-seeds <dir> [--seed <n>] [--runs <n>]"});
    parser.integer("--seed", "<n>",
                   "base seed; run i uses seed + i (default 1)", &seed,
                   /*min=*/0);
    parser.integer("--runs", "<n>", "programs to generate (default 100)",
                   &runs, /*min=*/1);
    parser.flag("--shrink", "delta-reduce each failure before saving",
                &shrink);
    parser.str("--corpus-dir", "<dir>",
               "persist failures as replayable .psa files", &corpus_dir);
    parser.str("--replay", "<dir>", "re-check every .psa file in <dir>",
               &replay_dir);
    parser.str("--emit-seeds", "<dir>",
               "write the generated programs as a seed corpus", &emit_dir);
    parser.integer("--problem-size", "<n>", "workload base size (default 24)",
                   &problem_size, /*min=*/8); // fixed-bound loops index to 8
    parser.integer("--flow-jobs", "<n>",
                   "parallel jobs compared against 1 (default 3)", &flow_jobs,
                   /*min=*/2);
    parser.integer("--max-seconds", "<n>",
                   "stop fuzzing after a wall-clock budget", &max_seconds,
                   /*min=*/1);
    parser.flag("--check-cache",
                "also check cold-vs-warm persistent-cache identity",
                &check_cache);
    parser.flag("--check-vm",
                "also check tree-vs-VM interpreter bit-identity",
                &check_vm);
    parser.flag("--check-manifest",
                "manifest mode: random valid flow manifests checked "
                "against programmatic flows",
                &check_manifest);
    parser.choice("--interp", "<engine>",
                  "engine for the single-engine oracles: tree|vm "
                  "(default: PSAFLOW_INTERP, else vm)",
                  &interp_engine, {"tree", "vm"});
    parser.str("--cache-dir", "<dir>",
               "store root for --check-cache (default: fresh temp dir)",
               &cache_dir);
    parser.flag("--no-transforms", "skip the transform oracles",
                &no_transforms);
    parser.flag("--no-codegen", "skip the codegen oracles", &no_codegen);
    parser.flag("--no-flow", "skip the flow-engine oracles", &no_flow);
    parser.flag("--no-roundtrip", "skip the round-trip oracle",
                &no_roundtrip);
    if (!parser.parse(argc, argv)) return 2;
    if (!interp_engine.empty())
        interp::set_default_engine(*interp::parse_engine(interp_engine));

    fuzz::OracleOptions oracle_options;
    oracle_options.problem_size = static_cast<int>(problem_size);
    oracle_options.flow_jobs = static_cast<int>(flow_jobs);
    oracle_options.check_transforms = !no_transforms;
    oracle_options.check_codegen = !no_codegen;
    oracle_options.check_flow = !no_flow;
    oracle_options.check_roundtrip = !no_roundtrip;
    oracle_options.check_cache = check_cache;
    oracle_options.check_vm = check_vm;
    oracle_options.cache_dir = cache_dir;

    // ---- manifest mode -----------------------------------------------
    if (check_manifest) {
        long long manifest_failures = 0;
        long long manifest_runs = 0;
        const auto manifest_start = std::chrono::steady_clock::now();
        for (long long i = 0; i < runs; ++i) {
            if (max_seconds > 0) {
                const auto elapsed =
                    std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - manifest_start);
                if (elapsed.count() >= max_seconds) break;
            }
            const std::uint64_t s = static_cast<std::uint64_t>(seed) +
                                    static_cast<std::uint64_t>(i);
            ++manifest_runs;
            if (const auto failure = fuzz::check_manifest(s)) {
                ++manifest_failures;
                print_failure(s, {"manifest", *failure});
            }
        }
        std::cout << manifest_runs << " manifest run(s), "
                  << manifest_failures << " failure(s)\n";
        return manifest_failures == 0 ? 0 : 1;
    }

    // ---- replay mode -------------------------------------------------
    if (!replay_dir.empty()) {
        const auto corpus = fuzz::load_corpus(replay_dir);
        if (corpus.empty()) {
            std::cerr << "no .psa files under '" << replay_dir << "'\n";
            return 2;
        }
        int failed = 0;
        for (const auto& entry : corpus) {
            const auto outcome = fuzz::run_oracles(entry.source,
                                                   oracle_options);
            if (!outcome.ok()) {
                ++failed;
                for (const auto& f : outcome.failures)
                    std::cerr << "FAIL " << entry.path << " oracle="
                              << f.oracle << "\n     " << f.detail << "\n";
            }
        }
        std::cout << "replayed " << corpus.size() << " corpus file(s), "
                  << failed << " failing\n";
        return failed == 0 ? 0 : 1;
    }

    // ---- emit-seeds mode ---------------------------------------------
    fuzz::GenOptions gen_options;
    gen_options.problem_size = oracle_options.problem_size;
    if (!emit_dir.empty()) {
        for (long long i = 0; i < runs; ++i) {
            const std::uint64_t s =
                static_cast<std::uint64_t>(seed) +
                static_cast<std::uint64_t>(i);
            const auto program = fuzz::generate_program(s, gen_options);
            const std::string path = fuzz::save_corpus_entry(
                emit_dir, s, "", "", program.source);
            std::cout << "wrote " << path << "\n";
        }
        return 0;
    }

    // ---- fuzzing loop ------------------------------------------------
    const auto start = std::chrono::steady_clock::now();
    auto out_of_budget = [&] {
        if (max_seconds <= 0) return false;
        const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start);
        return elapsed.count() >= max_seconds;
    };

    long long executed = 0;
    long long failures = 0;
    long long oracles = 0;
    long long applied = 0;
    long long skipped = 0;
    for (long long i = 0; i < runs && !out_of_budget(); ++i) {
        const std::uint64_t s = static_cast<std::uint64_t>(seed) +
                                static_cast<std::uint64_t>(i);
        const auto program = fuzz::generate_program(s, gen_options);
        ++executed;

        // Generator determinism is itself an acceptance criterion.
        const auto again = fuzz::generate_program(s, gen_options);
        if (again.source != program.source) {
            ++failures;
            print_failure(s, {"determinism",
                              "same seed generated different programs"});
            continue;
        }

        const auto outcome = fuzz::run_oracles(program.source,
                                               oracle_options);
        oracles += outcome.oracles_run;
        applied += outcome.transforms_applied;
        skipped += outcome.transforms_skipped;
        if (outcome.ok()) continue;

        failures += static_cast<long long>(outcome.failures.size());
        for (const auto& f : outcome.failures) print_failure(s, f);

        // Reduce and persist the first failure of the run.
        const auto& first = outcome.failures.front();
        std::string reproducer = program.source;
        if (shrink) {
            const auto predicate =
                fuzz::make_failure_predicate(first.oracle, oracle_options);
            const auto reduced =
                fuzz::shrink_source(program.source, predicate);
            std::cerr << "     shrunk by " << reduced.edits_applied
                      << " edit(s) in " << reduced.checks_used
                      << " check(s)\n";
            reproducer = reduced.source;
        }
        if (!corpus_dir.empty()) {
            const std::string path = fuzz::save_corpus_entry(
                corpus_dir, s, first.oracle, first.detail, reproducer);
            std::cerr << "     saved " << path << "\n";
        } else if (shrink) {
            std::cerr << "----- reduced reproducer -----\n"
                      << reproducer << "------------------------------\n";
        }
    }

    std::cout << executed << " run(s), " << oracles << " oracle(s), "
              << applied << " transform(s) applied, " << skipped
              << " skipped, " << failures << " failure(s)\n";
    return failures == 0 ? 0 : 1;
}
