// psaflow-obscheck — structural validator for the observability artefacts.
//
// CI's obs_smoke.sh needs to assert more than "the file parses": a Chrome
// trace must contain one rooted, acyclic span tree (every parent_id
// resolves, no orphans), and an --explain report must actually explain —
// every branch names its strategy, every candidate carries an evaluation,
// every selected path appears among the candidates. This tool performs
// those checks with the repo's own JSON parser so the smoke test does not
// depend on python/jq being installed.
//
// Cross-process trees (a distributed-traced request assembled across
// client, router, shard and CAS-upstream hops) additionally obey timing
// containment: every child span's window lies inside its parent's.
// --check-nesting asserts that invariant on either trace format.
//
//   psaflow-obscheck --chrome-trace flame.json [--expect-roots 1]
//   psaflow-obscheck --trace trace.json        [--expect-roots 1]
//   psaflow-obscheck --chrome-trace flame.json --check-nesting
//   psaflow-obscheck --explain why.json
//
// Exit codes: 0 valid, 1 structural violation (message on stderr),
// 2 usage/unreadable input.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"

using namespace psaflow;

namespace {

bool load_json(const std::string& path, json::Value& doc) {
    std::ifstream file(path);
    if (!file) {
        std::cerr << "obscheck: cannot read '" << path << "'\n";
        return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    auto parsed = json::parse(buffer.str(), &error);
    if (!parsed.has_value()) {
        std::cerr << "obscheck: '" << path << "' is not JSON: " << error
                  << "\n";
        return false;
    }
    doc = std::move(*parsed);
    return true;
}

[[nodiscard]] bool fail(const std::string& message) {
    std::cerr << "obscheck: " << message << "\n";
    return false;
}

/// One span's tree-relevant fields, shared between both trace formats.
struct SpanLink {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint64_t start = 0; ///< microseconds (start_us / ts)
    std::uint64_t end = 0;   ///< start + duration
};

/// Shared tree check over (id -> parent) links: ids unique, every non-zero
/// parent resolves to a recorded span, exactly `expected_roots` roots, and
/// every span reaches a root (no cycles). With `check_nesting`, each
/// child's [start, end] window must also lie inside its parent's — the
/// invariant a correctly assembled cross-process tree (hop spans rebased
/// into their requester's round-trip window) preserves, and a merge bug
/// (unremapped ids, unshifted clocks) breaks.
bool check_span_tree(const std::vector<SpanLink>& links,
                     long long expected_roots, bool check_nesting) {
    if (links.empty()) return fail("no spans recorded");
    std::map<std::uint64_t, const SpanLink*> by_id;
    for (const SpanLink& link : links) {
        if (link.id == 0)
            return fail("span with id 0 (ids must be non-zero)");
        if (!by_id.emplace(link.id, &link).second)
            return fail("duplicate span id " + std::to_string(link.id));
    }
    long long roots = 0;
    for (const auto& [id, link] : by_id) {
        if (link->parent == 0) {
            ++roots;
            continue;
        }
        const auto parent = by_id.find(link->parent);
        if (parent == by_id.end())
            return fail("span " + std::to_string(id) + " has parent " +
                        std::to_string(link->parent) +
                        " which is not in the trace (orphan)");
        if (check_nesting &&
            (link->start < parent->second->start ||
             link->end > parent->second->end))
            return fail("span " + std::to_string(id) + " [" +
                        std::to_string(link->start) + ", " +
                        std::to_string(link->end) +
                        "]us escapes its parent " +
                        std::to_string(link->parent) + " [" +
                        std::to_string(parent->second->start) + ", " +
                        std::to_string(parent->second->end) + "]us");
    }
    if (roots != expected_roots)
        return fail("expected " + std::to_string(expected_roots) +
                    " root span(s), found " + std::to_string(roots));
    for (const auto& [id, link] : by_id) {
        std::set<std::uint64_t> seen;
        std::uint64_t cursor = id;
        while (cursor != 0) {
            if (!seen.insert(cursor).second)
                return fail("cycle in span parents at id " +
                            std::to_string(cursor));
            cursor = by_id.at(cursor)->parent;
        }
    }
    std::cout << "obscheck: span tree ok (" << links.size() << " span(s), "
              << roots << " root(s)"
              << (check_nesting ? ", nesting checked" : "") << ")\n";
    return true;
}

/// Registry JSON dump (schema v2): {"schema_version":2,"spans":[...]}.
bool check_registry_trace(const json::Value& doc, long long expected_roots,
                          bool check_nesting) {
    const json::Value* version = doc.find("schema_version");
    if (version == nullptr || version->number_or(0.0) != 2.0)
        return fail("trace schema_version is not 2");
    const json::Value* spans = doc.find("spans");
    if (spans == nullptr || !spans->is_array())
        return fail("trace has no spans array");
    std::vector<SpanLink> links;
    for (std::size_t i = 0; i < spans->elements.size(); ++i) {
        const json::Value& span = spans->elements[i];
        const json::Value* id = span.find("id");
        const json::Value* parent = span.find("parent");
        const json::Value* name = span.find("name");
        if (id == nullptr || parent == nullptr)
            return fail("span " + std::to_string(i) + " lacks id/parent");
        if (name == nullptr || name->string_or("").empty())
            return fail("span " + std::to_string(i) + " lacks a name");
        SpanLink link;
        link.id = static_cast<std::uint64_t>(id->number_or(0.0));
        link.parent = static_cast<std::uint64_t>(parent->number_or(0.0));
        const json::Value* start = span.find("start_us");
        const json::Value* duration = span.find("duration_us");
        link.start = static_cast<std::uint64_t>(
            start ? start->number_or(0.0) : 0.0);
        link.end = link.start + static_cast<std::uint64_t>(
                                    duration ? duration->number_or(0.0)
                                             : 0.0);
        links.push_back(link);
    }
    return check_span_tree(links, expected_roots, check_nesting);
}

/// Chrome trace-event document: {"traceEvents":[...]} with complete
/// ("ph":"X") events carrying args.span_id / args.parent_id.
bool check_chrome_trace(const json::Value& doc, long long expected_roots,
                        bool check_nesting) {
    const json::Value* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array())
        return fail("no traceEvents array (not a Chrome trace?)");
    std::vector<SpanLink> links;
    bool saw_metadata = false;
    for (std::size_t i = 0; i < events->elements.size(); ++i) {
        const json::Value& event = events->elements[i];
        const json::Value* phase = event.find("ph");
        const std::string ph = phase ? phase->string_or("") : "";
        if (ph == "M") {
            saw_metadata = true;
            continue;
        }
        if (ph != "X")
            return fail("event " + std::to_string(i) +
                        " has phase '" + ph + "' (want M or X)");
        const json::Value* ts = event.find("ts");
        const json::Value* dur = event.find("dur");
        if (ts == nullptr || dur == nullptr)
            return fail("X event " + std::to_string(i) + " lacks ts/dur");
        const json::Value* args = event.find("args");
        const json::Value* id = args ? args->find("span_id") : nullptr;
        const json::Value* parent = args ? args->find("parent_id") : nullptr;
        if (id == nullptr || parent == nullptr)
            return fail("X event " + std::to_string(i) +
                        " lacks args.span_id/args.parent_id");
        SpanLink link;
        link.id = static_cast<std::uint64_t>(id->number_or(0.0));
        link.parent = static_cast<std::uint64_t>(parent->number_or(0.0));
        link.start = static_cast<std::uint64_t>(ts->number_or(0.0));
        link.end =
            link.start + static_cast<std::uint64_t>(dur->number_or(0.0));
        links.push_back(link);
    }
    if (!saw_metadata)
        return fail("no metadata (ph:\"M\") events — process/thread names "
                    "missing");
    return check_span_tree(links, expected_roots, check_nesting);
}

/// Decision-provenance report (psaflowc --explain).
bool check_explain(const json::Value& doc) {
    const json::Value* version = doc.find("schema_version");
    if (version == nullptr || version->number_or(0.0) != 1.0)
        return fail("explain schema_version is not 1");
    if (doc.find("app") == nullptr || doc.find("mode") == nullptr)
        return fail("explain report lacks app/mode");
    const json::Value* decisions = doc.find("decisions");
    if (decisions == nullptr || !decisions->is_array())
        return fail("explain report has no decisions array");
    if (decisions->elements.empty())
        return fail("explain report records zero branch decisions");
    std::size_t candidate_total = 0;
    for (std::size_t i = 0; i < decisions->elements.size(); ++i) {
        const json::Value& record = decisions->elements[i];
        const std::string where = "decision " + std::to_string(i);
        const json::Value* branch = record.find("branch");
        const json::Value* strategy = record.find("strategy");
        if (branch == nullptr || branch->string_or("").empty())
            return fail(where + " names no branch");
        if (strategy == nullptr || strategy->string_or("").empty())
            return fail(where + " names no strategy");
        const json::Value* candidates = record.find("candidates");
        if (candidates == nullptr || !candidates->is_array() ||
            candidates->elements.empty())
            return fail(where + " has no candidates");
        std::set<std::string> names;
        for (std::size_t c = 0; c < candidates->elements.size(); ++c) {
            const json::Value& candidate = candidates->elements[c];
            const json::Value* path = candidate.find("path");
            if (path == nullptr || path->string_or("").empty())
                return fail(where + " candidate " + std::to_string(c) +
                            " has no path name");
            if (candidate.find("evaluation") == nullptr)
                return fail(where + " candidate '" + path->string_or("") +
                            "' has no evaluation");
            names.insert(path->string_or(""));
        }
        candidate_total += candidates->elements.size();
        const json::Value* selected = record.find("selected");
        if (selected == nullptr || !selected->is_array())
            return fail(where + " has no selected array");
        for (std::size_t s = 0; s < selected->elements.size(); ++s) {
            const std::string name = selected->elements[s].string_or("");
            if (names.find(name) == names.end())
                return fail(where + " selected '" + name +
                            "' which is not among its candidates");
        }
        if (record.find("rationale") == nullptr)
            return fail(where + " has no rationale");
    }
    std::cout << "obscheck: explain report ok (" << decisions->elements.size()
              << " decision(s), " << candidate_total << " candidate(s))\n";
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::string chrome_path;
    std::string trace_path;
    std::string explain_path;
    long long expect_roots = 1;
    bool check_nesting = false;

    cli::OptionParser parser(
        argv[0],
        {"--chrome-trace <file.json> [--expect-roots <n>] "
         "[--check-nesting]",
         "--trace <file.json> [--expect-roots <n>] [--check-nesting]",
         "--explain <file.json>"});
    parser.str("--chrome-trace", "<file.json>",
               "validate a Chrome trace-event document", &chrome_path);
    parser.str("--trace", "<file.json>",
               "validate a schema-v2 trace registry dump", &trace_path);
    parser.str("--explain", "<file.json>",
               "validate a decision-provenance report", &explain_path);
    parser.integer("--expect-roots", "<n>",
                   "required number of root spans (default 1)",
                   &expect_roots, /*min=*/1);
    parser.flag("--check-nesting",
                "require every child span's time window to lie inside its "
                "parent's (cross-process tree assembly invariant)",
                &check_nesting);

    if (!parser.parse(argc, argv)) return 2;
    if (chrome_path.empty() && trace_path.empty() && explain_path.empty()) {
        std::cerr << parser.usage();
        return 2;
    }

    json::Value doc;
    if (!chrome_path.empty()) {
        if (!load_json(chrome_path, doc)) return 2;
        if (!check_chrome_trace(doc, expect_roots, check_nesting)) return 1;
    }
    if (!trace_path.empty()) {
        if (!load_json(trace_path, doc)) return 2;
        if (!check_registry_trace(doc, expect_roots, check_nesting))
            return 1;
    }
    if (!explain_path.empty()) {
        if (!load_json(explain_path, doc)) return 2;
        if (!check_explain(doc)) return 1;
    }
    return 0;
}
