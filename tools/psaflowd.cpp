// psaflowd — the PSA-flow compile service.
//
// A long-running daemon that keeps warm FlowSession workers (and with them
// the in-process profile caches and the persistent content-addressed
// store) alive across requests, so clients pay milliseconds of socket
// round-trip instead of a cold process start per compile. Speaks
// length-prefixed JSON frames over a Unix-domain socket and/or TCP; the
// request schema is exactly a `psaflowc --batch` manifest entry (see
// serve/protocol.hpp and README "Serving").
//
//   psaflowd --socket /tmp/psaflow.sock --workers 4 \
//            --cache-dir .psaflow-cache --out designs/
//
// As a cluster shard behind psaflow-router (README "Scale-out serving"):
//
//   psaflowd --listen 127.0.0.1:7401 --shard-name a \
//            --cas-upstream 127.0.0.1:7400 --cache-dir shard-a-cache
//
// SIGTERM/SIGINT drain gracefully: stop accepting, answer everything
// already admitted, remove the socket file, exit 0.
#include <csignal>
#include <iostream>
#include <memory>

#include "cluster/remote_cas.hpp"
#include "serve/server.hpp"
#include "support/cas/cas.hpp"
#include "support/cli.hpp"
#include "support/net.hpp"

namespace {

psaflow::serve::Daemon* g_daemon = nullptr;

void handle_signal(int) {
    // Async-signal-safe: one write(2) to the daemon's self-pipe.
    if (g_daemon != nullptr) g_daemon->notify_shutdown();
}

} // namespace

int main(int argc, char** argv) {
    using namespace psaflow;

    serve::DaemonOptions options;
    long long workers = 2;
    long long queue_depth = 16;
    long long deadline_ms = 0;
    long long recv_timeout_ms = 5000;
    long long session_jobs = 1;
    long long cache_max_mb = 0;
    long long slo_ms = 0;
    bool enable_test_endpoints = false;

    std::string cas_upstream;

    cli::OptionParser parser(
        argv[0],
        {"[--socket <path>] [--listen <host:port>] [--shard-name <name>]\n"
         "      [--cas-upstream <endpoint>] [--workers <n>] "
         "[--queue-depth <n>]\n"
         "      [--deadline-ms <n>] [--recv-timeout-ms <n>] [--out <dir>]\n"
         "      [--jobs <n>] [--interp tree|vm] [--cache-dir <dir>]\n"
         "      [--cache-max-mb <n>] [--slo-ms <n>]"});
    parser.str("--socket", "<path>", "Unix-domain socket to listen on",
               &options.socket_path);
    parser.str("--listen", "<host:port>",
               "also listen on TCP (port 0 = ephemeral, printed on start)",
               &options.listen_tcp);
    parser.str("--shard-name", "<name>",
               "cluster shard identity; labels metrics with shard=<name>",
               &options.shard_name);
    parser.str("--cas-upstream", "<endpoint>",
               "remote CAS tier (peer shard or router); the disk cache "
               "becomes a read-through cache over it",
               &cas_upstream);
    parser.integer("--workers", "<n>", "warm flow workers (default 2)",
                   &workers, /*min=*/1);
    parser.integer("--queue-depth", "<n>",
                   "admission queue capacity (default 16)", &queue_depth,
                   /*min=*/1);
    parser.integer("--deadline-ms", "<n>",
                   "default per-request deadline (0 = none)", &deadline_ms,
                   /*min=*/0);
    parser.integer("--recv-timeout-ms", "<n>",
                   "mid-frame peer stall cap (default 5000)",
                   &recv_timeout_ms, /*min=*/0);
    parser.str("--out", "<dir>",
               "output root for request-relative paths (default designs)",
               &options.out_root);
    parser.integer("--jobs", "<n>",
                   "engine jobs per worker session (default 1)",
                   &session_jobs, /*min=*/1);
    parser.choice("--interp", "<engine>",
                  "interpreter engine: tree|vm (default: PSAFLOW_INTERP, "
                  "else vm)",
                  &options.interp, {"tree", "vm"});
    parser.str("--cache-dir", "<dir>",
               "persistent cache root (default PSAFLOW_CACHE_DIR)",
               &options.cache_dir);
    parser.integer("--cache-max-mb", "<n>",
                   "persistent cache size cap (0 = env / default)",
                   &cache_max_mb, /*min=*/0);
    parser.integer("--slo-ms", "<n>",
                   "latency SLO for the flight recorder; slower requests "
                   "log a breach (0 = PSAFLOW_SLO_MS / off)",
                   &slo_ms, /*min=*/0);
    parser.flag("--enable-test-endpoints",
                "allow the test-only 'sleep' request type",
                &enable_test_endpoints);

    if (!parser.parse(argc, argv)) return 2;
    if (options.socket_path.empty() && options.listen_tcp.empty()) {
        std::cerr << parser.usage();
        return 2;
    }

    options.workers = static_cast<int>(workers);
    options.queue_depth = static_cast<std::size_t>(queue_depth);
    options.default_deadline_ms = deadline_ms;
    options.recv_timeout_ms = recv_timeout_ms;
    options.session_jobs = static_cast<int>(session_jobs);
    options.cache_max_bytes = static_cast<std::uint64_t>(cache_max_mb) << 20;
    options.slo_ms = slo_ms;
    options.enable_test_endpoints = enable_test_endpoints;

    serve::Daemon daemon(options);
    if (auto error = daemon.start()) {
        std::cerr << "psaflowd: " << *error << "\n";
        return 1;
    }

    // Remote-CAS wiring lives in the tool, not the serve library: serve's
    // own cas_get/cas_put handlers use only the local tier, so pointing
    // shards at each other (or at a router) can never recurse.
    if (!cas_upstream.empty()) {
        std::string error;
        auto endpoint = net::parse_endpoint(cas_upstream, &error);
        if (!endpoint.has_value()) {
            std::cerr << "psaflowd: --cas-upstream: " << error << "\n";
            return 2;
        }
        auto client = std::make_shared<cluster::RemoteCasClient>(
            std::move(*endpoint), recv_timeout_ms);
        cas::configure_remote(
            cluster::RemoteCasClient::fetch_hook(client),
            cluster::RemoteCasClient::publish_hook(client));
    }

    g_daemon = &daemon;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "psaflowd: serving on ";
    if (!options.socket_path.empty()) std::cout << options.socket_path;
    if (!options.listen_tcp.empty()) {
        if (!options.socket_path.empty()) std::cout << " and ";
        // The resolved port matters when --listen asked for port 0; smoke
        // scripts scrape it from this line.
        std::cout << "tcp port " << daemon.tcp_port();
    }
    std::cout << " with " << options.workers << " worker(s), queue depth "
              << options.queue_depth << "\n"
              << std::flush;
    daemon.run();

    const serve::DaemonCounters counters = daemon.counters();
    std::cout << "psaflowd: drained; " << counters.requests
              << " request(s), " << counters.completed << " completed, "
              << counters.deadline_exceeded << " deadline-exceeded, "
              << counters.rejected_overload << " rejected\n";
    g_daemon = nullptr;
    return 0;
}
