// psaflowc — command-line driver for the PSA-flow.
//
// Runs the paper's implemented design-flow on the bundled benchmark
// applications and writes every generated design source to disk, together
// with a machine-readable summary (CSV) of the predicted performance —
// i.e. the artefact a developer would take away from the toolflow.
//
//   psaflowc --list
//   psaflowc --app nbody --mode informed --out designs/
//   psaflowc --app kmeans --mode uninformed --out designs/ --budget 0.001
//   psaflowc --app nbody --jobs 4 --trace-out trace.json
//   psaflowc --app nbody --cache-dir .psaflow-cache   # warm reruns
//   psaflowc --batch manifest.json --out designs/     # many apps, one
//                                                     # process, shared
//                                                     # pool and caches
//
// Batch manifest schema (JSON): either a bare array of request objects or
//   {
//     "jobs": 4,                  // optional; --jobs overrides
//     "cache_dir": ".cache",      // optional; --cache-dir overrides
//     "out": "designs",           // optional default output root
//     "requests": [
//       {"app": "nbody",          // required: bundled application name
//        "mode": "informed",      // optional (default "informed")
//        "budget": 0.001,         // optional USD-per-run budget
//        "threshold_x": 4.0,      // optional Fig. 3 intensity threshold
//        "out": "designs/nbody"}  // optional (default "<out>/<app>-<i>")
//     ]
//   }
// Requests run sequentially through one FlowSession, so later requests
// reuse the warm in-process caches and the persistent store; one failed
// request does not abort the rest (the driver exits 1 if any failed).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/psaflow.hpp"
#include "support/cas/cas.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

using namespace psaflow;

namespace {

/// One (app, mode, budget) compile request — the unit both the single-app
/// CLI and the batch manifest reduce to.
struct Request {
    std::string app;
    std::string mode = "informed";
    double budget = -1.0;
    double threshold_x = 4.0;
    std::string out_dir;
};

struct RequestOutcome {
    bool ok = false;
    std::string error;
    std::size_t design_count = 0;
    double best_speedup = 0.0;
    double reference_seconds = 0.0;
    std::string summary_path;
};

/// Compile one request through `session` and write designs + summary CSV.
/// `table` (when non-null) receives one row per design.
RequestOutcome run_request(flow::FlowSession& session, const Request& req,
                           TablePrinter* table) {
    RequestOutcome outcome;

    const apps::Application* app = nullptr;
    try {
        app = &apps::application_by_name(req.app);
    } catch (const Error& e) {
        outcome.error = e.what();
        return outcome;
    }

    RunOptions options;
    options.mode = req.mode == "informed" ? flow::Mode::Informed
                                          : flow::Mode::Uninformed;
    options.budget.max_run_cost = req.budget;
    options.intensity_threshold_x = req.threshold_x;

    flow::FlowResult result;
    try {
        result = compile(session, *app, options);
    } catch (const Error& e) {
        outcome.error = std::string("flow failed: ") + e.what();
        return outcome;
    }

    std::filesystem::create_directories(req.out_dir);
    CsvWriter summary({"design", "target", "device", "synthesizable",
                       "hotspot_seconds", "speedup_vs_1t", "loc_delta",
                       "source_file"});

    for (const auto& design : result.designs) {
        const std::string ext =
            design.spec.target == codegen::TargetKind::CpuFpga ? ".sycl.cpp"
            : design.spec.target == codegen::TargetKind::CpuGpu ? ".hip.cpp"
                                                                : ".cpp";
        const std::string filename = design.name() + ext;
        const std::filesystem::path path =
            std::filesystem::path(req.out_dir) / filename;
        std::ofstream file(path);
        if (!file) {
            outcome.error = "cannot write " + path.string();
            return outcome;
        }
        file << design.source;

        summary.add_row({design.name(),
                         codegen::to_string(design.spec.target),
                         platform::to_string(design.spec.device),
                         design.synthesizable ? "yes" : "no",
                         format_compact(design.hotspot_seconds, 6),
                         format_compact(design.speedup, 4),
                         format_compact(design.loc_delta, 4),
                         filename});
        if (table != nullptr) {
            table->add_row({design.name(),
                            design.synthesizable
                                ? format_compact(design.speedup, 4) + "x"
                                : "overmapped",
                            "+" + format_compact(100.0 * design.loc_delta, 3) +
                                "%",
                            filename});
        }
        if (design.synthesizable && design.speedup > outcome.best_speedup)
            outcome.best_speedup = design.speedup;
    }

    const std::filesystem::path summary_path =
        std::filesystem::path(req.out_dir) / (app->name + "-summary.csv");
    std::ofstream summary_file(summary_path);
    summary_file << summary.to_string();

    outcome.ok = true;
    outcome.design_count = result.designs.size();
    outcome.reference_seconds = result.reference_seconds;
    outcome.summary_path = summary_path.string();
    return outcome;
}

[[nodiscard]] bool valid_mode(const std::string& mode) {
    return mode == "informed" || mode == "uninformed";
}

/// Parse the batch manifest into requests; returns false (with a message
/// on stderr) on malformed input. `jobs`/`cache_dir`/`default_out` are
/// only overwritten when the manifest provides them.
bool load_manifest(const std::string& path, std::vector<Request>& requests,
                   long long& jobs, std::string& cache_dir,
                   std::string& default_out) {
    std::ifstream file(path);
    if (!file) {
        std::cerr << "cannot read batch manifest '" << path << "'\n";
        return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    std::string error;
    const auto doc = json::parse(buffer.str(), &error);
    if (!doc.has_value()) {
        std::cerr << "batch manifest '" << path << "': " << error << "\n";
        return false;
    }

    const json::Value* list = nullptr;
    if (doc->kind == json::Value::Kind::Array) {
        list = &*doc;
    } else if (doc->kind == json::Value::Kind::Object) {
        if (const json::Value* v = doc->find("jobs"))
            jobs = static_cast<long long>(v->number_or(double(jobs)));
        if (const json::Value* v = doc->find("cache_dir"))
            cache_dir = v->string_or(cache_dir);
        if (const json::Value* v = doc->find("out"))
            default_out = v->string_or(default_out);
        list = doc->find("requests");
    }
    if (list == nullptr || list->kind != json::Value::Kind::Array) {
        std::cerr << "batch manifest '" << path
                  << "': expected a top-level array or an object with a "
                     "\"requests\" array\n";
        return false;
    }

    for (std::size_t i = 0; i < list->elements.size(); ++i) {
        const json::Value& entry = list->elements[i];
        if (entry.kind != json::Value::Kind::Object) {
            std::cerr << "batch manifest '" << path << "': request " << i
                      << " is not an object\n";
            return false;
        }
        Request req;
        if (const json::Value* v = entry.find("app"))
            req.app = v->string_or("");
        if (req.app.empty()) {
            std::cerr << "batch manifest '" << path << "': request " << i
                      << " has no \"app\"\n";
            return false;
        }
        if (const json::Value* v = entry.find("mode"))
            req.mode = v->string_or(req.mode);
        if (!valid_mode(req.mode)) {
            std::cerr << "batch manifest '" << path << "': request " << i
                      << ": mode must be 'informed' or 'uninformed'\n";
            return false;
        }
        if (const json::Value* v = entry.find("budget"))
            req.budget = v->number_or(req.budget);
        if (const json::Value* v = entry.find("threshold_x"))
            req.threshold_x = v->number_or(req.threshold_x);
        if (const json::Value* v = entry.find("out"))
            req.out_dir = v->string_or("");
        if (req.out_dir.empty())
            req.out_dir = (std::filesystem::path(default_out) /
                           (req.app + "-" + std::to_string(i)))
                              .string();
        requests.push_back(std::move(req));
    }
    return true;
}

int run_batch(const std::string& manifest_path, const cli::FlowFlags& flags,
              std::string out_dir, bool out_dir_given) {
    std::vector<Request> requests;
    long long jobs = 0;
    std::string cache_dir;
    std::string default_out = out_dir_given ? out_dir : "designs";
    if (!load_manifest(manifest_path, requests, jobs, cache_dir,
                       default_out))
        return 2;
    // CLI flags override the manifest's session settings.
    if (flags.jobs > 0) jobs = flags.jobs;
    if (!flags.cache_dir.empty()) cache_dir = flags.cache_dir;
    if (requests.empty()) {
        std::cerr << "batch manifest '" << manifest_path
                  << "': no requests\n";
        return 2;
    }

    flow::SessionOptions session_options;
    session_options.jobs = static_cast<int>(jobs);
    session_options.cache_dir = cache_dir;
    session_options.cache_max_bytes =
        static_cast<std::uint64_t>(flags.cache_max_mb) << 20;
    flow::FlowSession session(session_options);

    std::cout << "running " << requests.size()
              << " batch request(s) through one flow session...\n";
    TablePrinter batch_table(
        {"#", "app", "mode", "designs", "best speedup", "status"});
    int failures = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request& req = requests[i];
        const RequestOutcome outcome = run_request(session, req, nullptr);
        if (!outcome.ok) {
            ++failures;
            std::cerr << "request " << i << " (" << req.app
                      << "): " << outcome.error << "\n";
        }
        batch_table.add_row(
            {std::to_string(i), req.app, req.mode,
             outcome.ok ? std::to_string(outcome.design_count) : "-",
             outcome.ok && outcome.best_speedup > 0.0
                 ? format_compact(outcome.best_speedup, 4) + "x"
                 : "-",
             outcome.ok ? "ok" : "FAILED"});
    }
    batch_table.print(std::cout);
    std::cout << (requests.size() - failures) << "/" << requests.size()
              << " request(s) succeeded\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    bool list = false;
    bool cache_clear = false;
    std::string app_name;
    std::string mode = "informed";
    std::string out_dir = "designs";
    std::string batch_manifest;
    double budget = -1.0;
    double threshold_x = 4.0;
    cli::FlowFlags flow_flags;

    cli::OptionParser parser(
        argv[0],
        {"--list",
         "--app <name> [--mode informed|uninformed] [--out <dir>]\n"
         "      [--budget <usd-per-run>] [--threshold-x <flops/B>]\n"
         "      [--jobs <n>] [--trace-out <file.json>]\n"
         "      [--cache-dir <dir>] [--cache-max-mb <n>]",
         "--batch <manifest.json> [--out <dir>] [--jobs <n>] "
         "[--cache-dir <dir>]"});
    parser.flag("--list", "list the bundled applications", &list);
    parser.str("--app", "<name>", "application to compile", &app_name);
    parser.str("--mode", "<mode>", "informed|uninformed (default informed)",
               &mode);
    parser.str("--out", "<dir>", "output directory (default designs)",
               &out_dir);
    parser.str("--batch", "<manifest.json>",
               "run every request of a JSON manifest", &batch_manifest);
    parser.real("--budget", "<usd-per-run>", "Fig. 3 cost budget", &budget);
    parser.real("--threshold-x", "<flops/B>",
                "arithmetic-intensity threshold (default 4)", &threshold_x);
    parser.flag("--cache-clear", "evict the persistent cache and exit",
                &cache_clear);
    cli::add_flow_flags(parser, flow_flags);

    if (!parser.parse(argc, argv)) return 2;

    if (list) {
        for (const apps::Application* app : apps::all_applications())
            std::cout << app->name << ": " << app->description << "\n";
        return 0;
    }

    if (cache_clear) {
        if (!flow_flags.cache_dir.empty())
            cas::configure(flow_flags.cache_dir,
                           static_cast<std::uint64_t>(flow_flags.cache_max_mb)
                               << 20);
        if (cas::CasStore* store = cas::store()) {
            store->clear();
            std::cout << "cleared cache at " << store->root().string()
                      << "\n";
        } else {
            std::cerr << "no cache configured (--cache-dir or "
                         "PSAFLOW_CACHE_DIR)\n";
            return 2;
        }
        if (app_name.empty() && batch_manifest.empty()) return 0;
    }

    if (!flow_flags.trace_out.empty())
        trace::Registry::global().set_enabled(true);

    int status = 0;
    if (!batch_manifest.empty()) {
        status = run_batch(batch_manifest, flow_flags, out_dir,
                           /*out_dir_given=*/out_dir != "designs");
        if (status == 2) {
            std::cerr << parser.usage();
            return 2;
        }
    } else {
        if (app_name.empty()) {
            std::cerr << parser.usage();
            return 2;
        }
        if (!valid_mode(mode)) {
            std::cerr << "--mode must be 'informed' or 'uninformed'\n";
            return 2;
        }

        Request req;
        req.app = app_name;
        req.mode = mode;
        req.budget = budget;
        req.threshold_x = threshold_x;
        req.out_dir = out_dir;

        flow::SessionOptions session_options;
        session_options.jobs = static_cast<int>(flow_flags.jobs);
        session_options.cache_dir = flow_flags.cache_dir;
        session_options.cache_max_bytes =
            static_cast<std::uint64_t>(flow_flags.cache_max_mb) << 20;
        flow::FlowSession session(session_options);

        std::cout << "running the " << mode << " PSA-flow on '" << app_name
                  << "'...\n";
        TablePrinter table({"design", "speedup", "LOC delta", "file"});
        const RequestOutcome outcome = run_request(session, req, &table);
        if (!outcome.ok) {
            std::cerr << outcome.error << "\n";
            return outcome.error.rfind("flow failed:", 0) == 0 ? 1 : 2;
        }
        table.print(std::cout);
        std::cout << "reference 1-thread hotspot time: "
                  << format_compact(outcome.reference_seconds, 4) << " s\n";
        std::cout << "wrote " << outcome.design_count << " design(s) and "
                  << outcome.summary_path << "\n";
    }

    if (!flow_flags.trace_out.empty()) {
        std::ofstream trace_file(flow_flags.trace_out);
        if (!trace_file) {
            std::cerr << "cannot write " << flow_flags.trace_out << "\n";
            return 1;
        }
        trace_file << trace::Registry::global().to_json() << "\n";
        std::cout << "wrote trace to " << flow_flags.trace_out << "\n";
    }
    return status;
}
