// psaflowc — command-line driver for the PSA-flow.
//
// Runs the paper's implemented design-flow on the bundled benchmark
// applications and writes every generated design source to disk, together
// with a machine-readable summary (CSV) of the predicted performance —
// i.e. the artefact a developer would take away from the toolflow.
//
//   psaflowc --list
//   psaflowc --app nbody --mode informed --out designs/
//   psaflowc --export-flow std.json          # builtin flow as a manifest
//   psaflowc --app nbody --flow myflow.json  # run a manifest-defined flow
//   psaflowc --app kmeans --mode uninformed --out designs/ --budget 0.001
//   psaflowc --app nbody --jobs 4 --trace-out trace.json
//   psaflowc --app nbody --trace-out flame.json --trace-format chrome
//   psaflowc --app nbody --explain why.json --explain-md why.md
//   psaflowc --app nbody --metrics-out nbody.prom
//   psaflowc --app nbody --cache-dir .psaflow-cache   # warm reruns
//   psaflowc --batch manifest.json --out designs/     # many apps, one
//                                                     # process, shared
//                                                     # pool and caches
//
// Batch manifest schema (JSON): either a bare array of request objects or
//   {
//     "jobs": 4,                  // optional; --jobs overrides
//     "cache_dir": ".cache",      // optional; --cache-dir overrides
//     "out": "designs",           // optional default output root
//     "requests": [
//       {"app": "nbody",          // required: bundled application name
//        "mode": "informed",      // optional (default "informed")
//        "budget": 0.001,         // optional USD-per-run budget
//        "threshold_x": 4.0,      // optional Fig. 3 intensity threshold
//        "deadline_ms": 500,      // optional per-request deadline
//        "flow": "myflow.json",   // optional flow manifest (path or
//                                 // inline object; flow/manifest.hpp)
//        "out": "designs/nbody"}  // optional (default "<out>/<app>-<i>")
//     ]
//   }
// A manifest entry is exactly a psaflowd compile request: both drivers run
// requests through serve::execute_request, so a request behaves the same
// whether it arrives via --batch or over the daemon's socket. Requests run
// sequentially through one FlowSession, so later requests reuse the warm
// in-process caches and the persistent store; one failed request does not
// abort the rest (the driver exits 1 if any failed).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "flow/manifest.hpp"
#include "flow/standard_flow.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/decision.hpp"
#include "obs/flight.hpp"
#include "obs/prometheus.hpp"
#include "serve/service.hpp"
#include "support/cas/cas.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

using namespace psaflow;

namespace {

[[nodiscard]] bool valid_mode(const std::string& mode) {
    return mode == "informed" || mode == "uninformed";
}

/// Write `content` to `path`; false (message on stderr) when unwritable.
bool write_text_file(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return false;
    }
    file << content;
    return true;
}

/// Drop a flight-recorder digest for one locally executed request, so the
/// PSAFLOW_SLO_MS slow-request forensics behave in the CLI driver exactly
/// as they do in psaflowd (a breach logs a warn, echoed to stderr).
void record_flight(const serve::CompileRequest& req,
                   const serve::CompileOutcome& outcome) {
    obs::FlightRecord flight;
    flight.set_app(req.app);
    flight.set_lane("local");
    flight.exec_us = outcome.wall_us;
    flight.total_us = outcome.wall_us;
    const auto hits = [&outcome](const char* name) {
        const auto it = outcome.counters.find(name);
        return it == outcome.counters.end() ? std::uint64_t{0} : it->second;
    };
    flight.cache_hits = static_cast<std::uint32_t>(
        hits("cas.hits") + hits("profile_cache.hits"));
    if (!outcome.decisions.empty() &&
        !outcome.decisions.front().selected.empty())
        flight.set_winner(outcome.decisions.front().selected.front());
    flight.set_status(outcome.ok ? "ok" : to_string(outcome.error_kind));
    obs::FlightRecorder::global().record(flight);
}

/// Read + parse the batch manifest; returns false (message on stderr) on
/// malformed input.
bool load_manifest(const std::string& path,
                   serve::ManifestDefaults& defaults,
                   std::vector<serve::CompileRequest>& requests) {
    std::ifstream file(path);
    if (!file) {
        std::cerr << "cannot read batch manifest '" << path << "'\n";
        return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    std::string error;
    const auto doc = json::parse(buffer.str(), &error);
    if (!doc.has_value()) {
        std::cerr << "batch manifest '" << path << "': " << error << "\n";
        return false;
    }
    if (auto parse_error = serve::parse_manifest(*doc, defaults, requests)) {
        std::cerr << "batch manifest '" << path << "': " << *parse_error
                  << "\n";
        return false;
    }
    return true;
}

int run_batch(const std::string& manifest_path, const cli::FlowFlags& flags,
              std::string out_dir, bool out_dir_given) {
    serve::ManifestDefaults defaults;
    if (out_dir_given) defaults.out_root = out_dir;
    std::vector<serve::CompileRequest> requests;
    if (!load_manifest(manifest_path, defaults, requests)) return 2;
    // CLI flags override the manifest's session settings.
    long long jobs = defaults.jobs;
    std::string cache_dir = defaults.cache_dir;
    if (flags.jobs > 0) jobs = flags.jobs;
    if (!flags.cache_dir.empty()) cache_dir = flags.cache_dir;
    if (requests.empty()) {
        std::cerr << "batch manifest '" << manifest_path
                  << "': no requests\n";
        return 2;
    }

    flow::SessionOptions session_options;
    session_options.jobs = static_cast<int>(jobs);
    session_options.cache_dir = cache_dir;
    session_options.cache_max_bytes =
        static_cast<std::uint64_t>(flags.cache_max_mb) << 20;
    session_options.interp = flags.interp;
    flow::FlowSession session(session_options);

    std::cout << "running " << requests.size()
              << " batch request(s) through one flow session...\n";
    TablePrinter batch_table(
        {"#", "app", "mode", "designs", "best speedup", "status"});
    int failures = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const serve::CompileRequest& req = requests[i];
        const serve::CompileOutcome outcome =
            serve::execute_request(session, req);
        record_flight(req, outcome);
        if (!outcome.ok) {
            ++failures;
            std::cerr << "request " << i << " (" << req.app
                      << "): " << outcome.error << "\n";
        }
        batch_table.add_row(
            {std::to_string(i), req.app, req.mode,
             outcome.ok ? std::to_string(outcome.design_count) : "-",
             outcome.ok && outcome.best_speedup > 0.0
                 ? format_compact(outcome.best_speedup, 4) + "x"
                 : "-",
             outcome.ok ? "ok" : "FAILED"});
    }
    batch_table.print(std::cout);
    std::cout << (requests.size() - failures) << "/" << requests.size()
              << " request(s) succeeded\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    bool list = false;
    bool cache_clear = false;
    std::string app_name;
    std::string mode = "informed";
    std::string out_dir = "designs";
    std::string batch_manifest;
    double budget = -1.0;
    double threshold_x = 4.0;
    long long deadline_ms = 0;
    std::string trace_format = "json";
    std::string metrics_out;
    std::string explain_out;
    std::string explain_md_out;
    std::string flow_file;
    std::string export_flow;
    cli::FlowFlags flow_flags;

    cli::OptionParser parser(
        argv[0],
        {"--list",
         "--app <name> [--mode informed|uninformed] [--out <dir>]\n"
         "      [--budget <usd-per-run>] [--threshold-x <flops/B>]\n"
         "      [--deadline-ms <n>] [--jobs <n>] [--trace-out <file.json>]\n"
         "      [--trace-format json|chrome] [--metrics-out <file>]\n"
         "      [--explain <file.json>] [--explain-md <file.md>]\n"
         "      [--cache-dir <dir>] [--cache-max-mb <n>] [--interp tree|vm]\n"
         "      [--flow <manifest.json>]",
         "--batch <manifest.json> [--out <dir>] [--jobs <n>] "
         "[--cache-dir <dir>]",
         "--export-flow <file> [--mode informed|uninformed]"});
    parser.flag("--list", "list the bundled applications", &list);
    parser.str("--app", "<name>", "application to compile", &app_name);
    parser.str("--mode", "<mode>", "informed|uninformed (default informed)",
               &mode);
    parser.str("--out", "<dir>", "output directory (default designs)",
               &out_dir);
    parser.str("--batch", "<manifest.json>",
               "run every request of a JSON manifest", &batch_manifest);
    parser.str("--flow", "<manifest.json>",
               "run a manifest-defined flow instead of the builtin",
               &flow_file);
    parser.str("--export-flow", "<file>",
               "write the builtin flow as a manifest ('-' for stdout)",
               &export_flow);
    parser.real("--budget", "<usd-per-run>", "Fig. 3 cost budget", &budget);
    parser.real("--threshold-x", "<flops/B>",
                "arithmetic-intensity threshold (default 4)", &threshold_x);
    parser.integer("--deadline-ms", "<n>",
                   "abort the flow after <n> ms (0 = no deadline)",
                   &deadline_ms, /*min=*/0);
    parser.str("--trace-format", "<fmt>",
               "--trace-out format: json|chrome (default json)",
               &trace_format);
    parser.str("--metrics-out", "<file>",
               "dump run counters in Prometheus text format", &metrics_out);
    parser.str("--explain", "<file.json>",
               "write the flow's branch-decision provenance as JSON",
               &explain_out);
    parser.str("--explain-md", "<file.md>",
               "write the decision provenance as a markdown report",
               &explain_md_out);
    parser.flag("--cache-clear", "evict the persistent cache and exit",
                &cache_clear);
    cli::add_flow_flags(parser, flow_flags);

    if (!parser.parse(argc, argv)) return 2;
    if (trace_format != "json" && trace_format != "chrome") {
        std::cerr << "--trace-format must be 'json' or 'chrome'\n";
        return 2;
    }
    if ((!explain_out.empty() || !explain_md_out.empty()) &&
        !batch_manifest.empty()) {
        std::cerr << "--explain/--explain-md report a single flow; use "
                     "--app, not --batch\n";
        return 2;
    }
    if (!flow_file.empty() && !batch_manifest.empty()) {
        std::cerr << "--flow applies to a single --app run; batch entries "
                     "carry their own \"flow\" member\n";
        return 2;
    }

    if (!export_flow.empty()) {
        if (!valid_mode(mode)) {
            std::cerr << "--mode must be 'informed' or 'uninformed'\n";
            return 2;
        }
        const flow::Mode m = mode == "informed" ? flow::Mode::Informed
                                                : flow::Mode::Uninformed;
        const std::string document =
            json::dump(flow::to_manifest(flow::standard_flow(m))) + "\n";
        if (export_flow == "-") {
            std::cout << document;
        } else {
            if (!write_text_file(export_flow, document)) return 1;
            std::cout << "wrote the " << mode
                      << " standard flow as a manifest to " << export_flow
                      << "\n";
        }
        return 0;
    }

    if (list) {
        for (const apps::Application* app : apps::all_applications())
            std::cout << app->name << ": " << app->description << "\n";
        return 0;
    }

    if (cache_clear) {
        if (!flow_flags.cache_dir.empty())
            cas::configure(flow_flags.cache_dir,
                           static_cast<std::uint64_t>(flow_flags.cache_max_mb)
                               << 20);
        if (cas::CasStore* store = cas::store()) {
            store->clear();
            std::cout << "cleared cache at " << store->root().string()
                      << "\n";
        } else {
            std::cerr << "no cache configured (--cache-dir or "
                         "PSAFLOW_CACHE_DIR)\n";
            return 2;
        }
        if (app_name.empty() && batch_manifest.empty()) return 0;
    }

    if (!flow_flags.trace_out.empty())
        trace::Registry::global().set_enabled(true);

    int status = 0;
    if (!batch_manifest.empty()) {
        status = run_batch(batch_manifest, flow_flags, out_dir,
                           /*out_dir_given=*/out_dir != "designs");
        if (status == 2) {
            std::cerr << parser.usage();
            return 2;
        }
    } else {
        if (app_name.empty()) {
            std::cerr << parser.usage();
            return 2;
        }
        if (!valid_mode(mode)) {
            std::cerr << "--mode must be 'informed' or 'uninformed'\n";
            return 2;
        }

        serve::CompileRequest req;
        req.app = app_name;
        req.mode = mode;
        req.budget = budget;
        req.threshold_x = threshold_x;
        req.out_dir = out_dir;
        req.deadline_ms = deadline_ms;
        if (!flow_file.empty()) {
            // Validate up front so a broken manifest is a usage error with
            // a located diagnostic, not a mid-flow failure.
            std::ifstream file(flow_file);
            if (!file) {
                std::cerr << "cannot read flow manifest '" << flow_file
                          << "'\n";
                return 2;
            }
            std::stringstream buffer;
            buffer << file.rdbuf();
            std::string error;
            const auto doc = json::parse(buffer.str(), &error);
            if (!doc.has_value()) {
                std::cerr << "flow manifest '" << flow_file << "': " << error
                          << "\n";
                return 2;
            }
            try {
                (void)flow::from_manifest(*doc);
            } catch (const Error& e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
            req.flow_json = json::dump(*doc);
        }

        flow::SessionOptions session_options;
        session_options.jobs = static_cast<int>(flow_flags.jobs);
        session_options.cache_dir = flow_flags.cache_dir;
        session_options.cache_max_bytes =
            static_cast<std::uint64_t>(flow_flags.cache_max_mb) << 20;
        session_options.interp = flow_flags.interp;
        flow::FlowSession session(session_options);

        std::cout << "running the " << mode << " PSA-flow on '" << app_name
                  << "'...\n";
        const serve::CompileOutcome outcome =
            serve::execute_request(session, req);
        record_flight(req, outcome);
        if (!outcome.ok) {
            std::cerr << outcome.error << "\n";
            return outcome.error.rfind("flow failed:", 0) == 0 ? 1 : 2;
        }
        TablePrinter table({"design", "speedup", "LOC delta", "file"});
        for (const serve::DesignRow& row : outcome.designs) {
            table.add_row({row.name,
                           row.synthesizable
                               ? format_compact(row.speedup, 4) + "x"
                               : "overmapped",
                           "+" + format_compact(100.0 * row.loc_delta, 3) +
                               "%",
                           row.filename});
        }
        table.print(std::cout);
        std::cout << "reference 1-thread hotspot time: "
                  << format_compact(outcome.reference_seconds, 4) << " s\n";
        std::cout << "wrote " << outcome.design_count << " design(s) and "
                  << outcome.summary_path << "\n";

        if (!explain_out.empty()) {
            const json::Value report = obs::decisions_json(
                app_name, mode, outcome.decisions);
            if (!write_text_file(explain_out, json::dump(report) + "\n"))
                return 1;
            std::cout << "wrote decision report (" << outcome.decisions.size()
                      << " branch decision(s)) to " << explain_out << "\n";
        }
        if (!explain_md_out.empty()) {
            if (!write_text_file(
                    explain_md_out,
                    obs::decisions_markdown(app_name, mode,
                                            outcome.decisions)))
                return 1;
            std::cout << "wrote decision report to " << explain_md_out
                      << "\n";
        }
    }

    if (!flow_flags.trace_out.empty()) {
        const std::string document =
            trace_format == "chrome"
                ? obs::to_chrome_json(trace::Registry::global())
                : trace::Registry::global().to_json() + "\n";
        if (!write_text_file(flow_flags.trace_out, document)) return 1;
        std::cout << "wrote " << trace_format << " trace to "
                  << flow_flags.trace_out << "\n";
    }
    if (!metrics_out.empty()) {
        if (!write_text_file(
                metrics_out,
                obs::render_counters(trace::Registry::global().counters())))
            return 1;
        std::cout << "wrote metrics to " << metrics_out << "\n";
    }
    return status;
}
