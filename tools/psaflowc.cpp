// psaflowc — command-line driver for the PSA-flow.
//
// Runs the paper's implemented design-flow on one of the bundled benchmark
// applications and writes every generated design source to disk, together
// with a machine-readable summary (CSV) of the predicted performance —
// i.e. the artefact a developer would take away from the toolflow.
//
//   psaflowc --list
//   psaflowc --app nbody --mode informed --out designs/
//   psaflowc --app kmeans --mode uninformed --out designs/ --budget 0.001
//   psaflowc --app nbody --jobs 4 --trace-out trace.json
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

using namespace psaflow;

namespace {

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0 << " --list\n"
        << "       " << argv0
        << " --app <name> [--mode informed|uninformed] [--out <dir>]\n"
        << "             [--budget <usd-per-run>] [--threshold-x <flops/B>]\n"
        << "             [--jobs <n>] [--trace-out <file.json>]\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string app_name;
    std::string mode = "informed";
    std::string out_dir = "designs";
    std::string trace_out;
    double budget = -1.0;
    double threshold_x = 4.0;
    long long jobs = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        // Checked numeric flags: std::stod would abort with an uncaught
        // exception on "--budget abc"; reject with usage instead.
        auto next_double = [&]() -> double {
            const char* raw = next();
            if (auto value = parse_double(raw)) return *value;
            std::cerr << "invalid number '" << raw << "' for " << arg << "\n";
            std::exit(usage(argv[0]));
        };
        auto next_int = [&]() -> long long {
            const char* raw = next();
            if (auto value = parse_int(raw)) return *value;
            std::cerr << "invalid integer '" << raw << "' for " << arg
                      << "\n";
            std::exit(usage(argv[0]));
        };
        if (arg == "--list") {
            for (const apps::Application* app : apps::all_applications())
                std::cout << app->name << ": " << app->description << "\n";
            return 0;
        } else if (arg == "--app") {
            app_name = next();
        } else if (arg == "--mode") {
            mode = next();
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--budget") {
            budget = next_double();
        } else if (arg == "--threshold-x") {
            threshold_x = next_double();
        } else if (arg == "--jobs") {
            jobs = next_int();
            if (jobs < 0) {
                std::cerr << "--jobs must be >= 0\n";
                return usage(argv[0]);
            }
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(argv[0]);
        }
    }
    if (app_name.empty()) return usage(argv[0]);
    if (mode != "informed" && mode != "uninformed") {
        std::cerr << "--mode must be 'informed' or 'uninformed'\n";
        return 2;
    }

    const apps::Application* app = nullptr;
    try {
        app = &apps::application_by_name(app_name);
    } catch (const Error& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    RunOptions options;
    options.mode = mode == "informed" ? flow::Mode::Informed
                                      : flow::Mode::Uninformed;
    options.budget.max_run_cost = budget;
    options.intensity_threshold_x = threshold_x;
    options.jobs = static_cast<int>(jobs);

    if (!trace_out.empty()) trace::Registry::global().set_enabled(true);

    std::cout << "running the " << mode << " PSA-flow on '" << app->name
              << "'...\n";
    flow::FlowResult result;
    try {
        result = compile(*app, options);
    } catch (const Error& e) {
        std::cerr << "flow failed: " << e.what() << "\n";
        return 1;
    }

    std::filesystem::create_directories(out_dir);
    CsvWriter summary({"design", "target", "device", "synthesizable",
                       "hotspot_seconds", "speedup_vs_1t", "loc_delta",
                       "source_file"});
    TablePrinter table({"design", "speedup", "LOC delta", "file"});

    for (const auto& design : result.designs) {
        const std::string ext =
            design.spec.target == codegen::TargetKind::CpuFpga ? ".sycl.cpp"
            : design.spec.target == codegen::TargetKind::CpuGpu ? ".hip.cpp"
                                                                : ".cpp";
        const std::string filename = design.name() + ext;
        const std::filesystem::path path =
            std::filesystem::path(out_dir) / filename;
        std::ofstream file(path);
        if (!file) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        file << design.source;

        summary.add_row({design.name(),
                         codegen::to_string(design.spec.target),
                         platform::to_string(design.spec.device),
                         design.synthesizable ? "yes" : "no",
                         format_compact(design.hotspot_seconds, 6),
                         format_compact(design.speedup, 4),
                         format_compact(design.loc_delta, 4),
                         filename});
        table.add_row({design.name(),
                       design.synthesizable
                           ? format_compact(design.speedup, 4) + "x"
                           : "overmapped",
                       "+" + format_compact(100.0 * design.loc_delta, 3) +
                           "%",
                       filename});
    }

    const std::filesystem::path summary_path =
        std::filesystem::path(out_dir) / (app->name + "-summary.csv");
    std::ofstream summary_file(summary_path);
    summary_file << summary.to_string();

    table.print(std::cout);
    std::cout << "reference 1-thread hotspot time: "
              << format_compact(result.reference_seconds, 4) << " s\n";
    std::cout << "wrote " << result.designs.size() << " design(s) and "
              << summary_path.string() << "\n";

    if (!trace_out.empty()) {
        std::ofstream trace_file(trace_out);
        if (!trace_file) {
            std::cerr << "cannot write " << trace_out << "\n";
            return 1;
        }
        trace_file << trace::Registry::global().to_json() << "\n";
        std::cout << "wrote trace to " << trace_out << "\n";
    }
    return 0;
}
