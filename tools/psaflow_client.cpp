// psaflow-client — thin client for the psaflowd compile service.
//
//   psaflow-client --socket /tmp/psaflow.sock --app nbody --out designs/n
//   psaflow-client --socket /tmp/psaflow.sock --app kmeans --deadline-ms 500
//   psaflow-client --socket /tmp/psaflow.sock --app nbody --flow my.json
//       # ships the manifest inside the request: the daemon runs the
//       # user-programmed flow in place of the builtin standard flow
//   psaflow-client --socket /tmp/psaflow.sock --stats            # table
//   psaflow-client --socket /tmp/psaflow.sock --stats --json     # raw doc
//   psaflow-client --socket /tmp/psaflow.sock --metrics          # Prometheus
//   psaflow-client --socket /tmp/psaflow.sock --logs --log-level warn
//   psaflow-client --socket /tmp/psaflow.sock --ping
//
// Against a psaflow-router the cluster views fan in over every shard:
//
//   psaflow-client --socket 127.0.0.1:7400 --cluster-stats --json
//   psaflow-client --socket 127.0.0.1:7400 --cluster-metrics
//   psaflow-client --socket 127.0.0.1:7400 --flight --flight-max 20
//
// Any request can be distributed-traced: --trace-out mints a trace id,
// ships it with the request (W3C-traceparent-style: trace_id + parent
// span), and writes the assembled cross-process span tree — client root,
// router relay, shard queue/execute, remote-CAS hops — to a file:
//
//   psaflow-client --socket 127.0.0.1:7400 --app nbody \
//       --trace-out flame.json --trace-format chrome
//
// Exit codes mirror the wire error taxonomy so shell harnesses can branch
// on failure class without parsing JSON:
//   0  success
//   1  internal failure (flow failed, connection/protocol trouble)
//   2  usage error or bad_request
//   3  overloaded (after exhausting --retry attempts)
//   4  deadline_exceeded
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "cluster/retry.hpp"
#include "flow/manifest.hpp"
#include "obs/chrome_trace.hpp"
#include "serve/format.hpp"
#include "serve/protocol.hpp"
#include "serve/wire_trace.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/net.hpp"
#include "support/prng.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

using namespace psaflow;

namespace {

/// One request/response round-trip on a fresh connection. Returns false on
/// transport failure (message on stderr).
bool round_trip(const net::Endpoint& endpoint, const json::Value& request,
                json::Value& response) {
    std::string error;
    net::Fd conn = net::connect_endpoint(endpoint, &error);
    if (!conn.valid()) {
        std::cerr << "psaflow-client: " << error << "\n";
        return false;
    }
    if (!net::write_frame(conn.get(), json::dump(request))) {
        std::cerr << "psaflow-client: cannot send request\n";
        return false;
    }
    std::string payload;
    const net::FrameStatus status = net::read_frame(conn.get(), payload);
    if (status != net::FrameStatus::Ok) {
        std::cerr << "psaflow-client: " << net::to_string(status)
                  << " while reading response\n";
        return false;
    }
    std::string parse_error;
    auto doc = json::parse(payload, &parse_error);
    if (!doc.has_value()) {
        std::cerr << "psaflow-client: malformed response: " << parse_error
                  << "\n";
        return false;
    }
    response = std::move(*doc);
    return true;
}

int exit_code_for(serve::ErrorKind kind) {
    switch (kind) {
    case serve::ErrorKind::None: return 0;
    case serve::ErrorKind::BadRequest: return 2;
    case serve::ErrorKind::Overloaded: return 3;
    case serve::ErrorKind::DeadlineExceeded: return 4;
    case serve::ErrorKind::Internal: return 1;
    }
    return 1;
}

bool write_text_file(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    if (!file) {
        std::cerr << "psaflow-client: cannot write " << path << "\n";
        return false;
    }
    file << content;
    return true;
}

bool member_flag(const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    return v != nullptr && v->bool_or(false);
}

double member_num(const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    return v == nullptr ? 0.0 : v->number_or(0.0);
}

std::string member_str(const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    return v == nullptr ? std::string() : v->string_or("");
}

/// Human summary of a cluster_stats fan-in document.
void print_cluster_stats(const json::Value& response) {
    std::cout << "shards: " << member_num(response, "shards_live") << "/"
              << member_num(response, "shards_total") << " live\n";
    if (const json::Value* shards = response.find("shards");
        shards != nullptr && shards->is_array())
        for (const json::Value& shard : shards->elements)
            std::cout << "  " << member_str(shard, "name") << " ("
                      << member_str(shard, "endpoint") << "): "
                      << (member_flag(shard, "healthy") ? "healthy"
                                                        : "unhealthy")
                      << (member_flag(shard, "draining") ? ", draining" : "")
                      << (member_flag(shard, "reachable") ? ""
                                                          : ", unreachable")
                      << "\n";
    const json::Value* fleet = response.find("fleet");
    if (fleet == nullptr) return;
    std::cout << "fleet: " << member_num(*fleet, "completed")
              << " completed, "
              << format_compact(member_num(*fleet, "aggregate_qps"), 4)
              << " qps, " << member_num(*fleet, "in_flight")
              << " in flight, queue depth "
              << member_num(*fleet, "queue_depth") << "\n";
    if (const json::Value* latency = fleet->find("request_latency_us");
        latency != nullptr)
        std::cout << "latency p50/p90/p99 us: "
                  << member_num(*latency, "p50") << "/"
                  << member_num(*latency, "p90") << "/"
                  << member_num(*latency, "p99") << "\n";
}

/// Human summary of a flight-recorder dump.
void print_flight(const json::Value& response) {
    std::cout << "flight recorder: " << member_num(response, "total")
              << " recorded, " << member_num(response, "dropped")
              << " dropped, " << member_num(response, "slo_breaches")
              << " SLO breach(es), capacity "
              << member_num(response, "capacity") << "\n";
    const json::Value* records = response.find("records");
    if (records == nullptr || !records->is_array()) return;
    for (const json::Value& record : records->elements)
        std::cout << "  #" << member_num(record, "seq") << " "
                  << member_str(record, "app") << " ["
                  << member_str(record, "lane")
                  << "] shard=" << member_str(record, "shard")
                  << " status=" << member_str(record, "status")
                  << " total=" << member_num(record, "total_us")
                  << "us (queue " << member_num(record, "queue_wait_us")
                  << "us, exec " << member_num(record, "exec_us") << "us)"
                  << (member_flag(record, "slo_breach") ? " SLO-BREACH" : "")
                  << (member_str(record, "trace_id").empty()
                          ? std::string()
                          : " trace=" + member_str(record, "trace_id"))
                  << "\n";
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string app;
    std::string mode = "informed";
    std::string out_dir;
    std::string flow_file;
    double budget = -1.0;
    double threshold_x = 4.0;
    long long deadline_ms = 0;
    long long sleep_ms = -1;
    long long retries = 0;
    long long retry_budget_ms = 30000;
    long long retry_seed = 0;
    long long log_max = 100;
    std::string log_level;
    bool stats = false;
    bool metrics = false;
    bool logs = false;
    bool ping = false;
    bool raw_json = false;
    bool cluster_stats = false;
    bool cluster_metrics = false;
    bool flight = false;
    long long flight_max = 0;
    std::string trace_out;
    std::string trace_format = "json";

    cli::OptionParser parser(
        argv[0],
        {"--socket <path> --app <name> [--mode informed|uninformed]\n"
         "      [--out <dir>] [--budget <usd-per-run>] "
         "[--threshold-x <flops/B>]\n"
         "      [--deadline-ms <n>] [--retry <n>] [--json] "
         "[--flow <manifest.json>]",
         "--socket <path> --stats [--json] | --metrics | --ping",
         "--socket <path> --logs [--log-max <n>] [--log-level <level>]",
         "--socket <path> --cluster-stats [--json] | --cluster-metrics",
         "--socket <path> --flight [--flight-max <n>] [--json]"});
    parser.str("--socket", "<endpoint>",
               "daemon/router endpoint: socket path or host:port",
               &socket_path);
    parser.str("--app", "<name>", "application to compile", &app);
    parser.str("--mode", "<mode>", "informed|uninformed (default informed)",
               &mode);
    parser.str("--out", "<dir>",
               "output dir (daemon-relative unless absolute)", &out_dir);
    parser.str("--flow", "<manifest.json>",
               "ship a flow manifest with the compile request", &flow_file);
    parser.real("--budget", "<usd-per-run>", "Fig. 3 cost budget", &budget);
    parser.real("--threshold-x", "<flops/B>",
                "arithmetic-intensity threshold (default 4)", &threshold_x);
    parser.integer("--deadline-ms", "<n>",
                   "per-request deadline (0 = daemon default)", &deadline_ms,
                   /*min=*/0);
    parser.integer("--retry", "<n>",
                   "retries when overloaded, honouring retry_after_ms "
                   "with jitter",
                   &retries, /*min=*/0);
    parser.integer("--retry-budget-ms", "<n>",
                   "total time allowed sleeping between retries "
                   "(default 30000)",
                   &retry_budget_ms, /*min=*/0);
    parser.integer("--retry-seed", "<n>",
                   "jitter seed (0 = derived from pid, the usual case)",
                   &retry_seed, /*min=*/0);
    parser.integer("--sleep-ms", "<n>",
                   "test-only: occupy a worker for <n> ms", &sleep_ms,
                   /*min=*/0);
    parser.flag("--stats",
                "fetch the daemon's stats snapshot (table; --json for raw)",
                &stats);
    parser.flag("--metrics",
                "fetch the metrics plane in Prometheus text format",
                &metrics);
    parser.flag("--logs", "fetch the daemon's recent structured logs",
                &logs);
    parser.integer("--log-max", "<n>",
                   "log records to fetch with --logs (default 100)",
                   &log_max, /*min=*/0);
    parser.str("--log-level", "<level>",
               "minimum level for --logs (trace..error; default all)",
               &log_level);
    parser.flag("--ping", "liveness probe", &ping);
    parser.flag("--json", "print the raw response document", &raw_json);
    parser.flag("--cluster-stats",
                "fan-in: per-shard stats plus merged fleet rollups "
                "(router only)",
                &cluster_stats);
    parser.flag("--cluster-metrics",
                "fan-in: per-shard-labeled + merged Prometheus series "
                "(router only)",
                &cluster_metrics);
    parser.flag("--flight",
                "dump the endpoint's flight recorder (recent request "
                "digests)",
                &flight);
    parser.integer("--flight-max", "<n>",
                   "newest flight records to fetch (0 = all retained)",
                   &flight_max, /*min=*/0);
    parser.str("--trace-out", "<file.json>",
               "distributed-trace the request; write the assembled "
               "cross-process span tree",
               &trace_out);
    parser.str("--trace-format", "<fmt>",
               "--trace-out format: json|chrome (default json)",
               &trace_format);

    if (!parser.parse(argc, argv)) return 2;
    if (socket_path.empty() ||
        (app.empty() && !stats && !metrics && !logs && !ping &&
         !cluster_stats && !cluster_metrics && !flight && sleep_ms < 0)) {
        std::cerr << parser.usage();
        return 2;
    }
    if (trace_format != "json" && trace_format != "chrome") {
        std::cerr << "--trace-format must be 'json' or 'chrome'\n";
        return 2;
    }
    std::string endpoint_error;
    const auto endpoint = net::parse_endpoint(socket_path, &endpoint_error);
    if (!endpoint.has_value()) {
        std::cerr << "psaflow-client: " << endpoint_error << "\n";
        return 2;
    }

    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    if (stats) {
        request.set("type", json::Value::string("stats"));
    } else if (cluster_stats) {
        request.set("type", json::Value::string("cluster_stats"));
    } else if (cluster_metrics) {
        request.set("type", json::Value::string("cluster_metrics"));
    } else if (flight) {
        request.set("type", json::Value::string("flight"));
        if (flight_max > 0)
            request.set("max", json::Value::number(double(flight_max)));
    } else if (metrics) {
        request.set("type", json::Value::string("metrics"));
    } else if (logs) {
        request.set("type", json::Value::string("logs"));
        request.set("max", json::Value::number(double(log_max)));
        if (!log_level.empty())
            request.set("min_level", json::Value::string(log_level));
    } else if (ping) {
        request.set("type", json::Value::string("ping"));
    } else if (sleep_ms >= 0) {
        request.set("type", json::Value::string("sleep"));
        request.set("ms", json::Value::number(double(sleep_ms)));
        if (deadline_ms > 0)
            request.set("deadline_ms", json::Value::number(double(deadline_ms)));
    } else {
        request.set("type", json::Value::string("compile"));
        request.set("app", json::Value::string(app));
        request.set("mode", json::Value::string(mode));
        if (budget >= 0.0)
            request.set("budget", json::Value::number(budget));
        request.set("threshold_x", json::Value::number(threshold_x));
        if (!out_dir.empty())
            request.set("out", json::Value::string(out_dir));
        if (deadline_ms > 0)
            request.set("deadline_ms", json::Value::number(double(deadline_ms)));
        if (!flow_file.empty()) {
            // Validate client-side so a broken manifest never leaves the
            // machine; the daemon re-validates on receipt regardless.
            std::ifstream file(flow_file);
            if (!file) {
                std::cerr << "psaflow-client: cannot read flow manifest '"
                          << flow_file << "'\n";
                return 2;
            }
            std::stringstream buffer;
            buffer << file.rdbuf();
            std::string parse_error;
            auto doc = json::parse(buffer.str(), &parse_error);
            if (!doc.has_value()) {
                std::cerr << "psaflow-client: flow manifest '" << flow_file
                          << "': " << parse_error << "\n";
                return 2;
            }
            try {
                (void)flow::from_manifest(*doc);
            } catch (const Error& e) {
                std::cerr << "psaflow-client: " << e.what() << "\n";
                return 2;
            }
            request.set("flow", std::move(*doc));
        }
    }

    // Overload retries: the server's retry_after_ms hint, jittered so a
    // burst of rejected clients fans back in spread out, bounded both by
    // the attempt count (--retry) and a wall-clock sleep budget
    // (--retry-budget-ms) so a persistently overloaded daemon fails fast
    // rather than pinning the caller.
    SplitMix64 retry_rng(retry_seed != 0
                             ? static_cast<std::uint64_t>(retry_seed)
                             : 0x853c49e6748fea9bULL ^
                                   static_cast<std::uint64_t>(::getpid()));
    cluster::BackoffPolicy backoff;
    backoff.max_attempts = static_cast<int>(retries) + 1;
    long long budget_left_ms = retry_budget_ms;

    // Distributed tracing: the client owns the trace — it mints the trace
    // id and the root span id every downstream hop ultimately parents
    // under, and ships both with the request (W3C-traceparent-style).
    serve::WireTraceContext trace_ctx;
    std::uint64_t client_root = 0;
    if (!trace_out.empty()) {
        trace_ctx.trace_id = serve::mint_trace_id();
        client_root = trace::wire_span_id();
        trace_ctx.parent_span = client_root;
        serve::set_trace_member(request, trace_ctx);
    }

    json::Value response;
    serve::ResponseView view;
    std::uint64_t round_trip_us = 0;
    for (long long attempt = 0;; ++attempt) {
        const auto sent_at = std::chrono::steady_clock::now();
        if (!round_trip(*endpoint, request, response)) return 1;
        round_trip_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - sent_at)
                .count());
        auto parsed = serve::parse_response(response);
        if (!parsed.has_value()) {
            std::cerr << "psaflow-client: response is not a psaflowd "
                         "response document\n";
            return 1;
        }
        view = *parsed;
        if (view.ok || view.error_kind != serve::ErrorKind::Overloaded ||
            attempt >= retries)
            break;
        long long wait = backoff.delay_ms(static_cast<int>(attempt),
                                          retry_rng, view.retry_after_ms);
        if (wait > budget_left_ms) {
            if (budget_left_ms <= 0) break; // budget exhausted: give up
            wait = budget_left_ms;
        }
        budget_left_ms -= wait;
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }

    // Write the assembled cross-process tree even when the request itself
    // failed — a trace of a deadline-exceeded request is exactly what the
    // operator wants to look at.
    if (trace_ctx.traced()) {
        std::vector<trace::Span> spans;
        if (serve::response_trace_id(response) == trace_ctx.trace_id)
            spans = serve::response_trace_spans(response);
        trace::Span root;
        root.name = "client:request";
        root.category = "client";
        root.id = client_root;
        root.start_us = 0;
        root.duration_us = round_trip_us;
        serve::nest_spans(spans, root); // appends the root itself last
        std::string document;
        if (trace_format == "chrome") {
            document = obs::to_chrome_json(spans, "psaflow-client");
        } else {
            trace::Registry registry;
            registry.set_enabled(true);
            for (trace::Span& span : spans)
                registry.add_span(std::move(span));
            document = registry.to_json();
        }
        if (!write_text_file(trace_out, document)) return 1;
        std::cout << "wrote " << trace_format << " trace to " << trace_out
                  << " (" << spans.size() << " span(s))\n";
    }

    if (!view.ok) {
        std::cerr << "psaflow-client: " << to_string(view.error_kind) << ": "
                  << view.error << "\n";
        return exit_code_for(view.error_kind);
    }

    if (raw_json) {
        std::cout << json::dump(response) << "\n";
        return 0;
    }
    if (stats) {
        std::cout << serve::stats_table(response);
        return 0;
    }
    if (cluster_stats) {
        print_cluster_stats(response);
        return 0;
    }
    if (flight) {
        print_flight(response);
        return 0;
    }
    if (metrics || cluster_metrics) {
        const json::Value* body = response.find("body");
        std::cout << (body ? body->string_or("") : std::string());
        return 0;
    }
    if (logs) {
        std::cout << serve::logs_text(response);
        return 0;
    }
    if (ping) {
        std::cout << "pong\n";
        return 0;
    }
    if (sleep_ms >= 0) {
        std::cout << "slept\n";
        return 0;
    }

    const json::Value* count = response.find("design_count");
    const json::Value* best = response.find("best_speedup");
    const json::Value* summary = response.find("summary_path");
    std::cout << app << ": " << (count ? count->number_or(0.0) : 0.0)
              << " design(s), best speedup "
              << format_compact(best ? best->number_or(0.0) : 0.0, 4)
              << "x, summary "
              << (summary ? summary->string_or("") : std::string()) << "\n";
    return 0;
}
