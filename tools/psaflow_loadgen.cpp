// psaflow-loadgen — deterministic load generator for psaflowd topologies.
//
// Drives a mixed warm/cold compile stream at a daemon or a router and
// reports client-observed throughput and latency plus server-side queue
// waits, as one JSON document (the raw material for BENCH_9.json):
//
//   psaflow-loadgen --connect 127.0.0.1:7400 --requests 10000 \
//       --concurrency 16 --warm-fraction 0.9 --seed 42 --label router4 \
//       --shard-stats 127.0.0.1:7401 --shard-stats 127.0.0.1:7402 \
//       --out run.json
//
// Workload model: a "warm" request repeats one of `--warm-pool` fixed
// (app, threshold_x) combinations, so every tier from the profile cache
// to the design-artifact cache hits; a "cold" request draws a globally
// unique threshold_x, forcing the flow (profiling, DSE) to actually run.
// All randomness comes from splitmix64 seeded by --seed, so two runs
// against different topologies replay the byte-identical request
// sequence — the comparison measures the topology, not the workload.
//
// Overload handling mirrors psaflow-client: overloaded responses retry
// with the server's retry_after hint jittered (cluster/retry.hpp) up to
// --max-attempts; exhausted budgets count as errors, never crashes.
//
// --sleep-ms <n> switches to an I/O-bound service-time model: every
// request is a test-only "sleep" that occupies a shard worker for <n> ms
// without burning CPU. Compiles are compute-bound, so on a single-core
// host a shard fleet can only tie a lone daemon on compile throughput;
// the sleep mode isolates what sharding actually multiplies — worker
// occupancy and queue capacity. Shards need --enable-test-endpoints.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/retry.hpp"
#include "serve/protocol.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/net.hpp"
#include "support/prng.hpp"

using namespace psaflow;

namespace {

struct RunConfig {
    net::Endpoint target;
    std::vector<std::string> apps;
    long long requests = 1000;
    long long concurrency = 8;
    double warm_fraction = 0.9;
    long long warm_pool = 8;
    std::uint64_t seed = 42;
    cluster::BackoffPolicy retry{50, 2000, 5};
    long long deadline_ms = 0;
    long long sleep_ms = 0; ///< > 0: sleep requests instead of compiles
};

struct WorkerTally {
    std::vector<std::uint64_t> latencies_us;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t retries = 0;
    std::uint64_t warm = 0;
    std::uint64_t cold = 0;
};

/// One request/response exchange on a fresh connection; false on any
/// transport failure.
bool exchange(const net::Endpoint& target, const std::string& payload,
              std::string& response) {
    std::string error;
    net::Fd conn = net::connect_endpoint(target, &error);
    if (!conn.valid()) return false;
    net::set_recv_timeout(conn.get(), 60000);
    if (!net::write_frame(conn.get(), payload)) return false;
    return net::read_frame(conn.get(), response) == net::FrameStatus::Ok;
}

std::string compile_payload(const std::string& app, double threshold_x,
                            long long deadline_ms) {
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("compile"));
    request.set("app", json::Value::string(app));
    request.set("threshold_x", json::Value::number(threshold_x));
    if (deadline_ms > 0)
        request.set("deadline_ms", json::Value::number(double(deadline_ms)));
    return json::dump(request);
}

void worker(const RunConfig& config, std::size_t index,
            std::atomic<long long>& next_request,
            std::atomic<long long>& cold_ids, WorkerTally& tally) {
    SplitMix64 rng(config.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
    while (true) {
        const long long id = next_request.fetch_add(1);
        if (id >= config.requests) return;

        std::string payload;
        if (config.sleep_ms > 0) {
            json::Value request = json::Value::object();
            request.set("schema_version",
                        json::Value::number(double(serve::kSchemaVersion)));
            request.set("type", json::Value::string("sleep"));
            request.set("ms", json::Value::number(double(config.sleep_ms)));
            payload = json::dump(request);
        } else {
            // Warm draws repeat a small pool; cold draws a unique
            // threshold (never colliding with the pool's 4.0 + k/16
            // ladder).
            std::string app =
                config.apps[rng.next_below(config.apps.size())];
            double threshold_x;
            if (rng.next_double() < config.warm_fraction) {
                ++tally.warm;
                const auto slot = rng.next_below(
                    static_cast<std::uint64_t>(config.warm_pool));
                app = config.apps[slot % config.apps.size()];
                threshold_x = 4.0 + double(slot) / 16.0;
            } else {
                ++tally.cold;
                threshold_x =
                    8.0 + double(cold_ids.fetch_add(1)) / 1024.0;
            }
            payload =
                compile_payload(app, threshold_x, config.deadline_ms);
        }

        const auto begin = std::chrono::steady_clock::now();
        bool done = false;
        for (int attempt = 0; attempt < config.retry.max_attempts;
             ++attempt) {
            std::string response_text;
            if (!exchange(config.target, payload, response_text)) break;
            const auto doc = json::parse(response_text, nullptr);
            if (!doc.has_value()) break;
            const auto view = serve::parse_response(*doc);
            if (!view.has_value()) break;
            if (view->ok) {
                done = true;
                break;
            }
            if (view->error_kind != serve::ErrorKind::Overloaded) break;
            if (attempt + 1 >= config.retry.max_attempts) break;
            ++tally.retries;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                config.retry.delay_ms(attempt, rng, view->retry_after_ms)));
        }
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
        tally.latencies_us.push_back(static_cast<std::uint64_t>(us));
        if (done)
            ++tally.ok;
        else
            ++tally.errors;
    }
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, int p) {
    if (sorted.empty()) return 0;
    const std::size_t index =
        (sorted.size() - 1) * static_cast<std::size_t>(p) / 100;
    return sorted[index];
}

json::Value latency_doc(std::vector<std::uint64_t>& sorted) {
    json::Value doc = json::Value::object();
    std::uint64_t sum = 0;
    for (std::uint64_t v : sorted) sum += v;
    doc.set("count", json::Value::number(double(sorted.size())));
    doc.set("mean", json::Value::number(
                        sorted.empty() ? 0.0
                                       : double(sum) / double(sorted.size())));
    doc.set("p50", json::Value::number(double(percentile(sorted, 50))));
    doc.set("p90", json::Value::number(double(percentile(sorted, 90))));
    doc.set("p99", json::Value::number(double(percentile(sorted, 99))));
    doc.set("max", json::Value::number(
                       double(sorted.empty() ? 0 : sorted.back())));
    return doc;
}

/// Fetch one shard's stats document and pull out the queue-wait summary.
std::optional<json::Value> shard_stats(const net::Endpoint& endpoint) {
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("stats"));
    std::string response_text;
    if (!exchange(endpoint, json::dump(request), response_text))
        return std::nullopt;
    return json::parse(response_text, nullptr);
}

} // namespace

int main(int argc, char** argv) {
    RunConfig config;
    std::string connect_spec;
    std::string apps_csv = "nbody";
    std::string label = "run";
    std::string out_path;
    std::vector<std::string> stats_specs;
    long long requests = 1000;
    long long concurrency = 8;
    long long warm_pool = 8;
    long long seed = 42;
    long long max_attempts = 5;
    long long deadline_ms = 0;

    cli::OptionParser parser(
        argv[0],
        {"--connect <endpoint> [--requests <n>] [--concurrency <n>]\n"
         "      [--warm-fraction <f>] [--warm-pool <n>] [--apps a,b,...]\n"
         "      [--seed <n>] [--max-attempts <n>] [--deadline-ms <n>]\n"
         "      [--sleep-ms <n>]\n"
         "      [--label <name>] [--shard-stats <endpoint> ...] "
         "[--out <file>]"});
    parser.str("--connect", "<endpoint>",
               "daemon or router to drive (host:port or socket path)",
               &connect_spec);
    parser.integer("--requests", "<n>", "total requests (default 1000)",
                   &requests, /*min=*/1);
    parser.integer("--concurrency", "<n>",
                   "concurrent client threads (default 8)", &concurrency,
                   /*min=*/1);
    parser.real("--warm-fraction", "<f>",
                "fraction of requests drawn from the warm pool "
                "(default 0.9)",
                &config.warm_fraction);
    parser.integer("--warm-pool", "<n>",
                   "distinct warm (app, threshold) combinations "
                   "(default 8)",
                   &warm_pool, /*min=*/1);
    parser.str("--apps", "<a,b,...>",
               "comma-separated bundled apps to request (default nbody)",
               &apps_csv);
    parser.integer("--seed", "<n>", "workload seed (default 42)", &seed,
                   /*min=*/0);
    parser.integer("--max-attempts", "<n>",
                   "tries per request when overloaded (default 5)",
                   &max_attempts, /*min=*/1);
    parser.integer("--deadline-ms", "<n>",
                   "per-request deadline (0 = none)", &deadline_ms,
                   /*min=*/0);
    parser.integer("--sleep-ms", "<n>",
                   "I/O-bound mode: every request is a test-only sleep "
                   "of <n> ms (shards need --enable-test-endpoints)",
                   &config.sleep_ms, /*min=*/0);
    parser.str("--label", "<name>", "run label in the output document",
               &label);
    parser.multi("--shard-stats", "<endpoint>",
                 "fetch queue-wait stats from this shard after the run "
                 "(repeatable)",
                 &stats_specs);
    parser.str("--out", "<file>", "write the run document here (else stdout)",
               &out_path);

    if (!parser.parse(argc, argv)) return 2;
    if (connect_spec.empty()) {
        std::cerr << parser.usage();
        return 2;
    }
    std::string error;
    auto target = net::parse_endpoint(connect_spec, &error);
    if (!target.has_value()) {
        std::cerr << "psaflow-loadgen: " << error << "\n";
        return 2;
    }
    config.target = std::move(*target);
    config.requests = requests;
    config.concurrency = concurrency;
    config.warm_pool = warm_pool;
    config.seed = static_cast<std::uint64_t>(seed);
    config.retry.max_attempts = static_cast<int>(max_attempts);
    config.deadline_ms = deadline_ms;
    if (config.warm_fraction < 0.0) config.warm_fraction = 0.0;
    if (config.warm_fraction > 1.0) config.warm_fraction = 1.0;
    std::size_t start = 0;
    while (start <= apps_csv.size()) {
        const std::size_t comma = apps_csv.find(',', start);
        const std::string app = apps_csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!app.empty()) config.apps.push_back(app);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (config.apps.empty()) {
        std::cerr << "psaflow-loadgen: --apps needs at least one app\n";
        return 2;
    }

    std::atomic<long long> next_request{0};
    std::atomic<long long> cold_ids{0};
    std::vector<WorkerTally> tallies(
        static_cast<std::size_t>(config.concurrency));
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(tallies.size());
    for (std::size_t i = 0; i < tallies.size(); ++i)
        threads.emplace_back([&, i] {
            worker(config, i, next_request, cold_ids, tallies[i]);
        });
    for (std::thread& t : threads) t.join();
    const auto wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin)
            .count();

    WorkerTally total;
    for (WorkerTally& tally : tallies) {
        total.ok += tally.ok;
        total.errors += tally.errors;
        total.retries += tally.retries;
        total.warm += tally.warm;
        total.cold += tally.cold;
        total.latencies_us.insert(total.latencies_us.end(),
                                  tally.latencies_us.begin(),
                                  tally.latencies_us.end());
    }
    std::sort(total.latencies_us.begin(), total.latencies_us.end());

    json::Value doc = json::Value::object();
    doc.set("label", json::Value::string(label));
    doc.set("endpoint", json::Value::string(config.target.describe()));
    doc.set("requests", json::Value::number(double(config.requests)));
    doc.set("concurrency", json::Value::number(double(config.concurrency)));
    doc.set("warm_fraction", json::Value::number(config.warm_fraction));
    doc.set("warm_pool", json::Value::number(double(config.warm_pool)));
    doc.set("seed", json::Value::number(double(seed)));
    doc.set("ok", json::Value::number(double(total.ok)));
    doc.set("errors", json::Value::number(double(total.errors)));
    doc.set("overload_retries", json::Value::number(double(total.retries)));
    doc.set("warm", json::Value::number(double(total.warm)));
    doc.set("cold", json::Value::number(double(total.cold)));
    if (config.sleep_ms > 0)
        doc.set("sleep_ms", json::Value::number(double(config.sleep_ms)));
    doc.set("wall_us", json::Value::number(double(wall_us)));
    doc.set("throughput_rps",
            json::Value::number(wall_us == 0
                                    ? 0.0
                                    : double(total.ok) * 1e6 /
                                          double(wall_us)));
    doc.set("latency_us", latency_doc(total.latencies_us));

    // Server-side queue waits, straight from each shard's stats endpoint;
    // the headline number is the worst shard's p90 (a cluster is as slow
    // as its most backlogged member).
    double queue_wait_p90_max = 0.0;
    json::Value shards = json::Value::array();
    for (const std::string& spec : stats_specs) {
        auto endpoint = net::parse_endpoint(spec, &error);
        if (!endpoint.has_value()) {
            std::cerr << "psaflow-loadgen: --shard-stats: " << error << "\n";
            return 2;
        }
        json::Value entry = json::Value::object();
        entry.set("endpoint", json::Value::string(endpoint->describe()));
        const auto stats = shard_stats(*endpoint);
        if (stats.has_value()) {
            if (const json::Value* wait = stats->find("queue_wait_us")) {
                entry.set("queue_wait_us", *wait);
                if (const json::Value* p90 = wait->find("p90"))
                    queue_wait_p90_max =
                        std::max(queue_wait_p90_max, p90->number_or(0.0));
            }
            if (const json::Value* steals = stats->find("queue_steals"))
                entry.set("queue_steals", *steals);
            if (const json::Value* reqs = stats->find("requests"))
                if (const json::Value* received = reqs->find("received"))
                    entry.set("requests_received", *received);
        } else {
            entry.set("error", json::Value::string("stats unreachable"));
        }
        shards.push(std::move(entry));
    }
    if (!stats_specs.empty()) {
        doc.set("queue_wait_us_p90_max",
                json::Value::number(queue_wait_p90_max));
        doc.set("shards", std::move(shards));
    }

    const std::string text = json::dump(doc);
    if (out_path.empty()) {
        std::cout << text << "\n";
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "psaflow-loadgen: cannot write '" << out_path
                      << "'\n";
            return 1;
        }
        out << text << "\n";
    }
    std::cerr << "psaflow-loadgen: " << label << ": " << total.ok << "/"
              << config.requests << " ok, "
              << (wall_us == 0 ? 0.0
                               : double(total.ok) * 1e6 / double(wall_us))
              << " req/s\n";
    return total.errors == 0 ? 0 : 1;
}
