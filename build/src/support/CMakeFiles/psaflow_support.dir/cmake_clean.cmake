file(REMOVE_RECURSE
  "CMakeFiles/psaflow_support.dir/string_util.cpp.o"
  "CMakeFiles/psaflow_support.dir/string_util.cpp.o.d"
  "CMakeFiles/psaflow_support.dir/table.cpp.o"
  "CMakeFiles/psaflow_support.dir/table.cpp.o.d"
  "libpsaflow_support.a"
  "libpsaflow_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
