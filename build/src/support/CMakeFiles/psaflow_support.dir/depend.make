# Empty dependencies file for psaflow_support.
# This may be replaced when dependencies are built.
