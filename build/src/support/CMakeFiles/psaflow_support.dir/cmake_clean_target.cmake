file(REMOVE_RECURSE
  "libpsaflow_support.a"
)
