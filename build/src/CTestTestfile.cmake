# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("frontend")
subdirs("ast")
subdirs("sema")
subdirs("meta")
subdirs("interp")
subdirs("analysis")
subdirs("transform")
subdirs("platform")
subdirs("perf")
subdirs("dse")
subdirs("codegen")
subdirs("flow")
subdirs("apps")
subdirs("core")
