file(REMOVE_RECURSE
  "CMakeFiles/psaflow_analysis.dir/characterize.cpp.o"
  "CMakeFiles/psaflow_analysis.dir/characterize.cpp.o.d"
  "CMakeFiles/psaflow_analysis.dir/dependence.cpp.o"
  "CMakeFiles/psaflow_analysis.dir/dependence.cpp.o.d"
  "CMakeFiles/psaflow_analysis.dir/hotspot.cpp.o"
  "CMakeFiles/psaflow_analysis.dir/hotspot.cpp.o.d"
  "CMakeFiles/psaflow_analysis.dir/intensity.cpp.o"
  "CMakeFiles/psaflow_analysis.dir/intensity.cpp.o.d"
  "libpsaflow_analysis.a"
  "libpsaflow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
