# Empty dependencies file for psaflow_analysis.
# This may be replaced when dependencies are built.
