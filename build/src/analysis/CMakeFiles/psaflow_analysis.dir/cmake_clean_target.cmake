file(REMOVE_RECURSE
  "libpsaflow_analysis.a"
)
