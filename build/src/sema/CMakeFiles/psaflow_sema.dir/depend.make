# Empty dependencies file for psaflow_sema.
# This may be replaced when dependencies are built.
