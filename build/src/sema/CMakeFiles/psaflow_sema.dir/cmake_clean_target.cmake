file(REMOVE_RECURSE
  "libpsaflow_sema.a"
)
