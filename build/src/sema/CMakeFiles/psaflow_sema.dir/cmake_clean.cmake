file(REMOVE_RECURSE
  "CMakeFiles/psaflow_sema.dir/builtins.cpp.o"
  "CMakeFiles/psaflow_sema.dir/builtins.cpp.o.d"
  "CMakeFiles/psaflow_sema.dir/type_check.cpp.o"
  "CMakeFiles/psaflow_sema.dir/type_check.cpp.o.d"
  "libpsaflow_sema.a"
  "libpsaflow_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
