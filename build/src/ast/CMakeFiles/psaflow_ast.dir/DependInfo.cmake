
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/clone.cpp" "src/ast/CMakeFiles/psaflow_ast.dir/clone.cpp.o" "gcc" "src/ast/CMakeFiles/psaflow_ast.dir/clone.cpp.o.d"
  "/root/repo/src/ast/nodes.cpp" "src/ast/CMakeFiles/psaflow_ast.dir/nodes.cpp.o" "gcc" "src/ast/CMakeFiles/psaflow_ast.dir/nodes.cpp.o.d"
  "/root/repo/src/ast/printer.cpp" "src/ast/CMakeFiles/psaflow_ast.dir/printer.cpp.o" "gcc" "src/ast/CMakeFiles/psaflow_ast.dir/printer.cpp.o.d"
  "/root/repo/src/ast/walk.cpp" "src/ast/CMakeFiles/psaflow_ast.dir/walk.cpp.o" "gcc" "src/ast/CMakeFiles/psaflow_ast.dir/walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
