# Empty compiler generated dependencies file for psaflow_ast.
# This may be replaced when dependencies are built.
