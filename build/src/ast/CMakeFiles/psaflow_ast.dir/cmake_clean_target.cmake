file(REMOVE_RECURSE
  "libpsaflow_ast.a"
)
