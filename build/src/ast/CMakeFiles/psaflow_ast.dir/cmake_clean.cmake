file(REMOVE_RECURSE
  "CMakeFiles/psaflow_ast.dir/clone.cpp.o"
  "CMakeFiles/psaflow_ast.dir/clone.cpp.o.d"
  "CMakeFiles/psaflow_ast.dir/nodes.cpp.o"
  "CMakeFiles/psaflow_ast.dir/nodes.cpp.o.d"
  "CMakeFiles/psaflow_ast.dir/printer.cpp.o"
  "CMakeFiles/psaflow_ast.dir/printer.cpp.o.d"
  "CMakeFiles/psaflow_ast.dir/walk.cpp.o"
  "CMakeFiles/psaflow_ast.dir/walk.cpp.o.d"
  "libpsaflow_ast.a"
  "libpsaflow_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
