file(REMOVE_RECURSE
  "CMakeFiles/psaflow_platform.dir/cpu.cpp.o"
  "CMakeFiles/psaflow_platform.dir/cpu.cpp.o.d"
  "CMakeFiles/psaflow_platform.dir/devices.cpp.o"
  "CMakeFiles/psaflow_platform.dir/devices.cpp.o.d"
  "CMakeFiles/psaflow_platform.dir/fpga.cpp.o"
  "CMakeFiles/psaflow_platform.dir/fpga.cpp.o.d"
  "CMakeFiles/psaflow_platform.dir/gpu.cpp.o"
  "CMakeFiles/psaflow_platform.dir/gpu.cpp.o.d"
  "libpsaflow_platform.a"
  "libpsaflow_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
