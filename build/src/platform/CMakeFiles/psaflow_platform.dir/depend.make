# Empty dependencies file for psaflow_platform.
# This may be replaced when dependencies are built.
