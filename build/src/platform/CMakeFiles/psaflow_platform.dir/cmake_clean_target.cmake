file(REMOVE_RECURSE
  "libpsaflow_platform.a"
)
