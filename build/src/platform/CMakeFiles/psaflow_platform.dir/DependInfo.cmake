
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cpu.cpp" "src/platform/CMakeFiles/psaflow_platform.dir/cpu.cpp.o" "gcc" "src/platform/CMakeFiles/psaflow_platform.dir/cpu.cpp.o.d"
  "/root/repo/src/platform/devices.cpp" "src/platform/CMakeFiles/psaflow_platform.dir/devices.cpp.o" "gcc" "src/platform/CMakeFiles/psaflow_platform.dir/devices.cpp.o.d"
  "/root/repo/src/platform/fpga.cpp" "src/platform/CMakeFiles/psaflow_platform.dir/fpga.cpp.o" "gcc" "src/platform/CMakeFiles/psaflow_platform.dir/fpga.cpp.o.d"
  "/root/repo/src/platform/gpu.cpp" "src/platform/CMakeFiles/psaflow_platform.dir/gpu.cpp.o" "gcc" "src/platform/CMakeFiles/psaflow_platform.dir/gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/psaflow_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/psaflow_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/psaflow_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
