file(REMOVE_RECURSE
  "CMakeFiles/psaflow_interp.dir/interpreter.cpp.o"
  "CMakeFiles/psaflow_interp.dir/interpreter.cpp.o.d"
  "libpsaflow_interp.a"
  "libpsaflow_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
