# Empty compiler generated dependencies file for psaflow_interp.
# This may be replaced when dependencies are built.
