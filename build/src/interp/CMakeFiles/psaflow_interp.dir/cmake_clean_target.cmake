file(REMOVE_RECURSE
  "libpsaflow_interp.a"
)
