# Empty compiler generated dependencies file for psaflow_core.
# This may be replaced when dependencies are built.
