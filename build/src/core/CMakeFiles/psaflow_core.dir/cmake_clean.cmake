file(REMOVE_RECURSE
  "CMakeFiles/psaflow_core.dir/psaflow.cpp.o"
  "CMakeFiles/psaflow_core.dir/psaflow.cpp.o.d"
  "libpsaflow_core.a"
  "libpsaflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
