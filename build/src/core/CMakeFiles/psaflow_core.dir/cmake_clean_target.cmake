file(REMOVE_RECURSE
  "libpsaflow_core.a"
)
