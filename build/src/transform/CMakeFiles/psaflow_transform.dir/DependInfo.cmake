
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/accumulation.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/accumulation.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/accumulation.cpp.o.d"
  "/root/repo/src/transform/extract.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/extract.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/extract.cpp.o.d"
  "/root/repo/src/transform/fission.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/fission.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/fission.cpp.o.d"
  "/root/repo/src/transform/parallel.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/parallel.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/parallel.cpp.o.d"
  "/root/repo/src/transform/rewrite.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/rewrite.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/rewrite.cpp.o.d"
  "/root/repo/src/transform/single_precision.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/single_precision.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/single_precision.cpp.o.d"
  "/root/repo/src/transform/unroll.cpp" "src/transform/CMakeFiles/psaflow_transform.dir/unroll.cpp.o" "gcc" "src/transform/CMakeFiles/psaflow_transform.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/psaflow_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/psaflow_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/psaflow_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/psaflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/psaflow_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
