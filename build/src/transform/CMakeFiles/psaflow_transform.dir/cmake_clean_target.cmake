file(REMOVE_RECURSE
  "libpsaflow_transform.a"
)
