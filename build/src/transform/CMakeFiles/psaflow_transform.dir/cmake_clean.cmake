file(REMOVE_RECURSE
  "CMakeFiles/psaflow_transform.dir/accumulation.cpp.o"
  "CMakeFiles/psaflow_transform.dir/accumulation.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/extract.cpp.o"
  "CMakeFiles/psaflow_transform.dir/extract.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/fission.cpp.o"
  "CMakeFiles/psaflow_transform.dir/fission.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/parallel.cpp.o"
  "CMakeFiles/psaflow_transform.dir/parallel.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/rewrite.cpp.o"
  "CMakeFiles/psaflow_transform.dir/rewrite.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/single_precision.cpp.o"
  "CMakeFiles/psaflow_transform.dir/single_precision.cpp.o.d"
  "CMakeFiles/psaflow_transform.dir/unroll.cpp.o"
  "CMakeFiles/psaflow_transform.dir/unroll.cpp.o.d"
  "libpsaflow_transform.a"
  "libpsaflow_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
