# Empty dependencies file for psaflow_transform.
# This may be replaced when dependencies are built.
