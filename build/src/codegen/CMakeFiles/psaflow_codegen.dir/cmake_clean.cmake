file(REMOVE_RECURSE
  "CMakeFiles/psaflow_codegen.dir/emit_util.cpp.o"
  "CMakeFiles/psaflow_codegen.dir/emit_util.cpp.o.d"
  "CMakeFiles/psaflow_codegen.dir/emitters.cpp.o"
  "CMakeFiles/psaflow_codegen.dir/emitters.cpp.o.d"
  "libpsaflow_codegen.a"
  "libpsaflow_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
