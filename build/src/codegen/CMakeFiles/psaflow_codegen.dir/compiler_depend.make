# Empty compiler generated dependencies file for psaflow_codegen.
# This may be replaced when dependencies are built.
