file(REMOVE_RECURSE
  "libpsaflow_codegen.a"
)
