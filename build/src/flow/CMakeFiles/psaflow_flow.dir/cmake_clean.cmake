file(REMOVE_RECURSE
  "CMakeFiles/psaflow_flow.dir/context.cpp.o"
  "CMakeFiles/psaflow_flow.dir/context.cpp.o.d"
  "CMakeFiles/psaflow_flow.dir/engine.cpp.o"
  "CMakeFiles/psaflow_flow.dir/engine.cpp.o.d"
  "CMakeFiles/psaflow_flow.dir/learned_strategy.cpp.o"
  "CMakeFiles/psaflow_flow.dir/learned_strategy.cpp.o.d"
  "CMakeFiles/psaflow_flow.dir/standard_flow.cpp.o"
  "CMakeFiles/psaflow_flow.dir/standard_flow.cpp.o.d"
  "CMakeFiles/psaflow_flow.dir/strategy.cpp.o"
  "CMakeFiles/psaflow_flow.dir/strategy.cpp.o.d"
  "CMakeFiles/psaflow_flow.dir/tasks.cpp.o"
  "CMakeFiles/psaflow_flow.dir/tasks.cpp.o.d"
  "libpsaflow_flow.a"
  "libpsaflow_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
