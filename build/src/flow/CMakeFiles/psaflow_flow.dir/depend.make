# Empty dependencies file for psaflow_flow.
# This may be replaced when dependencies are built.
