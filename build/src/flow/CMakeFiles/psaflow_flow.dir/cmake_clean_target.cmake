file(REMOVE_RECURSE
  "libpsaflow_flow.a"
)
