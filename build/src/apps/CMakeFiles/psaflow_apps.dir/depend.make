# Empty dependencies file for psaflow_apps.
# This may be replaced when dependencies are built.
