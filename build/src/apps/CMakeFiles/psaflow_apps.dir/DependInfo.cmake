
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adpredictor.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/adpredictor.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/adpredictor.cpp.o.d"
  "/root/repo/src/apps/bezier.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/bezier.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/bezier.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/nbody.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/nbody.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/nbody.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/rush_larsen.cpp" "src/apps/CMakeFiles/psaflow_apps.dir/rush_larsen.cpp.o" "gcc" "src/apps/CMakeFiles/psaflow_apps.dir/rush_larsen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/psaflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/psaflow_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/psaflow_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/psaflow_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/psaflow_ast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
