file(REMOVE_RECURSE
  "libpsaflow_apps.a"
)
