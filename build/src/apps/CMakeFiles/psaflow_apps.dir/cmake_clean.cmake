file(REMOVE_RECURSE
  "CMakeFiles/psaflow_apps.dir/adpredictor.cpp.o"
  "CMakeFiles/psaflow_apps.dir/adpredictor.cpp.o.d"
  "CMakeFiles/psaflow_apps.dir/bezier.cpp.o"
  "CMakeFiles/psaflow_apps.dir/bezier.cpp.o.d"
  "CMakeFiles/psaflow_apps.dir/kmeans.cpp.o"
  "CMakeFiles/psaflow_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/psaflow_apps.dir/nbody.cpp.o"
  "CMakeFiles/psaflow_apps.dir/nbody.cpp.o.d"
  "CMakeFiles/psaflow_apps.dir/registry.cpp.o"
  "CMakeFiles/psaflow_apps.dir/registry.cpp.o.d"
  "CMakeFiles/psaflow_apps.dir/rush_larsen.cpp.o"
  "CMakeFiles/psaflow_apps.dir/rush_larsen.cpp.o.d"
  "libpsaflow_apps.a"
  "libpsaflow_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
