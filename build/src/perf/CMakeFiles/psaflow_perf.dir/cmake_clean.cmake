file(REMOVE_RECURSE
  "CMakeFiles/psaflow_perf.dir/estimator.cpp.o"
  "CMakeFiles/psaflow_perf.dir/estimator.cpp.o.d"
  "CMakeFiles/psaflow_perf.dir/shape_builder.cpp.o"
  "CMakeFiles/psaflow_perf.dir/shape_builder.cpp.o.d"
  "libpsaflow_perf.a"
  "libpsaflow_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
