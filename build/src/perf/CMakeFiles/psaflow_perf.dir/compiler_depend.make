# Empty compiler generated dependencies file for psaflow_perf.
# This may be replaced when dependencies are built.
