file(REMOVE_RECURSE
  "libpsaflow_perf.a"
)
