# Empty compiler generated dependencies file for psaflow_dse.
# This may be replaced when dependencies are built.
