file(REMOVE_RECURSE
  "libpsaflow_dse.a"
)
