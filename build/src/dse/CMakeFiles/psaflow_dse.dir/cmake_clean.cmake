file(REMOVE_RECURSE
  "CMakeFiles/psaflow_dse.dir/dse.cpp.o"
  "CMakeFiles/psaflow_dse.dir/dse.cpp.o.d"
  "libpsaflow_dse.a"
  "libpsaflow_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
