
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/instrument.cpp" "src/meta/CMakeFiles/psaflow_meta.dir/instrument.cpp.o" "gcc" "src/meta/CMakeFiles/psaflow_meta.dir/instrument.cpp.o.d"
  "/root/repo/src/meta/query.cpp" "src/meta/CMakeFiles/psaflow_meta.dir/query.cpp.o" "gcc" "src/meta/CMakeFiles/psaflow_meta.dir/query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/psaflow_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
