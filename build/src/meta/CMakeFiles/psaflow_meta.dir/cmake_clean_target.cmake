file(REMOVE_RECURSE
  "libpsaflow_meta.a"
)
