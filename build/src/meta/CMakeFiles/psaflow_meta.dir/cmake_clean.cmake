file(REMOVE_RECURSE
  "CMakeFiles/psaflow_meta.dir/instrument.cpp.o"
  "CMakeFiles/psaflow_meta.dir/instrument.cpp.o.d"
  "CMakeFiles/psaflow_meta.dir/query.cpp.o"
  "CMakeFiles/psaflow_meta.dir/query.cpp.o.d"
  "libpsaflow_meta.a"
  "libpsaflow_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
