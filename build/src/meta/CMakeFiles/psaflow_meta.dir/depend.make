# Empty dependencies file for psaflow_meta.
# This may be replaced when dependencies are built.
