file(REMOVE_RECURSE
  "libpsaflow_frontend.a"
)
