# Empty dependencies file for psaflow_frontend.
# This may be replaced when dependencies are built.
