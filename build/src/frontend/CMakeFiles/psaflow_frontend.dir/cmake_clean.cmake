file(REMOVE_RECURSE
  "CMakeFiles/psaflow_frontend.dir/lexer.cpp.o"
  "CMakeFiles/psaflow_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/psaflow_frontend.dir/parser.cpp.o"
  "CMakeFiles/psaflow_frontend.dir/parser.cpp.o.d"
  "libpsaflow_frontend.a"
  "libpsaflow_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflow_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
