file(REMOVE_RECURSE
  "CMakeFiles/psaflowc.dir/psaflowc.cpp.o"
  "CMakeFiles/psaflowc.dir/psaflowc.cpp.o.d"
  "psaflowc"
  "psaflowc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psaflowc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
