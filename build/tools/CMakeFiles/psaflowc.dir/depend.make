# Empty dependencies file for psaflowc.
# This may be replaced when dependencies are built.
