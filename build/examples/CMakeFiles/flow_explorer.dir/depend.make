# Empty dependencies file for flow_explorer.
# This may be replaced when dependencies are built.
