file(REMOVE_RECURSE
  "CMakeFiles/flow_explorer.dir/flow_explorer.cpp.o"
  "CMakeFiles/flow_explorer.dir/flow_explorer.cpp.o.d"
  "flow_explorer"
  "flow_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
