# Empty dependencies file for cost_explorer.
# This may be replaced when dependencies are built.
