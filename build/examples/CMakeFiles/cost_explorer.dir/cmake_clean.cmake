file(REMOVE_RECURSE
  "CMakeFiles/cost_explorer.dir/cost_explorer.cpp.o"
  "CMakeFiles/cost_explorer.dir/cost_explorer.cpp.o.d"
  "cost_explorer"
  "cost_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
