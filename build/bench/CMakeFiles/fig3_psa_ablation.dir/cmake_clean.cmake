file(REMOVE_RECURSE
  "CMakeFiles/fig3_psa_ablation.dir/fig3_psa_ablation.cpp.o"
  "CMakeFiles/fig3_psa_ablation.dir/fig3_psa_ablation.cpp.o.d"
  "fig3_psa_ablation"
  "fig3_psa_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_psa_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
