# Empty compiler generated dependencies file for table2_comparison.
# This may be replaced when dependencies are built.
