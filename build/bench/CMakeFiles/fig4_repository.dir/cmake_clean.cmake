file(REMOVE_RECURSE
  "CMakeFiles/fig4_repository.dir/fig4_repository.cpp.o"
  "CMakeFiles/fig4_repository.dir/fig4_repository.cpp.o.d"
  "fig4_repository"
  "fig4_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
