# Empty dependencies file for fig4_repository.
# This may be replaced when dependencies are built.
