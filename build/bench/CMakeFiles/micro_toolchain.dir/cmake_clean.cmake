file(REMOVE_RECURSE
  "CMakeFiles/micro_toolchain.dir/micro_toolchain.cpp.o"
  "CMakeFiles/micro_toolchain.dir/micro_toolchain.cpp.o.d"
  "micro_toolchain"
  "micro_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
