# Empty compiler generated dependencies file for ext_learned_psa.
# This may be replaced when dependencies are built.
