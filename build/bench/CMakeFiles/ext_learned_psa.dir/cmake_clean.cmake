file(REMOVE_RECURSE
  "CMakeFiles/ext_learned_psa.dir/ext_learned_psa.cpp.o"
  "CMakeFiles/ext_learned_psa.dir/ext_learned_psa.cpp.o.d"
  "ext_learned_psa"
  "ext_learned_psa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_learned_psa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
