file(REMOVE_RECURSE
  "CMakeFiles/ext_loop_splitting.dir/ext_loop_splitting.cpp.o"
  "CMakeFiles/ext_loop_splitting.dir/ext_loop_splitting.cpp.o.d"
  "ext_loop_splitting"
  "ext_loop_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_loop_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
