# Empty dependencies file for ext_loop_splitting.
# This may be replaced when dependencies are built.
