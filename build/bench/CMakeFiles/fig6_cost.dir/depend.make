# Empty dependencies file for fig6_cost.
# This may be replaced when dependencies are built.
