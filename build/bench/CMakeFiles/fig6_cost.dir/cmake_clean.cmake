file(REMOVE_RECURSE
  "CMakeFiles/fig6_cost.dir/fig6_cost.cpp.o"
  "CMakeFiles/fig6_cost.dir/fig6_cost.cpp.o.d"
  "fig6_cost"
  "fig6_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
