# Empty dependencies file for fig5_speedups.
# This may be replaced when dependencies are built.
