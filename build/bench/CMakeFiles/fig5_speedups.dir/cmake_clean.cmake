file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedups.dir/fig5_speedups.cpp.o"
  "CMakeFiles/fig5_speedups.dir/fig5_speedups.cpp.o.d"
  "fig5_speedups"
  "fig5_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
