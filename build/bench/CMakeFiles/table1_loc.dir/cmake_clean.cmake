file(REMOVE_RECURSE
  "CMakeFiles/table1_loc.dir/table1_loc.cpp.o"
  "CMakeFiles/table1_loc.dir/table1_loc.cpp.o.d"
  "table1_loc"
  "table1_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
