# Empty compiler generated dependencies file for table1_loc.
# This may be replaced when dependencies are built.
