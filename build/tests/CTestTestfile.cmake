# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ast[1]_include.cmake")
include("/root/repo/build/tests/test_sema[1]_include.cmake")
include("/root/repo/build/tests/test_meta[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_perf_dse[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fission[1]_include.cmake")
include("/root/repo/build/tests/test_learned_strategy[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
