file(REMOVE_RECURSE
  "CMakeFiles/test_learned_strategy.dir/test_learned_strategy.cpp.o"
  "CMakeFiles/test_learned_strategy.dir/test_learned_strategy.cpp.o.d"
  "test_learned_strategy"
  "test_learned_strategy.pdb"
  "test_learned_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learned_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
