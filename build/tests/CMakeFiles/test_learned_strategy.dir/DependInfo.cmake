
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_learned_strategy.cpp" "tests/CMakeFiles/test_learned_strategy.dir/test_learned_strategy.cpp.o" "gcc" "tests/CMakeFiles/test_learned_strategy.dir/test_learned_strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/psaflow_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/psaflow_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/psaflow_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/psaflow_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/psaflow_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/psaflow_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/psaflow_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/psaflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/psaflow_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/psaflow_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/psaflow_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/psaflow_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/psaflow_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psaflow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
