# Empty compiler generated dependencies file for test_meta.
# This may be replaced when dependencies are built.
