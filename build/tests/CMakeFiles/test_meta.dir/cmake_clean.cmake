file(REMOVE_RECURSE
  "CMakeFiles/test_meta.dir/test_meta.cpp.o"
  "CMakeFiles/test_meta.dir/test_meta.cpp.o.d"
  "test_meta"
  "test_meta.pdb"
  "test_meta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
