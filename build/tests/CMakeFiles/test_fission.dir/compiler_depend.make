# Empty compiler generated dependencies file for test_fission.
# This may be replaced when dependencies are built.
