file(REMOVE_RECURSE
  "CMakeFiles/test_fission.dir/test_fission.cpp.o"
  "CMakeFiles/test_fission.dir/test_fission.cpp.o.d"
  "test_fission"
  "test_fission.pdb"
  "test_fission[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
