# Empty compiler generated dependencies file for test_perf_dse.
# This may be replaced when dependencies are built.
