file(REMOVE_RECURSE
  "CMakeFiles/test_perf_dse.dir/test_perf_dse.cpp.o"
  "CMakeFiles/test_perf_dse.dir/test_perf_dse.cpp.o.d"
  "test_perf_dse"
  "test_perf_dse.pdb"
  "test_perf_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
