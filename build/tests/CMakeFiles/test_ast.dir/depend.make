# Empty dependencies file for test_ast.
# This may be replaced when dependencies are built.
