file(REMOVE_RECURSE
  "CMakeFiles/test_ast.dir/test_ast.cpp.o"
  "CMakeFiles/test_ast.dir/test_ast.cpp.o.d"
  "test_ast"
  "test_ast.pdb"
  "test_ast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
