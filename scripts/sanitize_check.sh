#!/usr/bin/env bash
# Builds the asan preset (-fsanitize=address,undefined) and runs the test
# binaries that exercise the concurrency and interpreter layers introduced
# by the parallel engine: support (thread pool, trace, prng), interp, flow
# and the parallel-engine determinism suite.
#
# usage: scripts/sanitize_check.sh [jobs]
set -euo pipefail

JOBS=${1:-$(nproc)}
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$JOBS"

export ASAN_OPTIONS=detect_leaks=0   # gtest's lazy singletons are not leaks
export UBSAN_OPTIONS=halt_on_error=1

for bin in test_support test_interp test_vm test_flow test_engine_parallel; do
    echo "== $bin (asan/ubsan) =="
    "build-asan/tests/$bin"
done

echo "sanitizer check passed"
