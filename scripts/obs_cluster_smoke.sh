#!/usr/bin/env bash
# End-to-end smoke for cluster-wide observability:
#
#   1. start a CAS-home psaflowd plus two ring shards (both reading the
#      home's CAS through --cas-upstream, spans on via PSAFLOW_TRACE=1)
#      behind psaflow-router,
#   2. fire one *traced* compile through the router and require the
#      assembled Chrome trace to be a single rooted tree — validated by
#      psaflow-obscheck with --check-nesting — carrying every wire hop:
#      client:request, router:relay, serve:request / queue-wait /
#      execute, and the remote-CAS fetch (cas:remote-get grafting the
#      upstream's serve:cas_get),
#   3. require the routed design to be byte-identical to single-shot
#      psaflowc under PSAFLOW_TRACE=0 — tracing must never change what
#      is computed,
#   4. scrape --cluster-stats / --cluster-metrics off the router and
#      require the merged label-free histogram count to equal the sum of
#      the per-shard-labeled counts exactly (the fan-in merges the same
#      bucket arrays it scraped), and require shards to refuse cluster
#      requests,
#   5. inject a slow request (test-only sleep past --slo-ms) into a
#      shard and require its flight recorder to capture the digest,
#      count the SLO breach, and snapshot it to the structured log,
#   6. SIGTERM everything and require clean exits.
#
# usage: scripts/obs_cluster_smoke.sh [psaflowd] [psaflow-router]
#                                     [psaflow-client] [psaflowc]
#                                     [psaflow-obscheck]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWD=${1:-build/tools/psaflowd}
ROUTER=${2:-build/tools/psaflow-router}
CLIENT=${3:-build/tools/psaflow-client}
PSAFLOWC=${4:-build/tools/psaflowc}
OBSCHECK=${5:-build/tools/psaflow-obscheck}

for bin in "$PSAFLOWD" "$ROUTER" "$CLIENT" "$PSAFLOWC" "$OBSCHECK"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-obs-cluster.XXXXXX")
ROUTER_SOCK="$WORK/router.sock"
PID_HOME="" PID_1="" PID_2="" PID_ROUTER=""
cleanup() {
    for pid in "$PID_ROUTER" "$PID_1" "$PID_2" "$PID_HOME"; do
        [ -n "$pid" ] && kill -KILL "$pid" 2> /dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

scrape_port() {
    local stdout_file=$1 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*tcp port \([0-9][0-9]*\).*/\1/p' \
            "$stdout_file" 2> /dev/null | head -n 1)
        [ -n "$port" ] && break
        sleep 0.05
    done
    if [ -z "$port" ]; then
        echo "FAIL: no tcp port in $stdout_file" >&2
        cat "$stdout_file" >&2
        exit 1
    fi
    echo "$port"
}

echo "== obs cluster smoke via $ROUTER =="

# CAS home: not in the ring, serves both shards' remote tier so a cold
# compile on either shard produces a cross-process CAS hop.
"$PSAFLOWD" --listen 127.0.0.1:0 --shard-name home --workers 2 \
    --out "$WORK/out-home" --cache-dir "$WORK/cache-home" \
    > "$WORK/home.stdout" 2>&1 &
PID_HOME=$!
PORT_HOME=$(scrape_port "$WORK/home.stdout")

for shard in s1 s2; do
    PSAFLOW_TRACE=1 "$PSAFLOWD" --listen 127.0.0.1:0 \
        --shard-name "$shard" --workers 2 --queue-depth 8 \
        --out "$WORK/out-$shard" --cache-dir "$WORK/cache-$shard" \
        --cas-upstream "127.0.0.1:$PORT_HOME" \
        --enable-test-endpoints --slo-ms 50 \
        > "$WORK/$shard.stdout" 2> "$WORK/$shard.stderr" &
    if [ "$shard" = s1 ]; then PID_1=$!; else PID_2=$!; fi
done
PORT_1=$(scrape_port "$WORK/s1.stdout")
PORT_2=$(scrape_port "$WORK/s2.stdout")

"$ROUTER" --socket "$ROUTER_SOCK" \
    --shard "s1=127.0.0.1:$PORT_1" --shard "s2=127.0.0.1:$PORT_2" \
    > "$WORK/router.stdout" 2>&1 &
PID_ROUTER=$!
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$ROUTER_SOCK" --ping > /dev/null 2>&1; then
        break
    fi
    sleep 0.05
done
"$CLIENT" --socket "$ROUTER_SOCK" --ping > /dev/null
echo "fleet up: home tcp:$PORT_HOME, s1 tcp:$PORT_1, s2 tcp:$PORT_2," \
     "router on $ROUTER_SOCK"

# ---- 2. one traced compile, one rooted cross-process tree ------------------
APP=nbody
"$CLIENT" --socket "$ROUTER_SOCK" --app "$APP" --out "$WORK/served" \
    --trace-out "$WORK/trace.json" --trace-format chrome \
    > "$WORK/traced.stdout"
"$OBSCHECK" --chrome-trace "$WORK/trace.json" --expect-roots 1 \
    --check-nesting
for hop in "client:request" "router:relay" "serve:request" \
           "serve:queue-wait" "serve:execute" "cas:remote-get" \
           "serve:cas_get"; do
    grep -q "\"$hop\"" "$WORK/trace.json" || {
        echo "FAIL: assembled trace is missing the '$hop' hop" >&2
        cat "$WORK/trace.json" >&2
        exit 1
    }
done
echo "traced compile: single rooted tree with every wire hop," \
     "nesting checked"

# ---- 3. tracing must not change what is computed ---------------------------
PSAFLOW_TRACE=0 "$PSAFLOWC" --app "$APP" --out "$WORK/single" \
    > /dev/null
for file in "$WORK/single"/*; do
    diff -q "$file" "$WORK/served/$(basename "$file")" > /dev/null || {
        echo "FAIL: traced routed design differs from untraced" \
             "single-shot psaflowc: $(basename "$file")" >&2
        exit 1
    }
done
echo "designs byte-identical: traced via router == PSAFLOW_TRACE=0" \
     "single-shot"

# ---- 4. fleet fan-in: stats, metrics, exact sums ---------------------------
"$CLIENT" --socket "$ROUTER_SOCK" --cluster-stats --json \
    > "$WORK/cluster-stats.json"
grep -q '"type":"cluster_stats"' "$WORK/cluster-stats.json" || {
    echo "FAIL: cluster_stats response has the wrong type" >&2
    exit 1
}
grep -q '"shards_live":2' "$WORK/cluster-stats.json" || {
    echo "FAIL: router does not see both shards live" >&2
    cat "$WORK/cluster-stats.json" >&2
    exit 1
}

"$CLIENT" --socket "$ROUTER_SOCK" --cluster-metrics \
    > "$WORK/cluster.prom"
for shard in s1 s2; do
    grep -q "psaflow_cluster_shard_up{shard=\"$shard\"" \
        "$WORK/cluster.prom" || {
        echo "FAIL: no psaflow_cluster_shard_up series for $shard" >&2
        exit 1
    }
done
merged=$(awk '$1 == "psaflow_cluster_request_latency_us_count" \
    {print $2}' "$WORK/cluster.prom")
shard_sum=$(awk '/^psaflow_cluster_shard_request_latency_us_count\{/ \
    {s += $2} END {print s}' "$WORK/cluster.prom")
if [ -z "$merged" ] || [ "$merged" != "$shard_sum" ]; then
    echo "FAIL: merged latency count '$merged' != per-shard sum" \
         "'$shard_sum'" >&2
    grep request_latency_us_count "$WORK/cluster.prom" >&2 || true
    exit 1
fi
echo "cluster metrics: merged histogram count ($merged) equals the" \
     "per-shard sum exactly"

# Shards must refuse cluster requests — they are a router-only surface.
rc=0
"$CLIENT" --socket "127.0.0.1:$PORT_1" --cluster-stats --json \
    > /dev/null 2>&1 || rc=$?
if [ "$rc" != 2 ]; then
    echo "FAIL: shard answered a cluster_stats request (exit $rc," \
         "expected 2)" >&2
    exit 1
fi

# ---- 5. flight recorder captures an injected slow request ------------------
"$CLIENT" --socket "127.0.0.1:$PORT_1" --sleep-ms 200 > /dev/null
"$CLIENT" --socket "127.0.0.1:$PORT_1" --flight --json \
    > "$WORK/flight.json"
breaches=$(sed -n 's/.*"slo_breaches":\([0-9]*\).*/\1/p' \
    "$WORK/flight.json")
if [ -z "$breaches" ] || [ "$breaches" -lt 1 ]; then
    echo "FAIL: shard s1 counted no SLO breach after a 200 ms sleep" \
         "against a 50 ms SLO" >&2
    cat "$WORK/flight.json" >&2
    exit 1
fi
grep -q '"app":"sleep"' "$WORK/flight.json" || {
    echo "FAIL: flight recorder holds no digest for the slow sleep" >&2
    cat "$WORK/flight.json" >&2
    exit 1
}
grep -q "slo breach" "$WORK/s1.stderr" || {
    echo "FAIL: SLO breach was not snapshotted to the structured log" >&2
    cat "$WORK/s1.stderr" >&2
    exit 1
}
# The router's own recorder saw the forwarded compile.
"$CLIENT" --socket "$ROUTER_SOCK" --flight --json \
    > "$WORK/router-flight.json"
grep -q "\"app\":\"$APP\"" "$WORK/router-flight.json" || {
    echo "FAIL: router flight recorder holds no digest for the routed" \
         "compile" >&2
    cat "$WORK/router-flight.json" >&2
    exit 1
}
echo "flight recorder: $breaches SLO breach(es) captured on s1," \
     "breach logged, router digest present"

# ---- 6. clean shutdown -----------------------------------------------------
for pid_var in PID_ROUTER PID_1 PID_2 PID_HOME; do
    pid=${!pid_var}
    kill -TERM "$pid"
    status=0
    wait "$pid" || status=$?
    eval "$pid_var=''"
    if [ "$status" != 0 ]; then
        echo "FAIL: $pid_var exited $status after SIGTERM" >&2
        exit 1
    fi
done

echo "obs cluster smoke passed: rooted cross-process trace, byte-" \
     "identity, exact metric fan-in, flight-recorded SLO breach," \
     "clean drains"
