#!/usr/bin/env bash
# Cold/warm/corrupt smoke for the persistent content-addressed store: runs
# psaflowc three times against the same --cache-dir —
#
#   1. cold   (empty store; fills it),
#   2. warm   (every profile and design artifact served from disk),
#   3. after flipping one byte in every cached entry (checksums reject the
#      corrupted entries, the run silently recomputes and repairs),
#
# and requires all three runs to write byte-identical designs and summaries.
# This is the end-to-end form of the guarantee the engine tests pin down:
# the disk cache may only ever change *when* results are computed, never
# *what* is computed.
#
# usage: scripts/cache_smoke.sh [psaflowc-binary] [app]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWC=${1:-build/tools/psaflowc}
APP=${2:-adpredictor}

if [ ! -x "$PSAFLOWC" ]; then
    echo "psaflowc binary not found at '$PSAFLOWC' (build it first," \
         "or pass the path as the first argument)" >&2
    exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-cache-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
CACHE="$WORK/cache"

run() { # run <outdir>
    "$PSAFLOWC" --app "$APP" --cache-dir "$CACHE" --out "$WORK/$1" \
        > "$WORK/$1.stdout"
}

echo "== cache smoke: $APP via $PSAFLOWC =="
run cold
ENTRIES=$(find "$CACHE" -name '*.cas' | wc -l)
echo "cold run populated $ENTRIES cache entries"
test "$ENTRIES" -gt 0

run warm

# Flip one byte in the middle of every entry; the checksum must catch it.
for entry in $(find "$CACHE" -name '*.cas'); do
    size=$(stat -c %s "$entry")
    printf '\xff' | dd of="$entry" bs=1 seek=$((size / 2)) conv=notrunc \
        status=none
done
run corrupt

for outdir in warm corrupt; do
    for file in "$WORK/cold"/*; do
        diff -q "$file" "$WORK/$outdir/$(basename "$file")" > /dev/null || {
            echo "FAIL: $outdir run differs from cold run on" \
                 "$(basename "$file")" >&2
            exit 1
        }
    done
    # stdout must match too, modulo the differing --out directory names.
    if ! diff <(sed "s|$WORK/cold|<out>|g" "$WORK/cold.stdout") \
              <(sed "s|$WORK/$outdir|<out>|g" "$WORK/$outdir.stdout"); then
        echo "FAIL: $outdir run stdout differs from cold run" >&2
        exit 1
    fi
done

echo "cache smoke passed: cold, warm and corrupt-repair runs identical"
