#!/usr/bin/env bash
# End-to-end smoke for the sharded serving cluster:
#
#   1. start two psaflowd shards on ephemeral TCP ports with separate
#      cache/output trees; shard b uses shard a as its remote-CAS
#      upstream, so its disk cache is a read-through over the wire,
#   2. start psaflow-router in front of both and fire 20 concurrent
#      clients at it — compiles across four apps (retrying on
#      backpressure) plus stats probes,
#   3. SIGKILL shard b mid-run: every client must still exit 0 (the
#      router detects the transport failure and retries the survivor
#      inside the same request — zero corrupt or lost responses),
#   4. require routed designs to be byte-identical to single-shot
#      psaflowc, require the router to have marked shard b unhealthy and
#      shard a to have received remote-CAS traffic from shard b,
#   5. SIGTERM the router and the surviving shard and require clean
#      drains: exit status 0, no orphan socket files.
#
# usage: scripts/cluster_smoke.sh [psaflowd] [psaflow-router]
#                                 [psaflow-client] [psaflowc]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWD=${1:-build/tools/psaflowd}
ROUTER=${2:-build/tools/psaflow-router}
CLIENT=${3:-build/tools/psaflow-client}
PSAFLOWC=${4:-build/tools/psaflowc}

for bin in "$PSAFLOWD" "$ROUTER" "$CLIENT" "$PSAFLOWC"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-cluster-smoke.XXXXXX")
ROUTER_SOCK="$WORK/router.sock"
PID_A="" PID_B="" PID_ROUTER=""
cleanup() {
    for pid in "$PID_ROUTER" "$PID_A" "$PID_B"; do
        [ -n "$pid" ] && kill -KILL "$pid" 2> /dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Scrape "tcp port N" from a daemon/router banner, waiting for startup.
scrape_port() {
    local stdout_file=$1 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*tcp port \([0-9][0-9]*\).*/\1/p' \
            "$stdout_file" 2> /dev/null | head -n 1)
        [ -n "$port" ] && break
        sleep 0.05
    done
    if [ -z "$port" ]; then
        echo "FAIL: no tcp port in $stdout_file" >&2
        cat "$stdout_file" >&2
        exit 1
    fi
    echo "$port"
}

echo "== cluster smoke via $ROUTER =="

# Shard a: the artifact home. Shard b: reads through a over the wire.
"$PSAFLOWD" --listen 127.0.0.1:0 --shard-name a --workers 2 \
    --queue-depth 8 --out "$WORK/out-a" --cache-dir "$WORK/cache-a" \
    > "$WORK/shard-a.stdout" 2>&1 &
PID_A=$!
PORT_A=$(scrape_port "$WORK/shard-a.stdout")

"$PSAFLOWD" --listen 127.0.0.1:0 --shard-name b --workers 2 \
    --queue-depth 8 --out "$WORK/out-b" --cache-dir "$WORK/cache-b" \
    --cas-upstream "127.0.0.1:$PORT_A" \
    > "$WORK/shard-b.stdout" 2>&1 &
PID_B=$!
PORT_B=$(scrape_port "$WORK/shard-b.stdout")

"$ROUTER" --socket "$ROUTER_SOCK" \
    --shard "a=127.0.0.1:$PORT_A" --shard "b=127.0.0.1:$PORT_B" \
    --health-interval-ms 100 \
    > "$WORK/router.stdout" 2>&1 &
PID_ROUTER=$!

for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$ROUTER_SOCK" --ping > /dev/null 2>&1; then
        break
    fi
    sleep 0.05
done
"$CLIENT" --socket "$ROUTER_SOCK" --ping > /dev/null
echo "fleet up: shard a tcp:$PORT_A, shard b tcp:$PORT_B, router on" \
     "$ROUTER_SOCK"

# Prove the remote tier deterministically before the chaos: a compile
# served directly by shard b runs against a cold local cache, so its
# lookups read through to shard a over the wire (and publishes flow back).
"$CLIENT" --socket "127.0.0.1:$PORT_B" --app nbody \
    --out "$WORK/warm-b" > /dev/null

# 20 concurrent clients through the router: 16 compiles (4 apps x 4, out
# dirs absolute so the designs land in one place whichever shard serves
# them) and 4 stats probes. Shard b is killed while they run.
APPS=(adpredictor kmeans nbody bezier)
pids=()
codes_dir="$WORK/codes"
mkdir -p "$codes_dir"
for i in $(seq 0 15); do
    app=${APPS[$((i % 4))]}
    (
        rc=0
        "$CLIENT" --socket "$ROUTER_SOCK" --app "$app" \
            --out "$WORK/served/req-$i" --retry 400 > /dev/null \
            2>> "$WORK/clients.stderr" || rc=$?
        echo "$rc" > "$codes_dir/compile-$i"
    ) &
    pids+=($!)
done
for i in 1 2 3 4; do
    (
        rc=0
        "$CLIENT" --socket "$ROUTER_SOCK" --stats --json \
            > "$WORK/stats-$i.json" 2>> "$WORK/clients.stderr" || rc=$?
        echo "$rc" > "$codes_dir/stats-$i"
    ) &
    pids+=($!)
done

# Mid-run crash: SIGKILL shard b, no drain, no warning. The router owes
# the clients intact responses regardless.
sleep 0.3
kill -KILL "$PID_B"
wait "$PID_B" 2> /dev/null || true
PID_B=""
echo "shard b killed mid-run"

wait "${pids[@]}" || true

for i in $(seq 0 15); do
    code=$(cat "$codes_dir/compile-$i")
    if [ "$code" != 0 ]; then
        echo "FAIL: compile client $i exited $code after shard kill" >&2
        cat "$WORK/clients.stderr" >&2
        exit 1
    fi
done
for i in 1 2 3 4; do
    code=$(cat "$codes_dir/stats-$i")
    if [ "$code" != 0 ]; then
        echo "FAIL: stats client $i exited $code" >&2
        exit 1
    fi
    grep -q '"role":"router"' "$WORK/stats-$i.json" || {
        echo "FAIL: stats response $i did not come from the router" >&2
        exit 1
    }
done
echo "20 concurrent clients done: 16 compiles ok, 4 router stats ok," \
     "zero lost responses across the shard kill"

# Byte-identity: routed designs must match single-shot psaflowc, whichever
# shard (including the failover survivor) produced them.
for i in 0 1 2 3; do
    app=${APPS[$i]}
    "$PSAFLOWC" --app "$app" --out "$WORK/single/$app" > /dev/null
    for file in "$WORK/single/$app"/*; do
        diff -q "$file" "$WORK/served/req-$i/$(basename "$file")" \
            > /dev/null || {
            echo "FAIL: routed design differs from psaflowc for $app:" \
                 "$(basename "$file")" >&2
            exit 1
        }
    done
done
echo "routed designs byte-identical to single-shot psaflowc"

# The router must have ejected shard b from the ring...
"$CLIENT" --socket "$ROUTER_SOCK" --metrics > "$WORK/router.metrics"
grep -q 'psaflow_router_shard_healthy{shard="b"} 0' "$WORK/router.metrics" || {
    echo "FAIL: router still reports shard b healthy" >&2
    grep psaflow_router_shard "$WORK/router.metrics" >&2 || true
    exit 1
}
grep -q 'psaflow_router_shard_healthy{shard="a"} 1' "$WORK/router.metrics" || {
    echo "FAIL: router lost shard a" >&2
    exit 1
}

# ...and shard a must have served remote-CAS traffic for shard b (b's
# --cas-upstream makes its disk tier a read-through over the wire).
"$CLIENT" --socket "127.0.0.1:$PORT_A" --stats --json \
    > "$WORK/shard-a.stats.json"
cas_ops=$(sed -n \
    's/.*"cas_gets":\([0-9]*\).*"cas_puts":\([0-9]*\).*/\1 \2/p' \
    "$WORK/shard-a.stats.json")
total=0
for n in $cas_ops; do total=$((total + n)); done
if [ "$total" -eq 0 ]; then
    echo "FAIL: shard a saw no remote-CAS traffic from shard b" >&2
    cat "$WORK/shard-a.stats.json" >&2
    exit 1
fi
echo "router ejected the killed shard; shard a served $total remote-CAS" \
     "operation(s) for shard b"

# Graceful drain: SIGTERM router then shard a; both exit 0, no orphan
# socket file.
kill -TERM "$PID_ROUTER"
drain_status=0
wait "$PID_ROUTER" || drain_status=$?
PID_ROUTER=""
if [ "$drain_status" != 0 ]; then
    echo "FAIL: router exited $drain_status after SIGTERM" >&2
    cat "$WORK/router.stdout" >&2
    exit 1
fi
if [ -e "$ROUTER_SOCK" ]; then
    echo "FAIL: router socket file left behind after drain" >&2
    exit 1
fi

kill -TERM "$PID_A"
drain_status=0
wait "$PID_A" || drain_status=$?
PID_A=""
if [ "$drain_status" != 0 ]; then
    echo "FAIL: shard a exited $drain_status after SIGTERM" >&2
    cat "$WORK/shard-a.stdout" >&2
    exit 1
fi
grep -q "drained" "$WORK/shard-a.stdout" || {
    echo "FAIL: shard a did not report a drain" >&2
    cat "$WORK/shard-a.stdout" >&2
    exit 1
}

echo "cluster smoke passed: TCP sharding, mid-run shard kill with zero" \
     "lost responses, byte-identity, remote CAS, clean drains"
