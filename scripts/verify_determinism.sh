#!/usr/bin/env bash
# Verifies that the parallel flow engine is byte-identical to the sequential
# one: runs psaflowc on every bundled app with PSAFLOW_JOBS=1 and again with
# PSAFLOW_JOBS=N, then diffs every emitted design source and summary CSV.
# Also runs the test suite under both settings.
#
# usage: scripts/verify_determinism.sh [build-dir] [jobs]
set -euo pipefail

BUILD_DIR=${1:-build}
JOBS=${2:-$(nproc)}
PSAFLOWC="$BUILD_DIR/tools/psaflowc"

if [[ ! -x "$PSAFLOWC" ]]; then
    echo "error: $PSAFLOWC not found — build first (cmake --preset default && cmake --build --preset default)" >&2
    exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

APPS=$("$PSAFLOWC" --list | cut -d: -f1)

for app in $APPS; do
    for mode in informed uninformed; do
        seq_dir="$WORK/$app-$mode-seq"
        par_dir="$WORK/$app-$mode-par"
        PSAFLOW_JOBS=1       "$PSAFLOWC" --app "$app" --mode "$mode" --out "$seq_dir" >/dev/null
        PSAFLOW_JOBS="$JOBS" "$PSAFLOWC" --app "$app" --mode "$mode" --out "$par_dir" >/dev/null
        if ! diff -r "$seq_dir" "$par_dir" >/dev/null; then
            echo "DETERMINISM FAILURE: $app --mode $mode differs between 1 and $JOBS jobs" >&2
            diff -r "$seq_dir" "$par_dir" | head -40 >&2
            exit 1
        fi
        echo "ok: $app --mode $mode identical with 1 and $JOBS jobs"
    done
done

echo
echo "running test suite with PSAFLOW_JOBS=1..."
(cd "$BUILD_DIR" && PSAFLOW_JOBS=1 ctest --output-on-failure -j "$JOBS")
echo "running test suite with PSAFLOW_JOBS=$JOBS..."
(cd "$BUILD_DIR" && PSAFLOW_JOBS="$JOBS" ctest --output-on-failure -j "$JOBS")

echo
echo "determinism verified: all designs byte-identical, suite green both ways"
