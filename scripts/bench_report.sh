#!/usr/bin/env bash
# Seed the performance trajectory: measure every benchmark app through
# psaflowc (cold disk cache, then warm) plus a short psaflowd serving burst,
# and write the numbers to BENCH_5.json at the repo root so future PRs can
# diff regressions instead of guessing.
#
# Captured per app: cold/warm wall seconds and the profile-cache hit rate of
# the warm run (from the Prometheus counter export). Captured for the
# daemon: request count, latency/queue-wait p50/p99 from the histograms,
# and the cache hit rates of the serving run.
#
# usage: scripts/bench_report.sh [psaflowc] [psaflowd] [psaflow-client] [out]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWC=${1:-build/tools/psaflowc}
PSAFLOWD=${2:-build/tools/psaflowd}
CLIENT=${3:-build/tools/psaflow-client}
OUT=${4:-BENCH_5.json}

for bin in "$PSAFLOWC" "$PSAFLOWD" "$CLIENT"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-bench.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

APPS=(nbody adpredictor kmeans rushlarsen bezier)

now_ns() { date +%s%N; }

counter() { # counter <metrics-file> <prometheus-name>
    awk -v name="$2" '$1 == name { print $2; found = 1 }
                      END { if (!found) print 0 }' "$1"
}

echo "== bench report via $PSAFLOWC =="
BENCH_ROWS="$WORK/rows.tsv"
: > "$BENCH_ROWS"
for app in "${APPS[@]}"; do
    cache="$WORK/cache-$app"

    t0=$(now_ns)
    "$PSAFLOWC" --app "$app" --cache-dir "$cache" \
        --out "$WORK/cold-$app" > /dev/null
    t1=$(now_ns)
    cold_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.4f", (b-a)/1e9 }')

    t0=$(now_ns)
    "$PSAFLOWC" --app "$app" --cache-dir "$cache" \
        --out "$WORK/warm-$app" \
        --metrics-out "$WORK/warm-$app.prom" > /dev/null
    t1=$(now_ns)
    warm_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.4f", (b-a)/1e9 }')

    hits=$(counter "$WORK/warm-$app.prom" psaflow_profile_cache_hits)
    misses=$(counter "$WORK/warm-$app.prom" psaflow_profile_cache_misses)
    printf '%s\t%s\t%s\t%s\t%s\n' \
        "$app" "$cold_s" "$warm_s" "$hits" "$misses" >> "$BENCH_ROWS"
    echo "  $app: cold ${cold_s}s, warm ${warm_s}s"
done

# ---- daemon burst ----------------------------------------------------------
SOCK="$WORK/psaflowd.sock"
"$PSAFLOWD" --socket "$SOCK" --workers 4 --out "$WORK/served" \
    --cache-dir "$WORK/cache-daemon" > /dev/null 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then break; fi
    sleep 0.05
done

pids=()
for i in $(seq 0 9); do
    app=${APPS[$((i % ${#APPS[@]}))]}
    "$CLIENT" --socket "$SOCK" --app "$app" --out "req-$i" \
        --retry 400 > /dev/null &
    pids+=($!)
done
wait "${pids[@]}"
"$CLIENT" --socket "$SOCK" --stats --json > "$WORK/stats.json"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
DAEMON_PID=""
echo "  daemon: 10 requests served"

python3 - "$BENCH_ROWS" "$WORK/stats.json" "$OUT" << 'EOF'
import json, sys

rows, stats_path, out = sys.argv[1], sys.argv[2], sys.argv[3]
benchmarks = []
with open(rows) as fh:
    for line in fh:
        app, cold, warm, hits, misses = line.split("\t")
        hits, misses = int(hits), int(misses)
        lookups = hits + misses
        benchmarks.append({
            "app": app,
            "cold_wall_s": float(cold),
            "warm_wall_s": float(warm),
            "warm_profile_cache_hits": hits,
            "warm_profile_cache_misses": misses,
            "warm_profile_cache_hit_rate":
                round(hits / lookups, 4) if lookups else 0.0,
        })

with open(stats_path) as fh:
    stats = json.load(fh)

def histogram(name):
    h = stats.get(name, {})
    return {k: h.get(k, 0) for k in ("count", "mean", "p50", "p90", "p99")}

cache = stats.get("cache", {})
report = {
    "schema_version": 1,
    "pr": 5,
    "generated_by": "scripts/bench_report.sh",
    "benchmarks": benchmarks,
    "daemon": {
        "workers": stats.get("workers", 0),
        "requests_completed":
            stats.get("requests", {}).get("completed", 0),
        "request_latency_us": histogram("request_latency_us"),
        "queue_wait_us": histogram("queue_wait_us"),
        "cas_hit_rate": round(cache.get("cas_hit_rate", 0.0), 4),
        "profile_cache_hit_rate":
            round(cache.get("profile_cache_hit_rate", 0.0), 4),
    },
}
with open(out, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
EOF

echo "bench report written to $OUT"
