#!/usr/bin/env bash
# Seed the performance trajectory: measure every benchmark app through
# psaflowc (cold disk cache, then warm) plus a short psaflowd serving burst,
# and write the numbers to BENCH_5.json at the repo root so future PRs can
# diff regressions instead of guessing.
#
# Captured per app: cold/warm wall seconds and the profile-cache hit rate of
# the warm run (from the Prometheus counter export). Captured for the
# daemon: request count, latency/queue-wait p50/p99 from the histograms,
# and the cache hit rates of the serving run.
#
# A second report, BENCH_7.json, compares the two profiling-interpreter
# engines (tree walker vs bytecode VM): each app is compiled cold (no disk
# cache) once per engine, and the trace export attributes the interpreter
# time via the engine-tagged spans ("interp:tree" / "interp:vm"), so the
# report separates end-to-end wall time from pure interpretation time.
#
# usage: scripts/bench_report.sh [psaflowc] [psaflowd] [psaflow-client] \
#            [out] [vm-out]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWC=${1:-build/tools/psaflowc}
PSAFLOWD=${2:-build/tools/psaflowd}
CLIENT=${3:-build/tools/psaflow-client}
OUT=${4:-BENCH_5.json}
OUT_VM=${5:-BENCH_7.json}

for bin in "$PSAFLOWC" "$PSAFLOWD" "$CLIENT"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-bench.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

APPS=(nbody adpredictor kmeans rushlarsen bezier)

now_ns() { date +%s%N; }

counter() { # counter <metrics-file> <prometheus-name>
    awk -v name="$2" '$1 == name { print $2; found = 1 }
                      END { if (!found) print 0 }' "$1"
}

echo "== bench report via $PSAFLOWC =="
BENCH_ROWS="$WORK/rows.tsv"
: > "$BENCH_ROWS"
for app in "${APPS[@]}"; do
    cache="$WORK/cache-$app"

    t0=$(now_ns)
    "$PSAFLOWC" --app "$app" --cache-dir "$cache" \
        --out "$WORK/cold-$app" > /dev/null
    t1=$(now_ns)
    cold_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.4f", (b-a)/1e9 }')

    t0=$(now_ns)
    "$PSAFLOWC" --app "$app" --cache-dir "$cache" \
        --out "$WORK/warm-$app" \
        --metrics-out "$WORK/warm-$app.prom" > /dev/null
    t1=$(now_ns)
    warm_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.4f", (b-a)/1e9 }')

    hits=$(counter "$WORK/warm-$app.prom" psaflow_profile_cache_hits)
    misses=$(counter "$WORK/warm-$app.prom" psaflow_profile_cache_misses)
    printf '%s\t%s\t%s\t%s\t%s\n' \
        "$app" "$cold_s" "$warm_s" "$hits" "$misses" >> "$BENCH_ROWS"
    echo "  $app: cold ${cold_s}s, warm ${warm_s}s"
done

# ---- daemon burst ----------------------------------------------------------
SOCK="$WORK/psaflowd.sock"
"$PSAFLOWD" --socket "$SOCK" --workers 4 --out "$WORK/served" \
    --cache-dir "$WORK/cache-daemon" > /dev/null 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then break; fi
    sleep 0.05
done

pids=()
for i in $(seq 0 9); do
    app=${APPS[$((i % ${#APPS[@]}))]}
    "$CLIENT" --socket "$SOCK" --app "$app" --out "req-$i" \
        --retry 400 > /dev/null &
    pids+=($!)
done
wait "${pids[@]}"
"$CLIENT" --socket "$SOCK" --stats --json > "$WORK/stats.json"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
DAEMON_PID=""
echo "  daemon: 10 requests served"

python3 - "$BENCH_ROWS" "$WORK/stats.json" "$OUT" << 'EOF'
import json, sys

rows, stats_path, out = sys.argv[1], sys.argv[2], sys.argv[3]
benchmarks = []
with open(rows) as fh:
    for line in fh:
        app, cold, warm, hits, misses = line.split("\t")
        hits, misses = int(hits), int(misses)
        lookups = hits + misses
        benchmarks.append({
            "app": app,
            "cold_wall_s": float(cold),
            "warm_wall_s": float(warm),
            "warm_profile_cache_hits": hits,
            "warm_profile_cache_misses": misses,
            "warm_profile_cache_hit_rate":
                round(hits / lookups, 4) if lookups else 0.0,
        })

with open(stats_path) as fh:
    stats = json.load(fh)

def histogram(name):
    h = stats.get(name, {})
    return {k: h.get(k, 0) for k in ("count", "mean", "p50", "p90", "p99")}

cache = stats.get("cache", {})
report = {
    "schema_version": 1,
    "pr": 5,
    "generated_by": "scripts/bench_report.sh",
    "benchmarks": benchmarks,
    "daemon": {
        "workers": stats.get("workers", 0),
        "requests_completed":
            stats.get("requests", {}).get("completed", 0),
        "request_latency_us": histogram("request_latency_us"),
        "queue_wait_us": histogram("queue_wait_us"),
        "cas_hit_rate": round(cache.get("cas_hit_rate", 0.0), 4),
        "profile_cache_hit_rate":
            round(cache.get("profile_cache_hit_rate", 0.0), 4),
    },
}
with open(out, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
EOF

echo "bench report written to $OUT"

# ---- interpreter engine comparison (BENCH_7) -------------------------------
echo "== interpreter bench (tree vs vm) via $PSAFLOWC =="
VM_ROWS="$WORK/vm-rows.tsv"
: > "$VM_ROWS"
for app in "${APPS[@]}"; do
    for engine in tree vm; do
        trace="$WORK/interp-$app-$engine.trace.json"
        t0=$(now_ns)
        "$PSAFLOWC" --app "$app" --interp "$engine" \
            --out "$WORK/interp-$app-$engine" \
            --trace-out "$trace" > /dev/null
        t1=$(now_ns)
        wall_s=$(awk -v a="$t0" -v b="$t1" \
            'BEGIN { printf "%.4f", (b-a)/1e9 }')
        printf '%s\t%s\t%s\t%s\n' \
            "$app" "$engine" "$wall_s" "$trace" >> "$VM_ROWS"
        echo "  $app/$engine: cold ${wall_s}s"
    done
done

python3 - "$VM_ROWS" "$OUT_VM" << 'EOF'
import json, sys

rows, out = sys.argv[1], sys.argv[2]

# runs[app][engine] = {"wall_s": ..., "interp_s": ..., "interp_steps": ...}
runs = {}
with open(rows) as fh:
    for line in fh:
        app, engine, wall, trace_path = line.rstrip("\n").split("\t")
        with open(trace_path) as tf:
            trace = json.load(tf)
        tag = f"interp:{engine}"
        interp_us = sum(s["duration_us"] for s in trace["spans"]
                        if s.get("category") == tag)
        # Spans of the *other* engine would mean the flag did not take.
        stray = sum(1 for s in trace["spans"]
                    if s.get("category", "").startswith("interp:")
                    and s["category"] != tag)
        if stray:
            raise SystemExit(f"{app}/{engine}: {stray} span(s) ran on "
                             "the wrong engine")
        runs.setdefault(app, {})[engine] = {
            "wall_s": float(wall),
            "interp_s": interp_us / 1e6,
            "interp_steps": trace.get("counters", {}).get("interp.steps", 0),
        }

benchmarks = []
for app, by_engine in runs.items():
    tree, vm = by_engine["tree"], by_engine["vm"]
    benchmarks.append({
        "app": app,
        "cold_wall_tree_s": tree["wall_s"],
        "cold_wall_vm_s": vm["wall_s"],
        "interp_tree_s": round(tree["interp_s"], 6),
        "interp_vm_s": round(vm["interp_s"], 6),
        # Both engines charge the same step count on the same program; a
        # mismatch here means they diverged and the timing is meaningless.
        "interp_steps_equal": tree["interp_steps"] == vm["interp_steps"],
        "wall_speedup_x": round(tree["wall_s"] / vm["wall_s"], 2)
            if vm["wall_s"] > 0 else 0.0,
        "interp_speedup_x": round(tree["interp_s"] / vm["interp_s"], 2)
            if vm["interp_s"] > 0 else 0.0,
    })

report = {
    "schema_version": 1,
    "pr": 7,
    "generated_by": "scripts/bench_report.sh",
    "description": "cold tree-walker vs bytecode-VM interpreter times per "
                   "app; interp_*_s sums the engine-tagged trace spans",
    "benchmarks": benchmarks,
}
with open(out, "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")

for b in benchmarks:
    print(f"  {b['app']}: interp {b['interp_tree_s']:.3f}s -> "
          f"{b['interp_vm_s']:.3f}s ({b['interp_speedup_x']}x), "
          f"wall {b['cold_wall_tree_s']:.3f}s -> "
          f"{b['cold_wall_vm_s']:.3f}s ({b['wall_speedup_x']}x)")
EOF

echo "interpreter bench written to $OUT_VM"
