#!/usr/bin/env bash
# End-to-end smoke for the psaflowd compile service:
#
#   1. start a daemon on a scratch socket with a fresh cache,
#   2. fire 20 concurrent clients at it — 16 compiles across four apps
#      (retrying on backpressure), 3 stats probes, and one compile with a
#      1 ms deadline that must come back `deadline_exceeded` (exit 4),
#   3. require the daemon's designs to be byte-identical to single-shot
#      psaflowc runs of the same requests,
#   4. SIGTERM the daemon and require a clean drain: exit status 0, no
#      orphan socket file, nothing left under the scratch directory's
#      socket path.
#
# usage: scripts/daemon_smoke.sh [psaflowd] [psaflow-client] [psaflowc]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWD=${1:-build/tools/psaflowd}
CLIENT=${2:-build/tools/psaflow-client}
PSAFLOWC=${3:-build/tools/psaflowc}

for bin in "$PSAFLOWD" "$CLIENT" "$PSAFLOWC"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-daemon-smoke.XXXXXX")
SOCK="$WORK/psaflowd.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== daemon smoke via $PSAFLOWD =="
"$PSAFLOWD" --socket "$SOCK" --workers 4 --queue-depth 8 \
    --out "$WORK/served" --cache-dir "$WORK/cache" \
    > "$WORK/daemon.stdout" 2>&1 &
DAEMON_PID=$!

# Readiness: ping until the socket answers.
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then break; fi
    sleep 0.05
done
"$CLIENT" --socket "$SOCK" --ping > /dev/null

# 20 concurrent clients: 16 compiles (4 apps x 4), 3 stats, 1 doomed by a
# 1 ms deadline on the slowest app against a cold cache. Compiles retry on
# overload responses, so backpressure slows them down but loses nothing.
APPS=(adpredictor kmeans nbody bezier)
pids=()
codes_dir="$WORK/codes"
mkdir -p "$codes_dir"
for i in $(seq 0 15); do
    app=${APPS[$((i % 4))]}
    (
        rc=0
        "$CLIENT" --socket "$SOCK" --app "$app" --out "req-$i" \
            --retry 400 > /dev/null 2>> "$WORK/clients.stderr" || rc=$?
        echo "$rc" > "$codes_dir/compile-$i"
    ) &
    pids+=($!)
done
for i in 1 2 3; do
    (
        rc=0
        "$CLIENT" --socket "$SOCK" --stats --json > "$WORK/stats-$i.json" \
            2>> "$WORK/clients.stderr" || rc=$?
        echo "$rc" > "$codes_dir/stats-$i"
    ) &
    pids+=($!)
done
(
    rc=0
    "$CLIENT" --socket "$SOCK" --app rushlarsen --deadline-ms 1 \
        --retry 400 --out doomed > /dev/null \
        2>> "$WORK/clients.stderr" || rc=$?
    echo "$rc" > "$codes_dir/deadline"
) &
pids+=($!)
wait "${pids[@]}" || true

for i in $(seq 0 15); do
    code=$(cat "$codes_dir/compile-$i")
    if [ "$code" != 0 ]; then
        echo "FAIL: compile client $i exited $code" >&2
        cat "$WORK/clients.stderr" >&2
        exit 1
    fi
done
for i in 1 2 3; do
    code=$(cat "$codes_dir/stats-$i")
    if [ "$code" != 0 ]; then
        echo "FAIL: stats client $i exited $code" >&2
        exit 1
    fi
    grep -q '"type":"stats"' "$WORK/stats-$i.json" || {
        echo "FAIL: stats response $i malformed" >&2
        exit 1
    }
done
code=$(cat "$codes_dir/deadline")
if [ "$code" != 4 ]; then
    echo "FAIL: 1ms-deadline client exited $code, wanted 4" \
         "(deadline_exceeded)" >&2
    cat "$WORK/clients.stderr" >&2
    exit 1
fi
echo "20 concurrent clients done: 16 compiles ok, 3 stats ok," \
     "1 deadline-exceeded as expected"

# Byte-identity: the daemon's designs must match single-shot psaflowc.
for i in 0 1 2 3; do
    app=${APPS[$i]}
    "$PSAFLOWC" --app "$app" --out "$WORK/single/$app" > /dev/null
    for file in "$WORK/single/$app"/*; do
        diff -q "$file" "$WORK/served/req-$i/$(basename "$file")" \
            > /dev/null || {
            echo "FAIL: daemon design differs from psaflowc for $app:" \
                 "$(basename "$file")" >&2
            exit 1
        }
    done
done
echo "daemon designs byte-identical to single-shot psaflowc"

# Graceful drain: SIGTERM, daemon exits 0, socket file removed.
kill -TERM "$DAEMON_PID"
drain_status=0
wait "$DAEMON_PID" || drain_status=$?
DAEMON_PID=""
if [ "$drain_status" != 0 ]; then
    echo "FAIL: daemon exited $drain_status after SIGTERM" >&2
    cat "$WORK/daemon.stdout" >&2
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "FAIL: socket file left behind after drain" >&2
    exit 1
fi
grep -q "drained" "$WORK/daemon.stdout" || {
    echo "FAIL: daemon did not report a drain" >&2
    cat "$WORK/daemon.stdout" >&2
    exit 1
}

echo "daemon smoke passed: concurrent serving, deadline isolation," \
     "byte-identity and clean SIGTERM drain"
