#!/usr/bin/env bash
# 1-vs-4-shard serving benchmark → BENCH_9.json.
#
# Two workloads through psaflow-loadgen, each against (a) one psaflowd and
# (b) four psaflowd shards behind psaflow-router, every shard identically
# configured (2 workers, queue depth 8):
#
#   * compile — 10k mixed warm/cold compile requests across five apps.
#     Compiles are compute-bound, so on a single-core host the fleet can
#     only tie the lone daemon on raw throughput; what sharding buys here
#     is admission capacity (fewer overload rejections/errors).
#   * io_bound — sleep requests that hold a shard worker without burning
#     CPU (loadgen --sleep-ms), modelling I/O-bound service time. This
#     isolates what sharding multiplies — concurrent worker occupancy and
#     queue capacity — and is where the ≥2x throughput and queue-wait-p90
#     acceptance numbers come from.
#
# Every run replays the byte-identical SplitMix64 request stream (seed
# 42), so the comparison measures the topology, not the workload. Shards
# are restarted between runs so queue-wait stats are per-run.
#
# usage: scripts/bench_cluster.sh [psaflowd] [psaflow-router]
#                                 [psaflow-loadgen] [out.json]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWD=${1:-build/tools/psaflowd}
ROUTER=${2:-build/tools/psaflow-router}
LOADGEN=${3:-build/tools/psaflow-loadgen}
OUT=${4:-BENCH_9.json}

REQUESTS=${REQUESTS:-10000}
IO_REQUESTS=${IO_REQUESTS:-2000}
SLEEP_MS=${SLEEP_MS:-10}
CONCURRENCY=${CONCURRENCY:-16}
APPS="nbody,kmeans,bezier,adpredictor,rushlarsen"
SEED=42

for bin in "$PSAFLOWD" "$ROUTER" "$LOADGEN"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done
command -v jq > /dev/null || { echo "jq required" >&2; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-bench-cluster.XXXXXX")
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill -KILL "$pid" 2> /dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

scrape_port() {
    local stdout_file=$1 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*tcp port \([0-9][0-9]*\).*/\1/p' \
            "$stdout_file" 2> /dev/null | head -n 1)
        [ -n "$port" ] && break
        sleep 0.05
    done
    [ -n "$port" ] || { echo "no tcp port in $stdout_file" >&2; exit 1; }
    echo "$port"
}

stop_all() {
    for pid in "${PIDS[@]}"; do
        kill -TERM "$pid" 2> /dev/null || true
    done
    for pid in "${PIDS[@]}"; do
        wait "$pid" 2> /dev/null || true
    done
    PIDS=()
}

start_shard() { # name → port on stdout
    local name=$1 tag=$2
    "$PSAFLOWD" --listen 127.0.0.1:0 --shard-name "$name" --workers 2 \
        --queue-depth 8 --out "$WORK/out-$tag-$name" \
        --cache-dir "$WORK/cache-$name" --enable-test-endpoints \
        > "$WORK/shard-$tag-$name.stdout" 2>&1 &
    PIDS+=($!)
    scrape_port "$WORK/shard-$tag-$name.stdout"
}

run_single() { # label, extra loadgen args...
    local label=$1; shift
    local port
    port=$(start_shard solo "$label")
    "$LOADGEN" --connect "127.0.0.1:$port" --concurrency "$CONCURRENCY" \
        --apps "$APPS" --seed "$SEED" --label "$label" \
        --shard-stats "127.0.0.1:$port" --out "$WORK/$label.json" "$@" \
        || true
    stop_all
}

run_fleet() { # label, extra loadgen args...
    local label=$1; shift
    local specs=() stats=() port
    for name in a b c d; do
        port=$(start_shard "$name" "$label")
        specs+=(--shard "$name=127.0.0.1:$port")
        stats+=(--shard-stats "127.0.0.1:$port")
    done
    "$ROUTER" --socket "$WORK/router.sock" "${specs[@]}" \
        --health-interval-ms 200 > "$WORK/router-$label.stdout" 2>&1 &
    PIDS+=($!)
    for _ in $(seq 1 100); do
        [ -S "$WORK/router.sock" ] && break
        sleep 0.05
    done
    "$LOADGEN" --connect "$WORK/router.sock" --concurrency "$CONCURRENCY" \
        --apps "$APPS" --seed "$SEED" --label "$label" "${stats[@]}" \
        --out "$WORK/$label.json" "$@" || true
    stop_all
}

echo "== cluster bench: compile workload ($REQUESTS requests) =="
run_single single-compile --requests "$REQUESTS" --warm-fraction 0.9 \
    --warm-pool 8
run_fleet fleet4-compile --requests "$REQUESTS" --warm-fraction 0.9 \
    --warm-pool 8

echo "== cluster bench: io-bound workload ($IO_REQUESTS requests," \
     "${SLEEP_MS}ms service) =="
run_single single-io --requests "$IO_REQUESTS" --sleep-ms "$SLEEP_MS"
run_fleet fleet4-io --requests "$IO_REQUESTS" --sleep-ms "$SLEEP_MS"

jq -n \
    --slurpfile sc "$WORK/single-compile.json" \
    --slurpfile fc "$WORK/fleet4-compile.json" \
    --slurpfile si "$WORK/single-io.json" \
    --slurpfile fi "$WORK/fleet4-io.json" \
    --argjson cores "$(nproc)" \
    '{
      schema_version: 1,
      pr: 9,
      generated_by: "scripts/bench_cluster.sh",
      description: ("1 psaflowd vs 4 shards behind psaflow-router, " +
        "identical per-shard config (2 workers, queue depth 8) and " +
        "byte-identical seeded workloads. compile is compute-bound " +
        "(bounded by host cores); io_bound holds workers without CPU " +
        "and measures what sharding multiplies: worker occupancy and " +
        "admission capacity."),
      host: { cores: $cores },
      compile: {
        single: $sc[0],
        fleet4: $fc[0],
        throughput_ratio:
          ($fc[0].throughput_rps / $sc[0].throughput_rps),
        error_ratio:
          (if $sc[0].errors == 0 then null
           else ($fc[0].errors / $sc[0].errors) end),
        queue_wait_p90_ratio:
          (if $sc[0].queue_wait_us_p90_max == 0 then null
           else ($fc[0].queue_wait_us_p90_max /
                 $sc[0].queue_wait_us_p90_max) end)
      },
      io_bound: {
        single: $si[0],
        fleet4: $fi[0],
        throughput_ratio:
          ($fi[0].throughput_rps / $si[0].throughput_rps),
        queue_wait_p90_ratio:
          (if $si[0].queue_wait_us_p90_max == 0 then null
           else ($fi[0].queue_wait_us_p90_max /
                 $si[0].queue_wait_us_p90_max) end)
      }
    }' > "$OUT"

echo "wrote $OUT"
jq '{compile_ratio: .compile.throughput_ratio,
     io_ratio: .io_bound.throughput_ratio,
     io_queue_wait_p90_ratio: .io_bound.queue_wait_p90_ratio}' "$OUT"
