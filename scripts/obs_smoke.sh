#!/usr/bin/env bash
# End-to-end smoke for the observability plane:
#
#   1. run psaflowc with every exporter on (Chrome trace, registry trace,
#      decision reports, Prometheus metrics) and validate the artifacts
#      with psaflow-obscheck — one rooted span tree, well-formed explain
#      report, sane registry schema,
#   2. repeat under PSAFLOW_JOBS=4: pool fan-out must still produce a
#      single rooted span tree,
#   3. rerun with PSAFLOW_TRACE=0 and no exporters and require the design
#      outputs to be byte-identical — observability must never change
#      what is computed,
#   4. start a psaflowd, compile once through it, scrape the Prometheus
#      endpoint and the structured-log ring over the socket, then SIGTERM
#      and require a clean drain.
#
# usage: scripts/obs_smoke.sh [psaflowc] [psaflow-obscheck] [psaflowd] \
#                             [psaflow-client]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWC=${1:-build/tools/psaflowc}
OBSCHECK=${2:-build/tools/psaflow-obscheck}
PSAFLOWD=${3:-build/tools/psaflowd}
CLIENT=${4:-build/tools/psaflow-client}

for bin in "$PSAFLOWC" "$OBSCHECK" "$PSAFLOWD" "$CLIENT"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-obs-smoke.XXXXXX")
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

APP=nbody
echo "== obs smoke: $APP via $PSAFLOWC =="

# ---- 1. every exporter on, sequential --------------------------------------
"$PSAFLOWC" --app "$APP" --out "$WORK/obs-on" \
    --trace-out "$WORK/flame.json" --trace-format chrome \
    --explain "$WORK/why.json" --explain-md "$WORK/why.md" \
    --metrics-out "$WORK/metrics.prom" > "$WORK/obs-on.stdout"
"$OBSCHECK" --chrome-trace "$WORK/flame.json" --expect-roots 1
"$OBSCHECK" --explain "$WORK/why.json"
grep -q '^## ' "$WORK/why.md" || {
    echo "FAIL: markdown explain report has no branch sections" >&2
    exit 1
}
grep -q '^# TYPE ' "$WORK/metrics.prom" || {
    echo "FAIL: metrics file carries no Prometheus TYPE headers" >&2
    exit 1
}

# The registry-format trace must validate too.
"$PSAFLOWC" --app "$APP" --out "$WORK/obs-registry" \
    --trace-out "$WORK/trace.json" > /dev/null
"$OBSCHECK" --trace "$WORK/trace.json"

# ---- 2. pool fan-out keeps one rooted tree ---------------------------------
PSAFLOW_JOBS=4 "$PSAFLOWC" --app "$APP" --out "$WORK/obs-par" \
    --trace-out "$WORK/flame-par.json" --trace-format chrome > /dev/null
"$OBSCHECK" --chrome-trace "$WORK/flame-par.json" --expect-roots 1
echo "span trees rooted: sequential and PSAFLOW_JOBS=4"

# ---- 3. observability must not change the designs --------------------------
PSAFLOW_TRACE=0 "$PSAFLOWC" --app "$APP" --out "$WORK/obs-off" \
    > "$WORK/obs-off.stdout"
for file in "$WORK/obs-off"/*; do
    diff -q "$file" "$WORK/obs-on/$(basename "$file")" > /dev/null || {
        echo "FAIL: design output differs with tracing on:" \
             "$(basename "$file")" >&2
        exit 1
    }
done
echo "designs byte-identical with tracing on and PSAFLOW_TRACE=0"

# ---- 4. daemon scrape ------------------------------------------------------
SOCK="$WORK/psaflowd.sock"
"$PSAFLOWD" --socket "$SOCK" --workers 2 --out "$WORK/served" \
    --cache-dir "$WORK/cache" > "$WORK/daemon.stdout" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then break; fi
    sleep 0.05
done
"$CLIENT" --socket "$SOCK" --app adpredictor --out req > /dev/null

"$CLIENT" --socket "$SOCK" --metrics > "$WORK/scrape.prom"
grep -q '^# TYPE psaflowd_requests_total counter' "$WORK/scrape.prom" || {
    echo "FAIL: daemon scrape missing psaflowd_requests_total" >&2
    cat "$WORK/scrape.prom" >&2
    exit 1
}
grep -q 'psaflowd_requests_total{outcome="completed"} 1' \
    "$WORK/scrape.prom" || {
    echo "FAIL: daemon scrape did not count the completed compile" >&2
    exit 1
}
grep -q '^# TYPE psaflowd_request_latency_us histogram' \
    "$WORK/scrape.prom" || {
    echo "FAIL: daemon scrape missing the latency histogram" >&2
    exit 1
}

"$CLIENT" --socket "$SOCK" --logs > "$WORK/logs.txt"
grep -q 'daemon listening' "$WORK/logs.txt" || {
    echo "FAIL: log ring missing the startup record" >&2
    cat "$WORK/logs.txt" >&2
    exit 1
}
echo "daemon served Prometheus metrics and the log ring over the socket"

kill -TERM "$DAEMON_PID"
drain_status=0
wait "$DAEMON_PID" || drain_status=$?
DAEMON_PID=""
if [ "$drain_status" != 0 ]; then
    echo "FAIL: daemon exited $drain_status after SIGTERM" >&2
    cat "$WORK/daemon.stdout" >&2
    exit 1
fi

echo "obs smoke passed: rooted span trees, valid explain reports," \
     "zero-cost-off byte-identity and a live metrics scrape"
