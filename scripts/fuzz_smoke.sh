#!/usr/bin/env bash
# 60-second fixed-seed fuzzing smoke: builds the asan preset
# (-fsanitize=address,undefined) and runs psaflow-fuzz under it with a
# wall-clock budget, so memory errors anywhere in the
# generate -> transform -> interpret -> emit -> flow pipeline surface as
# sanitizer reports rather than silent corruption. The seed is fixed, so a
# failure here is reproducible with:
#
#   build-asan/tools/psaflow-fuzz --seed <reported seed> --runs 1 --shrink
#
# usage: scripts/fuzz_smoke.sh [seconds] [jobs]
set -euo pipefail

SECONDS_BUDGET=${1:-60}
JOBS=${2:-$(nproc)}
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$JOBS" --target psaflow-fuzz

export ASAN_OPTIONS=detect_leaks=0
export UBSAN_OPTIONS=halt_on_error=1

echo "== psaflow-fuzz (asan/ubsan, ${SECONDS_BUDGET}s budget) =="
build-asan/tools/psaflow-fuzz --seed 1 --runs 1000000 \
    --max-seconds "$SECONDS_BUDGET" \
    --shrink --corpus-dir build-asan/fuzz-failures

echo "fuzz smoke passed"
