#!/usr/bin/env bash
# Sanitized fuzzing + VM differential smoke.
#
# Part 1: builds the asan preset (-fsanitize=address,undefined) and runs
# psaflow-fuzz under it with a wall-clock budget — including the tree-vs-VM
# engine differential (--check-vm) — so memory errors anywhere in the
# generate -> transform -> interpret (both engines) -> emit -> flow
# pipeline surface as sanitizer reports rather than silent corruption. The
# seed is fixed, so a failure here is reproducible with:
#
#   build-asan/tools/psaflow-fuzz --seed <reported seed> --runs 1 \
#       --check-vm --shrink
#
# Part 2: runs the bytecode-VM suite (test_vm: lowering snapshots, dispatch
# edge cases, cancellation, app/flow byte-identity) under both the asan and
# tsan presets; the flow-level tests drive jobs=3, so data races between
# the VM and the branch-path pool are tsan-visible.
#
# usage: scripts/fuzz_smoke.sh [seconds] [jobs]
set -euo pipefail

SECONDS_BUDGET=${1:-60}
JOBS=${2:-$(nproc)}
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$JOBS" --target psaflow-fuzz test_vm

export ASAN_OPTIONS=detect_leaks=0
export UBSAN_OPTIONS=halt_on_error=1

echo "== psaflow-fuzz (asan/ubsan, ${SECONDS_BUDGET}s budget, --check-vm) =="
build-asan/tools/psaflow-fuzz --seed 1 --runs 1000000 \
    --max-seconds "$SECONDS_BUDGET" --check-vm \
    --shrink --corpus-dir build-asan/fuzz-failures

echo "== test_vm (asan/ubsan) =="
build-asan/tests/test_vm

cmake --preset tsan
cmake --build --preset tsan -j "$JOBS" --target test_vm

echo "== test_vm (tsan) =="
build-tsan/tests/test_vm

echo "fuzz smoke passed"
