#!/usr/bin/env bash
# End-to-end smoke for the flow-manifest surface:
#
#   1. export the builtin standard flow as a manifest
#      (`psaflowc --export-flow`) and require the stdout and file
#      spellings to agree,
#   2. re-import it through `psaflowc --flow` and require byte-identical
#      designs AND stdout against the builtin flow for every bundled app
#      at jobs 1 and jobs 4,
#   3. require an invalid manifest (unknown task id) to be rejected with
#      exit 2 and a located diagnostic before any compile starts,
#   4. ship the manifest inside a compile request to a live psaflowd via
#      `psaflow-client --flow` and require the served designs to be
#      byte-identical to single-shot psaflowc,
#   5. run a quick `psaflow-fuzz --check-manifest` differential sweep.
#
# usage: scripts/manifest_smoke.sh [psaflowc] [psaflowd] [psaflow-client]
#        [psaflow-fuzz]
set -euo pipefail

cd "$(dirname "$0")/.."
PSAFLOWC=${1:-build/tools/psaflowc}
PSAFLOWD=${2:-build/tools/psaflowd}
CLIENT=${3:-build/tools/psaflow-client}
FUZZ=${4:-build/tools/psaflow-fuzz}

for bin in "$PSAFLOWC" "$PSAFLOWD" "$CLIENT" "$FUZZ"; do
    if [ ! -x "$bin" ]; then
        echo "binary not found at '$bin' (build it first, or pass the" \
             "path as an argument)" >&2
        exit 1
    fi
done
PSAFLOWC=$(readlink -f "$PSAFLOWC")
PSAFLOWD=$(readlink -f "$PSAFLOWD")
CLIENT=$(readlink -f "$CLIENT")
FUZZ=$(readlink -f "$FUZZ")

WORK=$(mktemp -d "${TMPDIR:-/tmp}/psaflow-manifest-smoke.XXXXXX")
SOCK="$WORK/psaflowd.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== manifest smoke via $PSAFLOWC =="

# 1. Export the builtin flow; the file and stdout spellings must agree.
"$PSAFLOWC" --export-flow "$WORK/std.json" > /dev/null
"$PSAFLOWC" --export-flow - > "$WORK/std-stdout.json"
diff -q "$WORK/std.json" "$WORK/std-stdout.json" > /dev/null || {
    echo "FAIL: --export-flow file and stdout spellings differ" >&2
    exit 1
}
echo "exported the standard flow as a manifest"

# 2. Byte-identity: builtin vs exported-manifest flow, all apps, jobs 1/4.
# Each run happens in its own cwd with the same relative --out so stdout
# (which prints the out dir) is comparable byte for byte.
APPS=(adpredictor kmeans nbody bezier rushlarsen)
for app in "${APPS[@]}"; do
    for jobs in 1 4; do
        mkdir -p "$WORK/builtin/$app-$jobs" "$WORK/manifest/$app-$jobs"
        (cd "$WORK/builtin/$app-$jobs" &&
         "$PSAFLOWC" --app "$app" --jobs "$jobs" --out designs \
             > stdout.txt)
        (cd "$WORK/manifest/$app-$jobs" &&
         "$PSAFLOWC" --app "$app" --jobs "$jobs" --out designs \
             --flow "$WORK/std.json" > stdout.txt)
        diff -r "$WORK/builtin/$app-$jobs" "$WORK/manifest/$app-$jobs" \
            > /dev/null || {
            echo "FAIL: --flow std.json differs from the builtin flow" \
                 "for $app at jobs=$jobs" >&2
            diff -r "$WORK/builtin/$app-$jobs" \
                 "$WORK/manifest/$app-$jobs" >&2 || true
            exit 1
        }
    done
done
echo "exported manifest byte-identical to the builtin flow" \
     "(${#APPS[@]} apps x jobs 1,4: designs + stdout)"

# 3. An invalid manifest is rejected up front with a located diagnostic.
cat > "$WORK/bad.json" <<'EOF'
{"psaflow_manifest": 1, "prologue": ["no-such-task"]}
EOF
rc=0
"$PSAFLOWC" --app nbody --out "$WORK/never" --flow "$WORK/bad.json" \
    > /dev/null 2> "$WORK/bad.stderr" || rc=$?
if [ "$rc" != 2 ]; then
    echo "FAIL: invalid manifest exited $rc, wanted 2" >&2
    exit 1
fi
grep -q "\$.prologue\[0\]: unknown task id 'no-such-task'" \
    "$WORK/bad.stderr" || {
    echo "FAIL: invalid manifest missing the located diagnostic:" >&2
    cat "$WORK/bad.stderr" >&2
    exit 1
}
if [ -e "$WORK/never" ]; then
    echo "FAIL: invalid manifest still produced output" >&2
    exit 1
fi
echo "invalid manifest rejected with exit 2 and a located diagnostic"

# 4. The daemon accepts an in-request flow and serves identical designs.
"$PSAFLOWD" --socket "$SOCK" --workers 2 --out "$WORK/served" \
    > "$WORK/daemon.stdout" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then break; fi
    sleep 0.05
done
"$CLIENT" --socket "$SOCK" --ping > /dev/null
"$CLIENT" --socket "$SOCK" --app nbody --flow "$WORK/std.json" \
    --out via-flow > /dev/null
for file in "$WORK/builtin/nbody-1/designs"/*; do
    diff -q "$file" "$WORK/served/via-flow/$(basename "$file")" \
        > /dev/null || {
        echo "FAIL: daemon design differs from psaflowc with the same" \
             "manifest: $(basename "$file")" >&2
        exit 1
    }
done
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "FAIL: daemon exited non-zero after SIGTERM" >&2
    cat "$WORK/daemon.stdout" >&2
    exit 1
}
DAEMON_PID=""
echo "daemon served the in-request flow byte-identically"

# 5. Quick differential sweep of the manifest fuzzer.
"$FUZZ" --check-manifest --seed 1 --runs 5 > "$WORK/fuzz.stdout" || {
    echo "FAIL: psaflow-fuzz --check-manifest found a mismatch" >&2
    cat "$WORK/fuzz.stdout" >&2
    exit 1
}
grep -q "5 manifest run(s), 0 failure(s)" "$WORK/fuzz.stdout" || {
    echo "FAIL: unexpected --check-manifest summary:" >&2
    cat "$WORK/fuzz.stdout" >&2
    exit 1
}
echo "manifest fuzz sweep clean"

echo "manifest smoke passed: export round-trip, byte-identity across" \
     "apps and jobs, located rejection, daemon in-request flows and the" \
     "differential fuzzer"
