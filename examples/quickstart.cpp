// quickstart: the five-minute tour of psaflow.
//
// 1. Write a technology-agnostic application in HLC (a C-like subset).
// 2. Describe how to run it (workload: entry point + argument factory).
// 3. Call psaflow::compile — the PSA-flow finds the hotspot, analyses it,
//    picks a target (Fig. 3 strategy), applies the target- and
//    device-specific optimisations and emits ready-to-build design sources.
//
// This example also demonstrates the Fig. 2 meta-program directly: query
// the kernel's outermost loops and instrument them with a pragma.
#include <iostream>

#include "ast/printer.hpp"
#include "core/psaflow.hpp"
#include "frontend/parser.hpp"
#include "interp/value.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "support/prng.hpp"
#include "support/string_util.hpp"

using namespace psaflow;

namespace {

// A small image-blur application: 1-D 5-point stencil smoothing passes.
const char* kBlurSource = R"(
void blur_pass(int n, double* src, double* dst) {
    for (int i = 2; i < n - 2; i = i + 1) {
        dst[i] = 0.0625 * src[i - 2] + 0.25 * src[i - 1] + 0.375 * src[i]
               + 0.25 * src[i + 1] + 0.0625 * src[i + 2];
    }
}

void run(int n, int passes, double* a, double* b) {
    for (int p = 0; p < passes; p = p + 1) {
        blur_pass(n, a, b);
        blur_pass(n, b, a);
    }
}
)";

analysis::Workload blur_workload() {
    analysis::Workload w;
    w.entry = "run";
    w.profile_scale = 1.0;
    w.eval_scale = 4096.0; // 4M-element signal at evaluation scale
    w.make_args = [](double scale) {
        const int n = static_cast<int>(1024 * scale);
        auto a = std::make_shared<interp::Buffer>(ast::Type::Double,
                                                  static_cast<std::size_t>(n),
                                                  "a");
        auto b = std::make_shared<interp::Buffer>(ast::Type::Double,
                                                  static_cast<std::size_t>(n),
                                                  "b");
        SplitMix64 rng(7);
        for (int i = 0; i < n; ++i) a->store(i, rng.uniform(0.0, 255.0));
        return std::vector<interp::Arg>{interp::Value::of_int(n),
                                        interp::Value::of_int(4), a, b};
    };
    return w;
}

} // namespace

int main() {
    std::cout << "psaflow quickstart (" << version() << ")\n\n";

    // --- 1. the Fig. 2 meta-program mechanism, by hand --------------------
    auto module = frontend::parse_module(kBlurSource, "blur");
    ast::Function* fn = module->find_function("blur_pass");
    for (ast::For* loop : meta::outermost_for_loops(*fn)) {
        meta::add_pragma(*loop, "unroll 4");
    }
    std::cout << "--- instrumented source (query + instrument) ---\n"
              << ast::to_source(*fn) << "\n";

    // --- 2. the full PSA-flow ----------------------------------------------
    std::cout << "--- running the informed PSA-flow ---\n";
    auto result = compile("blur", kBlurSource, blur_workload());

    std::cout << "reference single-thread hotspot time: "
              << format_compact(result.reference_seconds, 4) << " s\n\n";
    for (const auto& design : result.designs) {
        std::cout << "generated design '" << design.name() << "': "
                  << format_compact(design.speedup, 4) << "x speedup, +"
                  << format_compact(100.0 * design.loc_delta, 3)
                  << "% LOC\n";
        std::cout << "  target decisions:\n";
        for (const auto& line : design.log) {
            if (line.find("PSA") != std::string::npos ||
                line.find("DSE") != std::string::npos ||
                line.find("threads") != std::string::npos)
                std::cout << "    " << line << "\n";
        }
    }

    // --- 3. the emitted design source ------------------------------------
    if (!result.designs.empty()) {
        std::cout << "\n--- emitted design source (first 30 lines) ---\n";
        int shown = 0;
        for (const auto& line : split(result.designs[0].source, '\n')) {
            std::cout << line << "\n";
            if (++shown == 30) break;
        }
    }
    return 0;
}
