// flow_explorer: run the standard PSA-flow on one of the bundled
// applications and dump everything the flow did — analysis notes, the
// Fig. 3 decision at branch point A, per-device DSE traces and the final
// design summaries. The tool to reach for when you wonder *why* the flow
// picked a target.
//
// Usage: flow_explorer [app] [informed|uninformed]
//        flow_explorer --list
#include <cstring>
#include <iostream>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"

using namespace psaflow;

int main(int argc, char** argv) {
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const apps::Application* app : apps::all_applications()) {
            std::cout << app->name << ": " << app->description << "\n";
        }
        return 0;
    }

    const std::string app_name = argc > 1 ? argv[1] : "nbody";
    const std::string mode_name = argc > 2 ? argv[2] : "uninformed";

    const apps::Application& app = apps::application_by_name(app_name);
    RunOptions options;
    options.mode = mode_name == "informed" ? flow::Mode::Informed
                                           : flow::Mode::Uninformed;

    std::cout << "=== " << app.name << " (" << mode_name << " PSA-flow) ===\n";
    std::cout << app.description << "\n\n";

    auto result = compile(app, options);

    std::cout << "reference 1-thread CPU hotspot time: "
              << format_compact(result.reference_seconds, 4) << " s\n\n";

    for (const auto& design : result.designs) {
        std::cout << "--- design: " << design.name() << " ---\n";
        for (const auto& line : design.log) std::cout << "  " << line << "\n";
        std::cout << "  shape: flops=" << format_compact(design.shape.flops, 4)
                  << " footprint=" << format_compact(design.shape.footprint_bytes, 4)
                  << "B in=" << format_compact(design.shape.bytes_in, 4)
                  << "B out=" << format_compact(design.shape.bytes_out, 4)
                  << "B par_iters=" << format_compact(design.shape.parallel_iters, 4)
                  << "\n         cpi=" << format_compact(design.shape.sequential_cycles_per_iter, 4)
                  << " dep_frac=" << format_compact(design.shape.dependent_fraction, 3)
                  << " tf=" << format_compact(design.shape.transcendental_fraction, 3)
                  << " regs=" << design.shape.regs_per_thread
                  << " fpga_traffic=" << format_compact(design.shape.fpga_traffic(), 4)
                  << "B gpu_xfer=" << format_compact(design.shape.gpu_transfer(), 4)
                  << "B\n";
        std::cout << "  => " << (design.synthesizable
                                     ? format_compact(design.speedup, 4) +
                                           "x speedup, " +
                                           format_compact(design.hotspot_seconds, 4) +
                                           " s"
                                     : std::string("NOT SYNTHESIZABLE"))
                  << ", +" << format_compact(100.0 * design.loc_delta, 3)
                  << "% LOC\n\n";
    }
    return 0;
}
