// custom_flow: extending psaflow with your own design-flow.
//
// The paper's closing argument is that "to target new technology,
// target-specific design-flow tasks can be implemented and seamlessly
// plugged in". This example does exactly that:
//   - defines a new Task (a loop-interchange-style "Reverse Unroll Hint"
//     is too trivial; we implement a real one: a tiling annotation task for
//     a hypothetical many-core 'DSP cluster' target),
//   - defines a custom PsaStrategy (prefer the accelerator whenever the
//     outer loop is parallel, no cost model),
//   - assembles a two-path DesignFlow from repository tasks + the new task
//     and runs it on the K-Means benchmark.
#include <iostream>

#include "core/psaflow.hpp"
#include "flow/session.hpp"
#include "flow/strategy.hpp"
#include "flow/tasks.hpp"
#include "frontend/parser.hpp"
#include "meta/instrument.hpp"
#include "support/string_util.hpp"

using namespace psaflow;

namespace {

/// A custom design-flow task: annotate the kernel's outer loop with a
/// cache-tiling hint for a fictional DSP-cluster backend.
class TileForDspCluster final : public flow::Task {
public:
    std::string name() const override { return "Tile For DSP Cluster"; }
    flow::TaskClass cls() const override {
        return flow::TaskClass::Transform;
    }

    void run(flow::FlowContext& ctx) override {
        meta::remove_pragmas(ctx.outer_loop(), "dsp tile");
        meta::add_pragma(ctx.outer_loop(), "dsp tile(128)");
        // Reuse the OpenMP backend for emission: the DSP cluster runs an
        // OpenMP-like runtime in this (deliberately simple) example.
        ctx.spec.target = codegen::TargetKind::CpuOpenMp;
        ctx.spec.omp_threads = 16; // the cluster has 16 DSP cores
        ctx.note("tiled outer loop for the DSP cluster (tile 128, 16 cores)");
    }
};

/// A custom PSA strategy: always offload parallel loops to the new target,
/// keep sequential ones on the CPU path.
class PreferDspStrategy final : public flow::PsaStrategy {
public:
    std::string name() const override { return "prefer-dsp"; }

    std::vector<std::size_t> select(flow::FlowContext& ctx,
                                    const flow::BranchPoint& branch) override {
        const bool parallel = ctx.outer_dependence().parallel;
        ctx.note(std::string("custom PSA: outer loop is ") +
                 (parallel ? "parallel -> dsp path" : "sequential -> cpu"));
        for (std::size_t i = 0; i < branch.paths.size(); ++i) {
            if (branch.paths[i].name == (parallel ? "dsp" : "cpu")) return {i};
        }
        return {};
    }
};

} // namespace

int main() {
    // Assemble: standard target-independent prologue, then a custom branch.
    flow::DesignFlow custom;
    custom.prologue = {
        flow::identify_hotspot_loops(), flow::hotspot_loop_extraction(),
        flow::loop_dependence_analysis(),
        flow::remove_array_plus_eq(),
    };

    auto branch = std::make_shared<flow::BranchPoint>();
    branch->name = "A' (custom)";
    branch->strategy = std::make_shared<PreferDspStrategy>();
    branch->paths.push_back(flow::FlowPath{
        "dsp", {std::make_shared<TileForDspCluster>()}, nullptr});
    branch->paths.push_back(flow::FlowPath{
        "cpu",
        {flow::multi_thread_parallel_loops(), flow::omp_num_threads_dse()},
        nullptr});
    custom.branch = branch;

    // Run it on K-Means.
    const auto& app = apps::kmeans();
    auto module = frontend::parse_module(app.source, app.name);
    flow::FlowContext ctx(app.name, std::move(module), app.workload);

    // FlowSession is the engine's front door; a default session inherits
    // jobs/cache settings from the environment.
    flow::FlowSession session;
    auto result = session.run(custom, std::move(ctx));

    std::cout << "=== custom PSA-flow on " << app.name << " ===\n\n";
    for (const auto& design : result.designs) {
        std::cout << "design '" << design.name() << "' ("
                  << format_compact(design.speedup, 4) << "x):\n";
        for (const auto& line : design.log) std::cout << "  " << line << "\n";
        const auto pos = design.source.find("#pragma dsp tile");
        std::cout << "  dsp tiling pragma in emitted source: "
                  << (pos != std::string::npos ? "yes" : "no") << "\n\n";
    }
    return 0;
}
