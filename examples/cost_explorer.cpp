// cost_explorer: the Section IV-D scenario — heterogeneous-cloud mapping
// under price and budget constraints.
//
// Demonstrates:
//   1. deriving per-design run costs from the predicted times and cloud
//      prices (the paper's Fig. 6 reasoning, for all five apps);
//   2. the Fig. 3 budget feedback loop: give the informed flow a run-cost
//      budget and watch it re-select a cheaper target when the first
//      choice busts it.
#include <iostream>
#include <string>

#include "core/psaflow.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

using namespace psaflow;

int main(int argc, char** argv) {
    const std::string app_name = argc > 1 ? argv[1] : "adpredictor";
    const apps::Application& app = apps::application_by_name(app_name);

    flow::CostModel prices; // defaults: CPU $2/h, GPU $3/h, FPGA $1.65/h

    std::cout << "=== cost explorer: " << app.name << " ===\n";
    std::cout << "cloud prices: CPU $" << prices.cpu_per_hour << "/h, GPU $"
              << prices.gpu_per_hour << "/h, FPGA $" << prices.fpga_per_hour
              << "/h\n\n";

    // --- all designs with their run costs --------------------------------
    RunOptions uninformed;
    uninformed.mode = flow::Mode::Uninformed;
    auto all = compile(app, uninformed);

    TablePrinter table({"design", "speedup", "hotspot time", "run cost"});
    for (const auto& d : all.designs) {
        if (!d.synthesizable) {
            table.add_row({d.name(), "overmapped", "-", "-"});
            continue;
        }
        const double cost =
            prices.run_cost(d.spec.target, d.hotspot_seconds);
        table.add_row({d.name(), format_compact(d.speedup, 4) + "x",
                       format_compact(d.hotspot_seconds, 4) + " s",
                       "$" + format_compact(cost, 3)});
    }
    table.print(std::cout);

    // --- budget feedback ----------------------------------------------------
    const auto* best = all.best();
    if (best == nullptr) return 0;
    const double best_cost =
        prices.run_cost(best->spec.target, best->hotspot_seconds);

    std::cout << "\n--- Fig. 3 budget feedback ---\n";
    std::cout << "unconstrained informed selection:\n";
    RunOptions informed;
    informed.mode = flow::Mode::Informed;
    auto unconstrained = compile(app, informed);
    for (const auto& d : unconstrained.designs) {
        std::cout << "  -> " << d.name() << " ($"
                  << format_compact(
                         prices.run_cost(d.spec.target, d.hotspot_seconds), 3)
                  << " per run)\n";
    }

    // Budget slightly below the unconstrained choice's cost: the engine
    // must re-select (the "IF cost > budget: revise design" loop).
    if (!unconstrained.designs.empty() &&
        unconstrained.designs[0].spec.target != codegen::TargetKind::None) {
        const auto& first = unconstrained.designs[0];
        const double first_cost =
            prices.run_cost(first.spec.target, first.hotspot_seconds);
        RunOptions constrained = informed;
        constrained.budget.max_run_cost = first_cost * 0.5;
        std::cout << "\nbudget set to $"
                  << format_compact(constrained.budget.max_run_cost, 3)
                  << " (half the unconstrained choice):\n";
        auto revised = compile(app, constrained);
        for (const auto& d : revised.designs) {
            std::cout << "  -> " << d.name() << " ($"
                      << format_compact(prices.run_cost(d.spec.target,
                                                        d.hotspot_seconds),
                                        3)
                      << " per run)"
                      << (d.spec.target != first.spec.target
                              ? "  [revised by cost feedback]"
                              : "")
                      << "\n";
        }
    }
    (void)best_cost;
    return 0;
}
