#include "transform/parallel.hpp"

#include <algorithm>
#include <set>

#include "ast/walk.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "support/string_util.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

void insert_omp_parallel_for(For& loop, int num_threads,
                             const std::vector<analysis::Reduction>& reductions) {
    meta::remove_pragmas(loop, "omp ");
    std::string text =
        "omp parallel for num_threads(" + std::to_string(num_threads) + ")";
    for (const auto& r : reductions) {
        text += " reduction(";
        text += r.op;
        text += ":" + r.var + ")";
    }
    meta::add_pragma(loop, std::move(text));
}

std::vector<std::string> shared_mem_candidates(const For& outer) {
    std::set<std::string> out;
    for (const For* inner : meta::inner_for_loops(const_cast<For&>(outer))) {
        walk(static_cast<const Node&>(*inner->body), [&](const Node& n) {
            const auto* ix = dyn_cast<Index>(&n);
            if (ix == nullptr) return true;
            const auto* base = dyn_cast<Ident>(ix->base.get());
            if (base == nullptr) return true;
            // Read-only within the nest and independent of the outer var.
            bool uses_outer = false;
            walk(static_cast<const Node&>(*ix->index), [&](const Node& sub) {
                if (const auto* id = dyn_cast<Ident>(&sub)) {
                    if (id->name == outer.var) uses_outer = true;
                }
                return !uses_outer;
            });
            if (!uses_outer &&
                !meta::writes_variable(const_cast<For&>(outer), base->name)) {
                out.insert(base->name);
            }
            return true;
        });
    }
    return {out.begin(), out.end()};
}

void annotate_shared_mem(For& outer, const std::vector<std::string>& arrays) {
    meta::remove_pragmas(outer, "gpu shared(");
    if (arrays.empty()) return;
    meta::add_pragma(outer, "gpu shared(" + join(arrays, ",") + ")");
}

std::vector<std::string> shared_mem_annotation(const For& outer) {
    auto pragma = meta::find_pragma(outer, "gpu shared(");
    if (!pragma.has_value()) return {};
    const auto open = pragma->find('(');
    const auto close = pragma->rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open)
        return {};
    std::vector<std::string> out;
    for (auto& part : split(pragma->substr(open + 1, close - open - 1), ',')) {
        if (!trim(part).empty()) out.emplace_back(trim(part));
    }
    return out;
}

} // namespace psaflow::transform
