#include "transform/accumulation.hpp"

#include <string>
#include <vector>

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

namespace {

/// Does `node` reference identifier `name` anywhere?
bool mentions(const Node& node, const std::string& name) {
    bool found = false;
    walk(node, [&](const Node& n) {
        if (const auto* id = dyn_cast<Ident>(&n)) {
            if (id->name == name) found = true;
        }
        return !found;
    });
    return found;
}

/// Names of all variables assigned (scalar or array) in `body`.
std::vector<std::string> assigned_names(const Block& body) {
    std::vector<std::string> out;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* a = dyn_cast<Assign>(&n)) {
            const Expr* t = a->target.get();
            if (const auto* id = dyn_cast<Ident>(t)) out.push_back(id->name);
            if (const auto* ix = dyn_cast<Index>(t)) {
                if (const auto* base = dyn_cast<Ident>(ix->base.get()))
                    out.push_back(base->name);
            }
        }
        return true;
    });
    return out;
}

} // namespace

int remove_array_accumulation(Module& module, For& loop) {
    // Find candidate accumulation statements.
    struct Candidate {
        Assign* assign;
        std::string array;
    };
    std::vector<Candidate> candidates;
    // Loop-varying state: anything assigned in the body, plus anything
    // *bound* inside it — inner-loop induction variables and local
    // declarations take a fresh (iteration-dependent) value each trip, and
    // are out of scope at the post-loop write-back site.
    auto mutated = assigned_names(*loop.body);
    const auto bound = meta::declared_names(static_cast<Node&>(*loop.body));
    mutated.insert(mutated.end(), bound.begin(), bound.end());
    auto is_mutated = [&](const std::string& name) {
        for (const auto& m : mutated) {
            if (m == name) return true;
        }
        return false;
    };

    walk(static_cast<Node&>(*loop.body), [&](Node& n) {
        auto* a = dyn_cast<Assign>(&n);
        if (a == nullptr) return true;
        if (a->op != AssignOp::Add && a->op != AssignOp::Sub) return true;
        auto* ix = dyn_cast<Index>(a->target.get());
        if (ix == nullptr) return true;
        const auto* base = dyn_cast<Ident>(ix->base.get());
        if (base == nullptr) return true;

        // Index must be loop-invariant: no induction variable, no mutated
        // state, no array reads of mutated arrays.
        const Expr& index = *ix->index;
        if (mentions(index, loop.var)) return true;
        bool invariant = true;
        walk(static_cast<const Node&>(index), [&](const Node& sub) {
            if (const auto* id = dyn_cast<Ident>(&sub)) {
                if (is_mutated(id->name)) invariant = false;
            }
            return invariant;
        });
        if (!invariant) return true;

        candidates.push_back({a, base->name});
        return true;
    });

    // An array qualifies only if its sole access in the loop is its one
    // accumulation statement.
    int applied = 0;
    for (const auto& cand : candidates) {
        int array_uses = 0;
        walk(static_cast<const Node&>(*loop.body), [&](const Node& n) {
            if (const auto* id = dyn_cast<Ident>(&n)) {
                if (id->name == cand.array) ++array_uses;
            }
            return true;
        });
        if (array_uses != 1) continue; // accessed elsewhere: unsafe

        // Rewrite. The accumulator name must be unique even across repeated
        // invocations on the same function, and must depend only on module
        // content: node-id-derived names differ between equal clones, which
        // would break the flow engine's byte-identical-result guarantee.
        const auto taken = [&module](const std::string& name) {
            if (mentions(module, name)) return true;
            for (const auto& d :
                 meta::declared_names(static_cast<Node&>(module)))
                if (d == name) return true;
            return false;
        };
        std::string acc = cand.array + "_acc";
        for (int k = 1; taken(acc); ++k)
            acc = cand.array + "_acc" + std::to_string(k);

        ParentMap parents(module);
        // double <acc> = 0.0;  (before the loop)
        meta::insert_before(parents, loop,
                            build::var_decl(Type::Double, acc,
                                            build::float_lit(0.0)));
        // A[e] += <acc>;  (after the loop; Sub-accumulations still *add*
        // the scalarised total because the sign lives in the accumulator)
        auto writeback = std::make_unique<Assign>();
        writeback->op = AssignOp::Add;
        writeback->target = clone_expr(*cand.assign->target);
        writeback->value = build::ident(acc);
        meta::insert_after(parents, loop, std::move(writeback));

        // Inside the loop: acc += rhs (or acc -= rhs).
        cand.assign->target = build::ident(acc);
        ++applied;
    }
    return applied;
}

} // namespace psaflow::transform
