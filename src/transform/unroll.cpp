#include "transform/unroll.hpp"

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/walk.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "transform/rewrite.hpp"
#include "support/error.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

namespace {

void check_var_not_written(const For& loop) {
    ensure(!meta::writes_variable(const_cast<Block&>(*loop.body), loop.var),
           "unroll: loop body writes the induction variable '" + loop.var +
               "'");
}

/// body clone with v := v + offset (offset 0 returns a plain clone).
BlockPtr offset_body(const For& loop, long long offset) {
    BlockPtr copy = clone_block(*loop.body);
    if (offset != 0) {
        auto replacement = build::binary(BinaryOp::Add, build::ident(loop.var),
                                         build::int_lit(offset));
        substitute_ident(*copy, loop.var, *replacement);
    }
    return copy;
}

} // namespace

void unroll_loop(Module& module, For& loop, int factor) {
    if (factor <= 1) return;
    check_var_not_written(loop);
    const auto step = meta::fold_int_constant(*loop.step);
    ensure(step.has_value() && *step > 0,
           "unroll: loop step must be a positive constant");

    ParentMap parents(module);
    const std::string total_name = loop.var + "_total";
    const std::string main_name = loop.var + "_main";
    const long long wide = *step * factor;

    // int <v>_total = hi - lo;
    meta::insert_before(
        parents, loop,
        build::var_decl(Type::Int, total_name,
                        build::sub(clone_expr(*loop.limit),
                                   clone_expr(*loop.init))));
    // int <v>_main = lo + <v>_total / wide * wide;
    meta::insert_before(
        parents, loop,
        build::var_decl(
            Type::Int, main_name,
            build::add(clone_expr(*loop.init),
                       build::mul(build::binary(BinaryOp::Div,
                                                build::ident(total_name),
                                                build::int_lit(wide)),
                                  build::int_lit(wide)))));

    // Remainder loop (original body, original bounds starting at _main),
    // inserted after the main loop.
    auto remainder =
        build::for_loop(loop.var, build::ident(main_name),
                        clone_expr(*loop.limit), clone_block(*loop.body),
                        build::int_lit(*step));
    meta::insert_after(parents, loop, std::move(remainder));

    // Rewrite the original loop into the widened main loop.
    auto widened_body = build::block({});
    for (int k = 0; k < factor; ++k) {
        widened_body->stmts.push_back(offset_body(loop, k * *step));
    }
    loop.limit = build::ident(main_name);
    loop.step = build::int_lit(wide);
    loop.body = std::move(widened_body);
}

void fully_unroll_loop(Module& module, For& loop, long long max_trip) {
    ensure(meta::has_fixed_bounds(loop),
           "fully_unroll: loop bounds are not compile-time constants");
    check_var_not_written(loop);
    const long long trips = meta::constant_trip_count(loop);
    ensure(trips <= max_trip, "fully_unroll: trip count " +
                                  std::to_string(trips) + " exceeds limit " +
                                  std::to_string(max_trip));
    const long long lo = *meta::fold_int_constant(*loop.init);
    const long long step = *meta::fold_int_constant(*loop.step);

    auto flat = build::block({});
    flat->pragmas = loop.pragmas;
    for (long long k = 0; k < trips; ++k) {
        BlockPtr copy = clone_block(*loop.body);
        auto constant = build::int_lit(lo + k * step);
        substitute_ident(*copy, loop.var, *constant);
        flat->stmts.push_back(std::move(copy));
    }

    ParentMap parents(module);
    (void)meta::replace_stmt(parents, loop, std::move(flat));
}

} // namespace psaflow::transform
