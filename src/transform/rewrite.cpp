#include "transform/rewrite.hpp"

#include "ast/clone.hpp"
#include "support/error.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

namespace {

void visit_expr_slots(ExprPtr& slot,
                      const std::function<void(ExprPtr&)>& fn) {
    if (!slot) return;
    switch (slot->kind()) {
        case NodeKind::Unary:
            visit_expr_slots(static_cast<Unary&>(*slot).operand, fn);
            break;
        case NodeKind::Binary: {
            auto& b = static_cast<Binary&>(*slot);
            visit_expr_slots(b.lhs, fn);
            visit_expr_slots(b.rhs, fn);
            break;
        }
        case NodeKind::Call: {
            auto& c = static_cast<Call&>(*slot);
            for (auto& a : c.args) visit_expr_slots(a, fn);
            break;
        }
        case NodeKind::Index: {
            auto& ix = static_cast<Index&>(*slot);
            // Deliberately skip ix.base: array names are not rewriteable
            // scalar expressions.
            visit_expr_slots(ix.index, fn);
            break;
        }
        default:
            break;
    }
    fn(slot);
}

void visit_stmt(Stmt& stmt, const std::function<void(ExprPtr&)>& fn) {
    switch (stmt.kind()) {
        case NodeKind::Block:
            for (auto& s : static_cast<Block&>(stmt).stmts) visit_stmt(*s, fn);
            break;
        case NodeKind::VarDecl: {
            auto& d = static_cast<VarDecl&>(stmt);
            visit_expr_slots(d.array_size, fn);
            visit_expr_slots(d.init, fn);
            break;
        }
        case NodeKind::Assign: {
            auto& a = static_cast<Assign&>(stmt);
            visit_expr_slots(a.target, fn);
            visit_expr_slots(a.value, fn);
            break;
        }
        case NodeKind::If: {
            auto& i = static_cast<If&>(stmt);
            visit_expr_slots(i.cond, fn);
            visit_stmt(*i.then_body, fn);
            if (i.else_body) visit_stmt(*i.else_body, fn);
            break;
        }
        case NodeKind::For: {
            auto& f = static_cast<For&>(stmt);
            visit_expr_slots(f.init, fn);
            visit_expr_slots(f.limit, fn);
            visit_expr_slots(f.step, fn);
            visit_stmt(*f.body, fn);
            break;
        }
        case NodeKind::While: {
            auto& w = static_cast<While&>(stmt);
            visit_expr_slots(w.cond, fn);
            visit_stmt(*w.body, fn);
            break;
        }
        case NodeKind::Return:
            visit_expr_slots(static_cast<Return&>(stmt).value, fn);
            break;
        case NodeKind::ExprStmt:
            visit_expr_slots(static_cast<ExprStmt&>(stmt).expr, fn);
            break;
        default:
            throw Error("for_each_expr_slot: unexpected statement node");
    }
}

} // namespace

void for_each_expr_slot(Stmt& stmt,
                        const std::function<void(ExprPtr&)>& fn) {
    visit_stmt(stmt, fn);
}

int substitute_ident(Stmt& stmt, const std::string& name,
                     const Expr& replacement) {
    int count = 0;
    for_each_expr_slot(stmt, [&](ExprPtr& slot) {
        if (const auto* id = dyn_cast<Ident>(slot.get());
            id != nullptr && id->name == name) {
            slot = clone_expr(replacement);
            ++count;
        }
    });
    return count;
}

} // namespace psaflow::transform
