#include "transform/fission.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/dependence.hpp"
#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/walk.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "sema/builtins.hpp"
#include "support/error.hpp"
#include "transform/rewrite.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

namespace {

/// Names declared (VarDecl or nested induction) anywhere in `stmt`.
void collect_declared(const Stmt& stmt, std::unordered_set<std::string>& out) {
    walk(static_cast<const Node&>(stmt), [&](const Node& n) {
        if (const auto* d = dyn_cast<VarDecl>(&n)) out.insert(d->name);
        if (const auto* f = dyn_cast<For>(&n)) out.insert(f->var);
        return true;
    });
}

/// Names referenced anywhere in `stmt` (scalars and array bases alike).
void collect_used(const Stmt& stmt, std::unordered_set<std::string>& out) {
    walk(static_cast<const Node&>(stmt), [&](const Node& n) {
        if (const auto* id = dyn_cast<Ident>(&n)) out.insert(id->name);
        return true;
    });
}

/// Rough area weight of one statement: transcendental calls dominate FPGA
/// area by an order of magnitude (a platform-independent stand-in for the
/// operator library costs).
double area_weight(const Stmt& stmt) {
    double weight = 0.0;
    walk(static_cast<const Node&>(stmt), [&](const Node& n) {
        switch (n.kind()) {
            case NodeKind::Call: {
                const auto& c = static_cast<const Call&>(n);
                const auto* b = sema::find_builtin(c.callee);
                weight += b != nullptr ? b->flop_cost * 3.0 : 1.0;
                break;
            }
            case NodeKind::Binary:
            case NodeKind::Unary:
            case NodeKind::Index:
                weight += 1.0;
                break;
            default:
                break;
        }
        return true;
    });
    return weight;
}

/// The single outer loop of a single-loop kernel.
For& only_outer_loop(Function& kernel) {
    auto loops = meta::outermost_for_loops(kernel);
    ensure(loops.size() == 1,
           "split_kernel: kernel must have exactly one outermost loop");
    return *loops.front();
}

} // namespace

std::size_t balanced_cut_point(const Module& module,
                               const sema::TypeInfo& types,
                               const std::string& kernel_name) {
    (void)types;
    Function* kernel =
        const_cast<Module&>(module).find_function(kernel_name);
    ensure(kernel != nullptr, "balanced_cut_point: unknown kernel '" +
                                  kernel_name + "'");
    For& outer = only_outer_loop(*kernel);
    const auto& stmts = outer.body->stmts;
    if (stmts.size() < 2) return 0;

    double total = 0.0;
    std::vector<double> weights;
    weights.reserve(stmts.size());
    for (const auto& s : stmts) {
        weights.push_back(area_weight(*s));
        total += weights.back();
    }
    double prefix = 0.0;
    for (std::size_t i = 0; i + 1 < stmts.size(); ++i) {
        prefix += weights[i];
        if (prefix >= total / 2.0) return i + 1;
    }
    return stmts.size() / 2;
}

SplitResult split_kernel(Module& module, const sema::TypeInfo& types,
                         const std::string& kernel_name, std::size_t cut) {
    Function* kernel = module.find_function(kernel_name);
    ensure(kernel != nullptr,
           "split_kernel: unknown kernel '" + kernel_name + "'");
    For& outer = only_outer_loop(*kernel);
    // The parts are rebuilt from the loop alone, so any statement outside
    // it (a prologue declaration, a trailing store) would be dropped — and
    // with it the names the loop body depends on. Extracted kernels always
    // satisfy this; reject anything else instead of miscompiling.
    ensure(kernel->body->stmts.size() == 1 &&
               kernel->body->stmts.front().get() == &outer,
           "split_kernel: kernel body must consist of exactly its outer "
           "loop");
    ensure(cut > 0 && cut < outer.body->stmts.size(),
           "split_kernel: cut index out of range");

    const auto dep = analysis::analyze_dependence(module, outer);
    ensure(dep.carried.empty() && dep.array_accumulations.empty(),
           "split_kernel: loop carries dependencies; fission would reorder "
           "cross-iteration effects");

    // Exactly one call site, as produced by hotspot extraction.
    auto calls = meta::calls_to(module, kernel_name);
    ensure(calls.size() == 1,
           "split_kernel: kernel must have exactly one call site");

    // ---- scalars live across the cut ----------------------------------
    std::unordered_set<std::string> declared_first;
    for (std::size_t i = 0; i < cut; ++i)
        collect_declared(*outer.body->stmts[i], declared_first);
    std::unordered_set<std::string> used_second;
    for (std::size_t i = cut; i < outer.body->stmts.size(); ++i)
        collect_used(*outer.body->stmts[i], used_second);

    SplitResult result;
    std::vector<Type> spill_types;
    for (const auto& name : declared_first) {
        if (name == outer.var) continue;
        if (used_second.count(name) == 0) continue;
        const ValueType vt = types.var_type(*kernel, name);
        ensure(!vt.is_pointer,
               "split_kernel: cannot spill local array '" + name + "'");
        result.spilled.push_back(name);
        spill_types.push_back(vt.elem);
    }
    // Deterministic order for generated code and tests.
    std::vector<std::size_t> order(result.spilled.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return result.spilled[a] < result.spilled[b];
    });
    {
        std::vector<std::string> names;
        std::vector<Type> ts;
        for (std::size_t i : order) {
            names.push_back(result.spilled[i]);
            ts.push_back(spill_types[i]);
        }
        result.spilled = std::move(names);
        spill_types = std::move(ts);
    }

    result.part1 = kernel_name + "_part1";
    result.part2 = kernel_name + "_part2";
    ensure(module.find_function(result.part1) == nullptr &&
               module.find_function(result.part2) == nullptr,
           "split_kernel: part function names already taken");

    // ---- build the two part functions -------------------------------------
    auto make_part = [&](const std::string& name) {
        auto fn = std::make_unique<Function>();
        fn->ret = Type::Void;
        fn->name = name;
        for (const auto& p : kernel->params) {
            fn->params.push_back(build::param(p->type, p->name));
        }
        for (std::size_t i = 0; i < result.spilled.size(); ++i) {
            fn->params.push_back(
                build::param(ValueType{spill_types[i], true},
                             result.spilled[i] + "_spill"));
        }
        return fn;
    };

    auto part1 = make_part(result.part1);
    auto part2 = make_part(result.part2);

    // Part 1: first segment + spill stores.
    {
        auto body = build::block({});
        for (std::size_t i = 0; i < cut; ++i)
            body->stmts.push_back(clone_stmt(*outer.body->stmts[i]));
        for (const auto& name : result.spilled) {
            body->stmts.push_back(
                build::assign(build::index(name + "_spill",
                                           build::ident(outer.var)),
                              build::ident(name)));
        }
        part1->body = build::block({});
        part1->body->stmts.push_back(
            build::for_loop(outer.var, clone_expr(*outer.init),
                            clone_expr(*outer.limit), std::move(body),
                            clone_expr(*outer.step)));
    }

    // Part 2: spill loads + second segment.
    {
        auto body = build::block({});
        for (std::size_t i = 0; i < result.spilled.size(); ++i) {
            body->stmts.push_back(build::var_decl(
                spill_types[i], result.spilled[i],
                build::index(result.spilled[i] + "_spill",
                             build::ident(outer.var))));
        }
        for (std::size_t i = cut; i < outer.body->stmts.size(); ++i)
            body->stmts.push_back(clone_stmt(*outer.body->stmts[i]));
        part2->body = build::block({});
        part2->body->stmts.push_back(
            build::for_loop(outer.var, clone_expr(*outer.init),
                            clone_expr(*outer.limit), std::move(body),
                            clone_expr(*outer.step)));
    }

    // ---- rewrite the call site ---------------------------------------------
    Call* call = calls.front();
    // Parameter name -> argument expression for sizing the spill arrays.
    ensure(call->args.size() == kernel->params.size(),
           "split_kernel: call arity mismatch");

    ParentMap parents(module);
    auto* call_stmt = parents.enclosing<ExprStmt>(*call);
    ensure(call_stmt != nullptr,
           "split_kernel: kernel call must be a standalone statement");

    auto replacement = build::block({});
    for (std::size_t i = 0; i < result.spilled.size(); ++i) {
        const std::string array_name =
            kernel_name + "_" + result.spilled[i] + "_spill";
        auto decl = build::array_decl(spill_types[i], array_name,
                                      clone_expr(*outer.limit));
        // The limit references kernel parameters; rewrite them in terms of
        // the caller's arguments.
        for (std::size_t p = 0; p < kernel->params.size(); ++p) {
            if (kernel->params[p]->type.is_pointer) continue;
            substitute_ident(*decl, kernel->params[p]->name, *call->args[p]);
        }
        replacement->stmts.push_back(std::move(decl));
    }
    auto make_call = [&](const std::string& callee) {
        std::vector<ExprPtr> args;
        for (const auto& a : call->args) args.push_back(clone_expr(*a));
        for (const auto& name : result.spilled) {
            args.push_back(
                build::ident(kernel_name + "_" + name + "_spill"));
        }
        return build::expr_stmt(build::call(callee, std::move(args)));
    };
    replacement->stmts.push_back(make_call(result.part1));
    replacement->stmts.push_back(make_call(result.part2));

    (void)meta::replace_stmt(parents, *call_stmt, std::move(replacement));

    // ---- replace the original kernel with the two parts --------------------
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
        if (module.functions[i].get() == kernel) {
            module.functions[i] = std::move(part1);
            module.functions.insert(
                module.functions.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                std::move(part2));
            return result;
        }
    }
    throw Error("split_kernel: kernel not found in module function list");
}

} // namespace psaflow::transform
