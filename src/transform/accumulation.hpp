// "Remove Array += Dependency" — the paper's target-independent transform
// that eliminates loop-carried accumulation into array cells whose index is
// loop-invariant, by scalarising the accumulator:
//
//     for (int i = 0; i < n; i++) { ... a[k] += f(i); ... }
// ==> double a_acc0 = 0.0;
//     for (int i = 0; i < n; i++) { ... a_acc0 += f(i); ... }
//     a[k] += a_acc0;
//
// After the rewrite the loop carries only a *scalar reduction*, which the
// dependence analysis recognises and every backend can parallelise (OpenMP
// reduction clause, GPU tree reduction, FPGA accumulator register).
#pragma once

#include "ast/nodes.hpp"

namespace psaflow::transform {

/// Apply the rewrite to every eligible accumulation in `loop`. An
/// accumulation `A[e] op= rhs` is eligible when:
///   - op is += or -=;
///   - `e` does not involve the induction variable or any state mutated by
///     the loop body;
///   - array A is not accessed anywhere else in the loop.
/// Returns the number of accumulations scalarised.
int remove_array_accumulation(ast::Module& module, ast::For& loop);

} // namespace psaflow::transform
