// Parallelisation annotations:
//  - "Multi-Thread Parallel Loops": attach the OpenMP work-sharing pragma
//    (with reduction clauses from the dependence analysis) to a loop;
//  - "Introduce Shared Mem Buf": detect arrays whose inner-loop reads are
//    independent of the parallel (outer) dimension — every GPU thread block
//    re-reads the same data, so staging them in shared memory pays — and
//    annotate the loop for the HIP design emitter.
#pragma once

#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ast/nodes.hpp"

namespace psaflow::transform {

/// Attach `#pragma omp parallel for num_threads(N) [reduction(op:var)...]`.
/// Replaces any previous OpenMP pragma on the loop.
void insert_omp_parallel_for(ast::For& loop, int num_threads,
                             const std::vector<analysis::Reduction>& reductions);

/// Arrays read inside inner loops of `outer` whose subscripts never mention
/// `outer`'s induction variable — the N-Body `pos[j]` pattern. Sorted,
/// deduplicated.
[[nodiscard]] std::vector<std::string>
shared_mem_candidates(const ast::For& outer);

/// Record the staging decision on the loop as `#pragma gpu shared(<a,b,..>)`
/// for the HIP emitter and the performance model.
void annotate_shared_mem(ast::For& outer,
                         const std::vector<std::string>& arrays);

/// Parse back the annotation (empty when absent).
[[nodiscard]] std::vector<std::string>
shared_mem_annotation(const ast::For& outer);

} // namespace psaflow::transform
