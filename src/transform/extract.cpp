#include "transform/extract.hpp"

#include "ast/builder.hpp"
#include "ast/walk.hpp"
#include "meta/instrument.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

ExtractResult extract_hotspot(Module& module, const sema::TypeInfo& types,
                              For& loop, const std::string& kernel_name) {
    ensure(module.find_function(kernel_name) == nullptr,
           "extract_hotspot: function '" + kernel_name + "' already exists");

    ParentMap parents(module);
    auto* host = parents.enclosing<Function>(loop);
    ensure(host != nullptr, "extract_hotspot: loop is not inside a function");

    // Free variables of the loop become kernel parameters.
    const auto free = meta::free_variables(loop);
    std::vector<ParamPtr> params;
    std::vector<ExprPtr> args;
    for (const auto& name : free) {
        const ValueType vt = types.var_type(*host, name);
        if (!vt.is_pointer && meta::writes_variable(loop, name)) {
            throw Error("extract_hotspot: scalar '" + name +
                        "' is written by the hotspot loop and would be lost "
                        "across the kernel boundary");
        }
        params.push_back(build::param(vt, name));
        args.push_back(build::ident(name));
    }

    // Replace the loop with the kernel call, then move the loop into the
    // new function's body.
    StmtPtr call_stmt =
        build::expr_stmt(build::call(kernel_name, std::move(args)));
    StmtPtr detached = meta::replace_stmt(parents, loop, std::move(call_stmt));

    auto kernel = std::make_unique<Function>();
    kernel->ret = Type::Void;
    kernel->name = kernel_name;
    kernel->params = std::move(params);
    kernel->body = build::block({});
    kernel->body->stmts.push_back(std::move(detached));

    // Insert the kernel directly before its host function for readable
    // output ordering.
    Function* kernel_raw = kernel.get();
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
        if (module.functions[i].get() == host) {
            module.functions.insert(
                module.functions.begin() + static_cast<std::ptrdiff_t>(i),
                std::move(kernel));
            return ExtractResult{kernel_raw, host};
        }
    }
    throw Error("extract_hotspot: host function not found in module");
}

} // namespace psaflow::transform
