// Kernel fission ("loop splitting") — the finer-partitioning strategy the
// paper names as the fix for its Rush Larsen result ("additional
// strategies, like finer partitioning (e.g. loop splitting) ... need to be
// incorporated into the PSA-flow. However, these adjustments may
// potentially impact performance negatively").
//
// split_kernel cuts a single-loop kernel function into two kernel
// functions at a top-level statement boundary:
//
//     void k(P...) { for (i) { S0..Sc-1; Sc..Sn } }
// ==> void k_part1(P..., T* x_spill) { for (i) { S0..Sc-1; x_spill[i]=x; } }
//     void k_part2(P..., T* x_spill) { for (i) { T x = x_spill[i]; Sc..Sn } }
//
// and rewrites the (single) call site into spill-array allocations plus two
// calls. Scalars live across the cut are spilled through per-iteration
// arrays — the "negative performance impact" the paper predicts: extra
// buffers and an extra pass over the data, in exchange for each part
// fitting the FPGA.
#pragma once

#include <string>
#include <vector>

#include "ast/nodes.hpp"
#include "sema/type_check.hpp"

namespace psaflow::transform {

struct SplitResult {
    std::string part1; ///< name of the first kernel part
    std::string part2; ///< name of the second kernel part
    std::vector<std::string> spilled; ///< scalars routed through arrays
};

/// Split kernel `kernel_name` of `module` at top-level body statement index
/// `cut` (0 < cut < #statements). Preconditions (checked, throwing Error):
///  - the kernel body is a single canonical outer loop;
///  - the loop is parallel (no carried or accumulation dependencies) —
///    splitting a sequential loop would reorder cross-iteration effects;
///  - the kernel is called exactly once in the module;
///  - array-typed values never need spilling (arrays are shared anyway).
///
/// `types` must be current; the caller re-runs sema::check afterwards.
SplitResult split_kernel(ast::Module& module, const sema::TypeInfo& types,
                         const std::string& kernel_name, std::size_t cut);

/// Heuristic cut point: the top-level statement index that divides the
/// loop body into halves of roughly equal estimated FPGA area. Returns 0
/// when the body has fewer than 2 top-level statements.
[[nodiscard]] std::size_t balanced_cut_point(const ast::Module& module,
                                             const sema::TypeInfo& types,
                                             const std::string& kernel_name);

} // namespace psaflow::transform
