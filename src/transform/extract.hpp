// Hotspot loop extraction — the paper's "Hotspot Loop Extraction" task.
// The detected hotspot loop is moved into a new kernel function (arrays
// become pointer parameters, read scalars become value parameters) and the
// original loop is replaced by a call. This is the partitioning step: the
// kernel function is what later gets offloaded.
#pragma once

#include <string>

#include "ast/nodes.hpp"
#include "sema/type_check.hpp"

namespace psaflow::transform {

struct ExtractResult {
    ast::Function* kernel = nullptr; ///< the new kernel function
    ast::Function* host = nullptr;   ///< function the loop was extracted from
};

/// Extract `loop` (a statement inside some function of `module`) into a new
/// void function `kernel_name`, replacing the loop with a call.
///
/// Preconditions (checked, throwing Error):
///  - `kernel_name` is not already defined;
///  - no scalar that outlives the loop is written inside it (the kernel
///    could not communicate it back without out-parameters).
///
/// `types` must be current for `module`; the caller re-runs sema::check
/// afterwards (the module changed).
ExtractResult extract_hotspot(ast::Module& module,
                              const sema::TypeInfo& types, ast::For& loop,
                              const std::string& kernel_name);

} // namespace psaflow::transform
