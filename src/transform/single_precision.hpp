// Single-precision conversion — the paper's "Employ SP Math Fns" and
// "Employ SP Numeric Literals" tasks (applied on both the GPU and FPGA
// paths, where double-precision throughput is scarce).
//
// The transforms operate on the kernel function only. Pointer parameters
// keep their element types (the host owns those buffers); locals, literals
// and math calls inside the kernel move to single precision, so the bulk of
// the arithmetic executes in float. Tests verify results stay within
// single-precision tolerance of the double reference.
#pragma once

#include "ast/nodes.hpp"

namespace psaflow::transform {

/// Replace double-precision math builtins (sqrt, exp, ...) with their float
/// variants (sqrtf, expf, ...). Returns the number of calls rewritten.
int employ_sp_math(ast::Function& kernel);

/// Mark double literals as single precision (1.0 -> 1.0f). Returns the
/// number of literals rewritten.
int employ_sp_literals(ast::Function& kernel);

/// Demote double-typed local declarations (scalars and local arrays) to
/// float. Returns the number of declarations changed.
int demote_double_locals(ast::Function& kernel);

/// Convenience: all three SP tasks; returns total rewrites.
int employ_single_precision(ast::Function& kernel);

} // namespace psaflow::transform
