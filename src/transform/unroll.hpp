// Loop unrolling — the structural transform behind the FPGA paths' "Unroll
// Fixed Loops" task and the semantic ground truth for the "Unroll Until
// Overmap" DSE (which additionally attaches `#pragma unroll` for the HLS
// dialect emitter; see src/dse).
//
// Both entry points are *real* transforms: the resulting AST is interpreted
// in tests to prove behaviour is preserved.
#pragma once

#include "ast/nodes.hpp"

namespace psaflow::transform {

/// Partially unroll `loop` in place by `factor`:
///
///     for (int i = lo; i < hi; i += s) body
/// ==> int i_total = hi - lo;
///     int i_main  = lo + i_total / (factor*s) * (factor*s);
///     for (int i = lo; i < i_main; i += factor*s)
///         { body; body[i+s]; ...; body[i+(factor-1)*s] }
///     for (int i = i_main; i < hi; i += s) body     // remainder
///
/// Requires a constant step and a body that does not write the induction
/// variable; throws Error otherwise. factor <= 1 is a no-op.
void unroll_loop(ast::Module& module, ast::For& loop, int factor);

/// Fully unroll a fixed-bound loop: the loop statement is replaced by
/// `trip_count` copies of the body with the induction variable substituted
/// by its constant value. Throws if bounds are not compile-time constants.
/// Refuses (throws) when trip_count exceeds `max_trip` — full unrolling is
/// meant for the short fixed inner loops of FPGA kernels.
void fully_unroll_loop(ast::Module& module, ast::For& loop,
                       long long max_trip = 128);

} // namespace psaflow::transform
