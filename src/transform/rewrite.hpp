// Expression rewriting utilities shared by the source-to-source transforms.
#pragma once

#include <functional>
#include <string>

#include "ast/nodes.hpp"

namespace psaflow::transform {

/// Visit every owning expression slot under `stmt` (statement operands and
/// nested sub-expressions, innermost first) and give the callback a chance
/// to replace the owned expression by assigning to the slot.
void for_each_expr_slot(ast::Stmt& stmt,
                        const std::function<void(ast::ExprPtr&)>& fn);

/// Replace every occurrence of scalar identifier `name` under `stmt` with a
/// clone of `replacement`. Array-subscript bases keep their names (an
/// induction variable can never name an array). Returns replacements made.
int substitute_ident(ast::Stmt& stmt, const std::string& name,
                     const ast::Expr& replacement);

} // namespace psaflow::transform
