#include "transform/single_precision.hpp"

#include "ast/walk.hpp"
#include "sema/builtins.hpp"

namespace psaflow::transform {

using namespace psaflow::ast;

int employ_sp_math(Function& kernel) {
    int count = 0;
    walk(kernel, [&](Node& n) {
        if (auto* call = dyn_cast<Call>(&n)) {
            const auto* info = sema::find_builtin(call->callee);
            if (info != nullptr && !info->is_single &&
                !info->sp_variant.empty()) {
                call->callee = std::string(info->sp_variant);
                ++count;
            }
        }
        return true;
    });
    return count;
}

int employ_sp_literals(Function& kernel) {
    int count = 0;
    walk(kernel, [&](Node& n) {
        if (auto* lit = dyn_cast<FloatLit>(&n)) {
            if (!lit->single) {
                lit->single = true;
                ++count;
            }
        }
        return true;
    });
    return count;
}

int demote_double_locals(Function& kernel) {
    int count = 0;
    walk(kernel, [&](Node& n) {
        if (auto* decl = dyn_cast<VarDecl>(&n)) {
            if (decl->elem == Type::Double) {
                decl->elem = Type::Float;
                ++count;
            }
        }
        return true;
    });
    return count;
}

int employ_single_precision(Function& kernel) {
    return employ_sp_math(kernel) + employ_sp_literals(kernel) +
           demote_double_locals(kernel);
}

} // namespace psaflow::transform
