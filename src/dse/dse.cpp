#include "dse/dse.hpp"

#include <algorithm>

#include "perf/estimator.hpp"
#include "platform/cpu.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace psaflow::dse {

using namespace psaflow::platform;

UnrollResult unroll_until_overmap(const FpgaModel& fpga,
                                  const ast::Function& kernel,
                                  const sema::TypeInfo& types, int max_unroll,
                                  bool single_precision) {
    ensure(max_unroll >= 1, "unroll_until_overmap: max_unroll must be >= 1");
    trace::ScopedSpan span("dse:unroll:" + kernel.name, "dse");
    UnrollResult result;

    int unroll = 1;
    while (true) {
        const FpgaReport report =
            fpga.report(kernel, types, unroll, single_precision);
        result.trace.push_back(
            UnrollStep{unroll, report.utilisation(), report.overmapped});
        if (report.overmapped) break;
        result.unroll = unroll;
        result.report = report;
        if (unroll >= max_unroll) break;
        unroll *= 2; // the Fig. 2 meta-program doubles each DSE iteration
    }
    span.set_work_units(static_cast<double>(result.trace.size()));
    return result;
}

BlocksizeResult blocksize_dse(const GpuModel& gpu, const KernelShape& shape,
                              double smem_per_thread_bytes,
                              bool pinned_host_memory) {
    trace::ScopedSpan span("dse:blocksize", "dse");
    BlocksizeResult result;
    result.seconds = 1e30;

    for (int bs = 32; bs <= 1024; bs *= 2) {
        LaunchConfig config;
        config.block_size = bs;
        config.pinned_host_memory = pinned_host_memory;
        config.smem_per_block_kb = smem_per_thread_bytes * bs / 1024.0;
        const GpuEstimate est = gpu.estimate(shape, config);
        result.trace.push_back(
            BlocksizeStep{bs, est.occupancy, est.total_seconds});

        const bool faster = est.total_seconds < result.seconds * (1.0 - 1e-9);
        const bool tie_better_occupancy =
            est.total_seconds <= result.seconds * (1.0 + 1e-9) &&
            est.occupancy > result.occupancy;
        if (faster || tie_better_occupancy) {
            result.block_size = bs;
            result.occupancy = est.occupancy;
            result.seconds = est.total_seconds;
        }
    }
    span.set_work_units(static_cast<double>(result.trace.size()));
    return result;
}

ThreadsResult omp_threads_dse(const CpuModel& cpu, const KernelShape& shape) {
    trace::ScopedSpan span("dse:omp_threads", "dse");
    ThreadsResult result;
    result.seconds = 1e30;

    std::vector<int> candidates;
    for (int t = 1; t < cpu.spec().cores; t *= 2) candidates.push_back(t);
    candidates.push_back(cpu.spec().cores);

    for (int threads : candidates) {
        const double seconds = cpu.time_multi_thread(shape, threads);
        result.trace.push_back(ThreadsStep{threads, seconds});
        if (seconds < result.seconds) {
            result.seconds = seconds;
            result.threads = threads;
        }
    }
    span.set_work_units(static_cast<double>(result.trace.size()));
    return result;
}

} // namespace psaflow::dse
