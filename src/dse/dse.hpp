// Design-space exploration engines — the paper's "O"-class tasks:
//
//   - "Unroll Until Overmap DSE" (Fig. 2): double the kernel unroll factor
//     until the FPGA report estimates > 90% utilisation, keep the last
//     fitting design;
//   - "<GPU> Blocksize DSE": sweep launch configurations against the GPU
//     model, minimising time (maximum occupancy breaks ties);
//   - "OMP Num. Threads DSE": sweep thread counts against the CPU model.
//
// Each engine returns the chosen parameter *and* its exploration trace so
// benches and tests can inspect the search path.
#pragma once

#include <vector>

#include "ast/nodes.hpp"
#include "platform/cpu.hpp"
#include "platform/fpga.hpp"
#include "platform/gpu.hpp"
#include "platform/kernel_shape.hpp"
#include "sema/type_check.hpp"

namespace psaflow::dse {

// ---------------------------------------------------------------- FPGA ----

struct UnrollStep {
    int unroll = 1;
    double utilisation = 0.0;
    bool overmapped = false;
};

struct UnrollResult {
    /// Largest power-of-two unroll that fits (0 when even unroll=1
    /// overmaps — the paper's Rush Larsen case: design not synthesizable).
    int unroll = 0;
    platform::FpgaReport report; ///< report for the chosen factor
    std::vector<UnrollStep> trace;

    [[nodiscard]] bool synthesizable() const { return unroll >= 1; }
};

/// Fig. 2's meta-program against the FPGA report model. `max_unroll` bounds
/// the search (the parallel iteration count is a natural bound).
[[nodiscard]] UnrollResult
unroll_until_overmap(const platform::FpgaModel& fpga,
                     const ast::Function& kernel,
                     const sema::TypeInfo& types, int max_unroll = 1 << 14,
                     bool single_precision = false);

// ----------------------------------------------------------------- GPU ----

struct BlocksizeStep {
    int block_size = 0;
    double occupancy = 0.0;
    double seconds = 0.0;
};

struct BlocksizeResult {
    int block_size = 256;
    double occupancy = 0.0;
    double seconds = 0.0;
    std::vector<BlocksizeStep> trace;
};

/// Sweep {32, 64, ..., 1024} minimising predicted time; occupancy breaks
/// ties. `smem_per_thread_bytes` models shared-memory tiles that grow with
/// the block (bytes staged per thread).
[[nodiscard]] BlocksizeResult
blocksize_dse(const platform::GpuModel& gpu,
              const platform::KernelShape& shape,
              double smem_per_thread_bytes = 0.0,
              bool pinned_host_memory = false);

// ----------------------------------------------------------------- CPU ----

struct ThreadsStep {
    int threads = 0;
    double seconds = 0.0;
};

struct ThreadsResult {
    int threads = 1;
    double seconds = 0.0;
    std::vector<ThreadsStep> trace;
};

/// Sweep thread counts (powers of two up to the core count, plus the core
/// count itself) minimising predicted time.
[[nodiscard]] ThreadsResult
omp_threads_dse(const platform::CpuModel& cpu,
                const platform::KernelShape& shape);

} // namespace psaflow::dse
