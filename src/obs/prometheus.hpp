// Prometheus text-format exposition (version 0.0.4) for psaflow metrics.
//
// Renders trace-registry counters and support/histogram latency histograms
// as the plain-text format every Prometheus-compatible scraper ingests.
// psaflowd serves the rendering over its socket ({"type":"metrics"} →
// `psaflow-client --metrics`), and psaflowc dumps the same document with
// --metrics-out for one-shot runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/histogram.hpp"

namespace psaflow::obs {

/// Label set attached to one sample, rendered as {k="v",...}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Fold an arbitrary dotted counter name ("cache.profile.hit") into a legal
/// Prometheus metric name ("psaflow_cache_profile_hit" with the given
/// prefix): [a-zA-Z0-9_] survive, everything else becomes '_', and a
/// leading digit gains a '_' prefix.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name,
                                               std::string_view prefix);

/// Incremental builder for one exposition document. # HELP / # TYPE header
/// lines are emitted once per metric name, on first use, so the same metric
/// can be added repeatedly with different label sets.
class PrometheusRenderer {
public:
    /// Labels stamped onto every subsequent sample, before per-sample
    /// labels. How a cluster shard tags its whole exposition with
    /// {shard="..."} so concatenated per-shard scrapes stay distinct.
    void set_default_labels(MetricLabels labels);

    /// Append a counter sample. `name` must already be a legal metric name
    /// (use sanitize_metric_name for dotted counter names).
    void counter(const std::string& name, const std::string& help,
                 double value, const MetricLabels& labels = {});

    /// Append a gauge sample.
    void gauge(const std::string& name, const std::string& help, double value,
               const MetricLabels& labels = {});

    /// Append a histogram: cumulative `_bucket{le=...}` series over the
    /// power-of-two buckets (exact inclusive upper bounds, empty buckets
    /// elided), a `+Inf` bucket, `_sum` and `_count`.
    void histogram(const std::string& name, const std::string& help,
                   const Histogram& hist, const MetricLabels& labels = {});

    /// The document rendered so far.
    [[nodiscard]] const std::string& text() const { return out_; }

private:
    void header(const std::string& name, const std::string& help,
                const char* type);
    void sample(const std::string& name, const MetricLabels& labels,
                double value);
    [[nodiscard]] MetricLabels merged(const MetricLabels& labels) const;

    MetricLabels default_labels_;
    std::vector<std::string> declared_;
    std::string out_;
};

/// Render a trace-registry counter map (Registry::counters()) as
/// psaflow_-prefixed Prometheus counters.
[[nodiscard]] std::string
render_counters(const std::map<std::string, std::uint64_t>& counters,
                std::string_view prefix = "psaflow_");

} // namespace psaflow::obs
