#include "obs/prometheus.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace psaflow::obs {

namespace {

/// Prometheus sample values: integral values without an exponent, the rest
/// in shortest-round-trip form; non-finite values per the text format.
std::string format_value(double value) {
    if (std::isnan(value)) return "NaN";
    if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        std::ostringstream os;
        os << static_cast<long long>(value);
        return os.str();
    }
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

/// Label values: escape backslash, double quote and newline per the format.
void append_label_value(std::string& out, const std::string& value) {
    for (char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
}

void append_labels(std::string& out, const MetricLabels& labels,
                   const std::string& extra_key = {},
                   const std::string& extra_value = {}) {
    if (labels.empty() && extra_key.empty()) return;
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += "=\"";
        append_label_value(out, value);
        out += '"';
    }
    if (!extra_key.empty()) {
        if (!first) out += ',';
        out += extra_key;
        out += "=\"";
        append_label_value(out, extra_value);
        out += '"';
    }
    out += '}';
}

} // namespace

std::string sanitize_metric_name(std::string_view name,
                                 std::string_view prefix) {
    std::string out(prefix);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9')
        out.insert(out.begin(), '_');
    return out;
}

void PrometheusRenderer::header(const std::string& name,
                                const std::string& help, const char* type) {
    if (std::find(declared_.begin(), declared_.end(), name) != declared_.end())
        return;
    declared_.push_back(name);
    out_ += "# HELP " + name + ' ' + help + '\n';
    out_ += "# TYPE " + name + ' ' + type;
    out_ += '\n';
}

void PrometheusRenderer::set_default_labels(MetricLabels labels) {
    default_labels_ = std::move(labels);
}

MetricLabels PrometheusRenderer::merged(const MetricLabels& labels) const {
    if (default_labels_.empty()) return labels;
    MetricLabels all = default_labels_;
    all.insert(all.end(), labels.begin(), labels.end());
    return all;
}

void PrometheusRenderer::sample(const std::string& name,
                                const MetricLabels& labels, double value) {
    out_ += name;
    append_labels(out_, merged(labels));
    out_ += ' ';
    out_ += format_value(value);
    out_ += '\n';
}

void PrometheusRenderer::counter(const std::string& name,
                                 const std::string& help, double value,
                                 const MetricLabels& labels) {
    header(name, help, "counter");
    sample(name, labels, value);
}

void PrometheusRenderer::gauge(const std::string& name,
                               const std::string& help, double value,
                               const MetricLabels& labels) {
    header(name, help, "gauge");
    sample(name, labels, value);
}

void PrometheusRenderer::histogram(const std::string& name,
                                   const std::string& help,
                                   const Histogram& hist,
                                   const MetricLabels& raw_labels) {
    header(name, help, "histogram");
    const MetricLabels labels = merged(raw_labels);
    // Bucket b spans [2^(b-1), 2^b); its exact inclusive upper bound is
    // 2^b - 1. Cumulative counts, empty buckets elided (scrapers accept
    // irregular le ladders), then the mandatory +Inf / _sum / _count.
    std::uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t in_bucket = hist.bucket_count(b);
        if (in_bucket == 0) continue;
        cumulative += in_bucket;
        std::uint64_t upper;
        if (b == 0) {
            upper = 0;
        } else if (b >= 64) {
            upper = UINT64_MAX;
        } else {
            upper = (std::uint64_t{1} << b) - 1;
        }
        std::string line = name + "_bucket";
        append_labels(line, labels, "le", format_value(static_cast<double>(upper)));
        out_ += line + ' ' + format_value(static_cast<double>(cumulative)) +
                '\n';
    }
    std::string inf_line = name + "_bucket";
    append_labels(inf_line, labels, "le", "+Inf");
    out_ += inf_line + ' ' + format_value(static_cast<double>(hist.count())) +
            '\n';

    std::string sum_line = name + "_sum";
    append_labels(sum_line, labels);
    out_ += sum_line + ' ' + format_value(static_cast<double>(hist.sum())) +
            '\n';
    std::string count_line = name + "_count";
    append_labels(count_line, labels);
    out_ += count_line + ' ' + format_value(static_cast<double>(hist.count())) +
            '\n';
}

std::string
render_counters(const std::map<std::string, std::uint64_t>& counters,
                std::string_view prefix) {
    PrometheusRenderer renderer;
    for (const auto& [name, value] : counters)
        renderer.counter(sanitize_metric_name(name, prefix),
                         "psaflow trace counter " + name,
                         static_cast<double>(value));
    return renderer.text();
}

} // namespace psaflow::obs
