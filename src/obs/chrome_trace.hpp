// Chrome trace-event export for trace::Registry spans.
//
// Renders spans as the Trace Event Format's JSON object form — complete
// ("ph":"X") events keyed by ts/dur microseconds on pid/tid tracks — which
// chrome://tracing, Perfetto and speedscope all load directly. Span
// causality (id/parent) travels in each event's "args" so the flame graph
// can be cross-checked against the span tree.
#pragma once

#include <string>
#include <vector>

#include "support/trace.hpp"

namespace psaflow::obs {

/// Render `spans` as a Chrome trace-event JSON document:
///   {"displayTimeUnit":"ms","traceEvents":[...metadata, X events...]}
/// Events are sorted by (start_us, id) so output is stable for a given
/// span set regardless of recording interleavings.
[[nodiscard]] std::string
to_chrome_json(const std::vector<trace::Span>& spans,
               const std::string& process_name = "psaflow");

/// Convenience overload: snapshot + render a registry's spans.
[[nodiscard]] std::string
to_chrome_json(const trace::Registry& registry,
               const std::string& process_name = "psaflow");

} // namespace psaflow::obs
