#include "obs/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace psaflow::obs {

namespace {

std::int64_t wall_now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

LogLevel env_level(const char* var, LogLevel fallback) {
    const char* env = std::getenv(var);
    if (env == nullptr) return fallback;
    if (auto parsed = parse_log_level(env)) return *parsed;
    return fallback;
}

bool needs_quoting(const std::string& value) {
    if (value.empty()) return true;
    for (char c : value)
        if (c == ' ' || c == '"' || c == '\\' || c == '=' ||
            static_cast<unsigned char>(c) < 0x20)
            return true;
    return false;
}

void append_value(std::string& out, const std::string& value) {
    if (!needs_quoting(value)) {
        out += value;
        return;
    }
    out += '"';
    for (char c : value) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

} // namespace

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "trace";
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
        case LogLevel::Off: return "off";
    }
    return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "trace") return LogLevel::Trace;
    if (lower == "debug") return LogLevel::Debug;
    if (lower == "info") return LogLevel::Info;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "error") return LogLevel::Error;
    if (lower == "off" || lower == "none" || lower == "0") return LogLevel::Off;
    return std::nullopt;
}

std::string LogRecord::to_line() const {
    const std::time_t seconds = static_cast<std::time_t>(wall_ms / 1000);
    std::tm tm_utc{};
#if defined(_WIN32)
    gmtime_s(&tm_utc, &seconds);
#else
    gmtime_r(&seconds, &tm_utc);
#endif
    char stamp[40];
    std::snprintf(stamp, sizeof stamp,
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm_utc.tm_year + 1900,
                  tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
                  tm_utc.tm_min, tm_utc.tm_sec,
                  static_cast<int>(wall_ms % 1000));

    std::string out = stamp;
    out += ' ';
    out += to_string(level);
    out += ' ';
    out += component;
    out += ": ";
    out += message;
    for (const auto& [key, value] : fields) {
        out += ' ';
        out += key;
        out += '=';
        append_value(out, value);
    }
    return out;
}

Logger::Logger(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
    level_ = env_level("PSAFLOW_LOG", LogLevel::Info);
    echo_ = env_level("PSAFLOW_LOG_STDERR", LogLevel::Warn);
    ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

Logger& Logger::global() {
    static Logger logger;
    return logger;
}

void Logger::set_level(LogLevel level) {
    std::lock_guard lock(mu_);
    level_ = level;
}

LogLevel Logger::level() const {
    std::lock_guard lock(mu_);
    return level_;
}

void Logger::set_echo_level(LogLevel level) {
    std::lock_guard lock(mu_);
    echo_ = level;
}

LogLevel Logger::echo_level() const {
    std::lock_guard lock(mu_);
    return echo_;
}

bool Logger::enabled(LogLevel level) const {
    std::lock_guard lock(mu_);
    return level >= level_ && level_ != LogLevel::Off &&
           level != LogLevel::Off;
}

void Logger::log(LogLevel level, std::string component, std::string message,
                 LogFields fields) {
    if (level == LogLevel::Off) return;
    std::string echo_line;
    {
        std::lock_guard lock(mu_);
        if (level < level_ && level < echo_) return;

        LogRecord record;
        record.seq = next_seq_++;
        record.wall_ms = wall_now_ms();
        record.level = level;
        record.component = std::move(component);
        record.message = std::move(message);
        record.fields = std::move(fields);

        if (level >= echo_ && echo_ != LogLevel::Off)
            echo_line = record.to_line();

        if (level >= level_ && level_ != LogLevel::Off) {
            ++total_;
            if (ring_.size() < capacity_) {
                ring_.push_back(std::move(record));
            } else {
                ring_[head_] = std::move(record);
                head_ = (head_ + 1) % capacity_;
            }
        }
    }
    // stderr write happens outside the lock; never stdout (tool output must
    // not change with the log level).
    if (!echo_line.empty())
        std::fprintf(stderr, "%s\n", echo_line.c_str());
}

std::vector<LogRecord> Logger::recent(std::size_t max_records,
                                      LogLevel min_level) const {
    std::lock_guard lock(mu_);
    std::vector<LogRecord> out;
    out.reserve(ring_.size());
    // Oldest-first walk of the ring: [head_, end) then [0, head_).
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::size_t at =
            ring_.size() < capacity_ ? i : (head_ + i) % capacity_;
        const LogRecord& record = ring_[at];
        if (record.level >= min_level) out.push_back(record);
    }
    if (out.size() > max_records)
        out.erase(out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(out.size() -
                                                            max_records));
    return out;
}

std::uint64_t Logger::total() const {
    std::lock_guard lock(mu_);
    return total_;
}

std::uint64_t Logger::dropped() const {
    std::lock_guard lock(mu_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void Logger::clear() {
    std::lock_guard lock(mu_);
    ring_.clear();
    head_ = 0;
    total_ = 0;
    next_seq_ = 1;
}

void log(LogLevel level, std::string component, std::string message,
         LogFields fields) {
    Logger::global().log(level, std::move(component), std::move(message),
                         std::move(fields));
}

void debug(std::string component, std::string message, LogFields fields) {
    log(LogLevel::Debug, std::move(component), std::move(message),
        std::move(fields));
}

void info(std::string component, std::string message, LogFields fields) {
    log(LogLevel::Info, std::move(component), std::move(message),
        std::move(fields));
}

void warn(std::string component, std::string message, LogFields fields) {
    log(LogLevel::Warn, std::move(component), std::move(message),
        std::move(fields));
}

void error(std::string component, std::string message, LogFields fields) {
    log(LogLevel::Error, std::move(component), std::move(message),
        std::move(fields));
}

} // namespace psaflow::obs
