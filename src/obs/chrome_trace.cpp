#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "support/json.hpp"

namespace psaflow::obs {

namespace {

json::Value metadata_event(const std::string& name, std::uint64_t tid,
                           const std::string& arg_key,
                           const std::string& arg_value) {
    json::Value event = json::Value::object();
    event.set("name", json::Value::string(name));
    event.set("ph", json::Value::string("M"));
    event.set("pid", json::Value::number(1));
    event.set("tid", json::Value::number(static_cast<double>(tid)));
    json::Value args = json::Value::object();
    args.set(arg_key, json::Value::string(arg_value));
    event.set("args", std::move(args));
    return event;
}

} // namespace

std::string to_chrome_json(const std::vector<trace::Span>& spans,
                           const std::string& process_name) {
    std::vector<trace::Span> sorted = spans;
    std::sort(sorted.begin(), sorted.end(),
              [](const trace::Span& a, const trace::Span& b) {
                  if (a.start_us != b.start_us) return a.start_us < b.start_us;
                  return a.id < b.id;
              });

    json::Value events = json::Value::array();
    events.push(metadata_event("process_name", 0, "name", process_name));

    std::vector<std::uint64_t> threads;
    for (const trace::Span& span : sorted) threads.push_back(span.thread);
    std::sort(threads.begin(), threads.end());
    threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
    for (std::uint64_t tid : threads)
        events.push(metadata_event("thread_name", tid, "name",
                                   "worker-" + std::to_string(tid)));

    for (const trace::Span& span : sorted) {
        json::Value event = json::Value::object();
        event.set("name", json::Value::string(span.name));
        event.set("cat", json::Value::string(
                             span.category.empty() ? "psaflow" : span.category));
        event.set("ph", json::Value::string("X"));
        event.set("pid", json::Value::number(1));
        event.set("tid", json::Value::number(static_cast<double>(span.thread)));
        event.set("ts", json::Value::number(static_cast<double>(span.start_us)));
        event.set("dur",
                  json::Value::number(static_cast<double>(span.duration_us)));
        json::Value args = json::Value::object();
        args.set("span_id", json::Value::number(static_cast<double>(span.id)));
        args.set("parent_id",
                 json::Value::number(static_cast<double>(span.parent)));
        if (span.work_units != 0.0)
            args.set("work_units", json::Value::number(span.work_units));
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    json::Value doc = json::Value::object();
    doc.set("displayTimeUnit", json::Value::string("ms"));
    doc.set("traceEvents", std::move(events));
    return json::dump(doc) + "\n";
}

std::string to_chrome_json(const trace::Registry& registry,
                           const std::string& process_name) {
    return to_chrome_json(registry.spans(), process_name);
}

} // namespace psaflow::obs
