// Leveled structured logging with a bounded in-memory ring.
//
// psaflow's long-running surfaces (psaflowd above all) need their "what
// just happened" channel to be machine-readable and queryable after the
// fact, not a scatter of ad-hoc stderr prints. Every record carries a
// level, a component tag ("serve", "cas", "flow", ...), a message and
// key=value fields; records land in a fixed-capacity ring buffer (the
// daemon serves the ring over its socket as {"type":"logs"}) and are
// echoed to stderr when at or above the echo threshold.
//
// Environment:
//   PSAFLOW_LOG        capture level for the ring: trace|debug|info|warn|
//                      error|off (default info)
//   PSAFLOW_LOG_STDERR echo-to-stderr level (default warn; "off" silences)
//
// The logger never writes to stdout, so tool output stays byte-identical
// whatever the log level — the obs_smoke test pins this down.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psaflow::obs {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

[[nodiscard]] const char* to_string(LogLevel level);
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// Ordered key=value pairs attached to a record. Values are plain strings;
/// callers format numbers (std::to_string / format_compact) themselves.
using LogFields = std::vector<std::pair<std::string, std::string>>;

struct LogRecord {
    std::uint64_t seq = 0;   ///< monotonically increasing per logger
    std::int64_t wall_ms = 0; ///< unix epoch milliseconds
    LogLevel level = LogLevel::Info;
    std::string component;
    std::string message;
    LogFields fields;

    /// One-line rendering: `<iso-time> LEVEL component: message k=v ...`
    /// (values with spaces/quotes are double-quoted and escaped).
    [[nodiscard]] std::string to_line() const;
};

class Logger {
public:
    static constexpr std::size_t kDefaultCapacity = 1024;

    /// A private logger (tests). Levels start from the environment.
    explicit Logger(std::size_t capacity = kDefaultCapacity);

    /// The process-wide logger every component records through.
    [[nodiscard]] static Logger& global();

    void set_level(LogLevel level);
    [[nodiscard]] LogLevel level() const;
    void set_echo_level(LogLevel level);
    [[nodiscard]] LogLevel echo_level() const;

    /// True when a record at `level` would be captured — guard expensive
    /// field formatting with this.
    [[nodiscard]] bool enabled(LogLevel level) const;

    void log(LogLevel level, std::string component, std::string message,
             LogFields fields = {});

    /// Newest-last snapshot of the ring, optionally bounded and filtered.
    [[nodiscard]] std::vector<LogRecord>
    recent(std::size_t max_records = kDefaultCapacity,
           LogLevel min_level = LogLevel::Trace) const;

    /// Records accepted since construction/clear (including overwritten).
    [[nodiscard]] std::uint64_t total() const;
    /// Records lost to ring wrap-around.
    [[nodiscard]] std::uint64_t dropped() const;

    void clear();

private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    LogLevel level_ = LogLevel::Info;
    LogLevel echo_ = LogLevel::Warn;
    std::uint64_t next_seq_ = 1;
    std::uint64_t total_ = 0;
    std::vector<LogRecord> ring_; ///< circular once full
    std::size_t head_ = 0;        ///< next write position once full
};

// Convenience recorders onto Logger::global().
void log(LogLevel level, std::string component, std::string message,
         LogFields fields = {});
void debug(std::string component, std::string message, LogFields fields = {});
void info(std::string component, std::string message, LogFields fields = {});
void warn(std::string component, std::string message, LogFields fields = {});
void error(std::string component, std::string message, LogFields fields = {});

} // namespace psaflow::obs
