// Flight recorder: a bounded lock-free ring of per-request digests.
//
// Every completed request — daemon compiles and sleeps, router relays,
// psaflowc single-shot/batch runs — drops one fixed-size FlightRecord
// into the ring: trace id, lane, shard, timings (queue wait / execute /
// total), retries, cache hits, the decision winner and the terminal
// status. The ring answers "why was *this* request slow" after the fact:
// dump it over the wire with {"type":"flight"} (psaflow-client --flight),
// and when a request breaches the configured latency SLO its digest is
// auto-snapshotted to the structured log (obs::warn) the moment it
// completes, so the evidence survives even after the ring wraps.
//
// Concurrency: writers claim a slot with one fetch_add and publish
// through a per-slot seqlock (version odd while a write is in flight);
// the record payload lives in atomic words, so concurrent writers that
// lap the ring and concurrent readers are race-free (tsan-clean) — a
// writer that catches a slot mid-write drops its record (counted) rather
// than blocking, and a reader that observes a version change mid-copy
// discards the torn snapshot. Steady-state cost per request is one
// record copy; there is no lock anywhere on the record path.
//
// Knobs: PSAFLOW_SLO_MS seeds the SLO threshold (0/unset = disabled;
// psaflowd --slo-ms overrides), PSAFLOW_FLIGHT_CAPACITY sizes the global
// ring (default 256 records).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace psaflow::obs {

/// One request's digest. Fixed-size (inline char fields, truncating
/// writes) so a record fits in a handful of atomic words and the ring
/// never allocates after construction.
struct FlightRecord {
    std::uint64_t trace_id = 0;      ///< 0 when the request was untraced
    std::uint64_t seq = 0;           ///< stamped by the recorder (1-based)
    std::uint64_t queue_wait_us = 0; ///< admission-queue wait
    std::uint64_t exec_us = 0;       ///< execution wall clock
    std::uint64_t total_us = 0;      ///< queue + execute
    std::uint32_t retries = 0;       ///< relay attempts beyond the first
    std::uint32_t cache_hits = 0;    ///< cas.* hits charged to the request
    std::uint64_t slo_breach = 0;    ///< 1 when total_us exceeded the SLO
    char lane[16] = {};              ///< "interactive" | "batch" | ""
    char shard[32] = {};             ///< serving shard ("host:port" | name)
    char app[24] = {};               ///< compile app / request type
    char winner[32] = {};            ///< decision winner (first branch)
    char status[16] = {};            ///< "ok" | error kind

    void set_lane(std::string_view v) { assign(lane, sizeof lane, v); }
    void set_shard(std::string_view v) { assign(shard, sizeof shard, v); }
    void set_app(std::string_view v) { assign(app, sizeof app, v); }
    void set_winner(std::string_view v) { assign(winner, sizeof winner, v); }
    void set_status(std::string_view v) { assign(status, sizeof status, v); }

private:
    static void assign(char* dst, std::size_t n, std::string_view src) {
        std::memset(dst, 0, n);
        std::memcpy(dst, src.data(), std::min(src.size(), n - 1));
    }
};

class FlightRecorder {
public:
    static constexpr std::size_t kDefaultCapacity = 256;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    /// The process-wide recorder (capacity from PSAFLOW_FLIGHT_CAPACITY).
    [[nodiscard]] static FlightRecorder& global();

    /// Latency SLO in microseconds; 0 disables breach detection.
    /// Constructed from PSAFLOW_SLO_MS (milliseconds).
    void set_slo_us(std::uint64_t us);
    [[nodiscard]] std::uint64_t slo_us() const;

    /// Record one completed request (stamps rec.seq; flags + logs an SLO
    /// breach). Lock-free; may drop the record when another writer holds
    /// the claimed slot mid-write (counted in dropped()).
    void record(FlightRecord rec);

    /// Consistent copies of the live records, oldest-first by seq; at most
    /// `max_records` of the newest when max_records > 0. Lock-free.
    [[nodiscard]] std::vector<FlightRecord>
    snapshot(std::size_t max_records = 0) const;

    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
    /// Records accepted since construction/clear (including overwritten).
    [[nodiscard]] std::uint64_t total() const;
    /// Records dropped on writer-writer slot collisions.
    [[nodiscard]] std::uint64_t dropped() const;
    /// Requests that breached the SLO.
    [[nodiscard]] std::uint64_t breaches() const;

    /// Reset to empty (test helper; callers must be quiescent).
    void clear();

private:
    // Record payload as whole atomic words: sized so a FlightRecord
    // round-trips through memcpy.
    static constexpr std::size_t kWords =
        (sizeof(FlightRecord) + sizeof(std::uint64_t) - 1) /
        sizeof(std::uint64_t);
    struct Slot {
        std::atomic<std::uint64_t> version{0}; ///< odd = write in flight
        std::atomic<std::uint64_t> words[kWords];
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> breaches_{0};
    std::atomic<std::uint64_t> slo_us_{0};
};

/// One record as a JSON object (trace_id as 16-hex, timings in
/// microseconds) — the "records" entries of a flight response.
[[nodiscard]] json::Value to_json(const FlightRecord& record);

} // namespace psaflow::obs
