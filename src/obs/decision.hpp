// Flow-decision provenance.
//
// Every time the flow engine reaches a branch point it asks a PsaStrategy
// which paths to take; the answer used to vanish into a one-line note. A
// DecisionRecord keeps the whole deliberation: which branch, which strategy,
// every candidate path with its analytic cost/budget evaluation, who won and
// why the others were rejected. Records accumulate in FlowResult.decisions
// in deterministic (path-major) order and export as JSON
// (`psaflowc --explain`) or a markdown report (`--explain-md`).
//
// Plain data, depending only on support/ — flow produces records, serve
// ships them, tools render them.
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace psaflow::obs {

/// One path considered at a branch point.
struct DecisionCandidate {
    std::string path;        ///< FlowPath name, e.g. "fpga" or "arria10"
    bool selected = false;   ///< part of the winning set
    bool excluded = false;   ///< vetoed before scoring (budget feedback)
    /// Analytic hotspot-time prediction for this candidate, seconds;
    /// negative when no model applies (no kernel, unknown device).
    double predicted_seconds = -1.0;
    /// Cost-model USD per run at predicted_seconds; negative when not
    /// evaluated.
    double run_cost = -1.0;
    /// Human-readable evaluation: the winner's justification or the
    /// rejected-because for everyone else.
    std::string evaluation;
};

/// One branch-point deliberation.
struct DecisionRecord {
    std::string branch;   ///< BranchPoint name, e.g. "A (target)"
    std::string strategy; ///< PsaStrategy::name()
    /// Which budget-feedback round produced this record (0 = first pass);
    /// re-selection after a budget veto emits a fresh record.
    int feedback_iteration = 0;
    std::vector<DecisionCandidate> candidates;
    std::vector<std::string> selected; ///< winner path names, branch order
    std::string rationale;             ///< one-line why
};

[[nodiscard]] json::Value to_json(const DecisionCandidate& candidate);
[[nodiscard]] json::Value to_json(const DecisionRecord& record);

/// Whole-run report: {"schema_version":1,"app":...,"mode":...,
/// "decisions":[...]}
[[nodiscard]] json::Value
decisions_json(const std::string& app, const std::string& mode,
               const std::vector<DecisionRecord>& decisions);

/// The same report as a human-facing markdown document: one section per
/// branch point with a candidate table and the rationale.
[[nodiscard]] std::string
decisions_markdown(const std::string& app, const std::string& mode,
                   const std::vector<DecisionRecord>& decisions);

} // namespace psaflow::obs
