#include "obs/flight.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/log.hpp"
#include "support/string_util.hpp"

namespace psaflow::obs {

namespace {

std::size_t capacity_from_env() {
    if (const char* env = std::getenv("PSAFLOW_FLIGHT_CAPACITY")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return FlightRecorder::kDefaultCapacity;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {
    if (const char* env = std::getenv("PSAFLOW_SLO_MS")) {
        const long long ms = std::strtoll(env, nullptr, 10);
        if (ms > 0) slo_us_.store(static_cast<std::uint64_t>(ms) * 1000);
    }
}

FlightRecorder& FlightRecorder::global() {
    static FlightRecorder recorder(capacity_from_env());
    return recorder;
}

void FlightRecorder::set_slo_us(std::uint64_t us) {
    slo_us_.store(us, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::slo_us() const {
    return slo_us_.load(std::memory_order_relaxed);
}

void FlightRecorder::record(FlightRecord rec) {
    const std::uint64_t claim =
        next_.fetch_add(1, std::memory_order_relaxed);
    rec.seq = claim + 1;

    const std::uint64_t slo = slo_us_.load(std::memory_order_relaxed);
    if (slo > 0 && rec.total_us > slo) {
        rec.slo_breach = 1;
        breaches_.fetch_add(1, std::memory_order_relaxed);
        // Snapshot the digest into the structured log before it can be
        // overwritten by ring wrap-around.
        warn("flight", "slo breach",
             {{"trace_id", hex_u64(rec.trace_id)},
              {"app", rec.app},
              {"lane", rec.lane},
              {"shard", rec.shard},
              {"status", rec.status},
              {"queue_wait_us", std::to_string(rec.queue_wait_us)},
              {"exec_us", std::to_string(rec.exec_us)},
              {"total_us", std::to_string(rec.total_us)},
              {"slo_us", std::to_string(slo)}});
    }

    Slot& slot = slots_[claim % slots_.size()];
    std::uint64_t expected = slot.version.load(std::memory_order_relaxed);
    if ((expected & 1) != 0 ||
        !slot.version.compare_exchange_strong(expected, expected + 1,
                                              std::memory_order_acquire)) {
        // Another writer lapped the ring into this slot mid-write; drop
        // rather than block — the recorder must never stall a request.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &rec, sizeof rec);
    for (std::size_t w = 0; w < kWords; ++w)
        slot.words[w].store(words[w], std::memory_order_relaxed);
    slot.version.store(expected + 2, std::memory_order_release);
}

std::vector<FlightRecord>
FlightRecorder::snapshot(std::size_t max_records) const {
    std::vector<FlightRecord> records;
    records.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        const std::uint64_t v1 =
            slot.version.load(std::memory_order_acquire);
        if (v1 == 0 || (v1 & 1) != 0) continue; // empty or mid-write
        std::uint64_t words[kWords];
        for (std::size_t w = 0; w < kWords; ++w)
            words[w] = slot.words[w].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.version.load(std::memory_order_relaxed) != v1)
            continue; // torn: a writer replaced the slot mid-copy
        FlightRecord rec;
        std::memcpy(&rec, words, sizeof rec);
        if (rec.seq == 0) continue;
        records.push_back(rec);
    }
    std::sort(records.begin(), records.end(),
              [](const FlightRecord& a, const FlightRecord& b) {
                  return a.seq < b.seq;
              });
    if (max_records > 0 && records.size() > max_records)
        records.erase(records.begin(),
                      records.end() -
                          static_cast<std::ptrdiff_t>(max_records));
    return records;
}

std::uint64_t FlightRecorder::total() const {
    return next_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const {
    return dropped_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::breaches() const {
    return breaches_.load(std::memory_order_relaxed);
}

void FlightRecorder::clear() {
    for (Slot& slot : slots_) {
        slot.version.store(0);
        for (std::size_t w = 0; w < kWords; ++w) slot.words[w].store(0);
    }
    next_.store(0);
    dropped_.store(0);
    breaches_.store(0);
}

json::Value to_json(const FlightRecord& record) {
    json::Value v = json::Value::object();
    v.set("seq", json::Value::number(double(record.seq)));
    v.set("trace_id", json::Value::string(
                          record.trace_id == 0 ? std::string()
                                               : hex_u64(record.trace_id)));
    v.set("app", json::Value::string(record.app));
    v.set("lane", json::Value::string(record.lane));
    v.set("shard", json::Value::string(record.shard));
    v.set("status", json::Value::string(record.status));
    v.set("winner", json::Value::string(record.winner));
    v.set("queue_wait_us",
          json::Value::number(double(record.queue_wait_us)));
    v.set("exec_us", json::Value::number(double(record.exec_us)));
    v.set("total_us", json::Value::number(double(record.total_us)));
    v.set("retries", json::Value::number(double(record.retries)));
    v.set("cache_hits", json::Value::number(double(record.cache_hits)));
    v.set("slo_breach",
          json::Value::boolean(record.slo_breach != 0));
    return v;
}

} // namespace psaflow::obs
