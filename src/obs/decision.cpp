#include "obs/decision.hpp"

#include <cmath>
#include <cstdio>

namespace psaflow::obs {

namespace {

std::string format_seconds(double seconds) {
    if (seconds < 0.0 || !std::isfinite(seconds)) return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g s", seconds);
    return buf;
}

std::string format_cost(double usd) {
    if (usd < 0.0 || !std::isfinite(usd)) return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "$%.4g", usd);
    return buf;
}

} // namespace

json::Value to_json(const DecisionCandidate& candidate) {
    json::Value out = json::Value::object();
    out.set("path", json::Value::string(candidate.path));
    out.set("selected", json::Value::boolean(candidate.selected));
    out.set("excluded", json::Value::boolean(candidate.excluded));
    if (candidate.predicted_seconds >= 0.0)
        out.set("predicted_seconds",
                json::Value::number(candidate.predicted_seconds));
    if (candidate.run_cost >= 0.0)
        out.set("run_cost_usd", json::Value::number(candidate.run_cost));
    if (!candidate.evaluation.empty())
        out.set("evaluation", json::Value::string(candidate.evaluation));
    return out;
}

json::Value to_json(const DecisionRecord& record) {
    json::Value out = json::Value::object();
    out.set("branch", json::Value::string(record.branch));
    out.set("strategy", json::Value::string(record.strategy));
    out.set("feedback_iteration",
            json::Value::number(record.feedback_iteration));
    json::Value candidates = json::Value::array();
    for (const DecisionCandidate& candidate : record.candidates)
        candidates.push(to_json(candidate));
    out.set("candidates", std::move(candidates));
    json::Value selected = json::Value::array();
    for (const std::string& path : record.selected)
        selected.push(json::Value::string(path));
    out.set("selected", std::move(selected));
    out.set("rationale", json::Value::string(record.rationale));
    return out;
}

json::Value decisions_json(const std::string& app, const std::string& mode,
                           const std::vector<DecisionRecord>& decisions) {
    json::Value out = json::Value::object();
    out.set("schema_version", json::Value::number(1));
    out.set("app", json::Value::string(app));
    out.set("mode", json::Value::string(mode));
    json::Value records = json::Value::array();
    for (const DecisionRecord& record : decisions)
        records.push(to_json(record));
    out.set("decisions", std::move(records));
    return out;
}

std::string decisions_markdown(const std::string& app, const std::string& mode,
                               const std::vector<DecisionRecord>& decisions) {
    std::string out = "# Flow decisions: " + app + " (" + mode + ")\n\n";
    if (decisions.empty()) {
        out += "No branch points were reached.\n";
        return out;
    }
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const DecisionRecord& record = decisions[i];
        out += "## " + std::to_string(i + 1) + ". Branch " + record.branch +
               "\n\n";
        out += "- strategy: `" + record.strategy + "`\n";
        out += "- feedback iteration: " +
               std::to_string(record.feedback_iteration) + "\n";
        out += "- selected: ";
        if (record.selected.empty()) {
            out += "(none)";
        } else {
            for (std::size_t s = 0; s < record.selected.size(); ++s) {
                if (s != 0) out += ", ";
                out += "`" + record.selected[s] + "`";
            }
        }
        out += "\n\n";
        out += "| candidate | predicted | cost/run | verdict |\n";
        out += "|---|---|---|---|\n";
        for (const DecisionCandidate& candidate : record.candidates) {
            std::string verdict;
            if (candidate.selected)
                verdict = "**selected**";
            else if (candidate.excluded)
                verdict = "excluded";
            else
                verdict = "rejected";
            if (!candidate.evaluation.empty())
                verdict += " — " + candidate.evaluation;
            out += "| `" + candidate.path + "` | " +
                   format_seconds(candidate.predicted_seconds) + " | " +
                   format_cost(candidate.run_cost) + " | " + verdict + " |\n";
        }
        out += "\n";
        if (!record.rationale.empty())
            out += record.rationale + "\n\n";
    }
    return out;
}

} // namespace psaflow::obs
