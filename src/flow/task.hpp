// The design-flow task framework of the paper's Fig. 4: tasks classified
// Analysis / Transform / Code-Generation / Optimisation compose into paths;
// branch points with Path Selection Automation (PSA) strategies make the
// flow diverge toward increasingly specialised designs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/context.hpp"
#include "obs/decision.hpp"

namespace psaflow::flow {

enum class TaskClass {
    Analysis,     ///< "A" in Fig. 4
    Transform,    ///< "T"
    CodeGen,      ///< "CG"
    Optimisation, ///< "O" (DSE)
};

[[nodiscard]] const char* to_string(TaskClass cls);

/// One codified design-flow task. `dynamic()` marks tasks that execute the
/// application (the dot-marker in the paper's figures).
class Task {
public:
    virtual ~Task() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual TaskClass cls() const = 0;
    [[nodiscard]] virtual bool dynamic() const { return false; }

    /// Stable string identifier: the name slugged to lowercase alnum runs
    /// joined by '-' (e.g. "Arria10 Unroll Until Overmap DSE" ->
    /// "arria10-unroll-until-overmap-dse"). Used as the TaskRegistry key,
    /// as trace span names and as the cache-key component of the
    /// content-addressed store — ids must stay stable across releases.
    [[nodiscard]] std::string id() const;

    virtual void run(FlowContext& ctx) = 0;
};

using TaskPtr = std::shared_ptr<Task>;

struct BranchPoint;

/// One option at a branch point: a named task sequence followed by an
/// optional further branch point.
struct FlowPath {
    std::string name;
    std::vector<TaskPtr> tasks;
    std::shared_ptr<BranchPoint> next; ///< nested branch (B, C); may be null
};

class PsaStrategy;

/// A branch point (the yellow blocks of Fig. 1/Fig. 4).
struct BranchPoint {
    std::string name;
    std::vector<FlowPath> paths;
    std::shared_ptr<PsaStrategy> strategy;
};

/// Path Selection Automation: decides which paths of `branch` a context
/// follows. Returning no indices terminates the flow at this point with the
/// design unmodified (Fig. 3's "design-flow terminates" outcome).
class PsaStrategy {
public:
    virtual ~PsaStrategy() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::vector<std::size_t>
    select(FlowContext& ctx, const BranchPoint& branch) = 0;

    /// Like select(), but also records the deliberation into `record`
    /// (candidates considered, who won, rejected-because). The engine calls
    /// this form and ships the record in FlowResult::decisions; the default
    /// delegates to select(), so existing strategies keep working and get a
    /// skeleton record filled in by the engine (branch, candidates,
    /// selected set). Override to attach strategy-specific rationale.
    [[nodiscard]] virtual std::vector<std::size_t>
    select_explained(FlowContext& ctx, const BranchPoint& branch,
                     obs::DecisionRecord& record) {
        record.strategy = name();
        return select(ctx, branch);
    }
};

/// A complete design-flow: target-independent prologue then the first
/// branch point (A).
struct DesignFlow {
    std::vector<TaskPtr> prologue;
    std::shared_ptr<BranchPoint> branch; ///< may be null (linear flow)
};

} // namespace psaflow::flow
