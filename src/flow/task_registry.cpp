#include "flow/task_registry.hpp"

#include "flow/tasks.hpp"
#include "support/error.hpp"

namespace psaflow::flow {

using platform::DeviceId;

TaskRegistry::TaskRegistry() {
    const std::vector<Factory> builtins = {
        identify_hotspot_loops,
        hotspot_loop_extraction,
        pointer_analysis,
        arithmetic_intensity_analysis,
        data_inout_analysis,
        loop_dependence_analysis,
        loop_tripcount_analysis,
        remove_array_plus_eq,
        generate_oneapi_design,
        unroll_fixed_loops,
        employ_sp_math_fns,
        employ_sp_numeric_literals,
        zero_copy_data_transfer,
        [] { return unroll_until_overmap_dse(DeviceId::Arria10); },
        [] { return unroll_until_overmap_dse(DeviceId::Stratix10); },
        generate_hip_design,
        employ_hip_pinned_memory,
        introduce_shared_mem_buf,
        employ_specialised_math_fns,
        [] { return blocksize_dse(DeviceId::Gtx1080Ti); },
        [] { return blocksize_dse(DeviceId::Rtx2080Ti); },
        multi_thread_parallel_loops,
        omp_num_threads_dse,
    };
    for (const Factory& factory : builtins) add(factory);
}

TaskRegistry& TaskRegistry::global() {
    static TaskRegistry registry;
    return registry;
}

void TaskRegistry::add(const Factory& factory) {
    ensure(factory != nullptr, "TaskRegistry: null factory");
    TaskPtr probe = factory();
    ensure(probe != nullptr, "TaskRegistry: factory produced a null task");
    const std::string id = probe->id();
    ensure(!id.empty(), "TaskRegistry: task id is empty");
    std::lock_guard lock(mu_);
    ensure(factories_.emplace(id, factory).second,
           "TaskRegistry: duplicate task id '" + id + "'");
}

bool TaskRegistry::contains(const std::string& id) const {
    std::lock_guard lock(mu_);
    return factories_.count(id) != 0;
}

TaskPtr TaskRegistry::make(const std::string& id) const {
    Factory factory;
    {
        std::lock_guard lock(mu_);
        auto it = factories_.find(id);
        ensure(it != factories_.end(),
               "TaskRegistry: unknown task id '" + id + "'");
        factory = it->second;
    }
    return factory();
}

std::vector<std::string> TaskRegistry::ids() const {
    std::lock_guard lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [id, factory] : factories_) out.push_back(id);
    return out;
}

} // namespace psaflow::flow
