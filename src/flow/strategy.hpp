// PSA strategies: the decision logic at branch points.
//
// `informed_strategy()` implements the paper's Fig. 3 decision tree for
// branch point A (offload-worthiness via transfer time and arithmetic
// intensity, then GPU/FPGA/CPU selection via loop structure), optionally
// constrained by a cost budget with feedback (the engine re-invokes the
// strategy with excluded targets when a selected design busts the budget).
//
// `uninformed_strategy()` selects every path — the paper's mode that
// generates all five designs. `select_all()` is the same mechanism used at
// the device branch points B and C ("the current implementation
// automatically selects both paths").
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "flow/task.hpp"

namespace psaflow::flow {

/// Cloud price assumptions for the analytic cost evaluation (Fig. 3's
/// bottom box). Per-hour on-demand prices; only ratios matter.
struct CostModel {
    double cpu_per_hour = 2.0;
    double gpu_per_hour = 3.0;
    double fpga_per_hour = 1.65;

    [[nodiscard]] double price_per_hour(codegen::TargetKind target) const;

    /// Cost of running the hotspot once: seconds * hourly price.
    [[nodiscard]] double run_cost(codegen::TargetKind target,
                                  double seconds) const;

    /// Host power charged to every design (the accelerators are
    /// co-processors: a CPU socket share stays busy orchestrating).
    double host_share_watts = 60.0;
};

/// Energy (joules) of running the hotspot once on `device`: device TDP plus
/// the host share, times the predicted time. The Section IV-D extension:
/// "Similar analysis could be used to identify the most energy efficient
/// implementation."
[[nodiscard]] double energy_joules(const CostModel& model,
                                   platform::DeviceId device, double seconds);

/// Budget for the feedback loop; unlimited when not set.
struct Budget {
    double max_run_cost = -1.0; ///< negative: unconstrained

    [[nodiscard]] bool constrained() const { return max_run_cost >= 0.0; }
};

/// Fig. 3 informed strategy. `excluded` names paths the cost feedback has
/// vetoed (matched against FlowPath::name).
[[nodiscard]] std::shared_ptr<PsaStrategy>
informed_strategy(std::set<std::string> excluded = {});

/// Select all paths (uninformed mode at A; default at B and C).
[[nodiscard]] std::shared_ptr<PsaStrategy> select_all();

/// Unconditionally follow the named paths — the manifest schema's
/// "fixed-path" strategy. Selection is canonicalised to branch path order
/// and deduplicated, so the listing order in a manifest never changes the
/// result. Unknown path names throw at select time (manifest loading
/// validates them up front).
class FixedPathStrategy final : public PsaStrategy {
public:
    explicit FixedPathStrategy(std::vector<std::string> paths);

    [[nodiscard]] std::string name() const override { return "fixed-path"; }

    /// The preselected path names, in declaration order.
    [[nodiscard]] const std::vector<std::string>& paths() const {
        return paths_;
    }

    std::vector<std::size_t> select(FlowContext& ctx,
                                    const BranchPoint& branch) override;

    std::vector<std::size_t>
    select_explained(FlowContext& ctx, const BranchPoint& branch,
                     obs::DecisionRecord& record) override;

private:
    std::vector<std::string> paths_;
};

/// Convenience factory matching informed_strategy()/select_all().
[[nodiscard]] std::shared_ptr<PsaStrategy>
fixed_path_strategy(std::vector<std::string> paths);

/// Decision inputs of Fig. 3, exposed for tests and the ablation bench.
struct Fig3Inputs {
    double transfer_seconds = 0.0;
    double cpu_seconds = 0.0;
    double flops_per_byte = 0.0;
    double threshold_x = 4.0;
    bool outer_parallel = false;
    bool inner_loop_with_deps = false;
    bool inner_fully_unrollable = false;
};

enum class Fig3Choice { CpuOpenMp, CpuGpu, CpuFpga, Terminate };

[[nodiscard]] const char* to_string(Fig3Choice choice);

/// The pure decision function behind the informed strategy.
[[nodiscard]] Fig3Choice fig3_decide(const Fig3Inputs& in);

/// Gather Fig3Inputs from a context (runs the required analyses).
[[nodiscard]] Fig3Inputs gather_fig3_inputs(FlowContext& ctx);

} // namespace psaflow::flow
