// TaskRegistry: the codified task repository keyed by stable string ids.
//
// Every task in the Fig. 4 repository registers a factory under its
// Task::id() slug (e.g. "identify-hotspot-loops",
// "arria10-unroll-until-overmap-dse"). The ids serve three masters that
// must agree: flow assembly (standard_flow builds its paths by id), the
// trace registry (span names are "task:<id>") and the persistent
// content-addressed store (a leaf design's cache key embeds the exact
// sequence of task ids that produced it). Renaming a task therefore
// changes its id, which safely invalidates old cache entries.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "flow/task.hpp"

namespace psaflow::flow {

class TaskRegistry {
public:
    using Factory = std::function<TaskPtr()>;

    /// The process-wide registry, pre-populated with the built-in
    /// repository (tasks.hpp) on first use.
    [[nodiscard]] static TaskRegistry& global();

    /// Register `factory` under the id of the task it produces (one
    /// instance is created to read the id). Throws if the id is taken.
    void add(const Factory& factory);

    [[nodiscard]] bool contains(const std::string& id) const;

    /// Instantiate a fresh task; throws on an unknown id.
    [[nodiscard]] TaskPtr make(const std::string& id) const;

    /// All registered ids, sorted.
    [[nodiscard]] std::vector<std::string> ids() const;

private:
    TaskRegistry();

    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

} // namespace psaflow::flow
