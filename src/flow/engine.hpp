// The PSA-flow engine: executes a DesignFlow over a FlowContext, forking at
// branch points, finalising every leaf into a DesignArtifact (emitted
// source + predicted performance), and applying the Fig. 3 cost/budget
// feedback loop in informed mode.
#pragma once

#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "flow/strategy.hpp"
#include "flow/task.hpp"
#include "obs/decision.hpp"
#include "platform/kernel_shape.hpp"

namespace psaflow::flow {

/// One generated design (a leaf of the PSA-flow).
struct DesignArtifact {
    codegen::DesignSpec spec;
    std::string source;            ///< emitted design source text
    double hotspot_seconds = 0.0;  ///< predicted hotspot-region time
    double speedup = 0.0;          ///< vs single-thread CPU reference
    double loc_delta = 0.0;        ///< added LOC fraction vs reference
    bool synthesizable = true;     ///< false: FPGA design overmaps (excluded
                                   ///< from Fig. 5 / Table I, like the
                                   ///< paper's Rush Larsen FPGA designs)
    platform::KernelShape shape;   ///< shape the estimate used
    std::vector<std::string> log;  ///< per-design task log

    [[nodiscard]] std::string name() const { return spec.design_name(); }
};

struct FlowResult {
    std::vector<DesignArtifact> designs;
    double reference_seconds = 0.0;
    std::vector<std::string> log; ///< prologue log

    /// Branch-point provenance, in deterministic traversal order (parent
    /// branch first, then each selected path's nested records in path
    /// order) — identical at any jobs setting. Budget-feedback rounds
    /// append rather than replace, so a vetoed first-round selection stays
    /// visible next to the re-selection that replaced it (told apart by
    /// DecisionRecord::feedback_iteration).
    std::vector<obs::DecisionRecord> decisions;

    /// The artifact the informed flow recommends: fastest synthesizable.
    [[nodiscard]] const DesignArtifact* best() const;

    [[nodiscard]] const DesignArtifact*
    find(codegen::TargetKind target, platform::DeviceId device) const;
};

struct EngineOptions {
    Budget budget;       ///< Fig. 3 cost feedback (informed mode only)
    CostModel cost_model;
    int max_feedback_iterations = 3;

    /// Worker threads for independent branch paths. 1 runs strictly
    /// sequentially on the calling thread; 0 picks the process default
    /// (PSAFLOW_JOBS or hardware concurrency). Any setting produces a
    /// byte-identical FlowResult: paths fork deterministically before they
    /// are scheduled and leaves merge back in flow order.
    int jobs = 0;
};

namespace detail {
/// The engine proper, behind the FlowSession facade: executes the flow
/// with the options exactly as given (no session defaults applied, no
/// session-level accounting).
[[nodiscard]] FlowResult run_flow_impl(const DesignFlow& flow,
                                       FlowContext ctx,
                                       const EngineOptions& options);
} // namespace detail

} // namespace psaflow::flow
