// Learned PSA strategy — the paper's future work ("developing sophisticated
// ML-based PSA strategies ... with access to a full application
// representation, data collected by analysis tasks, and knowledge of target
// hardware capabilities, there is considerable opportunity for
// sophisticated PSA strategies incorporating, for example, machine-learning
// techniques").
//
// This is a deliberately transparent instance: a k-nearest-neighbour
// classifier over the same analysis-derived signals the Fig. 3 tree
// consumes (arithmetic intensity, transfer-vs-CPU ratio, loop structure,
// dependence and transcendental fractions), trained from labelled examples.
// `train_from_oracle` produces the labels the honest way: run the
// uninformed flow (generate every design) and record which target won.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "flow/task.hpp"

namespace psaflow::flow {

/// Feature vector for one kernel, derived from the target-independent
/// analyses (all scale-free or log-scaled).
struct StrategyFeatures {
    double log_intensity = 0.0;      ///< log10(per-pass FLOPs/B)
    double log_compute_transfer = 0.0; ///< log10(T_cpu / T_transfer)
    double outer_parallel = 0.0;       ///< 0/1
    double inner_with_deps = 0.0;      ///< 0/1
    double inner_fully_unrollable = 0.0; ///< 0/1
    double dependent_fraction = 0.0;
    double transcendental_fraction = 0.0;
    double log_parallel_iters = 0.0;

    [[nodiscard]] std::vector<double> as_vector() const;
};

/// Extract features from a context (runs the required analyses).
[[nodiscard]] StrategyFeatures gather_features(FlowContext& ctx);

/// A labelled training example.
struct TrainingExample {
    StrategyFeatures features;
    std::string label; ///< "cpu", "gpu" or "fpga" (FlowPath names at A)
};

/// k-NN over z-score-normalised features. Deterministic: ties break toward
/// the nearest example.
class LearnedStrategy final : public PsaStrategy {
public:
    explicit LearnedStrategy(std::vector<TrainingExample> examples, int k = 3);

    [[nodiscard]] std::string name() const override { return "learned (kNN)"; }

    [[nodiscard]] std::vector<std::size_t>
    select(FlowContext& ctx, const BranchPoint& branch) override;

    /// Provenance-aware form: records the kNN label and per-path verdicts.
    [[nodiscard]] std::vector<std::size_t>
    select_explained(FlowContext& ctx, const BranchPoint& branch,
                     obs::DecisionRecord& record) override;

    /// Classify a bare feature vector (exposed for tests/benches).
    [[nodiscard]] std::string classify(const StrategyFeatures& features) const;

private:
    std::vector<TrainingExample> examples_;
    std::vector<double> mean_;
    std::vector<double> stddev_;
    int k_;
};

/// Label `training_apps` by running the uninformed flow and recording the
/// winning target of each ("the oracle"). Expensive: one full uninformed
/// flow per application.
[[nodiscard]] std::vector<TrainingExample>
train_from_oracle(const std::vector<const apps::Application*>& training_apps);

} // namespace psaflow::flow
