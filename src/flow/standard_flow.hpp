// The paper's implemented PSA-flow (Fig. 4): target-independent tasks, then
// branch point A (multi-thread CPU / CPU+GPU / CPU+FPGA), then device
// branch points B (Arria10 / Stratix10) and C (GTX 1080 Ti / RTX 2080 Ti).
#pragma once

#include "flow/task.hpp"

namespace psaflow::flow {

enum class Mode {
    Informed,   ///< Fig. 3 strategy at branch point A
    Uninformed, ///< all paths at A: generates all five designs
};

/// Build the Fig. 4 flow. Branch points B and C always select both devices
/// (as in the paper's implementation).
[[nodiscard]] DesignFlow standard_flow(Mode mode);

} // namespace psaflow::flow
