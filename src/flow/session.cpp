#include "flow/session.hpp"

#include <chrono>
#include <utility>

#include "interp/interpreter.hpp"
#include "support/cas/cas.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace psaflow::flow {

FlowSession::FlowSession(SessionOptions options)
    : options_(std::move(options)) {
    if (!options_.cache_dir.empty())
        cas::configure(options_.cache_dir, options_.cache_max_bytes);
    if (!options_.interp.empty()) {
        const auto engine = interp::parse_engine(options_.interp);
        ensure(engine.has_value(),
               "SessionOptions.interp must be 'tree' or 'vm', got '" +
                   options_.interp + "'");
        interp::set_default_engine(*engine);
    }
    if (!options_.flow_manifest.empty())
        manifest_.emplace(load_manifest(options_.flow_manifest));
}

FlowResult FlowSession::run(const DesignFlow& flow, FlowContext ctx,
                            EngineOptions engine) {
    if (engine.jobs <= 0) engine.jobs = options_.jobs;
    const auto start = std::chrono::steady_clock::now();
    FlowResult result = detail::run_flow_impl(flow, std::move(ctx), engine);
    const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    trace::Registry::current().count("flow.runs", 1);
    trace::Registry::current().count("flow.wall_us",
                                    static_cast<std::uint64_t>(wall_us));
    return result;
}

} // namespace psaflow::flow
