#include "flow/tasks.hpp"

#include <algorithm>
#include <cctype>

#include "analysis/hotspot.hpp"
#include "analysis/intensity.hpp"
#include "ast/walk.hpp"
#include "dse/dse.hpp"
#include "meta/query.hpp"
#include "perf/estimator.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"
#include "transform/accumulation.hpp"
#include "transform/extract.hpp"
#include "transform/parallel.hpp"
#include "transform/single_precision.hpp"
#include "transform/unroll.hpp"

namespace psaflow::flow {

using namespace psaflow::ast;

const char* to_string(TaskClass cls) {
    switch (cls) {
        case TaskClass::Analysis: return "A";
        case TaskClass::Transform: return "T";
        case TaskClass::CodeGen: return "CG";
        case TaskClass::Optimisation: return "O";
    }
    return "?";
}

std::string Task::id() const {
    const std::string display = name();
    std::string out;
    out.reserve(display.size());
    bool pending_dash = false;
    for (char c : display) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            if (pending_dash && !out.empty()) out.push_back('-');
            pending_dash = false;
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else {
            pending_dash = true;
        }
    }
    return out;
}

namespace {

/// Boilerplate-reducing base.
template <TaskClass Cls, bool Dynamic = false>
class TaskBase : public Task {
public:
    [[nodiscard]] TaskClass cls() const final { return Cls; }
    [[nodiscard]] bool dynamic() const final { return Dynamic; }
};

// ===================================================== target-independent ==

class IdentifyHotspotLoops final
    : public TaskBase<TaskClass::Analysis, true> {
public:
    std::string name() const override { return "Identify Hotspot Loops"; }

    void run(FlowContext& ctx) override {
        auto report = analysis::detect_hotspots(ctx.module(), ctx.types(),
                                                ctx.workload());
        const auto* top = report.top();
        ensure(top != nullptr,
               "Identify Hotspot Loops: no loop executed under the workload");
        ctx.hotspot_loop_id = top->loop->id;
        ctx.hotspot_function = top->function->name;
        ctx.hotspot_fraction = top->fraction;
        ctx.note("hotspot: loop in '" + top->function->name + "' covering " +
                 format_compact(100.0 * top->fraction, 3) +
                 "% of execution cost");
    }
};

class HotspotLoopExtraction final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Hotspot Loop Extraction"; }

    void run(FlowContext& ctx) override {
        ensure(ctx.hotspot_loop_id.has_value(),
               "Hotspot Loop Extraction: run hotspot detection first");
        For* loop = nullptr;
        walk(static_cast<Node&>(ctx.module()), [&](Node& n) {
            if (n.id == *ctx.hotspot_loop_id) loop = dyn_cast<For>(&n);
            return loop == nullptr;
        });
        ensure(loop != nullptr,
               "Hotspot Loop Extraction: hotspot loop no longer present");

        const std::string kernel_name = ctx.app_name() + "_kernel";
        transform::extract_hotspot(ctx.module(), ctx.types(), *loop,
                                   kernel_name);
        ctx.spec.kernel_name = kernel_name;
        ctx.invalidate();
        // Capture the single-thread CPU reference time from the pristine
        // kernel, before any target-specific transform perturbs the shape.
        const double ref = ctx.reference_seconds();
        ctx.note("extracted kernel '" + kernel_name + "'; reference 1-thread "
                 "CPU time " + format_compact(ref, 4) + " s at eval scale");
    }
};

class PointerAnalysis final : public TaskBase<TaskClass::Analysis, true> {
public:
    std::string name() const override { return "Pointer Analysis"; }

    void run(FlowContext& ctx) override {
        const bool alias = ctx.characterization().args_alias;
        ensure(!alias, "Pointer Analysis: kernel pointer arguments alias; "
                       "offloading would be unsound");
        ctx.note("pointer analysis: kernel arguments do not alias");
    }
};

class ArithmeticIntensityAnalysis final
    : public TaskBase<TaskClass::Analysis> {
public:
    std::string name() const override {
        return "Arithmetic Intensity Analysis";
    }

    void run(FlowContext& ctx) override {
        const double ai =
            ctx.characterization().flops_per_byte(ctx.relative_scale());
        const auto si = analysis::static_intensity(ctx.outer_loop(),
                                                   ctx.types());
        ctx.note("arithmetic intensity: " + format_compact(ai, 4) +
                 " FLOPs/B dynamic (static per-iteration: " +
                 format_compact(si.flops, 4) + " flops / " +
                 format_compact(si.bytes, 4) + " bytes)");
    }
};

class DataInOutAnalysis final : public TaskBase<TaskClass::Analysis, true> {
public:
    std::string name() const override { return "Data In/Out Analysis"; }

    void run(FlowContext& ctx) override {
        const auto& ch = ctx.characterization();
        const double s = ctx.relative_scale();
        ctx.note("data in/out: " + format_compact(ch.bytes_in.at(s), 4) +
                 " B in, " + format_compact(ch.bytes_out.at(s), 4) +
                 " B out per run at eval scale");
    }
};

class LoopDependenceAnalysis final : public TaskBase<TaskClass::Analysis> {
public:
    std::string name() const override { return "Loop Dependence Analysis"; }

    void run(FlowContext& ctx) override {
        const auto& info = ctx.outer_dependence();
        std::string line = "outer loop: ";
        line += info.parallel ? "parallel" : "not parallel";
        if (info.has_reductions()) line += " (with reductions)";
        if (!info.array_accumulations.empty())
            line += "; array accumulations: " +
                    join(info.array_accumulations, ",");
        ctx.note("loop dependence: " + line);
    }
};

class LoopTripCountAnalysis final
    : public TaskBase<TaskClass::Analysis, true> {
public:
    std::string name() const override { return "Loop Trip-Count Analysis"; }

    void run(FlowContext& ctx) override {
        const auto& ch = ctx.characterization();
        std::string line;
        for (const auto& lp : ch.loops) {
            if (!line.empty()) line += ", ";
            line += format_compact(lp.trips_per_entry.base, 4) + "*s^" +
                    format_compact(lp.trips_per_entry.exponent, 3);
        }
        ctx.note("trip counts (outer-first): " + line);
    }
};

class RemoveArrayPlusEq final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Remove Array += Dependency"; }

    void run(FlowContext& ctx) override {
        const int n =
            transform::remove_array_accumulation(ctx.module(),
                                                 ctx.outer_loop());
        if (n > 0) {
            ctx.invalidate();
            ctx.note("removed " + std::to_string(n) +
                     " array accumulation dependencies");
        }
    }
};

// ================================================================ FPGA =====

class GenerateOneApiDesign final : public TaskBase<TaskClass::CodeGen> {
public:
    std::string name() const override { return "Generate oneAPI Design"; }

    void run(FlowContext& ctx) override {
        ctx.spec.target = codegen::TargetKind::CpuFpga;
        ctx.note("generating oneAPI CPU+FPGA design");
    }
};

class UnrollFixedLoops final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Unroll Fixed Loops"; }

    void run(FlowContext& ctx) override {
        // Fully unroll fixed-bound inner loops, innermost-first, so FPGA
        // pipelines issue one outer iteration per cycle.
        int total = 0;
        for (int guard = 0; guard < 64; ++guard) {
            For* victim = nullptr;
            For& outer = ctx.outer_loop();
            for (For* inner : meta::inner_for_loops(outer)) {
                if (!meta::has_fixed_bounds(*inner)) continue;
                if (meta::constant_trip_count(*inner) > 64) continue;
                // Innermost-first: skip loops that still contain fixed loops.
                bool contains_fixed = false;
                for (For* nested : meta::inner_for_loops(*inner)) {
                    if (meta::has_fixed_bounds(*nested) &&
                        meta::constant_trip_count(*nested) <= 64)
                        contains_fixed = true;
                }
                if (!contains_fixed) {
                    victim = inner;
                    break;
                }
            }
            if (victim == nullptr) break;
            transform::fully_unroll_loop(ctx.module(), *victim);
            ctx.invalidate();
            ++total;
        }
        if (total > 0)
            ctx.note("fully unrolled " + std::to_string(total) +
                     " fixed-bound inner loops");
    }
};

class EmploySpMathFns final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Employ SP Math Fns"; }

    void run(FlowContext& ctx) override {
        if (!ctx.allow_single_precision) {
            ctx.note("SP math skipped: application is precision-sensitive");
            return;
        }
        const int n = transform::employ_sp_math(ctx.kernel());
        if (n > 0) {
            ctx.spec.single_precision = true;
            ctx.invalidate();
            ctx.note("rewrote " + std::to_string(n) +
                     " math calls to single precision");
        }
    }
};

class EmploySpNumericLiterals final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Employ SP Numeric Literals"; }

    void run(FlowContext& ctx) override {
        if (!ctx.allow_single_precision) {
            ctx.note("SP literals skipped: application is precision-"
                     "sensitive");
            return;
        }
        const int lits = transform::employ_sp_literals(ctx.kernel());
        const int locals = transform::demote_double_locals(ctx.kernel());
        if (lits + locals > 0) {
            ctx.spec.single_precision = true;
            ctx.invalidate();
            ctx.note("converted " + std::to_string(lits) + " literals and " +
                     std::to_string(locals) + " locals to single precision");
        }
    }
};

class ZeroCopyDataTransfer final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Zero-Copy Data Transfer"; }

    void run(FlowContext& ctx) override {
        ctx.spec.zero_copy = true;
        ctx.note("enabled zero-copy host memory (USM)");
    }
};

class UnrollUntilOvermapDse final
    : public TaskBase<TaskClass::Optimisation, true> {
public:
    explicit UnrollUntilOvermapDse(platform::DeviceId device)
        : device_(device) {}

    std::string name() const override {
        return std::string(platform::to_string(device_)) +
               " Unroll Until Overmap DSE";
    }

    void run(FlowContext& ctx) override {
        ctx.spec.device = device_;
        platform::FpgaModel model(platform::fpga_spec(device_));
        const auto shape = ctx.shape();
        const int max_unroll = static_cast<int>(std::min(
            16384.0, std::max(1.0, shape.parallel_iters)));
        auto result =
            dse::unroll_until_overmap(model, ctx.kernel(), ctx.types(),
                                      max_unroll, ctx.spec.single_precision);
        ctx.spec.unroll = std::max(1, result.unroll);
        ctx.spec.synthesizable = result.synthesizable();
        if (result.synthesizable()) {
            ctx.fpga_report = result.report;
            ctx.note(std::string(platform::to_string(device_)) +
                     ": unroll " + std::to_string(result.unroll) + " at " +
                     format_compact(100.0 * result.report.utilisation(), 3) +
                     "% utilisation");
        } else {
            // Even unroll=1 overmaps: keep the (overmapped) report so the
            // design can be emitted with its warning — the paper's Rush
            // Larsen outcome.
            ctx.fpga_report = model.report(ctx.kernel(), ctx.types(), 1,
                                           ctx.spec.single_precision);
            ctx.note(std::string(platform::to_string(device_)) +
                     ": design overmaps at unroll 1 — not synthesizable");
        }
    }

private:
    platform::DeviceId device_;
};

// ================================================================= GPU =====

class GenerateHipDesign final : public TaskBase<TaskClass::CodeGen> {
public:
    std::string name() const override { return "Generate HIP Design"; }

    void run(FlowContext& ctx) override {
        ctx.spec.target = codegen::TargetKind::CpuGpu;
        // Directional staging from the data in/out analysis: only read
        // buffers travel to the device, only written buffers travel back.
        ctx.spec.copy_in.clear();
        ctx.spec.copy_out.clear();
        for (const auto& buf : ctx.characterization().buffers) {
            if (buf.bytes_in.base > 0.0) ctx.spec.copy_in.push_back(buf.name);
            if (buf.bytes_out.base > 0.0)
                ctx.spec.copy_out.push_back(buf.name);
        }
        ctx.note("generating HIP CPU+GPU design (copy in: " +
                 join(ctx.spec.copy_in, ",") + "; copy out: " +
                 join(ctx.spec.copy_out, ",") + ")");
    }
};

class EmployHipPinnedMemory final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Employ HIP Pinned Memory"; }

    void run(FlowContext& ctx) override {
        ctx.spec.pinned_host_memory = true;
        ctx.note("host buffers pinned (hipHostMalloc)");
    }
};

class IntroduceSharedMemBuf final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Introduce Shared Mem Buf"; }

    void run(FlowContext& ctx) override {
        auto candidates = transform::shared_mem_candidates(ctx.outer_loop());
        if (candidates.empty()) {
            ctx.note("no shared-memory staging candidates");
            return;
        }
        transform::annotate_shared_mem(ctx.outer_loop(), candidates);
        ctx.spec.shared_arrays = candidates;
        ctx.note("staging in shared memory: " + join(candidates, ", "));
    }
};

class EmploySpecialisedMathFns final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Employ Specialised Math Fns"; }

    void run(FlowContext& ctx) override {
        if (!ctx.spec.single_precision) {
            ctx.note("specialised math skipped: kernel is double precision");
            return;
        }
        ctx.spec.specialised_math = true;
        ctx.note("using device fast-math intrinsics (__expf, __logf, ...)");
    }
};

class BlocksizeDse final : public TaskBase<TaskClass::Optimisation, true> {
public:
    explicit BlocksizeDse(platform::DeviceId device) : device_(device) {}

    std::string name() const override {
        return std::string(platform::to_string(device_)) + " Blocksize DSE";
    }

    void run(FlowContext& ctx) override {
        ctx.spec.device = device_;
        platform::GpuModel model(platform::gpu_spec(device_));
        const auto shape = ctx.shape();

        // Shared tiles grow with the block: one element per thread per
        // staged array.
        double smem_per_thread = 0.0;
        for (const auto& arr : ctx.spec.shared_arrays) {
            smem_per_thread +=
                size_of(ctx.types().var_type(ctx.kernel(), arr).elem);
        }

        auto result = dse::blocksize_dse(model, shape, smem_per_thread,
                                         ctx.spec.pinned_host_memory);
        ctx.spec.block_size = result.block_size;
        ctx.note(std::string(platform::to_string(device_)) + ": blocksize " +
                 std::to_string(result.block_size) + " (occupancy " +
                 format_compact(100.0 * result.occupancy, 3) + "%)");
    }

private:
    platform::DeviceId device_;
};

// ================================================================= CPU =====

class MultiThreadParallelLoops final : public TaskBase<TaskClass::Transform> {
public:
    std::string name() const override { return "Multi-Thread Parallel Loops"; }

    void run(FlowContext& ctx) override {
        ctx.spec.target = codegen::TargetKind::CpuOpenMp;
        ctx.spec.device = platform::DeviceId::Epyc7543;
        const auto& dep = ctx.outer_dependence();
        ensure(dep.parallel, "Multi-Thread Parallel Loops: outer loop is not "
                             "parallel");
        transform::insert_omp_parallel_for(
            ctx.outer_loop(), platform::epyc7543().cores, dep.reductions);
        ctx.note("inserted OpenMP parallel-for work sharing");
    }
};

class OmpNumThreadsDse final : public TaskBase<TaskClass::Optimisation, true> {
public:
    std::string name() const override { return "OMP Num. Threads DSE"; }

    void run(FlowContext& ctx) override {
        platform::CpuModel model(platform::epyc7543());
        auto result = dse::omp_threads_dse(model, ctx.shape());
        ctx.spec.omp_threads = result.threads;
        // Refresh the pragma with the DSE-chosen thread count.
        transform::insert_omp_parallel_for(ctx.outer_loop(), result.threads,
                                           ctx.outer_dependence().reductions);
        ctx.note("OMP threads: " + std::to_string(result.threads));
    }
};

} // namespace

// ------------------------------------------------------------- factories ---

TaskPtr identify_hotspot_loops() {
    return std::make_shared<IdentifyHotspotLoops>();
}
TaskPtr hotspot_loop_extraction() {
    return std::make_shared<HotspotLoopExtraction>();
}
TaskPtr pointer_analysis() { return std::make_shared<PointerAnalysis>(); }
TaskPtr arithmetic_intensity_analysis() {
    return std::make_shared<ArithmeticIntensityAnalysis>();
}
TaskPtr data_inout_analysis() { return std::make_shared<DataInOutAnalysis>(); }
TaskPtr loop_dependence_analysis() {
    return std::make_shared<LoopDependenceAnalysis>();
}
TaskPtr loop_tripcount_analysis() {
    return std::make_shared<LoopTripCountAnalysis>();
}
TaskPtr remove_array_plus_eq() { return std::make_shared<RemoveArrayPlusEq>(); }
TaskPtr generate_oneapi_design() {
    return std::make_shared<GenerateOneApiDesign>();
}
TaskPtr unroll_fixed_loops() { return std::make_shared<UnrollFixedLoops>(); }
TaskPtr employ_sp_math_fns() { return std::make_shared<EmploySpMathFns>(); }
TaskPtr employ_sp_numeric_literals() {
    return std::make_shared<EmploySpNumericLiterals>();
}
TaskPtr zero_copy_data_transfer() {
    return std::make_shared<ZeroCopyDataTransfer>();
}
TaskPtr unroll_until_overmap_dse(platform::DeviceId device) {
    return std::make_shared<UnrollUntilOvermapDse>(device);
}
TaskPtr generate_hip_design() { return std::make_shared<GenerateHipDesign>(); }
TaskPtr employ_hip_pinned_memory() {
    return std::make_shared<EmployHipPinnedMemory>();
}
TaskPtr introduce_shared_mem_buf() {
    return std::make_shared<IntroduceSharedMemBuf>();
}
TaskPtr employ_specialised_math_fns() {
    return std::make_shared<EmploySpecialisedMathFns>();
}
TaskPtr blocksize_dse(platform::DeviceId device) {
    return std::make_shared<BlocksizeDse>(device);
}
TaskPtr multi_thread_parallel_loops() {
    return std::make_shared<MultiThreadParallelLoops>();
}
TaskPtr omp_num_threads_dse() { return std::make_shared<OmpNumThreadsDse>(); }

std::vector<TaskPtr> repository() {
    return {
        identify_hotspot_loops(),
        hotspot_loop_extraction(),
        pointer_analysis(),
        arithmetic_intensity_analysis(),
        data_inout_analysis(),
        loop_dependence_analysis(),
        loop_tripcount_analysis(),
        remove_array_plus_eq(),
        generate_oneapi_design(),
        unroll_fixed_loops(),
        employ_sp_math_fns(),
        employ_sp_numeric_literals(),
        unroll_until_overmap_dse(platform::DeviceId::Arria10),
        zero_copy_data_transfer(),
        unroll_until_overmap_dse(platform::DeviceId::Stratix10),
        generate_hip_design(),
        employ_hip_pinned_memory(),
        employ_sp_math_fns(),
        employ_sp_numeric_literals(),
        introduce_shared_mem_buf(),
        employ_specialised_math_fns(),
        blocksize_dse(platform::DeviceId::Gtx1080Ti),
        blocksize_dse(platform::DeviceId::Rtx2080Ti),
        multi_thread_parallel_loops(),
        omp_num_threads_dse(),
    };
}

} // namespace psaflow::flow
