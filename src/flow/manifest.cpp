#include "flow/manifest.hpp"

#include <algorithm>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>

#include "apps/apps.hpp"
#include "flow/learned_strategy.hpp"
#include "flow/strategy.hpp"
#include "flow/task_registry.hpp"
#include "support/error.hpp"

namespace psaflow::flow {

namespace {

// Diagnostics carry a JSON-path location ("$.branch.paths[2].tasks[0]") so
// a manifest author lands on the offending node, not just the file.
[[noreturn]] void fail(const std::string& loc, const std::string& msg) {
    throw Error("flow manifest: " + loc + ": " + msg);
}

std::string at(const std::string& loc, const std::string& key) {
    return loc + "." + key;
}

std::string at(const std::string& loc, std::size_t index) {
    return loc + "[" + std::to_string(index) + "]";
}

void reject_unknown_fields(const json::Value& obj, const std::string& loc,
                           std::initializer_list<const char*> known) {
    for (const auto& [key, value] : obj.members) {
        (void)value;
        const bool ok = std::any_of(
            known.begin(), known.end(),
            [&key](const char* k) { return key == k; });
        if (!ok) fail(loc, "unknown field \"" + key + "\"");
    }
}

[[nodiscard]] bool integral(const json::Value& v) {
    return v.is_number() &&
           v.number_value ==
               static_cast<double>(static_cast<long long>(v.number_value));
}

std::vector<TaskPtr> parse_tasks(const json::Value& list,
                                 const std::string& loc) {
    if (!list.is_array()) fail(loc, "must be an array of task ids");
    std::vector<TaskPtr> tasks;
    tasks.reserve(list.elements.size());
    for (std::size_t i = 0; i < list.elements.size(); ++i) {
        const json::Value& id = list.elements[i];
        if (!id.is_string()) fail(at(loc, i), "task id must be a string");
        if (!TaskRegistry::global().contains(id.string_value))
            fail(at(loc, i),
                 "unknown task id '" + id.string_value + "'");
        tasks.push_back(TaskRegistry::global().make(id.string_value));
    }
    return tasks;
}

std::shared_ptr<PsaStrategy>
parse_strategy(const json::Value& spec, const std::string& loc,
               const std::string& branch_name,
               const std::vector<std::string>& path_names) {
    std::string kind;
    const json::Value* args = nullptr;
    if (spec.is_string()) {
        kind = spec.string_value;
    } else if (spec.is_object()) {
        const json::Value* name = spec.find("name");
        if (name == nullptr || !name->is_string())
            fail(at(loc, "name"),
                 "strategy object needs a string \"name\"");
        kind = name->string_value;
        args = &spec;
    } else {
        fail(loc, "strategy must be a string or an object with \"name\"");
    }

    if (kind == "informed") {
        if (args != nullptr) reject_unknown_fields(*args, loc, {"name"});
        return informed_strategy();
    }
    if (kind == "select-all") {
        if (args != nullptr) reject_unknown_fields(*args, loc, {"name"});
        return select_all();
    }
    if (kind == "fixed-path") {
        if (args != nullptr)
            reject_unknown_fields(*args, loc, {"name", "paths"});
        const json::Value* list =
            args != nullptr ? args->find("paths") : nullptr;
        if (list == nullptr || !list->is_array() || list->elements.empty())
            fail(at(loc, "paths"), "fixed-path needs a \"paths\" array "
                                   "naming at least one path");
        std::vector<std::string> names;
        for (std::size_t i = 0; i < list->elements.size(); ++i) {
            const json::Value& name = list->elements[i];
            const std::string nloc = at(at(loc, "paths"), i);
            if (!name.is_string()) fail(nloc, "path name must be a string");
            if (std::find(path_names.begin(), path_names.end(),
                          name.string_value) == path_names.end())
                fail(nloc, "fixed-path names unknown path '" +
                               name.string_value + "' of branch '" +
                               branch_name + "'");
            names.push_back(name.string_value);
        }
        return fixed_path_strategy(std::move(names));
    }
    if (kind == "learned") {
        if (args != nullptr)
            reject_unknown_fields(*args, loc, {"name", "k", "train_apps"});
        int k = 3;
        std::vector<const apps::Application*> train =
            apps::all_applications();
        if (args != nullptr) {
            if (const json::Value* kv = args->find("k")) {
                if (!integral(*kv) || kv->number_value < 1.0)
                    fail(at(loc, "k"), "must be an integer >= 1");
                k = static_cast<int>(kv->number_value);
            }
            if (const json::Value* list = args->find("train_apps")) {
                if (!list->is_array() || list->elements.empty())
                    fail(at(loc, "train_apps"),
                         "must be a non-empty array of application names");
                train.clear();
                for (std::size_t i = 0; i < list->elements.size(); ++i) {
                    const json::Value& name = list->elements[i];
                    const std::string nloc =
                        at(at(loc, "train_apps"), i);
                    if (!name.is_string())
                        fail(nloc, "application name must be a string");
                    try {
                        train.push_back(
                            &apps::application_by_name(name.string_value));
                    } catch (const Error&) {
                        fail(nloc, "unknown application '" +
                                       name.string_value + "'");
                    }
                }
            }
        }
        // Deterministic but expensive: one uninformed flow per training
        // app. Opting into "learned" in a manifest pays for the training.
        return std::make_shared<LearnedStrategy>(train_from_oracle(train),
                                                 k);
    }
    fail(loc, "unknown strategy '" + kind +
                  "' (known: fixed-path, informed, learned, select-all)");
}

/// Named branch definitions ("branches") plus the reference-resolution
/// stack that turns a circular reference into a located diagnostic instead
/// of infinite recursion.
struct BranchTable {
    const json::Value* defs = nullptr;
    std::vector<std::string> active;
};

std::shared_ptr<BranchPoint> parse_branch(const json::Value& spec,
                                          const std::string& loc,
                                          BranchTable& table);

std::shared_ptr<BranchPoint> parse_branch_spec(const json::Value& spec,
                                               const std::string& loc,
                                               BranchTable& table) {
    if (!spec.is_string()) return parse_branch(spec, loc, table);
    const std::string& ref = spec.string_value;
    if (std::find(table.active.begin(), table.active.end(), ref) !=
        table.active.end())
        fail(loc, "circular branch reference '" + ref + "'");
    const json::Value* def =
        table.defs != nullptr ? table.defs->find(ref) : nullptr;
    if (def == nullptr)
        fail(loc, "unknown branch reference '" + ref +
                      "' (no such entry in \"branches\")");
    table.active.push_back(ref);
    auto branch = parse_branch(*def, at("$.branches", ref), table);
    table.active.pop_back();
    return branch;
}

std::shared_ptr<BranchPoint> parse_branch(const json::Value& spec,
                                          const std::string& loc,
                                          BranchTable& table) {
    if (!spec.is_object())
        fail(loc, "branch must be an object (or a \"branches\" reference)");
    reject_unknown_fields(spec, loc, {"name", "strategy", "paths"});

    auto branch = std::make_shared<BranchPoint>();
    const json::Value* name = spec.find("name");
    if (name == nullptr) fail(loc, "missing required \"name\"");
    if (!name->is_string() || name->string_value.empty())
        fail(at(loc, "name"), "must be a non-empty string");
    branch->name = name->string_value;

    const json::Value* paths = spec.find("paths");
    if (paths == nullptr || !paths->is_array() || paths->elements.empty())
        fail(at(loc, "paths"), "a branch needs at least one path");
    std::vector<std::string> path_names;
    for (std::size_t i = 0; i < paths->elements.size(); ++i) {
        const json::Value& entry = paths->elements[i];
        const std::string ploc = at(at(loc, "paths"), i);
        if (!entry.is_object()) fail(ploc, "path must be an object");
        reject_unknown_fields(entry, ploc, {"name", "tasks", "branch"});

        FlowPath path;
        const json::Value* pname = entry.find("name");
        if (pname == nullptr) fail(ploc, "missing required \"name\"");
        if (!pname->is_string() || pname->string_value.empty())
            fail(at(ploc, "name"), "must be a non-empty string");
        path.name = pname->string_value;
        if (std::find(path_names.begin(), path_names.end(), path.name) !=
            path_names.end())
            fail(ploc, "duplicate path name '" + path.name + "'");
        path_names.push_back(path.name);

        if (const json::Value* tasks = entry.find("tasks"))
            path.tasks = parse_tasks(*tasks, at(ploc, "tasks"));
        if (const json::Value* nested = entry.find("branch"))
            path.next =
                parse_branch_spec(*nested, at(ploc, "branch"), table);
        branch->paths.push_back(std::move(path));
    }

    const json::Value* strategy = spec.find("strategy");
    branch->strategy =
        strategy != nullptr
            ? parse_strategy(*strategy, at(loc, "strategy"), branch->name,
                             path_names)
            : select_all();
    return branch;
}

json::Value export_strategy(const PsaStrategy& strategy) {
    if (const auto* fixed =
            dynamic_cast<const FixedPathStrategy*>(&strategy)) {
        json::Value spec = json::Value::object();
        spec.set("name", json::Value::string("fixed-path"));
        json::Value paths = json::Value::array();
        for (const std::string& name : fixed->paths())
            paths.push(json::Value::string(name));
        spec.set("paths", std::move(paths));
        return spec;
    }
    // Strategies without parameters export by name; the informed strategy's
    // cost-feedback exclusions are engine-internal state, never part of a
    // user-built flow, so the plain spelling is always faithful here.
    const std::string name = strategy.name();
    if (name == "select-all") return json::Value::string("select-all");
    if (name == "informed (Fig. 3)") return json::Value::string("informed");
    throw Error("flow::to_manifest: strategy '" + name +
                "' has no manifest spelling");
}

json::Value export_branch(const BranchPoint& branch) {
    json::Value out = json::Value::object();
    out.set("name", json::Value::string(branch.name));
    ensure(branch.strategy != nullptr,
           "flow::to_manifest: branch '" + branch.name +
               "' has no strategy");
    out.set("strategy", export_strategy(*branch.strategy));
    json::Value paths = json::Value::array();
    for (const FlowPath& path : branch.paths) {
        json::Value entry = json::Value::object();
        entry.set("name", json::Value::string(path.name));
        json::Value tasks = json::Value::array();
        for (const TaskPtr& task : path.tasks)
            tasks.push(json::Value::string(task->id()));
        entry.set("tasks", std::move(tasks));
        if (path.next != nullptr)
            entry.set("branch", export_branch(*path.next));
        paths.push(std::move(entry));
    }
    out.set("paths", std::move(paths));
    return out;
}

} // namespace

ManifestFlow from_manifest(const json::Value& doc) {
    if (!doc.is_object()) fail("$", "manifest must be a JSON object");
    reject_unknown_fields(doc, "$",
                          {"psaflow_manifest", "name", "prologue",
                           "branches", "branch", "budget", "threshold_x",
                           "max_feedback_iterations"});

    const json::Value* version = doc.find("psaflow_manifest");
    if (version == nullptr)
        fail("$", "missing required \"psaflow_manifest\" version field");
    if (!version->is_number() ||
        version->number_value != static_cast<double>(kManifestVersion))
        fail("$.psaflow_manifest",
             "unsupported manifest version " + json::dump(*version) +
                 " (this build supports " +
                 std::to_string(kManifestVersion) + ")");

    ManifestFlow out;
    if (const json::Value* name = doc.find("name")) {
        if (!name->is_string()) fail("$.name", "must be a string");
        out.name = name->string_value;
    }
    if (const json::Value* prologue = doc.find("prologue"))
        out.flow.prologue = parse_tasks(*prologue, "$.prologue");

    BranchTable table;
    if (const json::Value* defs = doc.find("branches")) {
        if (!defs->is_object())
            fail("$.branches",
                 "must be an object of named branch definitions");
        std::set<std::string> seen;
        for (const auto& [key, value] : defs->members) {
            (void)value;
            if (!seen.insert(key).second)
                fail("$.branches", "duplicate branch name '" + key + "'");
        }
        table.defs = defs;
    }
    if (const json::Value* branch = doc.find("branch"))
        out.flow.branch = parse_branch_spec(*branch, "$.branch", table);

    if (const json::Value* budget = doc.find("budget")) {
        if (!budget->is_object())
            fail("$.budget", "must be an object with \"max_run_cost\"");
        reject_unknown_fields(*budget, "$.budget", {"max_run_cost"});
        const json::Value* cost = budget->find("max_run_cost");
        if (cost == nullptr || !cost->is_number() ||
            cost->number_value < 0.0)
            fail("$.budget.max_run_cost",
                 "must be a non-negative number");
        out.max_run_cost = cost->number_value;
    }
    if (const json::Value* x = doc.find("threshold_x")) {
        if (!x->is_number() || !(x->number_value > 0.0))
            fail("$.threshold_x", "must be a positive number");
        out.threshold_x = x->number_value;
    }
    if (const json::Value* iters = doc.find("max_feedback_iterations")) {
        if (!integral(*iters) || iters->number_value < 0.0)
            fail("$.max_feedback_iterations",
                 "must be a non-negative integer");
        out.max_feedback_iterations = static_cast<int>(iters->number_value);
    }
    return out;
}

ManifestFlow parse_manifest_text(std::string_view text) {
    std::string error;
    const auto doc = json::parse(text, &error);
    if (!doc.has_value()) throw Error("flow manifest: " + error);
    return from_manifest(*doc);
}

ManifestFlow load_manifest(const std::string& spec) {
    if (!spec.empty() && spec.front() == '{')
        return parse_manifest_text(spec);
    std::ifstream file(spec);
    if (!file) throw Error("flow manifest: cannot read '" + spec + "'");
    std::stringstream buffer;
    buffer << file.rdbuf();
    try {
        return parse_manifest_text(buffer.str());
    } catch (const Error& e) {
        throw Error(std::string(e.what()) + " [" + spec + "]");
    }
}

json::Value to_manifest(const DesignFlow& flow, const std::string& name) {
    json::Value doc = json::Value::object();
    doc.set("psaflow_manifest",
            json::Value::number(static_cast<double>(kManifestVersion)));
    if (!name.empty()) doc.set("name", json::Value::string(name));
    json::Value prologue = json::Value::array();
    for (const TaskPtr& task : flow.prologue)
        prologue.push(json::Value::string(task->id()));
    doc.set("prologue", std::move(prologue));
    if (flow.branch != nullptr)
        doc.set("branch", export_branch(*flow.branch));
    return doc;
}

} // namespace psaflow::flow
