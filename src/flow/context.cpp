#include "flow/context.hpp"

#include "analysis/hotspot.hpp"
#include "analysis/profile_cache.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "codegen/emit_util.hpp"
#include "perf/estimator.hpp"
#include "support/cas/cas.hpp"
#include "support/error.hpp"

namespace psaflow::flow {

FlowContext::FlowContext(std::string app_name, ast::ModulePtr source_module,
                         analysis::Workload workload)
    : app_name_(std::move(app_name)), module_(std::move(source_module)),
      workload_(std::move(workload)) {
    ensure(module_ != nullptr, "FlowContext: null module");
    types_ = sema::check(*module_);
    reference_source_ = ast::to_source(*module_);
    spec.app_name = app_name_;
}

FlowContext FlowContext::fork() const {
    FlowContext out(app_name_, ast::clone_module(*module_), workload_);
    out.reference_source_ = reference_source_;
    out.spec = spec;
    out.fpga_report = fpga_report;
    out.allow_single_precision = allow_single_precision;
    out.intensity_threshold_x = intensity_threshold_x;
    out.reference_seconds_ = reference_seconds_;
    out.workload_digest_ = workload_digest_;
    out.log_ = log_;
    out.cancel = cancel;
    // ch_/outer_dep_ are keyed by node ids, which the clone regenerated:
    // recomputed lazily on demand.
    return out;
}

ast::Function& FlowContext::kernel() const {
    ensure(has_kernel(), "FlowContext: hotspot has not been extracted yet");
    ast::Function* fn = module_->find_function(spec.kernel_name);
    ensure(fn != nullptr,
           "FlowContext: kernel '" + spec.kernel_name + "' missing");
    return *fn;
}

ast::For& FlowContext::outer_loop() const {
    return codegen::kernel_outer_loop(kernel());
}

void FlowContext::invalidate() {
    types_ = sema::check(*module_);
    ch_.reset();
    outer_dep_.reset();
}

const analysis::KernelCharacterization& FlowContext::characterization() {
    if (!ch_.has_value()) {
        ch_ = analysis::characterize_kernel(*module_, types_,
                                            spec.kernel_name, workload_);
    }
    return *ch_;
}

const analysis::DependenceInfo& FlowContext::outer_dependence() {
    if (!outer_dep_.has_value()) {
        outer_dep_ = analysis::analyze_dependence(*module_, outer_loop());
    }
    return *outer_dep_;
}

platform::KernelShape FlowContext::shape() {
    perf::ShapeOptions opt;
    opt.relative_scale = relative_scale();
    opt.single_precision = spec.single_precision;
    opt.shared_arrays = spec.shared_arrays;
    return perf::build_kernel_shape(kernel(), types_, *module_,
                                    characterization(), opt);
}

std::uint64_t FlowContext::workload_digest() {
    if (workload_digest_ == 0) {
        cas::Hasher h;
        h.str("workload");
        h.str(workload_.entry);
        h.real(workload_.profile_scale);
        h.real(workload_.eval_scale);
        // Hash the argument contents at the two scales the dynamic analyses
        // actually execute (scaling-law fitting runs at 2x profile scale).
        h.u64(analysis::digest_args(
            workload_.make_args(workload_.profile_scale)));
        h.u64(analysis::digest_args(
            workload_.make_args(2.0 * workload_.profile_scale)));
        workload_digest_ = h.digest();
        if (workload_digest_ == 0) workload_digest_ = 1; // keep memoizable
    }
    return workload_digest_;
}

double FlowContext::reference_seconds() {
    if (reference_seconds_ == 0.0) {
        // Captured from the current state; the flow computes this right
        // after extraction, before any target-specific transform.
        reference_seconds_ = perf::cpu_reference_seconds(shape());
    }
    return reference_seconds_;
}

} // namespace psaflow::flow
