// The repository of codified design-flow tasks (paper Fig. 4, left panel).
// Factory functions create task instances; `repository()` lists one of each
// for documentation/inspection (the bench for Fig. 4 prints it).
#pragma once

#include <vector>

#include "flow/task.hpp"
#include "platform/devices.hpp"

namespace psaflow::flow {

// ---- target-independent (T-INDEP) ----------------------------------------
[[nodiscard]] TaskPtr identify_hotspot_loops();     // A, dynamic
[[nodiscard]] TaskPtr hotspot_loop_extraction();    // T
[[nodiscard]] TaskPtr pointer_analysis();           // A, dynamic
[[nodiscard]] TaskPtr arithmetic_intensity_analysis(); // A
[[nodiscard]] TaskPtr data_inout_analysis();        // A, dynamic
[[nodiscard]] TaskPtr loop_dependence_analysis();   // A
[[nodiscard]] TaskPtr loop_tripcount_analysis();    // A, dynamic
[[nodiscard]] TaskPtr remove_array_plus_eq();       // T

// ---- FPGA path -------------------------------------------------------
[[nodiscard]] TaskPtr generate_oneapi_design();     // CG
[[nodiscard]] TaskPtr unroll_fixed_loops();         // T
[[nodiscard]] TaskPtr employ_sp_math_fns();         // T (shared with GPU)
[[nodiscard]] TaskPtr employ_sp_numeric_literals(); // T (shared with GPU)
[[nodiscard]] TaskPtr zero_copy_data_transfer();    // T (Stratix10)
[[nodiscard]] TaskPtr unroll_until_overmap_dse(platform::DeviceId device); // O

// ---- GPU path --------------------------------------------------------
[[nodiscard]] TaskPtr generate_hip_design();        // CG
[[nodiscard]] TaskPtr employ_hip_pinned_memory();   // T
[[nodiscard]] TaskPtr introduce_shared_mem_buf();   // T
[[nodiscard]] TaskPtr employ_specialised_math_fns();// T
[[nodiscard]] TaskPtr blocksize_dse(platform::DeviceId device); // O

// ---- CPU path --------------------------------------------------------
[[nodiscard]] TaskPtr multi_thread_parallel_loops();// T
[[nodiscard]] TaskPtr omp_num_threads_dse();        // O

/// One instance of every task in the repository, in Fig. 4 order.
[[nodiscard]] std::vector<TaskPtr> repository();

} // namespace psaflow::flow
