#include "flow/strategy.hpp"

#include <algorithm>

#include "meta/query.hpp"
#include "perf/estimator.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"

namespace psaflow::flow {

double CostModel::price_per_hour(codegen::TargetKind target) const {
    switch (target) {
        case codegen::TargetKind::CpuGpu: return gpu_per_hour;
        case codegen::TargetKind::CpuFpga: return fpga_per_hour;
        default: return cpu_per_hour;
    }
}

double CostModel::run_cost(codegen::TargetKind target, double seconds) const {
    return seconds / 3600.0 * price_per_hour(target);
}

double energy_joules(const CostModel& model, platform::DeviceId device,
                     double seconds) {
    double device_watts = 0.0;
    switch (device) {
        case platform::DeviceId::Epyc7543:
            // The CPU designs run *on* the host: no separate host share.
            return platform::epyc7543().tdp_watts * seconds;
        case platform::DeviceId::Gtx1080Ti:
        case platform::DeviceId::Rtx2080Ti:
            device_watts = platform::gpu_spec(device).tdp_watts;
            break;
        case platform::DeviceId::Arria10:
        case platform::DeviceId::Stratix10:
            device_watts = platform::fpga_spec(device).tdp_watts;
            break;
    }
    return (device_watts + model.host_share_watts) * seconds;
}

const char* to_string(Fig3Choice choice) {
    switch (choice) {
        case Fig3Choice::CpuOpenMp: return "multi-thread CPU";
        case Fig3Choice::CpuGpu: return "CPU+GPU";
        case Fig3Choice::CpuFpga: return "CPU+FPGA";
        case Fig3Choice::Terminate: return "terminate (reference)";
    }
    return "?";
}

Fig3Choice fig3_decide(const Fig3Inputs& in) {
    const bool offload_worthwhile =
        in.transfer_seconds < in.cpu_seconds &&
        in.flops_per_byte > in.threshold_x;

    if (!offload_worthwhile) {
        // Memory-bound or transfer-dominated: accelerators cannot help.
        return in.outer_parallel ? Fig3Choice::CpuOpenMp
                                 : Fig3Choice::Terminate;
    }
    if (!in.outer_parallel) {
        // Sequential outer loop: only pipelined execution extracts
        // parallelism.
        return Fig3Choice::CpuFpga;
    }
    // Parallel outer loop: a GPU usually wins on data parallelism, unless
    // fixed-bound dependent inner loops make pipelined full unrolling on an
    // FPGA more profitable.
    if (in.inner_loop_with_deps && in.inner_fully_unrollable)
        return Fig3Choice::CpuFpga;
    return Fig3Choice::CpuGpu;
}

Fig3Inputs gather_fig3_inputs(FlowContext& ctx) {
    Fig3Inputs in;
    const auto shape = ctx.shape();
    in.transfer_seconds = perf::transfer_seconds_estimate(shape);
    in.cpu_seconds = ctx.reference_seconds();
    // Per-pass streaming intensity: the roofline-relevant FLOPs per byte of
    // DRAM traffic. Each kernel invocation streams the footprint once, so
    // the footprint-based intensity is divided by the invocation count.
    in.flops_per_byte =
        ctx.characterization().flops_per_byte(ctx.relative_scale()) /
        std::max<long long>(1, ctx.characterization().kernel_calls);
    in.threshold_x = ctx.intensity_threshold_x;
    in.outer_parallel = ctx.outer_dependence().parallel;

    for (ast::For* inner : meta::inner_for_loops(ctx.outer_loop())) {
        const auto info = analysis::analyze_dependence(ctx.module(), *inner);
        const bool deps = info.has_reductions() || !info.carried.empty() ||
                          !info.array_accumulations.empty();
        if (!deps) continue;
        in.inner_loop_with_deps = true;
        if (meta::has_fixed_bounds(*inner) &&
            meta::constant_trip_count(*inner) <= 64)
            in.inner_fully_unrollable = true;
    }
    return in;
}

namespace {

std::size_t path_index(const BranchPoint& branch, const std::string& name) {
    for (std::size_t i = 0; i < branch.paths.size(); ++i) {
        if (branch.paths[i].name == name) return i;
    }
    throw Error("PSA strategy: flow has no path named '" + name + "'");
}

class InformedStrategy final : public PsaStrategy {
public:
    explicit InformedStrategy(std::set<std::string> excluded)
        : excluded_(std::move(excluded)) {}

    std::string name() const override { return "informed (Fig. 3)"; }

    std::vector<std::size_t> select(FlowContext& ctx,
                                    const BranchPoint& branch) override {
        obs::DecisionRecord scratch;
        return select_explained(ctx, branch, scratch);
    }

    std::vector<std::size_t>
    select_explained(FlowContext& ctx, const BranchPoint& branch,
                     obs::DecisionRecord& record) override {
        record.strategy = name();
        const Fig3Inputs in = gather_fig3_inputs(ctx);
        Fig3Choice choice = fig3_decide(in);

        const std::string inputs_summary =
            "AI " + format_compact(in.flops_per_byte, 4) +
            " FLOPs/B (x=" + format_compact(in.threshold_x, 4) +
            "), transfer " + format_compact(in.transfer_seconds, 4) +
            " s vs CPU " + format_compact(in.cpu_seconds, 4) + " s, outer " +
            (in.outer_parallel ? "parallel" : "sequential");

        // Cost feedback: excluded targets fall through to the next-best
        // branch in a fixed preference order.
        auto choice_name = [](Fig3Choice c) -> std::string {
            switch (c) {
                case Fig3Choice::CpuOpenMp: return "cpu";
                case Fig3Choice::CpuGpu: return "gpu";
                case Fig3Choice::CpuFpga: return "fpga";
                default: return "";
            }
        };
        auto describe = [&](const std::string& path) -> std::string {
            if (excluded_.count(path) != 0)
                return "excluded by cost-budget feedback";
            if (path == choice_name(choice))
                return "Fig. 3 choice: " + std::string(to_string(choice));
            return "not the Fig. 3 choice";
        };
        for (const FlowPath& path : branch.paths) {
            obs::DecisionCandidate candidate;
            candidate.path = path.name;
            candidate.excluded = excluded_.count(path.name) != 0;
            candidate.evaluation = describe(path.name);
            record.candidates.push_back(std::move(candidate));
        }

        const std::vector<Fig3Choice> fallbacks = {
            choice, Fig3Choice::CpuFpga, Fig3Choice::CpuGpu,
            Fig3Choice::CpuOpenMp};
        for (Fig3Choice candidate : fallbacks) {
            if (candidate == Fig3Choice::Terminate) continue;
            const std::string name = choice_name(candidate);
            if (excluded_.count(name) != 0) continue;
            if (candidate != choice &&
                excluded_.count(choice_name(choice)) == 0)
                break; // original choice stands, no fallback needed
            const bool fell_back = candidate != choice;
            ctx.note("PSA (A): selected " +
                     std::string(to_string(candidate)) +
                     (fell_back ? " (cost feedback)" : "") +
                     " [AI " + format_compact(in.flops_per_byte, 4) +
                     " FLOPs/B, transfer " +
                     format_compact(in.transfer_seconds, 4) + " s vs CPU " +
                     format_compact(in.cpu_seconds, 4) + " s]");
            record.rationale =
                "Fig. 3 selected " + std::string(to_string(candidate)) +
                (fell_back ? " (cost-feedback fallback from " +
                                 std::string(to_string(choice)) + ")"
                           : "") +
                " [" + inputs_summary + "]";
            for (obs::DecisionCandidate& c : record.candidates) {
                if (c.path != name) continue;
                if (fell_back)
                    c.evaluation = "cost-feedback fallback: " +
                                   std::string(to_string(candidate));
            }
            return {path_index(branch, name)};
        }
        if (choice == Fig3Choice::Terminate) {
            ctx.note("PSA (A): offload not worthwhile and outer loop not "
                     "parallel — design-flow terminates unmodified");
            record.rationale =
                "offload not worthwhile and outer loop not parallel — "
                "design-flow terminates unmodified [" + inputs_summary + "]";
        } else {
            ctx.note("PSA (A): every profitable target excluded by the cost "
                     "budget — design-flow terminates unmodified");
            record.rationale =
                "every profitable target excluded by the cost budget — "
                "design-flow terminates unmodified [" + inputs_summary + "]";
        }
        return {};
    }

private:
    std::set<std::string> excluded_;
};

class SelectAll final : public PsaStrategy {
public:
    std::string name() const override { return "select-all"; }

    std::vector<std::size_t> select(FlowContext&,
                                    const BranchPoint& branch) override {
        std::vector<std::size_t> out(branch.paths.size());
        for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
        return out;
    }

    std::vector<std::size_t>
    select_explained(FlowContext& ctx, const BranchPoint& branch,
                     obs::DecisionRecord& record) override {
        record.strategy = name();
        record.rationale =
            "select-all: every path taken (uninformed mode / device "
            "enumeration)";
        for (const FlowPath& path : branch.paths) {
            obs::DecisionCandidate candidate;
            candidate.path = path.name;
            candidate.evaluation = "taken unconditionally";
            record.candidates.push_back(std::move(candidate));
        }
        return select(ctx, branch);
    }
};

} // namespace

FixedPathStrategy::FixedPathStrategy(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
    ensure(!paths_.empty(),
           "fixed-path strategy needs at least one path name");
}

std::vector<std::size_t> FixedPathStrategy::select(FlowContext&,
                                                   const BranchPoint& branch) {
    std::vector<std::size_t> out;
    for (const std::string& name : paths_) {
        const std::size_t index = path_index(branch, name);
        if (std::find(out.begin(), out.end(), index) == out.end())
            out.push_back(index);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::size_t>
FixedPathStrategy::select_explained(FlowContext& ctx,
                                    const BranchPoint& branch,
                                    obs::DecisionRecord& record) {
    record.strategy = name();
    const auto selected = select(ctx, branch);
    record.rationale = "fixed-path: the flow preselects " +
                       std::to_string(selected.size()) +
                       " path(s) unconditionally";
    for (std::size_t i = 0; i < branch.paths.size(); ++i) {
        obs::DecisionCandidate candidate;
        candidate.path = branch.paths[i].name;
        candidate.evaluation =
            std::find(selected.begin(), selected.end(), i) != selected.end()
                ? "preselected by the flow"
                : "not in the fixed path set";
        record.candidates.push_back(std::move(candidate));
    }
    return selected;
}

std::shared_ptr<PsaStrategy> informed_strategy(std::set<std::string> excluded) {
    return std::make_shared<InformedStrategy>(std::move(excluded));
}

std::shared_ptr<PsaStrategy> select_all() {
    return std::make_shared<SelectAll>();
}

std::shared_ptr<PsaStrategy>
fixed_path_strategy(std::vector<std::string> paths) {
    return std::make_shared<FixedPathStrategy>(std::move(paths));
}

} // namespace psaflow::flow
