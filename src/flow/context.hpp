// FlowContext: the design state threaded through a PSA-flow. Each branch
// path forks the context (deep-cloning the module) so sibling paths cannot
// observe each other's transforms — the mechanism behind Fig. 1's
// "increasingly specialized designs".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/characterize.hpp"
#include "analysis/dependence.hpp"
#include "analysis/workload.hpp"
#include "ast/nodes.hpp"
#include "codegen/design_spec.hpp"
#include "perf/shape_builder.hpp"
#include "platform/fpga.hpp"
#include "sema/type_check.hpp"

namespace psaflow {
class CancelToken;
} // namespace psaflow

namespace psaflow::flow {

class FlowContext {
public:
    /// Start a flow over `source_module` driven by `workload`.
    FlowContext(std::string app_name, ast::ModulePtr source_module,
                analysis::Workload workload);

    FlowContext(FlowContext&&) = default;
    FlowContext& operator=(FlowContext&&) = default;

    /// Deep copy for a branch path: clones the module, re-checks types and
    /// invalidates node-id-keyed caches.
    [[nodiscard]] FlowContext fork() const;

    // ---- state access -------------------------------------------------

    [[nodiscard]] ast::Module& module() { return *module_; }
    [[nodiscard]] const ast::Module& module() const { return *module_; }
    [[nodiscard]] const sema::TypeInfo& types() const { return types_; }
    [[nodiscard]] const analysis::Workload& workload() const {
        return workload_;
    }
    [[nodiscard]] const std::string& app_name() const { return app_name_; }
    [[nodiscard]] const std::string& reference_source() const {
        return reference_source_;
    }

    /// The extracted kernel function; throws before extraction.
    [[nodiscard]] ast::Function& kernel() const;
    [[nodiscard]] ast::For& outer_loop() const;
    [[nodiscard]] bool has_kernel() const { return !spec.kernel_name.empty(); }

    /// Evaluation scale relative to profiling scale.
    [[nodiscard]] double relative_scale() const {
        return workload_.eval_scale / workload_.profile_scale;
    }

    // ---- cache management -----------------------------------------------

    /// Call after any structural edit: re-runs sema and drops the dynamic
    /// characterisation (node ids / costs changed).
    void invalidate();

    /// Dynamic kernel characterisation of the *current* module state;
    /// recomputed lazily after invalidation.
    [[nodiscard]] const analysis::KernelCharacterization& characterization();

    /// Dependence analysis of the kernel's outer loop (current state).
    [[nodiscard]] const analysis::DependenceInfo& outer_dependence();

    /// KernelShape of the current design at evaluation scale, folding in
    /// the accumulated DesignSpec decisions (SP, shared arrays).
    [[nodiscard]] platform::KernelShape shape();

    /// Single-thread CPU reference time (captured by the first
    /// characterisation of the pristine kernel; stable across transforms).
    [[nodiscard]] double reference_seconds();

    /// Content digest of the workload: entry, scales and the full argument
    /// contents at the scales the dynamic analyses run (profile and 2x
    /// profile). The module print alone does not identify a flow's inputs,
    /// so persistent artifact-cache keys mix this in. Memoized; forks
    /// inherit the digest (the workload is shared).
    [[nodiscard]] std::uint64_t workload_digest();

    void note(std::string line) { log_.push_back(std::move(line)); }
    [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

    // ---- accumulated design decisions ------------------------------------

    codegen::DesignSpec spec;
    std::optional<platform::FpgaReport> fpga_report;

    /// Workload characteristics the PSA strategy consumes (set by the
    /// analysis tasks; see Fig. 3).
    bool allow_single_precision = true;
    double intensity_threshold_x = 4.0; ///< Fig. 3's tunable X

    /// Hotspot detection result (set by the Identify Hotspot Loops task).
    std::optional<ast::Node::Id> hotspot_loop_id;
    std::string hotspot_function;
    double hotspot_fraction = 0.0;

    /// Cooperative cancellation token for this flow (not owned; may be
    /// null). The engine polls it between tasks and installs it as the
    /// ambient token around every branch-path job so the interpreter's
    /// periodic poll sees it too; forks inherit the pointer, so one
    /// request's deadline covers all of its paths.
    const CancelToken* cancel = nullptr;

private:
    std::string app_name_;
    ast::ModulePtr module_;
    sema::TypeInfo types_;
    analysis::Workload workload_;
    std::string reference_source_;

    std::optional<analysis::KernelCharacterization> ch_;
    std::optional<analysis::DependenceInfo> outer_dep_;
    double reference_seconds_ = 0.0;
    std::uint64_t workload_digest_ = 0;
    std::vector<std::string> log_;
};

} // namespace psaflow::flow
