#include "flow/standard_flow.hpp"

#include "flow/strategy.hpp"
#include "flow/tasks.hpp"

namespace psaflow::flow {

using platform::DeviceId;

DesignFlow standard_flow(Mode mode) {
    DesignFlow flow;

    // ---- target-independent tasks (Fig. 4 top) -------------------------
    flow.prologue = {
        identify_hotspot_loops(),
        hotspot_loop_extraction(),
        pointer_analysis(),
        arithmetic_intensity_analysis(),
        data_inout_analysis(),
        loop_dependence_analysis(),
        loop_tripcount_analysis(),
        remove_array_plus_eq(),
    };

    // ---- branch point B: FPGA devices -------------------------------------
    auto branch_b = std::make_shared<BranchPoint>();
    branch_b->name = "B (FPGA device)";
    branch_b->strategy = select_all();
    branch_b->paths.push_back(FlowPath{
        "arria10",
        {unroll_until_overmap_dse(DeviceId::Arria10)},
        nullptr});
    branch_b->paths.push_back(FlowPath{
        "stratix10",
        {zero_copy_data_transfer(),
         unroll_until_overmap_dse(DeviceId::Stratix10)},
        nullptr});

    // ---- branch point C: GPU devices ---------------------------------------
    auto branch_c = std::make_shared<BranchPoint>();
    branch_c->name = "C (GPU device)";
    branch_c->strategy = select_all();
    branch_c->paths.push_back(FlowPath{
        "gtx1080ti", {blocksize_dse(DeviceId::Gtx1080Ti)}, nullptr});
    branch_c->paths.push_back(FlowPath{
        "rtx2080ti", {blocksize_dse(DeviceId::Rtx2080Ti)}, nullptr});

    // ---- branch point A: target selection ----------------------------------
    auto branch_a = std::make_shared<BranchPoint>();
    branch_a->name = "A (target)";
    branch_a->strategy =
        mode == Mode::Informed ? informed_strategy() : select_all();

    branch_a->paths.push_back(FlowPath{
        "gpu",
        {generate_hip_design(), employ_hip_pinned_memory(),
         employ_sp_math_fns(), employ_sp_numeric_literals(),
         introduce_shared_mem_buf(), employ_specialised_math_fns()},
        branch_c});
    branch_a->paths.push_back(FlowPath{
        "fpga",
        {generate_oneapi_design(), unroll_fixed_loops(),
         employ_sp_math_fns(), employ_sp_numeric_literals()},
        branch_b});
    branch_a->paths.push_back(FlowPath{
        "cpu",
        {multi_thread_parallel_loops(), omp_num_threads_dse()},
        nullptr});

    flow.branch = branch_a;
    return flow;
}

} // namespace psaflow::flow
