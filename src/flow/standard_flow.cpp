#include "flow/standard_flow.hpp"

#include "flow/strategy.hpp"
#include "flow/task_registry.hpp"

namespace psaflow::flow {

DesignFlow standard_flow(Mode mode) {
    // Assembled by stable task id: the registry is the single source of
    // truth for the repository, and these ids double as persistent-cache
    // key components, so the flow layout here is pinned by the cache.
    const auto task = [](const char* id) {
        return TaskRegistry::global().make(id);
    };

    DesignFlow flow;

    // ---- target-independent tasks (Fig. 4 top) -------------------------
    flow.prologue = {
        task("identify-hotspot-loops"),
        task("hotspot-loop-extraction"),
        task("pointer-analysis"),
        task("arithmetic-intensity-analysis"),
        task("data-in-out-analysis"),
        task("loop-dependence-analysis"),
        task("loop-trip-count-analysis"),
        task("remove-array-dependency"),
    };

    // ---- branch point B: FPGA devices -------------------------------------
    auto branch_b = std::make_shared<BranchPoint>();
    branch_b->name = "B (FPGA device)";
    branch_b->strategy = select_all();
    branch_b->paths.push_back(FlowPath{
        "arria10",
        {task("arria10-unroll-until-overmap-dse")},
        nullptr});
    branch_b->paths.push_back(FlowPath{
        "stratix10",
        {task("zero-copy-data-transfer"),
         task("stratix10-unroll-until-overmap-dse")},
        nullptr});

    // ---- branch point C: GPU devices ---------------------------------------
    auto branch_c = std::make_shared<BranchPoint>();
    branch_c->name = "C (GPU device)";
    branch_c->strategy = select_all();
    branch_c->paths.push_back(FlowPath{
        "gtx1080ti", {task("gtx-1080-ti-blocksize-dse")}, nullptr});
    branch_c->paths.push_back(FlowPath{
        "rtx2080ti", {task("rtx-2080-ti-blocksize-dse")}, nullptr});

    // ---- branch point A: target selection ----------------------------------
    auto branch_a = std::make_shared<BranchPoint>();
    branch_a->name = "A (target)";
    branch_a->strategy =
        mode == Mode::Informed ? informed_strategy() : select_all();

    branch_a->paths.push_back(FlowPath{
        "gpu",
        {task("generate-hip-design"), task("employ-hip-pinned-memory"),
         task("employ-sp-math-fns"), task("employ-sp-numeric-literals"),
         task("introduce-shared-mem-buf"),
         task("employ-specialised-math-fns")},
        branch_c});
    branch_a->paths.push_back(FlowPath{
        "fpga",
        {task("generate-oneapi-design"), task("unroll-fixed-loops"),
         task("employ-sp-math-fns"), task("employ-sp-numeric-literals")},
        branch_b});
    branch_a->paths.push_back(FlowPath{
        "cpu",
        {task("multi-thread-parallel-loops"), task("omp-num-threads-dse")},
        nullptr});

    flow.branch = branch_a;
    return flow;
}

} // namespace psaflow::flow
