// FlowSession: the front door of the flow engine.
//
// A session owns the cross-cutting wiring one flow execution needs — the
// worker-pool width, the persistent content-addressed store configuration
// and the trace accounting — so embedders (psaflowc, the batch driver, the
// fuzz harness, the bench programs) configure these once instead of
// plumbing environment variables and EngineOptions fields individually.
// Running many flows through one session shares the warm in-process caches
// and the store index: that is what makes `psaflowc --batch` cheap.
//
// A session may also carry a default flow lowered from a manifest
// (SessionOptions::flow_manifest, see flow/manifest.hpp); the core
// compile() runs it in place of the builtin standard_flow.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "flow/engine.hpp"
#include "flow/manifest.hpp"

namespace psaflow::flow {

// Environment-variable precedence (the single source of truth for it):
// an explicit SessionOptions field wins over its environment variable,
// which wins over the built-in default —
//
//   jobs        : SessionOptions.jobs      > PSAFLOW_JOBS      > hardware
//                                                                concurrency
//   cache store : SessionOptions.cache_dir > PSAFLOW_CACHE_DIR > disabled
//                 (cap: cache_max_bytes > PSAFLOW_CACHE_MAX_MB > built-in)
//   interpreter : SessionOptions.interp    > PSAFLOW_INTERP    > "vm"
//
// A non-empty option (re)configures the process-wide state eagerly in the
// FlowSession constructor, so later sessions in the same process inherit
// it unless they override it themselves.
struct SessionOptions {
    /// Worker threads for independent branch paths; 0 picks the process
    /// default (PSAFLOW_JOBS or hardware concurrency). Any setting yields
    /// a byte-identical FlowResult.
    int jobs = 0;

    /// Root directory of the persistent content-addressed store. Empty
    /// keeps the process-wide configuration (PSAFLOW_CACHE_DIR, or
    /// disabled when unset).
    std::string cache_dir;

    /// Size cap for the store in bytes; 0 keeps the PSAFLOW_CACHE_MAX_MB /
    /// built-in default. Only consulted when `cache_dir` is set.
    std::uint64_t cache_max_bytes = 0;

    /// Interpreter engine for the dynamic analyses: "tree" or "vm". Empty
    /// keeps the process-wide default (PSAFLOW_INTERP, else vm). Either
    /// engine yields a byte-identical FlowResult — and the same profile
    /// cache keys, so switching engines never cold-starts a warm store.
    std::string interp;

    /// Flow manifest naming the session's default flow: text starting with
    /// '{' is an inline JSON document, anything else a file path (see
    /// flow/manifest.hpp). Validated and lowered eagerly by the FlowSession
    /// constructor, which throws psaflow::Error with a located diagnostic
    /// on any schema violation. Empty: no session default — the core
    /// compile() falls back to the builtin standard_flow().
    std::string flow_manifest;
};

class FlowSession {
public:
    FlowSession() : FlowSession(SessionOptions{}) {}
    /// Applies `options` eagerly: a non-empty cache_dir (re)configures the
    /// process-wide store before the first run.
    explicit FlowSession(SessionOptions options);

    /// Execute `flow` over `ctx` (the context is consumed; paths fork from
    /// it). `engine.jobs == 0` inherits the session's jobs setting. Counts
    /// "flow.runs" and the flow-phase wall clock "flow.wall_us" into the
    /// trace registry.
    [[nodiscard]] FlowResult run(const DesignFlow& flow, FlowContext ctx,
                                 EngineOptions engine = {});

    [[nodiscard]] const SessionOptions& options() const { return options_; }

    /// The flow lowered from SessionOptions::flow_manifest; nullptr when
    /// the session has no manifest.
    [[nodiscard]] const ManifestFlow* manifest_flow() const {
        return manifest_.has_value() ? &*manifest_ : nullptr;
    }

private:
    SessionOptions options_;
    std::optional<ManifestFlow> manifest_;
};

} // namespace psaflow::flow
