// Flow manifests: the declarative, user-programmable spelling of a
// PSA-flow — the public API that turns the engine from a program into a
// platform. A manifest is a versioned JSON document naming tasks by their
// stable TaskRegistry ids and branch points by named strategies; it is
// validated at load with precise error locations and lowered to the
// existing DesignFlow/BranchPoint/PsaStrategy structures, so FlowSession
// executes it unchanged and determinism, caching, tracing and --explain
// provenance all work for free.
//
// Schema (version 1):
//   {
//     "psaflow_manifest": 1,            // required version tag
//     "name": "my flow",                // optional display name
//     "prologue": ["task-id", ...],     // optional task sequence
//     "branches": {"dev": {...}},       // optional named branch definitions
//     "branch": {...} | "dev",          // optional root branch (object or
//                                       // a reference into "branches")
//     "budget": {"max_run_cost": 1e-3}, // optional Fig. 3 cost budget
//     "threshold_x": 4.0,               // optional intensity threshold
//     "max_feedback_iterations": 3      // optional feedback-loop cap
//   }
//   branch := {"name": "A", "strategy": <strategy>, "paths": [<path>...]}
//   path   := {"name": "gpu", "tasks": ["task-id"...],
//              "branch": {...} | "dev"} // optional nested branch
//   strategy := "informed" | "select-all"              // string shorthand
//             | {"name": "fixed-path", "paths": ["gpu", ...]}
//             | {"name": "learned", "k": 3, "train_apps": ["nbody", ...]}
//
// Unknown fields, unknown task ids, unknown strategies, duplicate path
// names, circular branch references and malformed parameter values are all
// rejected with a JSON-path location ("flow manifest: $.branch.paths[2]
// .tasks[0]: unknown task id '...'").
//
// The manifest's engine parameters (budget / threshold_x /
// max_feedback_iterations) override request-level settings when present:
// a flow that declares its own budget means it.
//
// Caveat: the engine's cost-budget feedback re-selects with the informed
// strategy, which matches root paths by the names "cpu"/"gpu"/"fpga" — a
// constrained budget only makes sense for manifests whose root branch uses
// those path names (as the standard flow does).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "flow/task.hpp"
#include "support/json.hpp"

namespace psaflow::flow {

/// The manifest schema version this build reads and writes.
inline constexpr int kManifestVersion = 1;

/// A lowered manifest: the executable flow plus the engine-parameter
/// overrides the document carried (absent fields stay nullopt so callers
/// can tell "manifest said 4.0" from "manifest said nothing").
struct ManifestFlow {
    DesignFlow flow;
    std::string name;                          ///< "" when absent
    std::optional<double> max_run_cost;        ///< "budget".max_run_cost
    std::optional<double> threshold_x;
    std::optional<int> max_feedback_iterations;
};

/// Validate and lower a parsed manifest document. Throws psaflow::Error
/// with a "flow manifest: $.<json-path>: <problem>" message on any schema
/// violation.
[[nodiscard]] ManifestFlow from_manifest(const json::Value& doc);

/// Parse + lower manifest JSON text. JSON syntax errors carry the byte
/// offset; schema errors the JSON path.
[[nodiscard]] ManifestFlow parse_manifest_text(std::string_view text);

/// Load a manifest from `spec`: text starting with '{' is treated as an
/// inline document, anything else as a file path (the
/// SessionOptions::flow_manifest convention).
[[nodiscard]] ManifestFlow load_manifest(const std::string& spec);

/// Export `flow` as a manifest document — the inverse of from_manifest for
/// flows built from registered tasks and manifest-expressible strategies
/// (informed, select-all, fixed-path). `flow::to_manifest(standard_flow())`
/// is the schema's golden reference: serialising it with json::dump is
/// byte-stable and re-importing it reproduces the builtin flow exactly.
/// Throws psaflow::Error for strategies with no manifest spelling (e.g. a
/// learned strategy's training examples are not serialisable).
[[nodiscard]] json::Value to_manifest(const DesignFlow& flow,
                                      const std::string& name = "");

} // namespace psaflow::flow
