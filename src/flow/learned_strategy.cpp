#include "flow/learned_strategy.hpp"

#include <algorithm>
#include <cmath>

#include "flow/engine.hpp"
#include "flow/session.hpp"
#include "flow/standard_flow.hpp"
#include "flow/strategy.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"

namespace psaflow::flow {

std::vector<double> StrategyFeatures::as_vector() const {
    return {log_intensity,     log_compute_transfer,
            outer_parallel,    inner_with_deps,
            inner_fully_unrollable, dependent_fraction,
            transcendental_fraction, log_parallel_iters};
}

StrategyFeatures gather_features(FlowContext& ctx) {
    const Fig3Inputs in = gather_fig3_inputs(ctx);
    const auto shape = ctx.shape();

    StrategyFeatures out;
    out.log_intensity = std::log10(std::max(1e-6, in.flops_per_byte));
    out.log_compute_transfer = std::log10(
        std::max(1e-9, in.cpu_seconds) /
        std::max(1e-9, in.transfer_seconds));
    out.outer_parallel = in.outer_parallel ? 1.0 : 0.0;
    out.inner_with_deps = in.inner_loop_with_deps ? 1.0 : 0.0;
    out.inner_fully_unrollable = in.inner_fully_unrollable ? 1.0 : 0.0;
    out.dependent_fraction = shape.dependent_fraction;
    out.transcendental_fraction = shape.transcendental_fraction;
    out.log_parallel_iters =
        std::log10(std::max(1.0, shape.parallel_iters));
    return out;
}

LearnedStrategy::LearnedStrategy(std::vector<TrainingExample> examples, int k)
    : examples_(std::move(examples)), k_(k) {
    ensure(!examples_.empty(), "LearnedStrategy: no training examples");
    const std::size_t dims = examples_.front().features.as_vector().size();
    mean_.assign(dims, 0.0);
    stddev_.assign(dims, 0.0);
    for (const auto& ex : examples_) {
        const auto v = ex.features.as_vector();
        for (std::size_t d = 0; d < dims; ++d) mean_[d] += v[d];
    }
    for (double& m : mean_) m /= static_cast<double>(examples_.size());
    for (const auto& ex : examples_) {
        const auto v = ex.features.as_vector();
        for (std::size_t d = 0; d < dims; ++d) {
            const double diff = v[d] - mean_[d];
            stddev_[d] += diff * diff;
        }
    }
    for (double& s : stddev_) {
        s = std::sqrt(s / static_cast<double>(examples_.size()));
        if (s < 1e-12) s = 1.0; // constant feature: leave unscaled
    }
}

std::string LearnedStrategy::classify(const StrategyFeatures& features) const {
    const auto query = features.as_vector();
    struct Scored {
        double dist;
        const std::string* label;
    };
    std::vector<Scored> scored;
    scored.reserve(examples_.size());
    for (const auto& ex : examples_) {
        const auto v = ex.features.as_vector();
        double dist = 0.0;
        for (std::size_t d = 0; d < v.size(); ++d) {
            const double diff = (v[d] - query[d]) / stddev_[d];
            dist += diff * diff;
        }
        scored.push_back({dist, &ex.label});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) { return a.dist < b.dist; });

    const int k = std::min<int>(k_, static_cast<int>(scored.size()));
    // Majority vote over the k nearest; the single nearest breaks ties.
    std::vector<std::pair<std::string, int>> votes;
    for (int i = 0; i < k; ++i) {
        bool found = false;
        for (auto& [label, count] : votes) {
            if (label == *scored[static_cast<std::size_t>(i)].label) {
                ++count;
                found = true;
            }
        }
        if (!found)
            votes.emplace_back(*scored[static_cast<std::size_t>(i)].label, 1);
    }
    std::string best = *scored.front().label;
    int best_count = 0;
    for (const auto& [label, count] : votes) {
        if (count > best_count ||
            (count == best_count && label == *scored.front().label)) {
            best = label;
            best_count = count;
        }
    }
    return best;
}

std::vector<std::size_t> LearnedStrategy::select(FlowContext& ctx,
                                                 const BranchPoint& branch) {
    obs::DecisionRecord scratch;
    return select_explained(ctx, branch, scratch);
}

std::vector<std::size_t>
LearnedStrategy::select_explained(FlowContext& ctx, const BranchPoint& branch,
                                  obs::DecisionRecord& record) {
    record.strategy = name();
    const std::string label = classify(gather_features(ctx));
    ctx.note("learned PSA (kNN): classified as '" + label + "'");
    for (const FlowPath& path : branch.paths) {
        obs::DecisionCandidate candidate;
        candidate.path = path.name;
        candidate.evaluation = path.name == label
                                   ? "kNN majority label (k=" +
                                         std::to_string(k_) + ")"
                                   : "not the kNN label";
        record.candidates.push_back(std::move(candidate));
    }
    for (std::size_t i = 0; i < branch.paths.size(); ++i) {
        if (branch.paths[i].name != label) continue;
        record.rationale = "kNN classified the kernel as '" + label + "'";
        return {i};
    }
    ctx.note("learned PSA: no path named '" + label +
             "' — terminating unmodified");
    record.rationale = "kNN label '" + label +
                       "' names no flow path — terminating unmodified";
    return {};
}

std::vector<TrainingExample>
train_from_oracle(const std::vector<const apps::Application*>& training_apps) {
    std::vector<TrainingExample> out;
    for (const apps::Application* app : training_apps) {
        FlowContext ctx(app->name,
                        frontend::parse_module(app->source, app->name),
                        app->workload);
        ctx.allow_single_precision = app->allow_single_precision;

        // Run the target-independent prologue once, capture features, then
        // label by running the branch on a fork with the select-all
        // strategy and keeping the winner.
        const DesignFlow flow = standard_flow(Mode::Uninformed);
        for (const TaskPtr& task : flow.prologue) task->run(ctx);

        TrainingExample ex;
        ex.features = gather_features(ctx);

        DesignFlow branch_only;
        branch_only.branch = flow.branch;
        FlowSession session;
        auto result = session.run(branch_only, ctx.fork());
        const DesignArtifact* best = result.best();
        ensure(best != nullptr, "train_from_oracle: no synthesizable design "
                                "for '" + app->name + "'");
        switch (best->spec.target) {
            case codegen::TargetKind::CpuOpenMp: ex.label = "cpu"; break;
            case codegen::TargetKind::CpuGpu: ex.label = "gpu"; break;
            case codegen::TargetKind::CpuFpga: ex.label = "fpga"; break;
            default: ex.label = "cpu"; break;
        }
        out.push_back(std::move(ex));
    }
    return out;
}

} // namespace psaflow::flow
