#include "flow/engine.hpp"

#include <algorithm>
#include <set>

#include "perf/estimator.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace psaflow::flow {

using codegen::TargetKind;

const DesignArtifact* FlowResult::best() const {
    const DesignArtifact* out = nullptr;
    for (const auto& d : designs) {
        if (!d.synthesizable) continue;
        if (out == nullptr || d.speedup > out->speedup) out = &d;
    }
    return out;
}

const DesignArtifact* FlowResult::find(TargetKind target,
                                       platform::DeviceId device) const {
    for (const auto& d : designs) {
        if (d.spec.target == target && d.spec.device == device) return &d;
    }
    return nullptr;
}

namespace {

double smem_per_block_kb(FlowContext& ctx) {
    if (ctx.spec.shared_arrays.empty() || ctx.spec.block_size <= 0)
        return 0.0;
    double bytes_per_thread = 0.0;
    for (const auto& arr : ctx.spec.shared_arrays) {
        bytes_per_thread +=
            size_of(ctx.types().var_type(ctx.kernel(), arr).elem);
    }
    return bytes_per_thread * ctx.spec.block_size / 1024.0;
}

DesignArtifact finalize(FlowContext ctx, double reference_seconds) {
    trace::ScopedSpan span("finalize:" + ctx.spec.design_name(), "flow");
    DesignArtifact out;
    out.shape = ctx.shape();

    switch (ctx.spec.target) {
        case TargetKind::None:
            out.hotspot_seconds = reference_seconds;
            break;
        case TargetKind::CpuOpenMp: {
            const int threads = ctx.spec.omp_threads > 0
                                    ? ctx.spec.omp_threads
                                    : platform::epyc7543().cores;
            out.hotspot_seconds = perf::omp_seconds(out.shape, threads);
            break;
        }
        case TargetKind::CpuGpu: {
            perf::GpuDesignPoint point;
            point.device = ctx.spec.device;
            point.block_size =
                ctx.spec.block_size > 0 ? ctx.spec.block_size : 256;
            point.pinned_host_memory = ctx.spec.pinned_host_memory;
            point.smem_per_block_kb = smem_per_block_kb(ctx);
            out.hotspot_seconds =
                perf::gpu_estimate(out.shape, point).total_seconds;
            break;
        }
        case TargetKind::CpuFpga: {
            ensure(ctx.fpga_report.has_value(),
                   "finalize: FPGA design without an unroll DSE report");
            perf::FpgaDesignPoint point;
            point.device = ctx.spec.device;
            point.report = *ctx.fpga_report;
            out.hotspot_seconds =
                perf::fpga_estimate(out.shape, point).total_seconds;
            break;
        }
    }

    out.synthesizable = ctx.spec.synthesizable;
    out.speedup = out.synthesizable && out.hotspot_seconds > 0.0
                      ? reference_seconds / out.hotspot_seconds
                      : 0.0;
    out.source = codegen::emit_design(ctx.module(), ctx.types(), ctx.spec);
    out.loc_delta = codegen::loc_delta(out.source, ctx.reference_source());
    ctx.note("design '" + ctx.spec.design_name() + "': " +
             (out.synthesizable
                  ? format_compact(out.speedup, 4) + "x speedup, +" +
                        format_compact(100.0 * out.loc_delta, 3) + "% LOC"
                  : "not synthesizable"));
    out.spec = ctx.spec;
    out.log = ctx.log();
    return out;
}

/// Execution plan for one descent. When `pool` is null every path runs
/// inline on the calling thread — the sequential engine. With a pool,
/// sibling paths become parallel jobs; each path writes its leaves into its
/// own pre-allocated slot, and slots are concatenated in path order after
/// the join, so the merged artifact sequence is identical to the sequential
/// traversal (stable flow order; design names are unique per flow).
struct Scheduler {
    ThreadPool* pool = nullptr; ///< null: run inline

    void descend(const BranchPoint* branch, FlowContext ctx,
                 double reference_seconds,
                 std::vector<DesignArtifact>& out) {
        if (branch == nullptr) {
            out.push_back(finalize(std::move(ctx), reference_seconds));
            return;
        }
        const auto indices = branch->strategy->select(ctx, *branch);
        if (indices.empty()) {
            // Fig. 3's terminate outcome: the design leaves unmodified.
            ctx.spec.target = TargetKind::None;
            out.push_back(finalize(std::move(ctx), reference_seconds));
            return;
        }

        // Fork every selected path up front, on this thread: forking clones
        // the parent module, and doing it before any sibling job starts
        // keeps the parent context immutable while jobs run.
        struct PendingPath {
            const FlowPath* path = nullptr;
            FlowContext ctx;
            std::vector<DesignArtifact> leaves;
        };
        std::vector<PendingPath> pending;
        pending.reserve(indices.size());
        for (std::size_t idx : indices) {
            ensure(idx < branch->paths.size(),
                   "run_flow: strategy selected an out-of-range path");
            const FlowPath& path = branch->paths[idx];
            FlowContext forked = ctx.fork();
            forked.note("entering path '" + path.name + "' at branch '" +
                        branch->name + "'");
            pending.push_back(PendingPath{&path, std::move(forked), {}});
        }

        auto run_path = [this, reference_seconds](PendingPath& job) {
            trace::ScopedSpan span("path:" + job.path->name, "flow");
            for (const TaskPtr& task : job.path->tasks) {
                trace::ScopedSpan task_span("task:" + task->name(),
                                            task->dynamic() ? "task.dynamic"
                                                            : "task");
                task->run(job.ctx);
            }
            descend(job.path->next.get(), std::move(job.ctx),
                    reference_seconds, job.leaves);
        };

        if (pool == nullptr || pending.size() == 1) {
            for (PendingPath& job : pending) run_path(job);
        } else {
            TaskGroup group(*pool);
            for (PendingPath& job : pending)
                group.run([&run_path, &job] { run_path(job); });
            // Helping wait: nested branch points schedule sub-jobs through
            // the same pool, so a waiting parent executes pending work
            // instead of parking a thread. Rethrows the first failed path's
            // exception (in path order), matching the sequential engine's
            // first-failure semantics.
            group.wait();
        }

        for (PendingPath& job : pending) {
            out.insert(out.end(),
                       std::make_move_iterator(job.leaves.begin()),
                       std::make_move_iterator(job.leaves.end()));
        }
    }
};

} // namespace

FlowResult run_flow(const DesignFlow& flow, FlowContext ctx,
                    const EngineOptions& options) {
    trace::ScopedSpan flow_span("run_flow:" + ctx.app_name(), "flow");

    const int jobs =
        options.jobs > 0 ? options.jobs : ThreadPool::default_jobs();
    Scheduler scheduler;
    if (jobs > 1) scheduler.pool = &ThreadPool::shared();

    for (const TaskPtr& task : flow.prologue) {
        trace::ScopedSpan task_span("task:" + task->name(),
                                    task->dynamic() ? "task.dynamic" : "task");
        task->run(ctx);
    }

    FlowResult result;
    result.reference_seconds =
        ctx.has_kernel() ? ctx.reference_seconds() : 0.0;
    result.log = ctx.log();

    if (flow.branch == nullptr) {
        result.designs.push_back(
            finalize(std::move(ctx), result.reference_seconds));
        return result;
    }

    // Budget feedback loop (Fig. 3, bottom): if the selected design's run
    // cost exceeds the budget, exclude its target and re-select. Only
    // meaningful for single-path (informed) strategies.
    std::set<std::string> excluded;
    for (int iteration = 0;; ++iteration) {
        BranchPoint branch = *flow.branch;
        if (!excluded.empty())
            branch.strategy = informed_strategy(excluded);

        result.designs.clear();
        scheduler.descend(&branch, ctx.fork(), result.reference_seconds,
                          result.designs);

        if (!options.budget.constrained() ||
            iteration >= options.max_feedback_iterations)
            break;

        // Feedback applies only to an *informed* selection: every design of
        // this round belongs to one target family (device branch points may
        // still have produced one design per device).
        TargetKind family = TargetKind::None;
        bool single_family = true;
        for (const auto& d : result.designs) {
            if (d.spec.target == TargetKind::None) continue;
            if (family == TargetKind::None) family = d.spec.target;
            if (d.spec.target != family) single_family = false;
        }
        if (!single_family || family == TargetKind::None) break;

        // Evaluate the cheapest synthesizable design of the family against
        // the budget.
        const DesignArtifact* cheapest = nullptr;
        for (const auto& d : result.designs) {
            if (!d.synthesizable) continue;
            if (cheapest == nullptr ||
                d.hotspot_seconds < cheapest->hotspot_seconds)
                cheapest = &d;
        }
        if (cheapest == nullptr) break;
        const double cost = options.cost_model.run_cost(
            family, cheapest->hotspot_seconds);
        if (cost <= options.budget.max_run_cost) break;

        switch (family) {
            case TargetKind::CpuGpu: excluded.insert("gpu"); break;
            case TargetKind::CpuFpga: excluded.insert("fpga"); break;
            case TargetKind::CpuOpenMp: excluded.insert("cpu"); break;
            default: break;
        }
    }
    return result;
}

} // namespace psaflow::flow
