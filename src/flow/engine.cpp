#include "flow/engine.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/profile_cache.hpp"
#include "ast/printer.hpp"
#include "obs/log.hpp"
#include "perf/estimator.hpp"
#include "platform/devices.hpp"
#include "support/cancel.hpp"
#include "support/cas/cas.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace psaflow::flow {

using codegen::TargetKind;

const DesignArtifact* FlowResult::best() const {
    const DesignArtifact* out = nullptr;
    for (const auto& d : designs) {
        if (!d.synthesizable) continue;
        if (out == nullptr || d.speedup > out->speedup) out = &d;
    }
    return out;
}

const DesignArtifact* FlowResult::find(TargetKind target,
                                       platform::DeviceId device) const {
    for (const auto& d : designs) {
        if (d.spec.target == target && d.spec.device == device) return &d;
    }
    return nullptr;
}

namespace {

double smem_per_block_kb(FlowContext& ctx) {
    if (ctx.spec.shared_arrays.empty() || ctx.spec.block_size <= 0)
        return 0.0;
    double bytes_per_thread = 0.0;
    for (const auto& arr : ctx.spec.shared_arrays) {
        bytes_per_thread +=
            size_of(ctx.types().var_type(ctx.kernel(), arr).elem);
    }
    return bytes_per_thread * ctx.spec.block_size / 1024.0;
}

constexpr std::uint32_t kArtifactPayloadVersion = 1;

void hash_spec(cas::Hasher& h, const codegen::DesignSpec& spec) {
    h.str(spec.app_name).str(spec.kernel_name);
    h.u64(static_cast<std::uint64_t>(spec.target));
    h.u64(static_cast<std::uint64_t>(spec.device));
    h.i64(spec.omp_threads).i64(spec.block_size);
    h.u64(spec.copy_in.size());
    for (const std::string& s : spec.copy_in) h.str(s);
    h.u64(spec.copy_out.size());
    for (const std::string& s : spec.copy_out) h.str(s);
    h.boolean(spec.pinned_host_memory).boolean(spec.specialised_math);
    h.u64(spec.shared_arrays.size());
    for (const std::string& s : spec.shared_arrays) h.str(s);
    h.i64(spec.unroll).boolean(spec.zero_copy).boolean(spec.synthesizable);
    h.boolean(spec.single_precision);
}

void hash_fpga_report(cas::Hasher& h, const platform::FpgaReport& r) {
    h.real(r.replica.luts).real(r.replica.dsps).real(r.replica.bram_kb);
    h.real(r.replica.pipeline_depth).real(r.replica.cycles_per_iter);
    h.boolean(r.replica.ii_is_one);
    h.real(r.total_luts).real(r.total_dsps).real(r.total_bram_kb);
    h.real(r.lut_utilisation).real(r.dsp_utilisation);
    h.real(r.bram_utilisation);
    h.boolean(r.overmapped).i64(r.unroll);
}

/// Persistent cache key of one leaf design. The signature pins the exact
/// task sequence that produced the state; the module print, spec, FPGA
/// report and workload digest pin everything finalize consumes.
std::uint64_t artifact_key(FlowContext& ctx, double reference_seconds,
                           const std::string& signature) {
    cas::Hasher h;
    h.str("design-artifact");
    h.str(signature);
    h.str(ast::to_source(ctx.module()));
    hash_spec(h, ctx.spec);
    h.boolean(ctx.fpga_report.has_value());
    if (ctx.fpga_report.has_value()) hash_fpga_report(h, *ctx.fpga_report);
    h.u64(ctx.workload_digest());
    h.real(reference_seconds);
    return h.digest();
}

std::string serialize_artifact_payload(const DesignArtifact& a,
                                       const std::string& note) {
    cas::Writer w;
    w.u32(kArtifactPayloadVersion);
    w.real(a.hotspot_seconds);
    w.real(a.speedup);
    w.real(a.loc_delta);
    w.boolean(a.synthesizable);
    w.str(a.source);
    w.str(note);
    const platform::KernelShape& s = a.shape;
    w.real(s.flops);
    w.real(s.footprint_bytes);
    w.real(s.stream_bytes);
    w.real(s.bytes_in);
    w.real(s.bytes_out);
    w.real(s.parallel_iters);
    w.real(s.dependent_fraction);
    w.i64(s.regs_per_thread);
    w.boolean(s.double_precision);
    w.real(s.shared_mem_reuse);
    w.real(s.transcendental_fraction);
    w.real(s.gpu_transfer_bytes);
    w.real(s.invocations);
    w.real(s.sequential_cycles_per_iter);
    w.real(s.fpga_stream_bytes);
    return w.take();
}

bool parse_artifact_payload(std::string_view payload, DesignArtifact& a,
                            std::string& note) {
    cas::Reader r(payload);
    if (r.u32() != kArtifactPayloadVersion) return false;
    a.hotspot_seconds = r.real();
    a.speedup = r.real();
    a.loc_delta = r.real();
    a.synthesizable = r.boolean();
    a.source = r.str();
    note = r.str();
    platform::KernelShape& s = a.shape;
    s.flops = r.real();
    s.footprint_bytes = r.real();
    s.stream_bytes = r.real();
    s.bytes_in = r.real();
    s.bytes_out = r.real();
    s.parallel_iters = r.real();
    s.dependent_fraction = r.real();
    s.regs_per_thread = static_cast<int>(r.i64());
    s.double_precision = r.boolean();
    s.shared_mem_reuse = r.real();
    s.transcendental_fraction = r.real();
    s.gpu_transfer_bytes = r.real();
    s.invocations = r.real();
    s.sequential_cycles_per_iter = r.real();
    s.fpga_stream_bytes = r.real();
    return r.complete();
}

DesignArtifact finalize(FlowContext ctx, double reference_seconds,
                        const std::string& signature) {
    poll_cancellation(ctx.cancel);
    trace::ScopedSpan span("finalize:" + ctx.spec.design_name(), "flow");

    // A persistent-cache hit skips the whole evaluation — shape building
    // (and with it the characterisation's interpreter runs), device-model
    // pricing and design emission — and replays the cold run's note, so
    // the restored artifact is byte-identical to a cold finalize.
    cas::CasStore* disk = cas::store();
    std::uint64_t key = 0;
    if (disk != nullptr) {
        key = artifact_key(ctx, reference_seconds, signature);
        if (auto payload = disk->get(key)) {
            DesignArtifact cached;
            std::string note;
            if (parse_artifact_payload(*payload, cached, note)) {
                trace::Registry::current().count("artifact_cache.hits", 1);
                ctx.note(std::move(note));
                cached.spec = ctx.spec;
                cached.log = ctx.log();
                return cached;
            }
        }
        trace::Registry::current().count("artifact_cache.misses", 1);
    }

    DesignArtifact out;
    out.shape = ctx.shape();

    switch (ctx.spec.target) {
        case TargetKind::None:
            out.hotspot_seconds = reference_seconds;
            break;
        case TargetKind::CpuOpenMp: {
            const int threads = ctx.spec.omp_threads > 0
                                    ? ctx.spec.omp_threads
                                    : platform::epyc7543().cores;
            out.hotspot_seconds = perf::omp_seconds(out.shape, threads);
            break;
        }
        case TargetKind::CpuGpu: {
            perf::GpuDesignPoint point;
            point.device = ctx.spec.device;
            point.block_size =
                ctx.spec.block_size > 0 ? ctx.spec.block_size : 256;
            point.pinned_host_memory = ctx.spec.pinned_host_memory;
            point.smem_per_block_kb = smem_per_block_kb(ctx);
            out.hotspot_seconds =
                perf::gpu_estimate(out.shape, point).total_seconds;
            break;
        }
        case TargetKind::CpuFpga: {
            ensure(ctx.fpga_report.has_value(),
                   "finalize: FPGA design without an unroll DSE report");
            perf::FpgaDesignPoint point;
            point.device = ctx.spec.device;
            point.report = *ctx.fpga_report;
            out.hotspot_seconds =
                perf::fpga_estimate(out.shape, point).total_seconds;
            break;
        }
    }

    out.synthesizable = ctx.spec.synthesizable;
    out.speedup = out.synthesizable && out.hotspot_seconds > 0.0
                      ? reference_seconds / out.hotspot_seconds
                      : 0.0;
    out.source = codegen::emit_design(ctx.module(), ctx.types(), ctx.spec);
    out.loc_delta = codegen::loc_delta(out.source, ctx.reference_source());
    const std::string note =
        "design '" + ctx.spec.design_name() + "': " +
        (out.synthesizable
             ? format_compact(out.speedup, 4) + "x speedup, +" +
                   format_compact(100.0 * out.loc_delta, 3) + "% LOC"
             : "not synthesizable");
    ctx.note(note);
    out.spec = ctx.spec;
    out.log = ctx.log();
    if (disk != nullptr) disk->put(key, serialize_artifact_payload(out, note));
    return out;
}

/// Map a branch-path name onto the representative (target, device) its
/// analytic candidate cost is evaluated with. Branch A names pick the
/// family's first-enumerated device (the device branch underneath refines
/// it); branches B and C name the device directly. Unknown names (custom
/// flows, fuzz-generated paths) get no cost — provenance stays best-effort.
bool candidate_target(const std::string& path, TargetKind& target,
                      platform::DeviceId& device) {
    if (path == "cpu") {
        target = TargetKind::CpuOpenMp;
        device = platform::DeviceId::Epyc7543;
    } else if (path == "gpu" || path == "gtx1080ti") {
        target = TargetKind::CpuGpu;
        device = platform::DeviceId::Gtx1080Ti;
    } else if (path == "rtx2080ti") {
        target = TargetKind::CpuGpu;
        device = platform::DeviceId::Rtx2080Ti;
    } else if (path == "fpga" || path == "arria10") {
        target = TargetKind::CpuFpga;
        device = platform::DeviceId::Arria10;
    } else if (path == "stratix10") {
        target = TargetKind::CpuFpga;
        device = platform::DeviceId::Stratix10;
    } else {
        return false;
    }
    return true;
}

/// Attach analytic cost/budget evaluations to a decision record's
/// candidates: predicted hotspot seconds from the same estimators finalize
/// uses (FPGA candidates priced pre-DSE at unroll 1) and the cost model's
/// USD per run. Evaluates on a throwaway fork so the deliberation can never
/// leak state — notes, cached analyses — into the surviving context, and
/// swallows estimator errors (fuzz-generated flows reach branch points in
/// states the models reject): provenance must never alter control flow.
void annotate_candidates(const FlowContext& ctx, const CostModel& model,
                         obs::DecisionRecord& record) {
    if (!ctx.has_kernel()) return;
    try {
        FlowContext eval = ctx.fork();
        const platform::KernelShape shape = eval.shape();
        for (obs::DecisionCandidate& candidate : record.candidates) {
            TargetKind target = TargetKind::None;
            platform::DeviceId device = platform::DeviceId::Epyc7543;
            if (!candidate_target(candidate.path, target, device)) continue;
            try {
                double seconds = -1.0;
                switch (target) {
                    case TargetKind::CpuOpenMp:
                        seconds = perf::omp_seconds(
                            shape, platform::epyc7543().cores);
                        break;
                    case TargetKind::CpuGpu: {
                        perf::GpuDesignPoint point;
                        point.device = device;
                        point.block_size = 256;
                        seconds =
                            perf::gpu_estimate(shape, point).total_seconds;
                        break;
                    }
                    case TargetKind::CpuFpga: {
                        const platform::FpgaModel fpga(
                            platform::fpga_spec(device));
                        perf::FpgaDesignPoint point;
                        point.device = device;
                        point.report = fpga.report(eval.kernel(), eval.types(),
                                                   1, eval.spec.single_precision);
                        seconds =
                            perf::fpga_estimate(shape, point).total_seconds;
                        break;
                    }
                    default: break;
                }
                if (seconds >= 0.0 && std::isfinite(seconds)) {
                    candidate.predicted_seconds = seconds;
                    candidate.run_cost = model.run_cost(target, seconds);
                }
            } catch (const std::exception& e) {
                obs::debug("flow", "candidate cost evaluation failed",
                           {{"path", candidate.path}, {"error", e.what()}});
            }
        }
    } catch (const std::exception& e) {
        obs::debug("flow", "candidate cost evaluation skipped",
                   {{"branch", record.branch}, {"error", e.what()}});
    }
}

/// Execution plan for one descent. When `pool` is null every path runs
/// inline on the calling thread — the sequential engine. With a pool,
/// sibling paths become parallel jobs; each path writes its leaves (and
/// nested decision records) into its own pre-allocated slot, and slots are
/// concatenated in path order after the join, so the merged artifact and
/// decision sequences are identical to the sequential traversal (stable
/// flow order; design names are unique per flow). Trace sink and active
/// span travel with the jobs via TaskGroup::run.
struct Scheduler {
    ThreadPool* pool = nullptr; ///< null: run inline
    const CostModel* cost_model = nullptr; ///< candidate-cost pricing
    int iteration = 0; ///< budget-feedback round, stamped on records

    void descend(const BranchPoint* branch, FlowContext ctx,
                 double reference_seconds, const std::string& signature,
                 std::vector<DesignArtifact>& out,
                 std::vector<obs::DecisionRecord>& decisions) {
        if (branch == nullptr) {
            out.push_back(
                finalize(std::move(ctx), reference_seconds, signature));
            return;
        }
        obs::DecisionRecord record;
        record.branch = branch->name;
        record.feedback_iteration = iteration;
        const auto indices =
            branch->strategy->select_explained(ctx, *branch, record);
        // Post-fill the skeleton for strategies that don't self-describe
        // (custom PsaStrategy subclasses riding the default delegate).
        if (record.strategy.empty()) record.strategy = branch->strategy->name();
        if (record.candidates.empty()) {
            for (const FlowPath& path : branch->paths) {
                obs::DecisionCandidate candidate;
                candidate.path = path.name;
                record.candidates.push_back(std::move(candidate));
            }
        }
        for (std::size_t idx : indices) {
            if (idx >= branch->paths.size()) continue; // ensure()d below
            const std::string& name = branch->paths[idx].name;
            record.selected.push_back(name);
            for (obs::DecisionCandidate& candidate : record.candidates)
                if (candidate.path == name) candidate.selected = true;
        }
        if (cost_model != nullptr)
            annotate_candidates(ctx, *cost_model, record);
        decisions.push_back(std::move(record));

        if (indices.empty()) {
            // Fig. 3's terminate outcome: the design leaves unmodified.
            ctx.spec.target = TargetKind::None;
            out.push_back(finalize(std::move(ctx), reference_seconds,
                                   signature + "/terminated"));
            return;
        }

        // Fork every selected path up front, on this thread: forking clones
        // the parent module, and doing it before any sibling job starts
        // keeps the parent context immutable while jobs run.
        struct PendingPath {
            const FlowPath* path = nullptr;
            FlowContext ctx;
            std::string signature; ///< grows one task id per task executed
            std::vector<DesignArtifact> leaves;
            std::vector<obs::DecisionRecord> decisions; ///< nested branches
        };
        std::vector<PendingPath> pending;
        pending.reserve(indices.size());
        for (std::size_t idx : indices) {
            ensure(idx < branch->paths.size(),
                   "run_flow: strategy selected an out-of-range path");
            const FlowPath& path = branch->paths[idx];
            FlowContext forked = ctx.fork();
            forked.note("entering path '" + path.name + "' at branch '" +
                        branch->name + "'");
            pending.push_back(PendingPath{&path, std::move(forked),
                                          signature + "/" + path.name,
                                          {},
                                          {}});
        }

        auto run_path = [this, reference_seconds](PendingPath& job) {
            // This may run on a pool thread: the pool re-installed the
            // request's trace sink and active span (TaskGroup::run); the
            // cancellation token still needs installing here so the
            // interpreter's periodic poll sees the right request's token.
            CancelScope cancel_scope(job.ctx.cancel);
            trace::ScopedSpan span("path:" + job.path->name, "flow");
            for (const TaskPtr& task : job.path->tasks) {
                poll_cancellation(job.ctx.cancel);
                trace::ScopedSpan task_span("task:" + task->id(),
                                            task->dynamic() ? "task.dynamic"
                                                            : "task");
                task->run(job.ctx);
                job.signature += ";" + task->id();
            }
            descend(job.path->next.get(), std::move(job.ctx),
                    reference_seconds, job.signature, job.leaves,
                    job.decisions);
        };

        if (pool == nullptr || pending.size() == 1) {
            for (PendingPath& job : pending) run_path(job);
        } else {
            TaskGroup group(*pool);
            for (PendingPath& job : pending)
                group.run([&run_path, &job] { run_path(job); });
            // Helping wait: nested branch points schedule sub-jobs through
            // the same pool, so a waiting parent executes pending work
            // instead of parking a thread. Rethrows the first failed path's
            // exception (in path order), matching the sequential engine's
            // first-failure semantics.
            group.wait();
        }

        for (PendingPath& job : pending) {
            out.insert(out.end(),
                       std::make_move_iterator(job.leaves.begin()),
                       std::make_move_iterator(job.leaves.end()));
            decisions.insert(decisions.end(),
                             std::make_move_iterator(job.decisions.begin()),
                             std::make_move_iterator(job.decisions.end()));
        }
    }
};

} // namespace

FlowResult detail::run_flow_impl(const DesignFlow& flow, FlowContext ctx,
                                 const EngineOptions& options) {
    trace::ScopedSpan flow_span("run_flow:" + ctx.app_name(), "flow");
    CancelScope cancel_scope(ctx.cancel);

    const int jobs =
        options.jobs > 0 ? options.jobs : ThreadPool::default_jobs();
    Scheduler scheduler;
    if (jobs > 1) scheduler.pool = &ThreadPool::shared();
    scheduler.cost_model = &options.cost_model;

    std::string signature = "prologue";
    for (const TaskPtr& task : flow.prologue) {
        poll_cancellation(ctx.cancel);
        trace::ScopedSpan task_span("task:" + task->id(),
                                    task->dynamic() ? "task.dynamic" : "task");
        task->run(ctx);
        signature += ";" + task->id();
    }

    FlowResult result;
    result.reference_seconds =
        ctx.has_kernel() ? ctx.reference_seconds() : 0.0;
    result.log = ctx.log();

    if (flow.branch == nullptr) {
        result.designs.push_back(
            finalize(std::move(ctx), result.reference_seconds, signature));
        return result;
    }

    // Budget feedback loop (Fig. 3, bottom): if the selected design's run
    // cost exceeds the budget, exclude its target and re-select. Only
    // meaningful for single-path (informed) strategies.
    std::set<std::string> excluded;
    for (int iteration = 0;; ++iteration) {
        BranchPoint branch = *flow.branch;
        if (!excluded.empty())
            branch.strategy = informed_strategy(excluded);

        // Designs of a vetoed round are replaced; decision records are kept
        // (each round's records carry its feedback_iteration), so --explain
        // shows the vetoed selection next to the re-selection.
        result.designs.clear();
        scheduler.iteration = iteration;
        scheduler.descend(&branch, ctx.fork(), result.reference_seconds,
                          signature, result.designs, result.decisions);

        if (!options.budget.constrained() ||
            iteration >= options.max_feedback_iterations)
            break;

        // Feedback applies only to an *informed* selection: every design of
        // this round belongs to one target family (device branch points may
        // still have produced one design per device).
        TargetKind family = TargetKind::None;
        bool single_family = true;
        for (const auto& d : result.designs) {
            if (d.spec.target == TargetKind::None) continue;
            if (family == TargetKind::None) family = d.spec.target;
            if (d.spec.target != family) single_family = false;
        }
        if (!single_family || family == TargetKind::None) break;

        // Evaluate the cheapest synthesizable design of the family against
        // the budget.
        const DesignArtifact* cheapest = nullptr;
        for (const auto& d : result.designs) {
            if (!d.synthesizable) continue;
            if (cheapest == nullptr ||
                d.hotspot_seconds < cheapest->hotspot_seconds)
                cheapest = &d;
        }
        if (cheapest == nullptr) break;
        const double cost = options.cost_model.run_cost(
            family, cheapest->hotspot_seconds);
        if (cost <= options.budget.max_run_cost) break;

        obs::info("flow", "budget feedback: selection vetoed, re-selecting",
                  {{"app", ctx.app_name()},
                   {"iteration", std::to_string(iteration)},
                   {"run_cost", format_compact(cost, 4)},
                   {"budget", format_compact(options.budget.max_run_cost, 4)}});
        switch (family) {
            case TargetKind::CpuGpu: excluded.insert("gpu"); break;
            case TargetKind::CpuFpga: excluded.insert("fpga"); break;
            case TargetKind::CpuOpenMp: excluded.insert("cpu"); break;
            default: break;
        }
    }
    return result;
}

} // namespace psaflow::flow
