// Type checking and name resolution for HLC modules.
//
// Every analysis, transform and code generator relies on TypeInfo: element
// types decide bytes-moved (data in/out analysis), float vs double decides
// the SP transforms, and scope information decides which variables become
// kernel parameters during hotspot extraction.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::sema {

/// Results of checking one module. Valid until the module is structurally
/// edited; transforms re-run `check` afterwards.
class TypeInfo {
public:
    /// Static type of an expression node.
    [[nodiscard]] ast::Type type_of(const ast::Expr& expr) const;

    /// Declared type of variable `name` as visible at node `at` inside `fn`;
    /// throws SemaError if unknown. Loop induction variables are Int.
    [[nodiscard]] ast::ValueType
    var_type(const ast::Function& fn, const std::string& name) const;

    /// True if `name` names a variable in `fn` (param, local or induction var).
    [[nodiscard]] bool has_var(const ast::Function& fn,
                               const std::string& name) const;

    /// All variables of `fn` in declaration order (params first).
    struct VarInfo {
        std::string name;
        ast::ValueType type;
        bool is_param = false;
        bool is_array = false; ///< declared as a local array
    };
    [[nodiscard]] const std::vector<VarInfo>&
    variables(const ast::Function& fn) const;

private:
    friend struct TypeInfoAccess; ///< checker-internal write access

    std::unordered_map<const ast::Expr*, ast::Type> expr_types_;
    std::unordered_map<const ast::Function*, std::vector<VarInfo>> fn_vars_;
};

/// Check `module`; throws SemaError on the first violation (undeclared name,
/// type mismatch, bad call arity, non-int array subscript, ...).
[[nodiscard]] TypeInfo check(const ast::Module& module);

} // namespace psaflow::sema
