// The HLC builtin math library. One catalog shared by the type checker, the
// interpreter, the arithmetic-intensity analysis (flop costs) and the
// single-precision transforms (double->float equivalents, mirroring the
// paper's "Employ SP Math Fns" task).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ast/type.hpp"

namespace psaflow::sema {

struct BuiltinInfo {
    std::string_view name;
    int arity;
    ast::Type result;              ///< Double or Float
    int flop_cost;                 ///< cost charged per evaluation
    std::string_view sp_variant;   ///< float equivalent ("" if none / already SP)
    bool is_single;                ///< true for the *f variants
};

/// Catalog lookup; null when `name` is not a builtin.
[[nodiscard]] const BuiltinInfo* find_builtin(std::string_view name);

/// All builtins, for enumeration in tests/docs.
[[nodiscard]] std::span<const BuiltinInfo> all_builtins();

/// Evaluate a builtin on concrete arguments (used by the interpreter). For
/// single-precision variants the computation is performed in float, so SP
/// transforms are observable in results. Throws on arity mismatch or domain
/// errors the real libm would trap (sqrt of negative, log of non-positive).
[[nodiscard]] double eval_builtin(const BuiltinInfo& info,
                                  std::span<const double> args);

} // namespace psaflow::sema
