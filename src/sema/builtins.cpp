#include "sema/builtins.hpp"

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace psaflow::sema {

namespace {

using ast::Type;

// Flop costs approximate instruction counts on contemporary hardware and are
// the per-call charge used by the arithmetic-intensity analysis and the
// device performance models. They matter *relatively* (exp is ~8x an add),
// not absolutely.
constexpr std::array<BuiltinInfo, 26> kBuiltins = {{
    {"sqrt", 1, Type::Double, 4, "sqrtf", false},
    {"sqrtf", 1, Type::Float, 4, "", true},
    {"exp", 1, Type::Double, 8, "expf", false},
    {"expf", 1, Type::Float, 8, "", true},
    {"log", 1, Type::Double, 8, "logf", false},
    {"logf", 1, Type::Float, 8, "", true},
    {"pow", 2, Type::Double, 16, "powf", false},
    {"powf", 2, Type::Float, 16, "", true},
    {"sin", 1, Type::Double, 8, "sinf", false},
    {"sinf", 1, Type::Float, 8, "", true},
    {"cos", 1, Type::Double, 8, "cosf", false},
    {"cosf", 1, Type::Float, 8, "", true},
    {"tanh", 1, Type::Double, 10, "tanhf", false},
    {"tanhf", 1, Type::Float, 10, "", true},
    {"erf", 1, Type::Double, 12, "erff", false},
    {"erff", 1, Type::Float, 12, "", true},
    {"erfc", 1, Type::Double, 12, "erfcf", false},
    {"erfcf", 1, Type::Float, 12, "", true},
    {"fabs", 1, Type::Double, 1, "fabsf", false},
    {"fabsf", 1, Type::Float, 1, "", true},
    {"floor", 1, Type::Double, 1, "floorf", false},
    {"floorf", 1, Type::Float, 1, "", true},
    {"fmin", 2, Type::Double, 1, "fminf", false},
    {"fminf", 2, Type::Float, 1, "", true},
    {"fmax", 2, Type::Double, 1, "fmaxf", false},
    {"fmaxf", 2, Type::Float, 1, "", true},
}};

double eval_double(std::string_view base, std::span<const double> a) {
    if (base == "sqrt") {
        ensure(a[0] >= 0.0, "sqrt of negative value");
        return std::sqrt(a[0]);
    }
    if (base == "exp") return std::exp(a[0]);
    if (base == "log") {
        ensure(a[0] > 0.0, "log of non-positive value");
        return std::log(a[0]);
    }
    if (base == "pow") return std::pow(a[0], a[1]);
    if (base == "sin") return std::sin(a[0]);
    if (base == "cos") return std::cos(a[0]);
    if (base == "tanh") return std::tanh(a[0]);
    if (base == "erf") return std::erf(a[0]);
    if (base == "erfc") return std::erfc(a[0]);
    if (base == "fabs") return std::fabs(a[0]);
    if (base == "floor") return std::floor(a[0]);
    if (base == "fmin") return std::fmin(a[0], a[1]);
    if (base == "fmax") return std::fmax(a[0], a[1]);
    throw Error("eval_builtin: unknown builtin '" + std::string(base) + "'");
}

float eval_single(std::string_view base, float x, float y) {
    if (base == "sqrt") {
        ensure(x >= 0.0f, "sqrtf of negative value");
        return std::sqrt(x);
    }
    if (base == "exp") return std::exp(x);
    if (base == "log") {
        ensure(x > 0.0f, "logf of non-positive value");
        return std::log(x);
    }
    if (base == "pow") return std::pow(x, y);
    if (base == "sin") return std::sin(x);
    if (base == "cos") return std::cos(x);
    if (base == "tanh") return std::tanh(x);
    if (base == "erf") return std::erf(x);
    if (base == "erfc") return std::erfc(x);
    if (base == "fabs") return std::fabs(x);
    if (base == "floor") return std::floor(x);
    if (base == "fmin") return std::fmin(x, y);
    if (base == "fmax") return std::fmax(x, y);
    throw Error("eval_builtin: unknown builtin '" + std::string(base) + "'");
}

} // namespace

const BuiltinInfo* find_builtin(std::string_view name) {
    for (const auto& b : kBuiltins) {
        if (b.name == name) return &b;
    }
    return nullptr;
}

std::span<const BuiltinInfo> all_builtins() { return kBuiltins; }

double eval_builtin(const BuiltinInfo& info, std::span<const double> args) {
    ensure(static_cast<int>(args.size()) == info.arity,
           "builtin '" + std::string(info.name) + "' arity mismatch");
    if (info.is_single) {
        // Strip the trailing 'f' to get the base operation, compute in float.
        std::string_view base = info.name.substr(0, info.name.size() - 1);
        const float x = static_cast<float>(args[0]);
        const float y = args.size() > 1 ? static_cast<float>(args[1]) : 0.0f;
        return static_cast<double>(eval_single(base, x, y));
    }
    return eval_double(info.name, args);
}

} // namespace psaflow::sema
