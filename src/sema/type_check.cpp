#include "sema/type_check.hpp"

#include <unordered_set>

#include "sema/builtins.hpp"
#include "support/error.hpp"

namespace psaflow::sema {

using namespace psaflow::ast;

/// Write access to TypeInfo internals for the checker implementation.
struct TypeInfoAccess {
    static std::unordered_map<const Expr*, Type>& expr_types(TypeInfo& ti) {
        return ti.expr_types_;
    }
    static std::unordered_map<const Function*, std::vector<TypeInfo::VarInfo>>&
    fn_vars(TypeInfo& ti) {
        return ti.fn_vars_;
    }
};

namespace {

/// Numeric promotion: the wider of two numeric types (Double > Float > Int).
Type promote(Type a, Type b, SrcLoc loc) {
    if (!is_numeric(a) || !is_numeric(b))
        throw SemaError(loc, "arithmetic on non-numeric operands");
    if (a == Type::Double || b == Type::Double) return Type::Double;
    if (a == Type::Float || b == Type::Float) return Type::Float;
    return Type::Int;
}

class Checker {
public:
    explicit Checker(const Module& module, TypeInfo& out)
        : module_(module), out_(out) {}

    void run() {
        for (const auto& fn : module_.functions) {
            // Function names must be unique (and not collide with builtins).
            if (find_builtin(fn->name) != nullptr)
                throw SemaError(fn->loc, "function '" + fn->name +
                                             "' shadows a builtin");
            if (!fn_names_.insert(fn->name).second)
                throw SemaError(fn->loc,
                                "duplicate function '" + fn->name + "'");
        }
        for (const auto& fn : module_.functions) check_function(*fn);
    }

private:
    void check_function(const Function& fn) {
        current_fn_ = &fn;
        vars_.clear();
        auto& infos = TypeInfoAccess::fn_vars(out_)[&fn];
        infos.clear();

        for (const auto& p : fn.params) {
            declare(p->name, p->type, p->loc, /*is_param=*/true,
                    /*is_array=*/false);
        }
        check_block(*fn.body);
        current_fn_ = nullptr;
    }

    void declare(const std::string& name, ValueType type, SrcLoc loc,
                 bool is_param, bool is_array) {
        // HLC requires one type per name within a function: re-using a name
        // (e.g. the induction variable `i` across sibling loops) is allowed
        // only at the same type. This keeps the per-function name->type map
        // unambiguous, which hotspot extraction relies on when it computes
        // the free variables of a loop.
        if (auto it = vars_.find(name); it != vars_.end()) {
            if (it->second != type)
                throw SemaError(loc, "redeclaration of '" + name +
                                         "' with a different type");
            return; // same name, same type: already recorded
        }
        vars_.emplace(name, type);
        TypeInfoAccess::fn_vars(out_)[current_fn_].push_back(
            TypeInfo::VarInfo{name, type, is_param, is_array});
    }

    void check_block(const Block& block) {
        for (const auto& s : block.stmts) check_stmt(*s);
    }

    void check_stmt(const Stmt& stmt) {
        switch (stmt.kind()) {
            case NodeKind::Block:
                check_block(static_cast<const Block&>(stmt));
                return;
            case NodeKind::VarDecl: {
                const auto& d = static_cast<const VarDecl&>(stmt);
                if (d.is_array) {
                    const Type st = expr(*d.array_size);
                    if (st != Type::Int)
                        throw SemaError(d.loc, "array size must be int");
                    declare(d.name, ValueType{d.elem, true}, d.loc, false,
                            true);
                } else {
                    declare(d.name, ValueType{d.elem, false}, d.loc, false,
                            false);
                }
                if (d.init) {
                    const Type it = expr(*d.init);
                    require_assignable(ValueType{d.elem, false}, it, d.loc);
                }
                return;
            }
            case NodeKind::Assign: {
                const auto& a = static_cast<const Assign&>(stmt);
                const Type tt = lvalue(*a.target);
                const Type vt = expr(*a.value);
                require_assignable(ValueType{tt, false}, vt, a.loc);
                if (a.op != AssignOp::Set && !is_numeric(tt))
                    throw SemaError(a.loc,
                                    "compound assignment needs numeric target");
                return;
            }
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(stmt);
                require_bool(expr(*i.cond), i.loc);
                check_block(*i.then_body);
                if (i.else_body) check_block(*i.else_body);
                return;
            }
            case NodeKind::For: {
                const auto& f = static_cast<const For&>(stmt);
                if (expr(*f.init) != Type::Int)
                    throw SemaError(f.loc, "for-loop init must be int");
                declare(f.var, ValueType{Type::Int, false}, f.loc, false,
                        false);
                if (expr(*f.limit) != Type::Int)
                    throw SemaError(f.loc, "for-loop limit must be int");
                if (expr(*f.step) != Type::Int)
                    throw SemaError(f.loc, "for-loop step must be int");
                check_block(*f.body);
                return;
            }
            case NodeKind::While: {
                const auto& w = static_cast<const While&>(stmt);
                require_bool(expr(*w.cond), w.loc);
                check_block(*w.body);
                return;
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(stmt);
                const Type want = current_fn_->ret;
                if (r.value == nullptr) {
                    if (want != Type::Void)
                        throw SemaError(r.loc, "non-void function '" +
                                                   current_fn_->name +
                                                   "' returns no value");
                } else {
                    const Type got = expr(*r.value);
                    if (want == Type::Void)
                        throw SemaError(r.loc, "void function returns a value");
                    require_assignable(ValueType{want, false}, got, r.loc);
                }
                return;
            }
            case NodeKind::ExprStmt: {
                const auto& e = static_cast<const ExprStmt&>(stmt);
                (void)expr(*e.expr);
                return;
            }
            default:
                throw SemaError(stmt.loc, "unexpected statement node");
        }
    }

    /// Types an assignment target; rejects pointers-as-scalars and indexing
    /// of non-pointers.
    Type lvalue(const Expr& target) {
        if (const auto* id = dyn_cast<Ident>(&target)) {
            const ValueType vt = lookup(id->name, id->loc);
            if (vt.is_pointer)
                throw SemaError(id->loc, "cannot assign to whole array '" +
                                             id->name + "'");
            TypeInfoAccess::expr_types(out_)[&target] = vt.elem;
            return vt.elem;
        }
        if (target.kind() == NodeKind::Index) return expr(target);
        throw SemaError(target.loc, "assignment target must be a variable or "
                                    "array element");
    }

    Type expr(const Expr& e) {
        const Type t = expr_impl(e);
        TypeInfoAccess::expr_types(out_)[&e] = t;
        return t;
    }

    Type expr_impl(const Expr& e) {
        switch (e.kind()) {
            case NodeKind::IntLit: return Type::Int;
            case NodeKind::FloatLit:
                return static_cast<const FloatLit&>(e).single ? Type::Float
                                                              : Type::Double;
            case NodeKind::BoolLit: return Type::Bool;
            case NodeKind::Ident: {
                const auto& id = static_cast<const Ident&>(e);
                const ValueType vt = lookup(id.name, id.loc);
                if (vt.is_pointer)
                    throw SemaError(id.loc, "array '" + id.name +
                                                "' used without subscript");
                return vt.elem;
            }
            case NodeKind::Unary: {
                const auto& u = static_cast<const Unary&>(e);
                const Type ot = expr(*u.operand);
                if (u.op == UnaryOp::Neg) {
                    if (!is_numeric(ot))
                        throw SemaError(u.loc, "negation of non-numeric value");
                    return ot;
                }
                require_bool(ot, u.loc);
                return Type::Bool;
            }
            case NodeKind::Binary: {
                const auto& b = static_cast<const Binary&>(e);
                const Type lt = expr(*b.lhs);
                const Type rt = expr(*b.rhs);
                if (is_logical(b.op)) {
                    require_bool(lt, b.loc);
                    require_bool(rt, b.loc);
                    return Type::Bool;
                }
                if (is_comparison(b.op)) {
                    (void)promote(lt, rt, b.loc);
                    return Type::Bool;
                }
                if (b.op == BinaryOp::Mod) {
                    if (lt != Type::Int || rt != Type::Int)
                        throw SemaError(b.loc, "'%' requires int operands");
                    return Type::Int;
                }
                return promote(lt, rt, b.loc);
            }
            case NodeKind::Call: {
                const auto& c = static_cast<const Call&>(e);
                return call(c);
            }
            case NodeKind::Index: {
                const auto& x = static_cast<const Index&>(e);
                const auto* base = dyn_cast<Ident>(x.base.get());
                if (base == nullptr)
                    throw SemaError(x.loc,
                                    "subscript base must be an array name");
                const ValueType vt = lookup(base->name, base->loc);
                if (!vt.is_pointer)
                    throw SemaError(x.loc, "'" + base->name +
                                               "' is not an array");
                TypeInfoAccess::expr_types(out_)[x.base.get()] = vt.elem;
                if (expr(*x.index) != Type::Int)
                    throw SemaError(x.loc, "array subscript must be int");
                return vt.elem;
            }
            default:
                throw SemaError(e.loc, "unexpected expression node");
        }
    }

    Type call(const Call& c) {
        if (const BuiltinInfo* b = find_builtin(c.callee)) {
            if (static_cast<int>(c.args.size()) != b->arity)
                throw SemaError(c.loc, "builtin '" + c.callee + "' expects " +
                                           std::to_string(b->arity) +
                                           " argument(s)");
            for (const auto& a : c.args) {
                if (!is_numeric(expr(*a)))
                    throw SemaError(c.loc, "builtin '" + c.callee +
                                               "' needs numeric arguments");
            }
            return b->result;
        }
        const Function* callee = module_.find_function(c.callee);
        if (callee == nullptr)
            throw SemaError(c.loc, "call to unknown function '" + c.callee +
                                       "'");
        if (c.args.size() != callee->params.size())
            throw SemaError(c.loc, "call to '" + c.callee + "' expects " +
                                       std::to_string(callee->params.size()) +
                                       " argument(s), got " +
                                       std::to_string(c.args.size()));
        for (std::size_t i = 0; i < c.args.size(); ++i) {
            const ValueType want = callee->params[i]->type;
            if (want.is_pointer) {
                // Arrays are passed by name; the argument must be an array
                // of identical element type.
                const auto* id = dyn_cast<Ident>(c.args[i].get());
                if (id == nullptr)
                    throw SemaError(c.loc, "argument " + std::to_string(i + 1) +
                                               " of '" + c.callee +
                                               "' must be an array name");
                const ValueType got = lookup(id->name, id->loc);
                if (!got.is_pointer || got.elem != want.elem)
                    throw SemaError(c.loc,
                                    "array argument type mismatch in call to '" +
                                        c.callee + "'");
                TypeInfoAccess::expr_types(out_)[c.args[i].get()] = got.elem;
            } else {
                const Type got = expr(*c.args[i]);
                require_assignable(want, got, c.loc);
            }
        }
        return callee->ret;
    }

    ValueType lookup(const std::string& name, SrcLoc loc) const {
        auto it = vars_.find(name);
        if (it == vars_.end())
            throw SemaError(loc, "use of undeclared name '" + name + "'");
        return it->second;
    }

    static void require_bool(Type t, SrcLoc loc) {
        if (t != Type::Bool)
            throw SemaError(loc, "condition must be bool");
    }

    static void require_assignable(ValueType want, Type got, SrcLoc loc) {
        if (want.is_pointer)
            throw SemaError(loc, "cannot assign to an array");
        if (want.elem == Type::Bool) {
            if (got != Type::Bool)
                throw SemaError(loc, "expected a bool value");
            return;
        }
        if (!is_numeric(want.elem) || !is_numeric(got))
            throw SemaError(loc, "incompatible types in assignment");
        // Numeric conversions (including narrowing) follow C semantics.
    }

    const Module& module_;
    TypeInfo& out_;
    const Function* current_fn_ = nullptr;
    std::unordered_map<std::string, ValueType> vars_;
    std::unordered_set<std::string> fn_names_;
};

} // namespace

Type TypeInfo::type_of(const ast::Expr& expr) const {
    auto it = expr_types_.find(&expr);
    ensure(it != expr_types_.end(),
           "TypeInfo::type_of: expression was not checked (stale TypeInfo?)");
    return it->second;
}

ast::ValueType TypeInfo::var_type(const ast::Function& fn,
                                  const std::string& name) const {
    auto it = fn_vars_.find(&fn);
    ensure(it != fn_vars_.end(), "TypeInfo::var_type: unknown function");
    for (const auto& v : it->second) {
        if (v.name == name) return v.type;
    }
    throw SemaError(fn.loc, "variable '" + name + "' not found in function '" +
                                fn.name + "'");
}

bool TypeInfo::has_var(const ast::Function& fn, const std::string& name) const {
    auto it = fn_vars_.find(&fn);
    if (it == fn_vars_.end()) return false;
    for (const auto& v : it->second) {
        if (v.name == name) return true;
    }
    return false;
}

const std::vector<TypeInfo::VarInfo>&
TypeInfo::variables(const ast::Function& fn) const {
    auto it = fn_vars_.find(&fn);
    ensure(it != fn_vars_.end(), "TypeInfo::variables: unknown function");
    return it->second;
}

TypeInfo check(const ast::Module& module) {
    TypeInfo info;
    Checker checker(module, info);
    checker.run();
    return info;
}

} // namespace psaflow::sema
