// GPU performance model (HIP CPU+GPU designs).
//
// The model has two halves:
//   1. an *occupancy calculator* in the style of the CUDA occupancy
//      spreadsheet: blocks resident per SM are limited by the register
//      file, shared memory, max threads and max blocks; and
//   2. a roofline execution-time model whose compute throughput is scaled
//      by achieved occupancy, instruction-level parallelism (dependent
//      chains) and the FP64 penalty of consumer parts.
//
// Host<->device transfers ride PCIe at a pageable or pinned bandwidth (the
// "Employ HIP Pinned Memory" task flips the latter). The blocksize DSE in
// src/dse sweeps launch configurations against exactly this model, which is
// the substitute for timing real kernels on a GTX 1080 Ti / RTX 2080 Ti.
#pragma once

#include <string>

#include "platform/kernel_shape.hpp"

namespace psaflow::platform {

struct GpuSpec {
    std::string name;
    int sms = 28;
    int cores_per_sm = 128;
    double clock_ghz = 1.5;
    int regs_per_sm = 65536;
    int max_threads_per_sm = 2048;
    int max_blocks_per_sm = 32;
    int max_regs_per_thread = 255;
    double smem_per_sm_kb = 96.0;
    double mem_bw_gbs = 484.0;
    double fp64_ratio = 1.0 / 32.0;  ///< FP64 : FP32 throughput
    double pcie_bw_gbs = 6.0;        ///< pageable host memory
    double pcie_pinned_bw_gbs = 12.0;///< pinned host memory
    double launch_overhead_us = 8.0;
    /// Occupancy at which latency is fully hidden for streaming kernels.
    double saturation_occupancy = 0.4;
    /// Throughput fraction retained by fully dependent instruction chains.
    double dependent_chain_efficiency = 0.12;
    /// Sustained fraction of non-FMA fp32 peak on real kernels.
    double compute_efficiency = 0.55;
    /// Relative cost of a transcendental-weighted flop (SFU-executed)
    /// versus FMA-class work.
    double sfu_cost = 1.5;
    /// Per-thread sustained flops/cycle on dependent chains (latency regime).
    double fp32_thread_ipc = 0.5;
    double fp64_thread_ipc = 0.09;
    double tdp_watts = 250.0; ///< board power at full load
};

struct LaunchConfig {
    int block_size = 256;
    double smem_per_block_kb = 0.0;
    bool pinned_host_memory = false;
};

struct GpuEstimate {
    double occupancy = 0.0;      ///< achieved / max resident warps
    double kernel_seconds = 0.0; ///< device execution time
    double transfer_seconds = 0.0;
    double total_seconds = 0.0;
    bool config_valid = true;    ///< false when regs/thread exceeds the ISA cap
};

class GpuModel {
public:
    explicit GpuModel(GpuSpec spec) : spec_(std::move(spec)) {}

    [[nodiscard]] const GpuSpec& spec() const { return spec_; }

    /// Occupancy (0..1] for a launch of `block_size` threads needing
    /// `regs_per_thread` registers and `smem_kb` shared memory per block.
    [[nodiscard]] double occupancy(int block_size, int regs_per_thread,
                                   double smem_kb) const;

    /// Full time estimate for `shape` launched with `config`.
    [[nodiscard]] GpuEstimate estimate(const KernelShape& shape,
                                       const LaunchConfig& config) const;

private:
    GpuSpec spec_;
};

} // namespace psaflow::platform
