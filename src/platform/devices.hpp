// The device registry: concrete specifications of the paper's evaluation
// platforms. Architectural parameters (core counts, clocks, register files,
// resource counts) follow the published hardware specs; effectiveness
// factors (sustained-vs-peak efficiency, achievable bandwidths) are
// calibration constants documented in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "platform/cpu.hpp"
#include "platform/fpga.hpp"
#include "platform/gpu.hpp"

namespace psaflow::platform {

/// Device identifiers used throughout the flow and the benches.
enum class DeviceId {
    Epyc7543,     ///< AMD EPYC 7543, 32 cores @ 2.8 GHz
    Gtx1080Ti,    ///< NVIDIA GeForce GTX 1080 Ti (Pascal)
    Rtx2080Ti,    ///< NVIDIA GeForce RTX 2080 Ti (Turing)
    Arria10,      ///< Intel PAC with Arria 10 GX 1150
    Stratix10,    ///< Intel Stratix 10 SX 2800 (USM-capable)
};

[[nodiscard]] const char* to_string(DeviceId id);

/// EPYC 7543 host CPU (both the reference single-thread platform and the
/// OpenMP target).
[[nodiscard]] const CpuSpec& epyc7543();

[[nodiscard]] const GpuSpec& gtx1080ti();
[[nodiscard]] const GpuSpec& rtx2080ti();

[[nodiscard]] const FpgaSpec& arria10();
[[nodiscard]] const FpgaSpec& stratix10();

[[nodiscard]] const GpuSpec& gpu_spec(DeviceId id);
[[nodiscard]] const FpgaSpec& fpga_spec(DeviceId id);

[[nodiscard]] inline std::vector<DeviceId> all_gpus() {
    return {DeviceId::Gtx1080Ti, DeviceId::Rtx2080Ti};
}
[[nodiscard]] inline std::vector<DeviceId> all_fpgas() {
    return {DeviceId::Arria10, DeviceId::Stratix10};
}

} // namespace psaflow::platform
