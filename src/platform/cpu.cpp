#include "platform/cpu.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace psaflow::platform {

double CpuModel::time_single_thread(const KernelShape& shape) const {
    const double peak_flops =
        spec_.clock_ghz * 1e9 * spec_.flops_per_cycle_1t;
    const double t_compute = shape.flops / peak_flops;
    const double t_memory =
        shape.footprint_bytes / (spec_.mem_bw_core_gbs * 1e9);
    return std::max(t_compute, t_memory);
}

double CpuModel::time_multi_thread(const KernelShape& shape,
                                   int threads) const {
    ensure(threads >= 1, "CpuModel: thread count must be >= 1");
    const int used = std::min(threads, spec_.cores);
    const double peak_flops = spec_.clock_ghz * 1e9 *
                              spec_.flops_per_cycle_1t * used *
                              spec_.parallel_efficiency;
    // Concurrency is capped by the parallel iterations available.
    const double usable =
        std::min(static_cast<double>(used), shape.parallel_iters);
    const double effective_flops =
        peak_flops * (used > 0 ? usable / used : 1.0);

    const double t_compute = shape.flops / effective_flops;
    const double bw = std::min(spec_.mem_bw_socket_gbs,
                               spec_.mem_bw_core_gbs * used) *
                      1e9;
    const double t_memory = shape.footprint_bytes / bw;
    const double overhead =
        shape.invocations * spec_.omp_region_overhead_us * 1e-6;
    return std::max(t_compute, t_memory) + overhead;
}

} // namespace psaflow::platform
