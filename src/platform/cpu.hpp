// CPU performance model (AMD EPYC 7543 class). A two-term roofline:
// arithmetic throughput vs. socket memory bandwidth, with a parallel
// efficiency factor and per-region OpenMP overhead for the multi-threaded
// variant. The single-thread prediction is the baseline every Fig. 5
// speedup is measured against.
#pragma once

#include <string>

#include "platform/kernel_shape.hpp"

namespace psaflow::platform {

struct CpuSpec {
    std::string name;
    int cores = 32;
    double clock_ghz = 2.8;
    /// Effective sustained flops/cycle of one thread on unoptimised scalar
    /// code (weighted-flop units, matching the interpreter's accounting).
    double flops_per_cycle_1t = 2.0;
    double mem_bw_core_gbs = 12.0;    ///< one thread's achievable bandwidth
    double mem_bw_socket_gbs = 190.0; ///< all-cores achievable bandwidth
    double parallel_efficiency = 0.92; ///< OpenMP scaling efficiency
    double omp_region_overhead_us = 15.0; ///< fork/join + scheduling
    double tdp_watts = 225.0; ///< socket power at full load
};

class CpuModel {
public:
    explicit CpuModel(CpuSpec spec) : spec_(std::move(spec)) {}

    [[nodiscard]] const CpuSpec& spec() const { return spec_; }

    /// Seconds for the kernel on one thread (the reference implementation).
    [[nodiscard]] double time_single_thread(const KernelShape& shape) const;

    /// Seconds for the OpenMP design with `threads` threads.
    [[nodiscard]] double time_multi_thread(const KernelShape& shape,
                                           int threads) const;

private:
    CpuSpec spec_;
};

} // namespace psaflow::platform
