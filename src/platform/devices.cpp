#include "platform/devices.hpp"

#include "support/error.hpp"

namespace psaflow::platform {

const char* to_string(DeviceId id) {
    switch (id) {
        case DeviceId::Epyc7543: return "EPYC 7543";
        case DeviceId::Gtx1080Ti: return "GTX 1080 Ti";
        case DeviceId::Rtx2080Ti: return "RTX 2080 Ti";
        case DeviceId::Arria10: return "Arria10";
        case DeviceId::Stratix10: return "Stratix10";
    }
    return "?";
}

const CpuSpec& epyc7543() {
    static const CpuSpec spec = [] {
        CpuSpec s;
        s.name = "AMD EPYC 7543 (32c @ 2.8 GHz)";
        s.cores = 32;
        s.clock_ghz = 2.8;
        s.flops_per_cycle_1t = 2.0; // unoptimised scalar reference code
        s.mem_bw_core_gbs = 12.0;
        s.mem_bw_socket_gbs = 190.0; // 8-channel DDR4-3200, sustained
        s.parallel_efficiency = 0.92;
        s.omp_region_overhead_us = 15.0;
        s.tdp_watts = 225.0;
        return s;
    }();
    return spec;
}

const GpuSpec& gtx1080ti() {
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.name = "NVIDIA GeForce GTX 1080 Ti (Pascal GP102)";
        s.sms = 28;
        s.cores_per_sm = 128;
        s.clock_ghz = 1.582;
        s.regs_per_sm = 65'536;
        s.max_threads_per_sm = 2'048;
        s.max_blocks_per_sm = 32;
        s.max_regs_per_thread = 255;
        s.smem_per_sm_kb = 96.0;
        s.mem_bw_gbs = 484.0;
        s.fp64_ratio = 1.0 / 13.0;   // effective dp rate incl. mixed int work
        s.pcie_bw_gbs = 6.0;          // PCIe 3.0 x16, pageable
        s.pcie_pinned_bw_gbs = 12.0;  // pinned
        s.launch_overhead_us = 8.0;
        s.saturation_occupancy = 0.16;
        s.dependent_chain_efficiency = 0.10;
        s.compute_efficiency = 0.33;
        s.tdp_watts = 250.0;
        return s;
    }();
    return spec;
}

const GpuSpec& rtx2080ti() {
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.name = "NVIDIA GeForce RTX 2080 Ti (Turing TU102)";
        s.sms = 68;
        s.cores_per_sm = 64;
        s.clock_ghz = 1.545;
        s.regs_per_sm = 65'536;
        // Turing: 1024 threads/SM — register pressure bites much later
        // than on Pascal, which is how the paper's Rush Larsen kernel
        // (255 regs/thread) keeps the 2080 Ti busy but starves the 1080 Ti.
        s.max_threads_per_sm = 1'024;
        s.max_blocks_per_sm = 16;
        s.max_regs_per_thread = 255;
        s.smem_per_sm_kb = 64.0;
        s.mem_bw_gbs = 616.0;
        s.fp64_ratio = 1.0 / 13.0;
        s.pcie_bw_gbs = 6.0;
        s.pcie_pinned_bw_gbs = 12.0;
        s.launch_overhead_us = 8.0;
        s.saturation_occupancy = 0.25; // Turing hides latency with fewer warps
        s.dependent_chain_efficiency = 0.22;
        s.compute_efficiency = 0.62;
        s.tdp_watts = 260.0;
        return s;
    }();
    return spec;
}

const FpgaSpec& arria10() {
    static const FpgaSpec spec = [] {
        FpgaSpec s;
        s.name = "Intel PAC Arria 10 GX 1150";
        s.luts = 1'250'000;
        s.dsps = 1'518;
        s.bram_kb = 65'000;
        s.clock_mhz = 240.0;
        s.ddr_bw_gbs = 17.0;
        s.pcie_bw_gbs = 8.0;
        s.supports_usm = false;
        s.tdp_watts = 66.0; // PAC A10 board budget
        s.base_luts = 120'000;
        s.base_dsps = 24;
        s.base_bram_kb = 4'500;
        return s;
    }();
    return spec;
}

const FpgaSpec& stratix10() {
    static const FpgaSpec spec = [] {
        FpgaSpec s;
        s.name = "Intel Stratix 10 SX 2800";
        s.luts = 2'753'000;
        s.dsps = 5'760;
        s.bram_kb = 229'000;
        s.clock_mhz = 300.0;
        s.ddr_bw_gbs = 32.0;
        s.pcie_bw_gbs = 8.0;
        s.supports_usm = true; // zero-copy host memory via USM
        s.usm_bw_gbs = 16.0;
        s.tdp_watts = 140.0;
        s.base_luts = 180'000;
        s.base_dsps = 32;
        s.base_bram_kb = 6'000;
        return s;
    }();
    return spec;
}

const GpuSpec& gpu_spec(DeviceId id) {
    switch (id) {
        case DeviceId::Gtx1080Ti: return gtx1080ti();
        case DeviceId::Rtx2080Ti: return rtx2080ti();
        default: throw Error("gpu_spec: not a GPU device");
    }
}

const FpgaSpec& fpga_spec(DeviceId id) {
    switch (id) {
        case DeviceId::Arria10: return arria10();
        case DeviceId::Stratix10: return stratix10();
        default: throw Error("fpga_spec: not an FPGA device");
    }
}

} // namespace psaflow::platform
