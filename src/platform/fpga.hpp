// FPGA performance and resource model (oneAPI CPU+FPGA designs).
//
// This is the substitute for the paper's "run a partial compile with Intel's
// oneAPI tools and read the estimated LUT usage from the high-level design
// report" (Fig. 2). `estimate_resources` walks the kernel AST and charges
// per-operator area costs (double-precision operators roughly double the
// area of single-precision ones); the unroll factor replicates the pipeline
// datapath. `estimate` then models the classic HLS pipeline timing:
//
//     cycles = (outer_iterations / unroll) * II * inner_cycles + depth
//
// Fixed-bound inner loops marked fully-unrollable add area instead of
// cycles. Transfers ride PCIe on Arria10-class parts; Stratix10-class parts
// support zero-copy unified shared memory (USM), which overlaps access with
// compute — exactly the device difference the paper's branch point B
// exploits.
#pragma once

#include <string>

#include "ast/nodes.hpp"
#include "platform/kernel_shape.hpp"
#include "sema/type_check.hpp"

namespace psaflow::platform {

struct FpgaSpec {
    std::string name;
    double luts = 1'150'000;  ///< logic elements (ALMs scaled)
    double dsps = 1'518;
    double bram_kb = 65'000;
    double clock_mhz = 240.0;
    double ddr_bw_gbs = 19.0; ///< on-board DDR bandwidth
    double pcie_bw_gbs = 6.0;
    bool supports_usm = false; ///< zero-copy host memory (Stratix10)
    double usm_bw_gbs = 12.0;
    double overmap_threshold = 0.90; ///< DSE stops above this utilisation
    double tdp_watts = 70.0; ///< board power at full load
    /// Base infrastructure usage (BSP/shell, kernel interface logic).
    double base_luts = 120'000;
    double base_dsps = 24;
    double base_bram_kb = 4'000;
};

/// Area/latency summary of one pipeline replica of the kernel, as an HLS
/// report would estimate it.
struct FpgaResources {
    double luts = 0.0;
    double dsps = 0.0;
    double bram_kb = 0.0;
    double pipeline_depth = 0.0;   ///< cycles from first input to first output
    double cycles_per_iter = 1.0;  ///< II * sequential inner-loop cycles
    bool ii_is_one = true;         ///< initiation interval of the outer pipeline
};

struct FpgaReport {
    FpgaResources replica;     ///< one copy of the datapath
    double total_luts = 0.0;   ///< base + unroll * replica (same for others)
    double total_dsps = 0.0;
    double total_bram_kb = 0.0;
    double lut_utilisation = 0.0;
    double dsp_utilisation = 0.0;
    double bram_utilisation = 0.0;
    bool overmapped = false;
    int unroll = 1;

    /// Highest utilisation across resource classes — the DSE criterion.
    [[nodiscard]] double utilisation() const;
};

struct FpgaEstimate {
    double kernel_seconds = 0.0;
    double transfer_seconds = 0.0; ///< zero when USM overlaps transfers
    double total_seconds = 0.0;
    FpgaReport report;
};

class FpgaModel {
public:
    explicit FpgaModel(FpgaSpec spec) : spec_(std::move(spec)) {}

    [[nodiscard]] const FpgaSpec& spec() const { return spec_; }

    /// Area estimate for `kernel` unrolled by `unroll`. This is the stand-in
    /// for the oneAPI partial-compile report of the paper's Fig. 2 DSE.
    /// `single_precision` charges SP operator costs regardless of the HLC
    /// types (the SP transforms leave pointer parameters declared double;
    /// the emitted design converts on transfer).
    [[nodiscard]] FpgaReport report(const ast::Function& kernel,
                                    const sema::TypeInfo& types, int unroll,
                                    bool single_precision = false) const;

    /// Execution-time estimate for `shape` on a design unrolled by
    /// `report.unroll`. Returns ~infinite time when the design overmaps.
    [[nodiscard]] FpgaEstimate estimate(const KernelShape& shape,
                                        const FpgaReport& report) const;

private:
    FpgaSpec spec_;
};

} // namespace psaflow::platform
