#include "platform/fpga.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "sema/builtins.hpp"
#include "support/error.hpp"

namespace psaflow::platform {

using namespace psaflow::ast;

namespace {

struct OpCost {
    double luts = 0.0;
    double dsps = 0.0;
    double depth = 0.0;
};

/// Single-precision operator area/latency, loosely following Intel HLS
/// operator libraries. Values matter relatively: exp-class operators are an
/// order of magnitude larger than adds, double precision costs ~2.3x logic.
OpCost sp_cost_of_builtin(std::string_view name) {
    // Strip an 'f' suffix: costs are given for the operation itself.
    if (!name.empty() && name.back() == 'f') {
        if (sema::find_builtin(name) != nullptr &&
            sema::find_builtin(name)->is_single)
            name = name.substr(0, name.size() - 1);
    }
    if (name == "sqrt") return {4'500, 0, 16};
    if (name == "exp") return {9'000, 8, 20};
    if (name == "log") return {9'500, 8, 22};
    if (name == "pow") return {9'000, 10, 28};
    if (name == "sin" || name == "cos") return {9'000, 8, 20};
    if (name == "tanh") return {10'000, 8, 22};
    if (name == "erf" || name == "erfc") return {12'000, 10, 26};
    if (name == "fabs" || name == "floor" || name == "fmin" ||
        name == "fmax")
        return {200, 0, 1};
    return {500, 0, 4}; // unknown builtin: charge like an adder
}

constexpr double kDoubleLutFactor = 2.3;
constexpr double kDoubleDspFactor = 2.0;
constexpr double kDoubleDepthFactor = 1.5;

class ResourceWalker {
public:
    ResourceWalker(const sema::TypeInfo& types, bool force_sp)
        : types_(types), force_sp_(force_sp) {}

    FpgaResources run(const Function& kernel) {
        // Local arrays consume on-chip BRAM.
        walk(static_cast<const Node&>(kernel), [&](const Node& n) {
            if (const auto* d = dyn_cast<VarDecl>(&n); d != nullptr &&
                                                       d->is_array) {
                auto size = meta::fold_int_constant(*d->array_size);
                const double elems = size ? static_cast<double>(*size) : 2048;
                acc_.bram_kb += elems * size_of(d->elem) / 1024.0;
            }
            return true;
        });

        walk_stmt(*kernel.body);

        // One load/store unit per distinct global array.
        acc_.luts += 3'000.0 * static_cast<double>(arrays_.size());
        acc_.pipeline_depth = 15.0 + 0.3 * depth_sum_;
        return acc_;
    }

private:
    void charge(OpCost cost, bool is_double) {
        if (force_sp_) is_double = false;
        if (is_double) {
            cost.luts *= kDoubleLutFactor;
            cost.dsps *= kDoubleDspFactor;
            cost.depth *= kDoubleDepthFactor;
        }
        acc_.luts += cost.luts;
        acc_.dsps += cost.dsps;
        depth_sum_ += cost.depth;
    }

    void walk_stmt(const Stmt& s) {
        switch (s.kind()) {
            case NodeKind::Block:
                for (const auto& inner : static_cast<const Block&>(s).stmts)
                    walk_stmt(*inner);
                return;
            case NodeKind::VarDecl: {
                const auto& d = static_cast<const VarDecl&>(s);
                if (d.init) walk_expr(*d.init);
                return;
            }
            case NodeKind::Assign: {
                const auto& a = static_cast<const Assign&>(s);
                walk_expr(*a.target);
                walk_expr(*a.value);
                if (a.op != AssignOp::Set) {
                    const Type t = types_.type_of(*a.target);
                    charge(a.op == AssignOp::Div ? OpCost{3'000, 0, 14}
                                                 : OpCost{500, 0, 4},
                           t == Type::Double);
                }
                return;
            }
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(s);
                walk_expr(*i.cond);
                // Both sides are materialised in hardware plus a mux.
                acc_.luts += 150;
                walk_stmt(*i.then_body);
                if (i.else_body) walk_stmt(*i.else_body);
                return;
            }
            case NodeKind::For: {
                const auto& f = static_cast<const For&>(s);
                walk_expr(*f.init);
                walk_expr(*f.limit);
                walk_expr(*f.step);
                // Loop control counter/compare.
                acc_.luts += 250;
                // A remaining (sequential) inner loop reuses its datapath
                // every cycle: count the body once.
                walk_stmt(*f.body);
                return;
            }
            case NodeKind::While: {
                const auto& w = static_cast<const While&>(s);
                walk_expr(*w.cond);
                acc_.luts += 250;
                acc_.ii_is_one = false; // data-dependent exit blocks pipelining
                walk_stmt(*w.body);
                return;
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(s);
                if (r.value) walk_expr(*r.value);
                return;
            }
            case NodeKind::ExprStmt:
                walk_expr(*static_cast<const ExprStmt&>(s).expr);
                return;
            default:
                return;
        }
    }

    void walk_expr(const Expr& e) {
        switch (e.kind()) {
            case NodeKind::Binary: {
                const auto& b = static_cast<const Binary&>(e);
                walk_expr(*b.lhs);
                walk_expr(*b.rhs);
                const Type t = types_.type_of(b);
                if (is_floating(t)) {
                    OpCost cost;
                    switch (b.op) {
                        case BinaryOp::Mul: cost = {150, 2, 4}; break;
                        case BinaryOp::Div: cost = {3'000, 0, 14}; break;
                        case BinaryOp::Add:
                        case BinaryOp::Sub: cost = {500, 0, 4}; break;
                        default: cost = {200, 0, 1}; break; // comparisons
                    }
                    charge(cost, t == Type::Double);
                } else {
                    acc_.luts += 100;
                    depth_sum_ += 1;
                }
                return;
            }
            case NodeKind::Unary: {
                const auto& u = static_cast<const Unary&>(e);
                walk_expr(*u.operand);
                acc_.luts += 50;
                return;
            }
            case NodeKind::Call: {
                const auto& c = static_cast<const Call&>(e);
                for (const auto& a : c.args) walk_expr(*a);
                if (const auto* b = sema::find_builtin(c.callee)) {
                    charge(sp_cost_of_builtin(c.callee),
                           b->result == Type::Double);
                }
                return;
            }
            case NodeKind::Index: {
                const auto& ix = static_cast<const Index&>(e);
                walk_expr(*ix.index);
                if (const auto* base = dyn_cast<Ident>(ix.base.get()))
                    arrays_.insert(base->name);
                acc_.luts += 300; // access mux / address compute
                depth_sum_ += 2;
                return;
            }
            default:
                return;
        }
    }

    const sema::TypeInfo& types_;
    bool force_sp_;
    FpgaResources acc_;
    double depth_sum_ = 0.0;
    std::unordered_set<std::string> arrays_;
};

} // namespace

double FpgaReport::utilisation() const {
    return std::max({lut_utilisation, dsp_utilisation, bram_utilisation});
}

FpgaReport FpgaModel::report(const Function& kernel,
                             const sema::TypeInfo& types, int unroll,
                             bool single_precision) const {
    ensure(unroll >= 1, "FpgaModel: unroll factor must be >= 1");
    ResourceWalker walker(types, single_precision);
    FpgaReport out;
    out.replica = walker.run(kernel);
    out.unroll = unroll;
    out.total_luts = spec_.base_luts + unroll * out.replica.luts;
    out.total_dsps = spec_.base_dsps + unroll * out.replica.dsps;
    out.total_bram_kb = spec_.base_bram_kb + unroll * out.replica.bram_kb;
    out.lut_utilisation = out.total_luts / spec_.luts;
    out.dsp_utilisation = out.total_dsps / spec_.dsps;
    out.bram_utilisation = out.total_bram_kb / spec_.bram_kb;
    out.overmapped = out.utilisation() > spec_.overmap_threshold;
    return out;
}

FpgaEstimate FpgaModel::estimate(const KernelShape& shape,
                                 const FpgaReport& report) const {
    FpgaEstimate out;
    out.report = report;
    if (report.overmapped) {
        out.kernel_seconds = out.total_seconds = 1e30;
        return out;
    }

    const double clock = spec_.clock_mhz * 1e6;
    const double iters = std::max(1.0, shape.parallel_iters);
    const double cpi = std::max(1.0, shape.sequential_cycles_per_iter);
    const double ii = report.replica.ii_is_one ? 1.0 : 8.0;
    const double cycles = (iters / report.unroll) * cpi * ii +
                          report.replica.pipeline_depth * shape.invocations;
    const double t_pipe = cycles / clock;

    // DDR bandwidth bound on streamed data.
    const double t_mem = shape.fpga_traffic() / (spec_.ddr_bw_gbs * 1e9);
    out.kernel_seconds = std::max(t_pipe, t_mem);

    const double transfer = shape.transfer_bytes();
    if (spec_.supports_usm) {
        // Zero-copy: accesses overlap with compute; the kernel streams from
        // host memory at USM bandwidth instead of paying a bulk copy.
        const double t_usm = transfer / (spec_.usm_bw_gbs * 1e9);
        out.transfer_seconds = 0.0;
        out.kernel_seconds = std::max(out.kernel_seconds, t_usm);
    } else {
        out.transfer_seconds = transfer / (spec_.pcie_bw_gbs * 1e9);
    }
    out.total_seconds = out.kernel_seconds + out.transfer_seconds;
    return out;
}

} // namespace psaflow::platform
