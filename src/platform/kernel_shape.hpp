// KernelShape: the device-independent summary of an offload candidate that
// every device model consumes. Produced by the performance layer (src/perf)
// from the dynamic characterisation plus static kernel structure; kept here
// so the platform models have no dependency on the analysis pipeline.
#pragma once

namespace psaflow::platform {

struct KernelShape {
    // Work at evaluation scale, per application run.
    double flops = 0.0;           ///< weighted floating-point operations
    double footprint_bytes = 0.0; ///< unique bytes the kernel touches
    double stream_bytes = 0.0;    ///< raw bytes moved by array accesses
                                  ///< (cache-less DDR traffic; >= footprint)
    double bytes_in = 0.0;        ///< host->device bytes per run
    double bytes_out = 0.0;       ///< device->host bytes per run

    /// Iterations of the parallel (outer) loop — the available concurrency.
    double parallel_iters = 1.0;

    /// Fraction of flops inside sequential dependence chains (inner loops
    /// with carried scalar state). High values starve GPUs of instruction-
    /// level parallelism; FPGAs pipeline through them.
    double dependent_fraction = 0.0;

    /// Estimated registers per GPU thread (live scalars + expression
    /// temporaries). Drives the occupancy model — e.g. the paper's Rush
    /// Larsen kernel needs 255 registers/thread and saturates a GTX 1080 Ti.
    int regs_per_thread = 32;

    /// True when arithmetic is (still) double precision; consumer GPUs pay
    /// a large FP64 throughput penalty, FPGAs a ~2x resource penalty.
    bool double_precision = true;

    /// Fraction of memory traffic eliminated by staging broadcast arrays in
    /// GPU shared memory (the "Introduce Shared Mem Buf" task).
    double shared_mem_reuse = 0.0;

    /// Fraction of flops coming from transcendental builtins (exp, pow,
    /// erfc, ...). GPUs execute these on special-function units at a lower
    /// rate than FMA-class work.
    double transcendental_fraction = 0.0;

    /// Bytes the generated GPU design actually moves: it stages every
    /// array parameter both ways (hipMemcpy in and out), unlike FPGA USM
    /// designs which stream exactly what is accessed. Defaults to
    /// transfer_bytes() when never set.
    double gpu_transfer_bytes = -1.0;

    [[nodiscard]] double gpu_transfer() const {
        return gpu_transfer_bytes >= 0.0 ? gpu_transfer_bytes
                                         : transfer_bytes();
    }

    /// Kernel launches per application run (e.g. time steps).
    double invocations = 1.0;

    /// FPGA pipeline: cycles one replica spends per outer-loop iteration —
    /// 1 for a flat (or fully unrolled) body, the inner trip count when a
    /// sequential inner loop remains.
    double sequential_cycles_per_iter = 1.0;

    /// FPGA DDR traffic after on-chip buffering of small arrays; computed
    /// by the perf layer from per-buffer footprints. Defaults to
    /// stream_bytes when never set.
    double fpga_stream_bytes = -1.0;

    [[nodiscard]] double fpga_traffic() const {
        return fpga_stream_bytes >= 0.0 ? fpga_stream_bytes : stream_bytes;
    }

    [[nodiscard]] double flops_per_iter() const {
        return parallel_iters > 0.0 ? flops / parallel_iters : flops;
    }
    [[nodiscard]] double transfer_bytes() const {
        return bytes_in + bytes_out;
    }
};

} // namespace psaflow::platform
