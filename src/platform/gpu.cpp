#include "platform/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace psaflow::platform {

double GpuModel::occupancy(int block_size, int regs_per_thread,
                           double smem_kb) const {
    ensure(block_size >= 1, "GpuModel: block size must be >= 1");
    // Register allocation granularity: warps of 32 threads.
    const int warps_per_block = (block_size + 31) / 32;
    const int threads_rounded = warps_per_block * 32;

    int blocks = spec_.max_blocks_per_sm;
    blocks = std::min(blocks, spec_.max_threads_per_sm / threads_rounded);

    const int regs_per_block = std::max(1, regs_per_thread) * threads_rounded;
    blocks = std::min(blocks, spec_.regs_per_sm / std::max(1, regs_per_block));

    if (smem_kb > 0.0) {
        blocks = std::min(
            blocks, static_cast<int>(spec_.smem_per_sm_kb / smem_kb));
    }

    if (blocks <= 0) return 0.0;
    const int max_warps = spec_.max_threads_per_sm / 32;
    const int active_warps = blocks * warps_per_block;
    return std::min(1.0, static_cast<double>(active_warps) /
                             static_cast<double>(max_warps));
}

GpuEstimate GpuModel::estimate(const KernelShape& shape,
                               const LaunchConfig& config) const {
    GpuEstimate out;
    if (shape.regs_per_thread > spec_.max_regs_per_thread) {
        // The compiler would spill; model spilling as a throughput hit
        // rather than rejecting, but flag it.
        out.config_valid = false;
    }
    const int regs =
        std::min(shape.regs_per_thread, spec_.max_regs_per_thread);
    out.occupancy =
        occupancy(config.block_size, regs, config.smem_per_block_kb);
    if (out.occupancy <= 0.0) {
        out.kernel_seconds = out.total_seconds = 1e30; // unlaunchable config
        return out;
    }

    // --- compute time --------------------------------------------------
    // FP32 work sustains a fraction of theoretical FMA peak; FP64 runs on
    // the (few) dedicated double units at the raw fp64 rate.
    const double raw_peak = static_cast<double>(spec_.sms) *
                            spec_.cores_per_sm * spec_.clock_ghz * 1e9 * 2.0;
    const double peak = shape.double_precision
                            ? raw_peak * spec_.fp64_ratio
                            : raw_peak * 0.5 * spec_.compute_efficiency;

    // Latency hiding: throughput ramps with occupancy until saturation.
    const double occ_factor =
        std::min(1.0, out.occupancy / spec_.saturation_occupancy);

    // Dependent chains keep ILP low: the dependent fraction of the work
    // runs at a fixed fraction of peak.
    const double dep = std::clamp(shape.dependent_fraction, 0.0, 1.0);
    const double ilp_factor =
        (1.0 - dep) + dep * spec_.dependent_chain_efficiency;

    // Transcendentals run on special-function units at a lower rate.
    const double tf =
        std::clamp(shape.transcendental_fraction, 0.0, 1.0);
    const double sfu_factor = 1.0 / ((1.0 - tf) + tf * spec_.sfu_cost);

    // Two compute regimes, combined additively (a smooth max):
    //  - throughput: enough resident warps to saturate the SMs;
    //  - latency: each wave of threads pays its dependent-chain latency,
    //    which dominates for small grids (the paper's "neither GPU is
    //    fully saturated" Bezier case) and is device-similar.
    const double resident_threads = std::max(
        32.0, out.occupancy * spec_.max_threads_per_sm * spec_.sms);
    const double waves =
        std::ceil(std::max(1.0, shape.parallel_iters) / resident_threads);
    const double per_thread_ipc =
        shape.double_precision ? spec_.fp64_thread_ipc : spec_.fp32_thread_ipc;
    const double t_latency = shape.flops_per_iter() * waves /
                             (spec_.clock_ghz * 1e9 * per_thread_ipc);

    const double throughput = peak * occ_factor * ilp_factor * sfu_factor;
    const double t_compute =
        t_latency + shape.flops / std::max(1.0, throughput);

    // --- memory time -----------------------------------------------------
    const double traffic =
        shape.footprint_bytes * (1.0 - shape.shared_mem_reuse);
    const double t_memory = traffic / (spec_.mem_bw_gbs * 1e9);

    out.kernel_seconds = std::max(t_compute, t_memory) +
                         shape.invocations * spec_.launch_overhead_us * 1e-6;

    // --- transfers ---------------------------------------------------------
    const double bw = (config.pinned_host_memory ? spec_.pcie_pinned_bw_gbs
                                                 : spec_.pcie_bw_gbs) *
                      1e9;
    out.transfer_seconds = shape.gpu_transfer() / bw;

    out.total_seconds = out.kernel_seconds + out.transfer_seconds;
    return out;
}

} // namespace psaflow::platform
