#include "meta/instrument.hpp"

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace psaflow::meta {

using namespace psaflow::ast;

void insert_before(const ParentMap& parents, const Stmt& anchor,
                   StmtPtr stmt) {
    auto slot = parents.slot_of(anchor);
    slot.block->stmts.insert(
        slot.block->stmts.begin() + static_cast<std::ptrdiff_t>(slot.index),
        std::move(stmt));
}

void insert_after(const ParentMap& parents, const Stmt& anchor, StmtPtr stmt) {
    auto slot = parents.slot_of(anchor);
    slot.block->stmts.insert(
        slot.block->stmts.begin() + static_cast<std::ptrdiff_t>(slot.index) + 1,
        std::move(stmt));
}

StmtPtr replace_stmt(const ParentMap& parents, const Stmt& anchor,
                     StmtPtr replacement) {
    auto slot = parents.slot_of(anchor);
    StmtPtr old = std::move(slot.block->stmts[slot.index]);
    slot.block->stmts[slot.index] = std::move(replacement);
    return old;
}

StmtPtr detach_stmt(const ParentMap& parents, const Stmt& anchor) {
    auto slot = parents.slot_of(anchor);
    StmtPtr old = std::move(slot.block->stmts[slot.index]);
    slot.block->stmts.erase(slot.block->stmts.begin() +
                            static_cast<std::ptrdiff_t>(slot.index));
    return old;
}

void add_pragma(Stmt& stmt, std::string text) {
    stmt.pragmas.push_back(std::move(text));
}

int remove_pragmas(Stmt& stmt, const std::string& prefix) {
    const auto before = stmt.pragmas.size();
    std::erase_if(stmt.pragmas, [&](const std::string& p) {
        return starts_with(p, prefix);
    });
    return static_cast<int>(before - stmt.pragmas.size());
}

std::optional<std::string> find_pragma(const Stmt& stmt,
                                       const std::string& prefix) {
    for (const auto& p : stmt.pragmas) {
        if (starts_with(p, prefix)) return p;
    }
    return std::nullopt;
}

} // namespace psaflow::meta
