#include "meta/query.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/error.hpp"

namespace psaflow::meta {

using namespace psaflow::ast;

std::vector<For*> for_loops(Node& root,
                            const std::function<bool(const For&)>& pred) {
    return collect<For>(root, pred);
}

std::vector<For*> outermost_for_loops(Node& root) {
    std::vector<For*> out;
    // Walk but do not descend into loop bodies: whatever we reach first is
    // outermost relative to `root`.
    walk(root, [&](Node& n) {
        if (auto* loop = dyn_cast<For>(&n)) {
            out.push_back(loop);
            return false;
        }
        return true;
    });
    return out;
}

std::vector<For*> inner_for_loops(For& loop) {
    std::vector<For*> out;
    walk(*loop.body, [&](Node& n) {
        if (auto* inner = dyn_cast<For>(&n)) out.push_back(inner);
        return true;
    });
    return out;
}

int loop_nest_depth(const For& loop) {
    int deepest = 0;
    walk(static_cast<const Node&>(*loop.body), [&](const Node& n) {
        if (const auto* inner = dyn_cast<For>(&n)) {
            deepest = std::max(deepest, loop_nest_depth(*inner));
            return false; // inner loop handled by the recursive call
        }
        return true;
    });
    return deepest + 1;
}

std::optional<long long> fold_int_constant(const Expr& expr) {
    switch (expr.kind()) {
        case NodeKind::IntLit:
            return static_cast<const IntLit&>(expr).value;
        case NodeKind::Unary: {
            const auto& u = static_cast<const Unary&>(expr);
            if (u.op != UnaryOp::Neg) return std::nullopt;
            auto v = fold_int_constant(*u.operand);
            if (!v) return std::nullopt;
            return -*v;
        }
        case NodeKind::Binary: {
            const auto& b = static_cast<const Binary&>(expr);
            auto l = fold_int_constant(*b.lhs);
            auto r = fold_int_constant(*b.rhs);
            if (!l || !r) return std::nullopt;
            switch (b.op) {
                case BinaryOp::Add: return *l + *r;
                case BinaryOp::Sub: return *l - *r;
                case BinaryOp::Mul: return *l * *r;
                case BinaryOp::Div:
                    if (*r == 0) return std::nullopt;
                    return *l / *r;
                default: return std::nullopt;
            }
        }
        default:
            return std::nullopt;
    }
}

bool has_fixed_bounds(const For& loop) {
    return fold_int_constant(*loop.init).has_value() &&
           fold_int_constant(*loop.limit).has_value() &&
           fold_int_constant(*loop.step).has_value();
}

long long constant_trip_count(const For& loop) {
    auto init = fold_int_constant(*loop.init);
    auto limit = fold_int_constant(*loop.limit);
    auto step = fold_int_constant(*loop.step);
    ensure(init && limit && step,
           "constant_trip_count: loop bounds are not compile-time constants");
    ensure(*step > 0, "constant_trip_count: non-positive step");
    if (*limit <= *init) return 0;
    return (*limit - *init + *step - 1) / *step;
}

std::vector<std::string> declared_names(Node& node) {
    std::vector<std::string> out;
    walk(node, [&](Node& n) {
        if (auto* d = dyn_cast<VarDecl>(&n)) out.push_back(d->name);
        if (auto* f = dyn_cast<For>(&n)) out.push_back(f->var);
        return true;
    });
    return out;
}

std::vector<std::string> free_variables(Node& node) {
    std::unordered_set<std::string> declared;
    for (const auto& name : declared_names(node)) declared.insert(name);

    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    walk(node, [&](Node& n) {
        if (auto* id = dyn_cast<Ident>(&n)) {
            if (declared.count(id->name) == 0 && seen.insert(id->name).second)
                out.push_back(id->name);
        }
        return true;
    });
    return out;
}

bool writes_variable(Node& node, const std::string& name) {
    bool found = false;
    walk(node, [&](Node& n) {
        if (found) return false;
        if (auto* a = dyn_cast<Assign>(&n)) {
            const Expr* target = a->target.get();
            if (const auto* id = dyn_cast<Ident>(target)) {
                if (id->name == name) found = true;
            } else if (const auto* ix = dyn_cast<Index>(target)) {
                if (const auto* base = dyn_cast<Ident>(ix->base.get());
                    base != nullptr && base->name == name)
                    found = true;
            }
        }
        return !found;
    });
    return found;
}

std::vector<Call*> calls_to(Node& root, const std::string& callee) {
    return collect<Call>(root, [&](const Call& c) {
        return callee.empty() || c.callee == callee;
    });
}

} // namespace psaflow::meta
