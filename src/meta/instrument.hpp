// The instrument mechanism of the meta-programming substrate (paper Fig. 2):
// structural edits on the design's AST — insert a statement or pragma before
// a loop, replace a loop with a call, wrap code in timers. Edits invalidate
// any ParentMap/TypeInfo built earlier; tasks rebuild them afterwards.
#pragma once

#include <optional>
#include <string>

#include "ast/nodes.hpp"
#include "ast/walk.hpp"

namespace psaflow::meta {

/// Insert `stmt` immediately before `anchor` in its enclosing block.
void insert_before(const ast::ParentMap& parents, const ast::Stmt& anchor,
                   ast::StmtPtr stmt);

/// Insert `stmt` immediately after `anchor` in its enclosing block.
void insert_after(const ast::ParentMap& parents, const ast::Stmt& anchor,
                  ast::StmtPtr stmt);

/// Replace `anchor` with `replacement`; returns the detached original so the
/// caller can move it elsewhere (hotspot extraction moves the loop into the
/// new kernel function).
[[nodiscard]] ast::StmtPtr replace_stmt(const ast::ParentMap& parents,
                                        const ast::Stmt& anchor,
                                        ast::StmtPtr replacement);

/// Remove `anchor` from its block and return it.
[[nodiscard]] ast::StmtPtr detach_stmt(const ast::ParentMap& parents,
                                       const ast::Stmt& anchor);

/// Attach a pragma line to `stmt` (printed as `#pragma <text>` directly
/// above it) — the paper's `instrument(before, loop, #pragma ...)`.
void add_pragma(ast::Stmt& stmt, std::string text);

/// Remove all pragmas whose text starts with `prefix`; returns how many were
/// removed.
int remove_pragmas(ast::Stmt& stmt, const std::string& prefix);

/// First pragma on `stmt` starting with `prefix`, if any.
[[nodiscard]] std::optional<std::string> find_pragma(const ast::Stmt& stmt,
                                                     const std::string& prefix);

} // namespace psaflow::meta
