// The query mechanism of the meta-programming substrate (paper Fig. 2).
//
// Artisan meta-programs locate program elements with AST queries such as
//     query(forall loop, fn in ast :
//           loop.isForStmt and fn.name == kernel_name
//           and fn.encloses(loop) and loop.is_outermost)
// This header provides the same vocabulary over the HLC AST: typed node
// collection with predicates, plus the loop-structure helpers every
// design-flow task in the repository uses.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ast/nodes.hpp"
#include "ast/walk.hpp"

namespace psaflow::meta {

/// All `for` loops under `root`, pre-order (outer loops before their inner
/// loops), optionally filtered.
[[nodiscard]] std::vector<ast::For*> for_loops(
    ast::Node& root,
    const std::function<bool(const ast::For&)>& pred = [](const ast::For&) {
        return true;
    });

/// Loops under `root` not enclosed by any other loop *within root* — the
/// "outermost for-loops" of Fig. 2's unroll meta-program.
[[nodiscard]] std::vector<ast::For*> outermost_for_loops(ast::Node& root);

/// Loops strictly inside `loop`.
[[nodiscard]] std::vector<ast::For*> inner_for_loops(ast::For& loop);

/// Nesting depth of the loop tree rooted at `loop` (1 = no inner loops).
[[nodiscard]] int loop_nest_depth(const ast::For& loop);

/// True when the loop's trip count is a compile-time constant, i.e. init,
/// limit and step are integer literals (after constant folding of +,-,*).
/// Fixed-bound loops are the candidates for full unrolling on FPGAs.
[[nodiscard]] bool has_fixed_bounds(const ast::For& loop);

/// Compile-time trip count for a fixed-bound loop; throws if not fixed.
[[nodiscard]] long long constant_trip_count(const ast::For& loop);

/// Fold an integer constant expression (+, -, *, literals); nullopt if the
/// expression is not constant.
[[nodiscard]] std::optional<long long> fold_int_constant(const ast::Expr& expr);

/// Every Ident name that appears free in `node` (reads and writes), i.e.
/// used but not declared within `node`. Array names used as call arguments
/// or subscript bases are included. Induction variables of loops inside
/// `node` are *not* free.
[[nodiscard]] std::vector<std::string> free_variables(ast::Node& node);

/// Names declared (VarDecl or loop induction) inside `node`.
[[nodiscard]] std::vector<std::string> declared_names(ast::Node& node);

/// True if any statement under `node` writes variable `name` (assignment to
/// the scalar or to an element of the array of that name).
[[nodiscard]] bool writes_variable(ast::Node& node, const std::string& name);

/// All Call expressions under `root`, optionally filtered by callee name.
[[nodiscard]] std::vector<ast::Call*> calls_to(ast::Node& root,
                                               const std::string& callee = "");

} // namespace psaflow::meta
