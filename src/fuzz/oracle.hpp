// Differential oracles for the fuzzing harness.
//
// Each oracle checks one semantic contract of the toolchain over an
// arbitrary well-typed HLC program:
//
//   roundtrip   print -> parse -> print reaches a fixpoint (the printer is
//               source-faithful and the parser loses nothing)
//   sema        the program type-checks (generator well-typedness)
//   baseline    the program interprets crash-free under fuzz_workload
//   interp:vm   (with check_vm) the bytecode VM and the tree walker produce
//               bit-identical results, buffer contents, error strings and
//               serialized execution profiles on the same workload
//   transform:* every transform in src/transform/ either rejects its
//               precondition with psaflow::Error (counted as a skip) or
//               produces a module that still type-checks, still round-trips
//               and is interpreter-observably equivalent to the original
//               (bitwise for structural transforms; within tolerance for
//               accumulation scalarisation and single-precision demotion,
//               which legitimately re-round)
//   codegen:*   all three emitters produce non-empty designs without
//               throwing on a kernel that satisfies their preconditions
//   flow:*      the full PSA flow engine at jobs=1 and jobs=N produces
//               byte-identical results (designs, logs and predictions), or
//               fails with the identical error; with check_cache, a cold
//               run against an empty content-addressed store and a warm
//               run served from it must also both match exactly
//
// A reported failure means a toolchain bug (or an unsound generated
// program, which is a generator bug): there are no known false positives.
#pragma once

#include <string>
#include <vector>

#include "fuzz/generator.hpp"

namespace psaflow::fuzz {

struct OracleOptions {
    /// Base problem size for fuzz_workload.
    int problem_size = 24;

    /// Individual oracle families; disabling expensive families speeds up
    /// shrinking when the failure is known to live elsewhere.
    bool check_roundtrip = true;
    bool check_transforms = true;
    bool check_codegen = true;
    bool check_flow = true;

    /// Tree-vs-VM engine differential ("interp:vm"): run the program under
    /// both interpreter engines with profiling focused on the function
    /// holding the first outer loop, and demand bit-exact equality of the
    /// result value, every buffer, the serialized profile payload and (when
    /// both runs raise) the error string. Off by default — it adds two
    /// profiled interpreter passes per program.
    bool check_vm = false;

    /// Cold-vs-warm persistent-cache oracle ("flow:cache"): run the flow
    /// once against an empty content-addressed store, then again with only
    /// the disk entries carried over; all three results (no cache, cold,
    /// warm) must be byte-identical. Off by default — it triples the flow
    /// oracle's work and touches the filesystem.
    bool check_cache = false;

    /// Store root for the cache oracle; empty uses a fresh directory under
    /// the system temp path, removed afterwards.
    std::string cache_dir;

    /// Worker count compared against jobs=1 in the flow oracle.
    int flow_jobs = 3;
};

struct OracleFailure {
    std::string oracle; ///< e.g. "roundtrip", "transform:unroll2", "flow:jobs"
    std::string detail; ///< human-readable mismatch description
};

struct OracleOutcome {
    std::vector<OracleFailure> failures;
    int oracles_run = 0;       ///< oracles that executed to a verdict
    int transforms_applied = 0;
    int transforms_skipped = 0; ///< precondition rejections (not failures)

    [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run every enabled oracle over `source`. Never throws: malformed input is
/// reported as a "parse" failure, unexpected exceptions as "<oracle>:crash".
[[nodiscard]] OracleOutcome run_oracles(const std::string& source,
                                        const OracleOptions& options = {});

} // namespace psaflow::fuzz
