// Manifest fuzzing: differential checking of the flow-manifest surface.
//
// Each seed draws a random *valid* flow — a subset of the standard flow's
// target families with random optional tasks, nested device branches and a
// random strategy per branch point — and builds it twice: once
// programmatically (DesignFlow/BranchPoint/PsaStrategy, the ground truth)
// and once as a manifest document (flow/manifest.hpp). Two properties must
// hold:
//
//   1. Export round-trip: when the document is expressed inline (no
//      "branches" references), json::dump of the generated document equals
//      json::dump(flow::to_manifest(programmatic flow)) byte for byte.
//   2. Execution identity: the lowered manifest flow and the programmatic
//      flow produce byte-identical FlowResults (designs, sources, logs,
//      errors) on a fixed compute-bound program.
//
// Every generated FPGA path nests the device branch whose unroll DSE
// produces the synthesis report the leaf finaliser requires, so generated
// flows are always runnable — validity is the generator's contract, and
// any rejection by the manifest loader is itself a failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace psaflow::fuzz {

/// Run both checks for `seed`. Returns a failure description, nullopt on
/// success. Deterministic: the same seed always draws the same flow.
[[nodiscard]] std::optional<std::string> check_manifest(std::uint64_t seed);

} // namespace psaflow::fuzz
