#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "analysis/profile_cache.hpp"
#include "ast/builder.hpp"
#include "ast/printer.hpp"
#include "interp/value.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace psaflow::fuzz {

namespace {

using namespace ast;
namespace b = ast::build;

/// Nice decimal spellings the printer re-emits verbatim; values chosen to be
/// exactly representable so float/double rounding is bit-stable.
struct LitSpelling {
    double value;
    const char* spelling;
};
constexpr LitSpelling kFloatLits[] = {
    {0.5, "0.5"},   {1.5, "1.5"},     {0.25, "0.25"}, {2.0, "2.0"},
    {0.75, "0.75"}, {1.0, "1.0"},     {3.0, "3.0"},   {0.125, "0.125"},
    {4.0, "4.0"},   {1.75, "1.75"},   {2.5, "2.5"},   {0.0625, "0.0625"},
};

struct ScalarVar {
    std::string name;
    Type type;
};

/// A buffer the current function may load from / store to. Parameter
/// buffers are indexable over [0, n); local arrays over [0, size).
struct BufferVar {
    std::string name;
    Type elem;
    bool is_local = false;
    long long local_size = 0; ///< constant size when is_local
};

class Generator {
public:
    Generator(std::uint64_t seed, const GenOptions& opt)
        : rng_(seed), opt_(opt) {}

    ModulePtr run() {
        decide_signature();
        std::vector<FunctionPtr> fns;
        if (has_helper_) fns.push_back(gen_helper());
        const int kernels =
            1 + static_cast<int>(rng_.next_below(
                    static_cast<std::uint64_t>(opt_.max_kernels)));
        for (int k = 0; k < kernels; ++k)
            fns.push_back(gen_kernel("fz_k" + std::to_string(k), k == 0));
        fns.push_back(gen_entry(kernels));
        return b::module("fuzz", std::move(fns));
    }

private:
    // ---------------------------------------------------------- helpers ---

    std::uint64_t below(std::uint64_t n) { return rng_.next_below(n); }
    bool chance(int percent) {
        return below(100) < static_cast<std::uint64_t>(percent);
    }

    ExprPtr lit() {
        const auto& l = kFloatLits[below(std::size(kFloatLits))];
        ExprPtr e = b::float_lit(l.value, l.spelling);
        if (chance(25)) e = b::unary(UnaryOp::Neg, std::move(e));
        return e;
    }

    std::string fresh(const char* stem) {
        return std::string(stem) + std::to_string(name_counter_++);
    }

    // ------------------------------------------------------- signatures ---

    void decide_signature() {
        const int nbufs = 2 + static_cast<int>(below(3)); // 2..4 buffers
        for (int i = 0; i < nbufs; ++i) {
            params_.push_back(BufferVar{
                "b" + std::to_string(i),
                chance(65) ? Type::Double : Type::Float});
        }
        has_scalar_param_ = chance(40);
        has_helper_ = chance(30);
    }

    std::vector<ParamPtr> signature_params() const {
        std::vector<ParamPtr> ps;
        ps.push_back(b::param({Type::Int, false}, "n"));
        for (const auto& buf : params_)
            ps.push_back(b::param({buf.elem, true}, buf.name));
        if (has_scalar_param_)
            ps.push_back(b::param({Type::Double, false}, "x0"));
        return ps;
    }

    /// Reset per-function scope to the shared signature.
    void enter_function() {
        scalars_.clear();
        idx_vars_.clear();
        bufs_.clear();
        scalars_.push_back({"n", Type::Int});
        if (has_scalar_param_) scalars_.push_back({"x0", Type::Double});
        for (const auto& buf : params_) bufs_.push_back(buf);
    }

    // ----------------------------------------------------- expressions ---

    /// Int expression provably in [0, n): built from induction variables
    /// (each themselves in [0, n)) and `% n` reductions of non-negative
    /// combinations. Requires at least one index variable in scope.
    ExprPtr index_expr() {
        const auto& v = idx_vars_[below(idx_vars_.size())];
        switch (below(5)) {
            case 0:
            case 1: return b::ident(v);
            case 2: { // (v + c) % n
                auto sum = b::add(b::ident(v),
                                  b::int_lit(1 + static_cast<long long>(
                                                     below(4))));
                return b::binary(BinaryOp::Mod, std::move(sum), b::ident("n"));
            }
            case 3: { // (v * a + c) % n
                auto expr = b::add(
                    b::mul(b::ident(v),
                           b::int_lit(2 + static_cast<long long>(below(2)))),
                    b::int_lit(static_cast<long long>(below(4))));
                return b::binary(BinaryOp::Mod, std::move(expr),
                                 b::ident("n"));
            }
            default: { // (v + w) % n with a second index variable
                const auto& w = idx_vars_[below(idx_vars_.size())];
                auto sum = b::add(b::ident(v), b::ident(w));
                return b::binary(BinaryOp::Mod, std::move(sum), b::ident("n"));
            }
        }
    }

    /// Subscript for a specific buffer: [0, n) for parameter buffers,
    /// `idx % size` for constant-sized local arrays.
    ExprPtr subscript_for(const BufferVar& buf) {
        if (!buf.is_local) return index_expr();
        const auto& v = idx_vars_[below(idx_vars_.size())];
        return b::binary(BinaryOp::Mod, b::ident(v),
                         b::int_lit(buf.local_size));
    }

    /// A numeric atom: literal, scalar variable or buffer load.
    ExprPtr atom() {
        const std::uint64_t pick = below(10);
        if (pick < 3 || (bufs_.empty() && scalars_.empty())) return lit();
        if (pick < 6 && !scalars_.empty()) {
            return b::ident(scalars_[below(scalars_.size())].name);
        }
        if (!bufs_.empty() && !idx_vars_.empty()) {
            const auto& buf = bufs_[below(bufs_.size())];
            return b::index(buf.name, subscript_for(buf));
        }
        return lit();
    }

    /// Numeric expression of bounded depth. Builtin calls are wrapped so
    /// their domain preconditions hold for every argument value; exp and
    /// pow arguments are clamped so results stay finite in float.
    ExprPtr num_expr(int depth) {
        if (depth <= 0 || chance(30)) return atom();
        switch (below(8)) {
            case 0:
                return b::add(num_expr(depth - 1), num_expr(depth - 1));
            case 1:
                return b::sub(num_expr(depth - 1), num_expr(depth - 1));
            case 2:
                return b::mul(num_expr(depth - 1), num_expr(depth - 1));
            case 3: // safe division: denominator >= 1.5
                return b::binary(
                    BinaryOp::Div, num_expr(depth - 1),
                    b::add(b::float_lit(1.5, "1.5"),
                           b::call("fabs", vec(num_expr(depth - 1)))));
            case 4: { // bounded one-argument builtins
                static const char* kSafe[] = {"sin",  "cos",   "tanh",
                                              "erf",  "erfc",  "fabs",
                                              "floor"};
                return b::call(kSafe[below(std::size(kSafe))],
                               vec(num_expr(depth - 1)));
            }
            case 5: { // domain-guarded builtins
                switch (below(4)) {
                    case 0: // sqrt(fabs(e))
                        return b::call(
                            "sqrt",
                            vec(b::call("fabs", vec(num_expr(depth - 1)))));
                    case 1: // log(fabs(e) + 1.0)
                        return b::call(
                            "log",
                            vec(b::add(
                                b::call("fabs", vec(num_expr(depth - 1))),
                                b::float_lit(1.0, "1.0"))));
                    case 2: // exp(fmin(fabs(e), 8.0))
                        return b::call(
                            "exp",
                            vec(b::call(
                                "fmin",
                                vec2(b::call("fabs",
                                             vec(num_expr(depth - 1))),
                                     b::float_lit(8.0, "8.0")))));
                    default: // pow(fmin(fabs(e), 4.0) + 1.0, 2.0)
                        return b::call(
                            "pow",
                            vec2(b::add(b::call(
                                            "fmin",
                                            vec2(b::call("fabs",
                                                         vec(num_expr(
                                                             depth - 1))),
                                                 b::float_lit(4.0, "4.0"))),
                                        b::float_lit(1.0, "1.0")),
                                 b::float_lit(2.0, "2.0")));
                }
            }
            case 6: // two-argument min/max
                return b::call(chance(50) ? "fmin" : "fmax",
                               vec2(num_expr(depth - 1),
                                    num_expr(depth - 1)));
            default:
                if (has_helper_ && in_kernel_) {
                    return b::call("fz_h0", vec2(num_expr(depth - 1),
                                                 num_expr(depth - 1)));
                }
                return b::add(num_expr(depth - 1), num_expr(depth - 1));
        }
    }

    /// Boolean expression for if/while conditions.
    ExprPtr bool_expr(int depth) {
        static const BinaryOp kCmps[] = {BinaryOp::Lt, BinaryOp::Le,
                                         BinaryOp::Gt, BinaryOp::Ge,
                                         BinaryOp::Eq, BinaryOp::Ne};
        auto cmp = [&] {
            return b::binary(kCmps[below(std::size(kCmps))], num_expr(1),
                             num_expr(1));
        };
        if (depth <= 0 || chance(60)) return cmp();
        switch (below(3)) {
            case 0:
                return b::binary(BinaryOp::And, cmp(), bool_expr(depth - 1));
            case 1:
                return b::binary(BinaryOp::Or, cmp(), bool_expr(depth - 1));
            default: return b::unary(UnaryOp::Not, cmp());
        }
    }

    static std::vector<ExprPtr> vec(ExprPtr a) {
        std::vector<ExprPtr> v;
        v.push_back(std::move(a));
        return v;
    }
    static std::vector<ExprPtr> vec2(ExprPtr a, ExprPtr c) {
        std::vector<ExprPtr> v;
        v.push_back(std::move(a));
        v.push_back(std::move(c));
        return v;
    }

    // ------------------------------------------------------- statements ---

    struct ScopeMark {
        std::size_t scalars, idx_vars, bufs;
    };
    ScopeMark mark() const {
        return {scalars_.size(), idx_vars_.size(), bufs_.size()};
    }
    void release(const ScopeMark& m) {
        scalars_.resize(m.scalars);
        idx_vars_.resize(m.idx_vars);
        bufs_.resize(m.bufs);
    }

    /// Store into a random writable buffer. `plain_index` forces the
    /// subscript to be the innermost index variable itself, which keeps the
    /// enclosing loop recognisably parallel for the dependence analysis.
    StmtPtr buffer_store(bool plain_index) {
        const auto& buf = bufs_[below(bufs_.size())];
        ExprPtr idx = plain_index && !buf.is_local
                          ? b::ident(idx_vars_.back())
                          : subscript_for(buf);
        static const AssignOp kOps[] = {AssignOp::Set, AssignOp::Set,
                                        AssignOp::Add, AssignOp::Sub};
        return b::assign(b::index(buf.name, std::move(idx)),
                         num_expr(opt_.max_expr_depth),
                         kOps[below(std::size(kOps))]);
    }

    /// `double t = 0.0; for (...) { t += e; } buf[i] op= t;` — the scalar
    /// reduction idiom of the benchmark kernels.
    void reduction(std::vector<StmtPtr>& out, int loop_depth) {
        const std::string acc = fresh("t");
        out.push_back(b::var_decl(Type::Double, acc,
                                  b::float_lit(0.0, "0.0")));
        const ScopeMark m = mark();
        const std::string iv = fresh("i");
        idx_vars_.push_back(iv);
        scalars_.push_back({iv, Type::Int});

        std::vector<StmtPtr> body;
        body.push_back(b::assign(b::ident(acc),
                                 num_expr(opt_.max_expr_depth - 1),
                                 chance(80) ? AssignOp::Add : AssignOp::Sub));
        if (chance(30) && loop_depth + 1 < opt_.max_loop_depth) {
            // occasionally nest the reduction one level deeper
            body.push_back(statement(loop_depth + 1, false));
        }
        out.push_back(b::for_loop(
            iv, b::int_lit(0), b::ident("n"), b::block(std::move(body)),
            b::int_lit(1 + static_cast<long long>(below(2)))));
        release(m);
        scalars_.push_back({acc, Type::Double});

        if (!idx_vars_.empty()) {
            const auto& buf = bufs_[below(bufs_.size())];
            out.push_back(b::assign(b::index(buf.name, subscript_for(buf)),
                                    b::ident(acc),
                                    chance(60) ? AssignOp::Set
                                               : AssignOp::Add));
        }
    }

    /// Bounded while loop: `int w = 0; while (w < C) { ...; w = w + 1; }`.
    void bounded_while(std::vector<StmtPtr>& out) {
        const std::string w = fresh("w");
        const long long bound = 2 + static_cast<long long>(below(3));
        out.push_back(b::var_decl(Type::Int, w, b::int_lit(0)));
        const ScopeMark m = mark();
        scalars_.push_back({w, Type::Int});
        std::vector<StmtPtr> body;
        if (!idx_vars_.empty() && !bufs_.empty())
            body.push_back(buffer_store(false));
        body.push_back(b::assign(b::ident(w),
                                 b::add(b::ident(w), b::int_lit(1))));
        out.push_back(b::while_loop(b::lt(b::ident(w), b::int_lit(bound)),
                                    b::block(std::move(body))));
        release(m);
    }

    /// Local fixed-size array plus a fixed-bound fill loop (a full-unroll
    /// candidate), after which the array joins the store/load pool.
    void local_array(std::vector<StmtPtr>& out) {
        const std::string name = fresh("la");
        const long long size = chance(50) ? 4 : 8;
        const Type elem = chance(70) ? Type::Double : Type::Float;
        out.push_back(b::array_decl(elem, name, b::int_lit(size)));
        const std::string iv = fresh("i");
        const ScopeMark m = mark();
        idx_vars_.push_back(iv);
        scalars_.push_back({iv, Type::Int});
        std::vector<StmtPtr> body;
        body.push_back(b::assign(b::index(name, b::ident(iv)),
                                 num_expr(opt_.max_expr_depth - 1)));
        release(m);
        out.push_back(b::for_loop(iv, b::int_lit(0), b::int_lit(size),
                                  b::block(std::move(body))));
        bufs_.push_back(BufferVar{name, elem, true, size});
    }

    /// One statement for a loop body. `parallel_bias` biases toward stores
    /// through the innermost plain index (keeps the loop parallelisable).
    StmtPtr statement(int loop_depth, bool parallel_bias) {
        std::vector<StmtPtr> grouped;
        switch (below(10)) {
            case 0: { // scalar declaration
                const std::string t = fresh("t");
                const Type ty = chance(70) ? Type::Double : Type::Float;
                auto d = b::var_decl(ty, t, num_expr(opt_.max_expr_depth));
                scalars_.push_back({t, ty});
                return d;
            }
            case 1: { // int index-local declaration (stays in [0, n))
                const std::string t = fresh("q");
                auto d = b::var_decl(Type::Int, t, index_expr());
                idx_vars_.push_back(t);
                scalars_.push_back({t, Type::Int});
                return d;
            }
            case 2: { // if / if-else
                const ScopeMark m = mark();
                auto then_body = small_block(loop_depth);
                release(m);
                BlockPtr else_body;
                if (chance(40)) {
                    else_body = small_block(loop_depth);
                    release(m);
                }
                return b::if_stmt(bool_expr(1), std::move(then_body),
                                  std::move(else_body));
            }
            case 3: { // bounded while
                bounded_while(grouped);
                return group(std::move(grouped));
            }
            case 4: { // scalar reduction over an inner loop
                if (loop_depth < opt_.max_loop_depth) {
                    reduction(grouped, loop_depth);
                    return group(std::move(grouped));
                }
                return buffer_store(parallel_bias);
            }
            case 5: { // nested loop over n or a fixed bound
                if (loop_depth < opt_.max_loop_depth) {
                    return counted_loop(loop_depth, /*fixed=*/chance(40),
                                        /*parallel_bias=*/false);
                }
                return buffer_store(parallel_bias);
            }
            case 6: { // local array + fill loop
                if (loop_depth < opt_.max_loop_depth) {
                    local_array(grouped);
                    return group(std::move(grouped));
                }
                return buffer_store(parallel_bias);
            }
            case 7: { // array accumulation at a loop-invariant index
                const auto& buf = bufs_[below(bufs_.size())];
                const long long c = static_cast<long long>(below(4));
                return b::assign(
                    b::index(buf.name,
                             b::int_lit(buf.is_local ? c % buf.local_size
                                                     : c)),
                    num_expr(opt_.max_expr_depth - 1),
                    chance(75) ? AssignOp::Add : AssignOp::Sub);
            }
            default:
                return buffer_store(parallel_bias);
        }
    }

    /// Wrap a multi-statement idiom in a Block so callers get one StmtPtr.
    static StmtPtr group(std::vector<StmtPtr> stmts) {
        if (stmts.size() == 1) return std::move(stmts.front());
        return b::block(std::move(stmts));
    }

    BlockPtr small_block(int loop_depth) {
        std::vector<StmtPtr> stmts;
        const int count = 1 + static_cast<int>(below(2));
        for (int i = 0; i < count; ++i)
            stmts.push_back(statement(loop_depth, false));
        return b::block(std::move(stmts));
    }

    /// Canonical counted loop. Over `n` (runtime bound) or a small constant
    /// (fixed bound; a candidate for full unrolling).
    StmtPtr counted_loop(int enclosing_depth, bool fixed,
                         bool parallel_bias) {
        const std::string iv = fresh("i");
        const ScopeMark m = mark();
        idx_vars_.push_back(iv);
        scalars_.push_back({iv, Type::Int});

        std::vector<StmtPtr> body;
        const int count =
            1 + static_cast<int>(below(
                    static_cast<std::uint64_t>(opt_.max_block_stmts)));
        for (int i = 0; i < count; ++i)
            body.push_back(statement(enclosing_depth + 1, parallel_bias));
        if (parallel_bias) body.push_back(buffer_store(true));
        release(m);

        ExprPtr limit = fixed ? b::int_lit(chance(50) ? 4 : 8)
                              : static_cast<ExprPtr>(b::ident("n"));
        ExprPtr step = b::int_lit(
            fixed ? 1 : 1 + static_cast<long long>(below(3)));
        return b::for_loop(iv, b::int_lit(0), std::move(limit),
                           b::block(std::move(body)), std::move(step));
    }

    // -------------------------------------------------------- functions ---

    FunctionPtr gen_helper() {
        // Pure scalar helper over its two parameters only.
        scalars_.clear();
        idx_vars_.clear();
        bufs_.clear();
        scalars_.push_back({"u", Type::Double});
        scalars_.push_back({"v", Type::Double});
        in_kernel_ = false;
        std::vector<StmtPtr> body;
        body.push_back(b::ret(num_expr(2)));
        std::vector<ParamPtr> ps;
        ps.push_back(b::param({Type::Double, false}, "u"));
        ps.push_back(b::param({Type::Double, false}, "v"));
        return b::function(Type::Double, "fz_h0", std::move(ps),
                           b::block(std::move(body)));
    }

    FunctionPtr gen_kernel(const std::string& name, bool parallel_bias) {
        enter_function();
        in_kernel_ = true;
        std::vector<StmtPtr> body;
        // Optional read-only scalar set up before the loops (never written
        // inside them, so hotspot extraction stays applicable).
        if (chance(35)) {
            const std::string t = fresh("t");
            body.push_back(
                b::var_decl(Type::Double, t, num_expr(1)));
            scalars_.push_back({t, Type::Double});
        }
        body.push_back(counted_loop(1, /*fixed=*/false, parallel_bias));
        if (chance(25))
            body.push_back(counted_loop(1, /*fixed=*/false, false));
        return b::function(Type::Void, name, signature_params(),
                           b::block(std::move(body)));
    }

    FunctionPtr gen_entry(int kernels) {
        enter_function();
        in_kernel_ = false;
        std::vector<StmtPtr> body;
        for (int k = 0; k < kernels; ++k) {
            std::vector<ExprPtr> args;
            args.push_back(b::ident("n"));
            for (const auto& buf : params_) args.push_back(b::ident(buf.name));
            if (has_scalar_param_) args.push_back(b::ident("x0"));
            body.push_back(b::expr_stmt(
                b::call("fz_k" + std::to_string(k), std::move(args))));
        }
        return b::function(Type::Void, "run", signature_params(),
                           b::block(std::move(body)));
    }

    SplitMix64 rng_;
    const GenOptions& opt_;

    std::vector<BufferVar> params_; ///< shared buffer signature
    bool has_scalar_param_ = false;
    bool has_helper_ = false;
    bool in_kernel_ = false;

    std::vector<ScalarVar> scalars_;
    std::vector<std::string> idx_vars_; ///< int vars provably in [0, n)
    std::vector<BufferVar> bufs_;
    int name_counter_ = 0;
};

} // namespace

GeneratedProgram generate_program(std::uint64_t seed,
                                  const GenOptions& options) {
    Generator gen(seed, options);
    GeneratedProgram out;
    out.module = gen.run();
    out.source = ast::to_source(*out.module);
    out.seed = seed;
    return out;
}

analysis::Workload fuzz_workload(const ast::Module& module, int problem_size) {
    const ast::Function* entry = module.find_function("run");
    ensure(entry != nullptr, "fuzz_workload: module has no 'run' entry");

    struct ParamDesc {
        std::string name;
        ast::ValueType type;
    };
    std::vector<ParamDesc> params;
    params.reserve(entry->params.size());
    for (const auto& p : entry->params)
        params.push_back({p->name, p->type});

    analysis::Workload w;
    w.entry = "run";
    w.profile_scale = 1.0;
    w.eval_scale = 4.0;
    w.make_args = [params, problem_size](double scale) {
        const long long n = std::max<long long>(
            1, std::llround(problem_size * scale));
        std::vector<interp::Arg> args;
        bool first_int = true;
        for (const auto& p : params) {
            const std::uint64_t h =
                analysis::fnv1a(p.name.data(), p.name.size());
            if (p.type.is_pointer) {
                auto buf = std::make_shared<interp::Buffer>(
                    p.type.elem, static_cast<std::size_t>(n), p.name);
                SplitMix64 fill(h ^ 0x5eedf00dULL);
                for (long long i = 0; i < n; ++i)
                    buf->store(i, fill.uniform(-2.0, 2.0));
                args.emplace_back(std::move(buf));
            } else if (p.type.elem == ast::Type::Int) {
                if (first_int) {
                    args.emplace_back(interp::Value::of_int(n));
                    first_int = false;
                } else {
                    args.emplace_back(interp::Value::of_int(
                        3 + static_cast<long long>(h % 5)));
                }
            } else if (p.type.elem == ast::Type::Bool) {
                args.emplace_back(interp::Value::of_bool((h & 1) != 0));
            } else {
                SplitMix64 fill(h ^ 0x5ca1a45eedULL);
                const double v = fill.uniform(-2.0, 2.0);
                args.emplace_back(p.type.elem == ast::Type::Float
                                      ? interp::Value::of_float(v)
                                      : interp::Value::of_double(v));
            }
        }
        return args;
    };
    return w;
}

} // namespace psaflow::fuzz
