#include "fuzz/oracle.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include <unistd.h>

#include "analysis/dependence.hpp"
#include "analysis/profile_cache.hpp"
#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "codegen/codegen.hpp"
#include "codegen/design_spec.hpp"
#include "core/psaflow.hpp"
#include "flow/session.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "meta/query.hpp"
#include "sema/type_check.hpp"
#include "support/cas/cas.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "transform/accumulation.hpp"
#include "transform/extract.hpp"
#include "transform/fission.hpp"
#include "transform/parallel.hpp"
#include "transform/rewrite.hpp"
#include "transform/single_precision.hpp"
#include "transform/unroll.hpp"

namespace psaflow::fuzz {

namespace {

// ----------------------------------------------------------- execution ---

/// Buffer contents (by entry-parameter order) after one interpreted run.
struct RunCapture {
    bool threw = false;
    std::string error;
    std::vector<std::string> names;
    std::vector<std::vector<double>> buffers;
};

RunCapture capture_run(const ast::Module& module, const sema::TypeInfo& types,
                       const analysis::Workload& workload) {
    RunCapture cap;
    auto args = workload.make_args(1.0);
    try {
        (void)interp::run_function(module, types, workload.entry, args);
    } catch (const std::exception& e) {
        cap.threw = true;
        cap.error = e.what();
        return cap;
    }
    for (const auto& arg : args) {
        if (const auto* buf = std::get_if<interp::BufferPtr>(&arg)) {
            cap.names.push_back((*buf)->name());
            cap.buffers.push_back((*buf)->raw());
        }
    }
    return cap;
}

enum class Compare {
    Bitwise, ///< element-for-element identical (NaN matches NaN)
    Approx,  ///< tolerates legitimate re-rounding (SP, scalarised sums)
};

bool both_nan(double a, double b) {
    return std::isnan(a) && std::isnan(b);
}

/// Element comparison under the given mode; nullopt when equivalent.
/// `sens` (optional) is a run of the *original* module with ulp-scale input
/// perturbations: programs with feedback (outputs fed back into inputs
/// across iterations) amplify rounding chaotically, and the observed
/// per-element sensitivity separates that legitimate drift from a transform
/// that actually computes something different.
std::optional<std::string> compare_runs(const RunCapture& base,
                                        const RunCapture& got, Compare mode,
                                        const RunCapture* sens = nullptr) {
    if (got.threw)
        return "transformed module raised: " + got.error;
    if (got.buffers.size() != base.buffers.size())
        return "buffer count changed";
    for (std::size_t b = 0; b < base.buffers.size(); ++b) {
        const auto& ref = base.buffers[b];
        const auto& out = got.buffers[b];
        if (ref.size() != out.size())
            return "buffer '" + base.names[b] + "' resized";
        double max_abs = 0.0;
        for (double v : ref)
            if (std::isfinite(v)) max_abs = std::max(max_abs, std::fabs(v));
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const double r = ref[i], o = out[i];
            if (mode == Compare::Bitwise) {
                if (r == o || both_nan(r, o)) continue;
            } else {
                if (both_nan(r, o)) continue;
                if (std::isinf(r) && std::isinf(o) &&
                    std::signbit(r) == std::signbit(o))
                    continue;
                if (std::fabs(r) > 1e30) continue; // overflow regime
                // Cancellation-dominated elements carry no reliable digits.
                if (std::fabs(r) < 1e-6 * max_abs) continue;
                double tol = 1e-2 * std::max(1.0, std::fabs(r));
                if (sens != nullptr && !sens->threw &&
                    b < sens->buffers.size() &&
                    i < sens->buffers[b].size()) {
                    // Float demotion rounds at every operation; budget a few
                    // hundred times the single-perturbation response.
                    tol += 512.0 * std::fabs(r - sens->buffers[b][i]);
                }
                if (std::fabs(r - o) <= tol) continue;
            }
            std::ostringstream os;
            os.precision(17);
            os << "buffer '" << base.names[b] << "'[" << i << "]: expected "
               << r << ", got " << o;
            return os.str();
        }
    }
    return std::nullopt;
}

/// True when any branch condition reads inexact data — a buffer element, a
/// float literal, or a math call. Rounding changes (single-precision
/// demotion, accumulation re-association) can flip such a comparison and
/// take a legitimately different control path, so value equivalence is not
/// a sound oracle for a mismatch on these programs.
bool inexact_control_flow(const ast::Node& root) {
    bool found = false;
    ast::walk(root, [&](const ast::Node& n) {
        const ast::Expr* cond = nullptr;
        if (const auto* s = ast::dyn_cast<ast::If>(&n)) cond = s->cond.get();
        if (const auto* s = ast::dyn_cast<ast::While>(&n))
            cond = s->cond.get();
        if (cond != nullptr) {
            ast::walk(static_cast<const ast::Node&>(*cond),
                      [&](const ast::Node& c) {
                          switch (c.kind()) {
                              case ast::NodeKind::Index:
                              case ast::NodeKind::FloatLit:
                              case ast::NodeKind::Call:
                                  found = true;
                                  break;
                              default:
                                  break;
                          }
                          return !found;
                      });
        }
        return !found;
    });
    return found;
}

/// Run the original module with every buffer element nudged by a few ulps
/// (float scale) to expose the program's intrinsic conditioning.
RunCapture capture_perturbed_run(const ast::Module& module,
                                 const sema::TypeInfo& types,
                                 const analysis::Workload& workload) {
    RunCapture cap;
    auto args = workload.make_args(1.0);
    SplitMix64 noise(0x9e11ab1e5eedULL);
    for (auto& arg : args) {
        if (auto* buf = std::get_if<interp::BufferPtr>(&arg)) {
            for (std::size_t i = 0; i < (*buf)->size(); ++i) {
                const long long idx = static_cast<long long>(i);
                (*buf)->store(idx, (*buf)->load(idx) *
                                       (1.0 + noise.uniform(-4e-7, 4e-7)));
            }
        }
    }
    try {
        (void)interp::run_function(module, types, workload.entry, args);
    } catch (const std::exception& e) {
        cap.threw = true;
        cap.error = e.what();
        return cap;
    }
    for (const auto& arg : args) {
        if (const auto* buf = std::get_if<interp::BufferPtr>(&arg)) {
            cap.names.push_back((*buf)->name());
            cap.buffers.push_back((*buf)->raw());
        }
    }
    return cap;
}

// ------------------------------------------------- engine differential ---

/// Everything observable from one engine's run, in bit-exact form.
struct EngineCapture {
    bool threw = false;
    std::string error;
    ast::Type result_type = ast::Type::Void;
    std::uint64_t result_bits = 0; ///< value payload as a bit pattern
    std::vector<std::string> names;
    std::vector<std::vector<double>> buffers;
    std::string profile; ///< serialize_profile_payload bytes
};

std::uint64_t value_bits(const interp::Value& v) {
    switch (v.type()) {
        case ast::Type::Int:
            return static_cast<std::uint64_t>(v.as_int());
        case ast::Type::Bool: return v.as_bool() ? 1 : 0;
        case ast::Type::Float:
        case ast::Type::Double: {
            const double d = v.as_double();
            std::uint64_t bits = 0;
            std::memcpy(&bits, &d, sizeof bits);
            return bits;
        }
        default: return 0;
    }
}

EngineCapture capture_engine_run(const ast::Module& module,
                                 const sema::TypeInfo& types,
                                 const analysis::Workload& workload,
                                 const std::string& focus,
                                 const std::vector<ast::Node::Id>& loop_order,
                                 interp::Engine engine) {
    EngineCapture cap;
    auto args = workload.make_args(1.0);
    interp::InterpOptions io;
    io.focus_function = focus;
    io.engine = engine; // explicit: never let the process default decide
    try {
        // Direct run_function — deliberately not the ProfileCache, which
        // would serve one engine's profile to the other and mask bugs.
        const auto run = interp::run_function(module, types, workload.entry,
                                              args, io);
        cap.result_type = run.result.type();
        cap.result_bits = value_bits(run.result);
        cap.profile = analysis::serialize_profile_payload(run.profile,
                                                          loop_order);
    } catch (const std::exception& e) {
        cap.threw = true;
        cap.error = e.what();
        return cap;
    }
    for (const auto& arg : args) {
        if (const auto* buf = std::get_if<interp::BufferPtr>(&arg)) {
            cap.names.push_back((*buf)->name());
            cap.buffers.push_back((*buf)->raw());
        }
    }
    return cap;
}

std::optional<std::string> compare_engine_runs(const EngineCapture& tree,
                                               const EngineCapture& vm) {
    if (tree.threw != vm.threw) {
        if (tree.threw)
            return "tree raised '" + tree.error + "', vm returned normally";
        return "vm raised '" + vm.error + "', tree returned normally";
    }
    if (tree.threw) {
        if (tree.error != vm.error)
            return "error mismatch: tree '" + tree.error + "' vs vm '" +
                   vm.error + "'";
        return std::nullopt;
    }
    if (tree.result_type != vm.result_type ||
        tree.result_bits != vm.result_bits)
        return "entry result differs between engines";
    if (tree.buffers.size() != vm.buffers.size())
        return "buffer count differs between engines";
    for (std::size_t b = 0; b < tree.buffers.size(); ++b) {
        const auto& ref = tree.buffers[b];
        const auto& got = vm.buffers[b];
        if (ref.size() != got.size())
            return "buffer '" + tree.names[b] + "' resized under vm";
        // Bit-pattern comparison: NaN payloads and signed zeros must match
        // too, which `==` would not enforce.
        if (!ref.empty() &&
            std::memcmp(ref.data(), got.data(),
                        ref.size() * sizeof(double)) != 0) {
            for (std::size_t i = 0; i < ref.size(); ++i) {
                std::uint64_t rb = 0;
                std::uint64_t gb = 0;
                std::memcpy(&rb, &ref[i], sizeof rb);
                std::memcpy(&gb, &got[i], sizeof gb);
                if (rb == gb) continue;
                std::ostringstream os;
                os.precision(17);
                os << "buffer '" << tree.names[b] << "'[" << i
                   << "]: tree " << ref[i] << ", vm " << got[i];
                return os.str();
            }
        }
    }
    if (tree.profile != vm.profile)
        return "serialized profile payloads differ (" +
               std::to_string(tree.profile.size()) + " vs " +
               std::to_string(vm.profile.size()) + " bytes)";
    return std::nullopt;
}

// --------------------------------------------------------- module query ---

/// First outermost loop across the module's functions in order, plus the
/// function containing it. Pre-order position identifies the same loop in
/// any clone of the module.
struct LoopTarget {
    ast::For* loop = nullptr;
    ast::Function* fn = nullptr;
};

LoopTarget first_outer_loop(ast::Module& module) {
    for (const auto& fn : module.functions) {
        auto loops = meta::outermost_for_loops(*fn);
        if (!loops.empty()) return {loops.front(), fn.get()};
    }
    return {};
}

/// Is `name` called exactly once across the module?
bool called_once(ast::Module& module, const std::string& name) {
    return meta::calls_to(module, name).size() == 1;
}

// -------------------------------------------------------- transform run ---

struct TransformCase {
    std::string name;
    Compare mode = Compare::Bitwise;
    /// Apply the transform to a fresh clone. Return false to skip (the
    /// program offers no applicable site); throw psaflow::Error for a
    /// precondition rejection (also a skip).
    std::function<bool(ast::Module&, const sema::TypeInfo&)> apply;
};

} // namespace

OracleOutcome run_oracles(const std::string& source,
                          const OracleOptions& options) {
    OracleOutcome out;
    auto fail = [&out](std::string oracle, std::string detail) {
        out.failures.push_back({std::move(oracle), std::move(detail)});
    };

    // ---- parse + sema (oracle b) -------------------------------------
    ast::ModulePtr module;
    sema::TypeInfo types;
    try {
        module = frontend::parse_module(source, "fuzz");
        ++out.oracles_run;
    } catch (const std::exception& e) {
        fail("parse", e.what());
        return out;
    }
    try {
        types = sema::check(*module);
        ++out.oracles_run;
    } catch (const std::exception& e) {
        fail("sema", e.what());
        return out;
    }

    // ---- print -> parse -> print fixpoint (oracle a) -----------------
    const std::string printed = ast::to_source(*module);
    if (options.check_roundtrip) {
        ++out.oracles_run;
        try {
            auto reparsed = frontend::parse_module(printed, "fuzz");
            const std::string reprinted = ast::to_source(*reparsed);
            if (reprinted != printed)
                fail("roundtrip", "print->parse->print is not a fixpoint");
        } catch (const std::exception& e) {
            fail("roundtrip", std::string("printed source rejected: ") +
                                  e.what());
        }
    }

    // ---- baseline interpretation -------------------------------------
    analysis::Workload workload;
    try {
        workload = fuzz_workload(*module, options.problem_size);
    } catch (const std::exception& e) {
        fail("baseline", std::string("workload construction: ") + e.what());
        return out;
    }
    const RunCapture base = capture_run(*module, types, workload);
    ++out.oracles_run;
    if (base.threw) {
        fail("baseline", "reference interpretation raised: " + base.error);
        return out; // nothing to differentially compare against
    }

    // ---- tree-vs-VM engine differential (oracle interp:vm) ------------
    if (options.check_vm) {
        ++out.oracles_run;
        try {
            // Focus the profile on the function holding the first outer
            // loop — the same choice hotspot extraction makes — so focus
            // counters, buffer access ranges and aliasing probes are all
            // under test, not just totals.
            const LoopTarget target = first_outer_loop(*module);
            const std::string focus =
                target.fn != nullptr ? target.fn->name : std::string();
            std::vector<ast::Node::Id> loop_order;
            for (const auto* l : meta::for_loops(*module))
                loop_order.push_back(l->id);
            const EngineCapture tree =
                capture_engine_run(*module, types, workload, focus,
                                   loop_order, interp::Engine::Tree);
            const EngineCapture vm =
                capture_engine_run(*module, types, workload, focus,
                                   loop_order, interp::Engine::Vm);
            if (const auto mismatch = compare_engine_runs(tree, vm))
                fail("interp:vm", *mismatch);
        } catch (const std::exception& e) {
            fail("interp:vm:crash", e.what());
        }
    }

    // ---- transform equivalence (oracle c) ----------------------------
    // Conditioning probe for Approx-mode comparisons, computed lazily the
    // first time one runs (it costs an extra interpreter pass).
    std::optional<RunCapture> sens;
    if (options.check_transforms) {
        const LoopTarget target = first_outer_loop(*module);
        // Pre-order index of the target loop among all For nodes, used to
        // re-find the corresponding loop inside each clone.
        int target_index = -1;
        if (target.loop != nullptr) {
            auto all = meta::for_loops(*module);
            for (std::size_t i = 0; i < all.size(); ++i)
                if (all[i] == target.loop)
                    target_index = static_cast<int>(i);
        }
        auto loop_in = [target_index](ast::Module& m) -> ast::For* {
            if (target_index < 0) return nullptr;
            auto all = meta::for_loops(m);
            return static_cast<std::size_t>(target_index) < all.size()
                       ? all[target_index]
                       : nullptr;
        };
        const std::string target_fn =
            target.fn != nullptr ? target.fn->name : std::string();

        std::vector<TransformCase> cases;
        for (int factor : {2, 3}) {
            cases.push_back(
                {"unroll" + std::to_string(factor), Compare::Bitwise,
                 [&loop_in, factor](ast::Module& m, const sema::TypeInfo&) {
                     ast::For* loop = loop_in(m);
                     if (loop == nullptr) return false;
                     transform::unroll_loop(m, *loop, factor);
                     return true;
                 }});
        }
        cases.push_back(
            {"full_unroll", Compare::Bitwise,
             [](ast::Module& m, const sema::TypeInfo&) {
                 for (ast::For* loop : meta::for_loops(m)) {
                     const long long trip = meta::constant_trip_count(*loop);
                     if (trip >= 1 && trip <= 128) {
                         transform::fully_unroll_loop(m, *loop, 128);
                         return true;
                     }
                 }
                 return false;
             }});
        cases.push_back(
            {"extract", Compare::Bitwise,
             [&loop_in](ast::Module& m, const sema::TypeInfo& ti) {
                 ast::For* loop = loop_in(m);
                 if (loop == nullptr) return false;
                 (void)transform::extract_hotspot(m, ti, *loop, "fz_hot");
                 return true;
             }});
        cases.push_back(
            {"fission", Compare::Bitwise,
             [&loop_in, &target_fn](ast::Module& m,
                                    const sema::TypeInfo& ti) {
                 ast::For* loop = loop_in(m);
                 if (loop == nullptr || target_fn.empty() ||
                     target_fn == "run" || !called_once(m, target_fn))
                     return false;
                 // Statement fission reorders work across iterations, so it
                 // only preserves semantics for fully independent loops.
                 const auto dep = analysis::analyze_dependence(m, *loop);
                 if (!dep.parallel || dep.has_reductions() ||
                     !dep.array_accumulations.empty())
                     return false;
                 const std::size_t cut =
                     transform::balanced_cut_point(m, ti, target_fn);
                 (void)transform::split_kernel(m, ti, target_fn, cut);
                 return true;
             }});
        cases.push_back(
            {"parallel", Compare::Bitwise,
             [&loop_in](ast::Module& m, const sema::TypeInfo&) {
                 ast::For* loop = loop_in(m);
                 if (loop == nullptr) return false;
                 const auto dep = analysis::analyze_dependence(m, *loop);
                 if (!dep.parallel) return false;
                 transform::insert_omp_parallel_for(*loop, 4, dep.reductions);
                 return true;
             }});
        cases.push_back(
            {"accumulation", Compare::Approx,
             [](ast::Module& m, const sema::TypeInfo&) {
                 for (ast::For* loop : meta::outermost_for_loops(m))
                     if (transform::remove_array_accumulation(m, *loop) > 0)
                         return true;
                 return false;
             }});
        cases.push_back(
            {"single_precision", Compare::Approx,
             [&target_fn](ast::Module& m, const sema::TypeInfo&) {
                 ast::Function* fn = m.find_function(target_fn);
                 if (fn == nullptr) return false;
                 return transform::employ_single_precision(*fn) > 0;
             }});
        cases.push_back(
            {"rewrite", Compare::Bitwise,
             [&target_fn](ast::Module& m, const sema::TypeInfo&) {
                 // Identity substitution: n := n. Exercises every expression
                 // slot without changing semantics or printed source.
                 ast::Function* fn = m.find_function(target_fn);
                 if (fn == nullptr) return false;
                 const auto n = ast::build::ident("n");
                 int hits = 0;
                 for (auto& stmt : fn->body->stmts)
                     hits += transform::substitute_ident(*stmt, "n", *n);
                 return hits > 0;
             }});

        for (const auto& tc : cases) {
            ++out.oracles_run;
            auto clone = ast::clone_module(*module);
            bool applied = false;
            try {
                sema::TypeInfo clone_types = sema::check(*clone);
                applied = tc.apply(*clone, clone_types);
            } catch (const Error&) {
                ++out.transforms_skipped; // precondition rejection
                continue;
            } catch (const std::exception& e) {
                fail("transform:" + tc.name,
                     std::string("unexpected exception: ") + e.what());
                continue;
            }
            if (!applied) {
                ++out.transforms_skipped;
                continue;
            }
            ++out.transforms_applied;

            // The transformed module must still type-check...
            sema::TypeInfo t2;
            try {
                t2 = sema::check(*clone);
            } catch (const std::exception& e) {
                fail("transform:" + tc.name,
                     std::string("output fails sema: ") + e.what());
                continue;
            }
            // ...still round-trip through the frontend...
            try {
                const std::string s1 = ast::to_source(*clone);
                const std::string s2 =
                    ast::to_source(*frontend::parse_module(s1, "fuzz"));
                if (s1 != s2) {
                    fail("transform:" + tc.name,
                         "output is not a print->parse->print fixpoint");
                    continue;
                }
            } catch (const std::exception& e) {
                fail("transform:" + tc.name,
                     std::string("output source rejected: ") + e.what());
                continue;
            }
            // ...and behave identically under the interpreter.
            const RunCapture got = capture_run(*clone, t2, workload);
            if (tc.mode == Compare::Approx && !sens.has_value())
                sens = capture_perturbed_run(*module, types, workload);
            if (auto diff = compare_runs(
                    base, got, tc.mode,
                    sens.has_value() ? &*sens : nullptr)) {
                // A tolerance mismatch on a program that branches on
                // inexact data is inconclusive — the rounding change the
                // transform is allowed to make can flip the branch itself.
                // Bitwise-mode transforms never round, so they still fail.
                if (tc.mode == Compare::Approx &&
                    inexact_control_flow(*module))
                    continue;
                fail("transform:" + tc.name, *diff);
            }
        }
    }

    // ---- crash-free codegen (oracle d, part 1) -----------------------
    if (options.check_codegen) {
        auto emit = [&](const ast::Module& m, const sema::TypeInfo& ti,
                        codegen::DesignSpec spec, const char* label) {
            ++out.oracles_run;
            try {
                const std::string text = codegen::emit_design(m, ti, spec);
                if (text.empty())
                    fail(std::string("codegen:") + label, "empty design");
            } catch (const std::exception& e) {
                fail(std::string("codegen:") + label, e.what());
            }
        };

        codegen::DesignSpec ref;
        ref.app_name = "fuzz";
        emit(*module, types, ref, "reference");

        codegen::DesignSpec omp = ref;
        omp.target = codegen::TargetKind::CpuOpenMp;
        omp.omp_threads = 8;
        emit(*module, types, omp, "openmp");

        // The GPU/FPGA emitters require an extracted kernel with a single
        // outermost loop; build one the same way the flow does.
        auto clone = ast::clone_module(*module);
        const LoopTarget target = first_outer_loop(*clone);
        if (target.loop != nullptr) {
            try {
                sema::TypeInfo ct = sema::check(*clone);
                (void)transform::extract_hotspot(*clone, ct, *target.loop,
                                                 "fz_hot");
                ct = sema::check(*clone);

                codegen::DesignSpec hip = ref;
                hip.target = codegen::TargetKind::CpuGpu;
                hip.kernel_name = "fz_hot";
                hip.device = platform::DeviceId::Rtx2080Ti;
                hip.block_size = 128;
                emit(*clone, ct, hip, "hip");

                codegen::DesignSpec sycl = ref;
                sycl.target = codegen::TargetKind::CpuFpga;
                sycl.kernel_name = "fz_hot";
                sycl.device = platform::DeviceId::Stratix10;
                sycl.unroll = 4;
                emit(*clone, ct, sycl, "oneapi");
            } catch (const Error&) {
                // extraction precondition rejected: nothing to emit
                out.transforms_skipped += 1;
            } catch (const std::exception& e) {
                fail("codegen:extract",
                     std::string("unexpected exception: ") + e.what());
            }
        }
    }

    // ---- flow engine, jobs=1 vs jobs=N (oracle d, part 2) ------------
    if (options.check_flow) {
        ++out.oracles_run;
        auto run_flow_at = [&](int jobs) {
            struct FlowCapture {
                bool threw = false;
                bool crash = false; ///< non-psaflow exception
                std::string error;
                std::string summary;
            } cap;
            RunOptions ro;
            ro.mode = flow::Mode::Informed;
            ro.jobs = jobs;
            try {
                // A fresh session per run keeps the comparisons honest:
                // nothing is shared between the jobs=1 and jobs=N runs
                // beyond the process-wide caches the oracle controls.
                flow::FlowSession session;
                const auto result =
                    psaflow::compile(session, "fuzz", source, workload,
                                     /*allow_single_precision=*/true, ro);
                std::ostringstream os;
                os.precision(17);
                os << "reference_seconds=" << result.reference_seconds
                   << "\n";
                for (const auto& line : result.log) os << "| " << line << "\n";
                for (const auto& d : result.designs) {
                    os << "design " << d.name() << " speedup=" << d.speedup
                       << " loc_delta=" << d.loc_delta
                       << " synthesizable=" << d.synthesizable << "\n";
                    os << d.source << "\n";
                    for (const auto& line : d.log) os << "| " << line << "\n";
                }
                cap.summary = os.str();
            } catch (const Error& e) {
                cap.threw = true;
                cap.error = e.what();
            } catch (const std::exception& e) {
                cap.threw = true;
                cap.crash = true;
                cap.error = e.what();
            }
            return cap;
        };

        const auto seq = run_flow_at(1);
        const auto par = run_flow_at(options.flow_jobs);
        if (seq.crash)
            fail("flow:crash", "jobs=1: " + seq.error);
        if (par.crash)
            fail("flow:crash",
                 "jobs=" + std::to_string(options.flow_jobs) + ": " +
                     par.error);
        if (!seq.crash && !par.crash) {
            if (seq.threw != par.threw) {
                fail("flow:jobs",
                     std::string("jobs=1 ") +
                         (seq.threw ? "failed ('" + seq.error + "')"
                                    : "succeeded") +
                         " but jobs=" + std::to_string(options.flow_jobs) +
                         (par.threw ? " failed ('" + par.error + "')"
                                    : " succeeded"));
            } else if (seq.threw) {
                if (seq.error != par.error)
                    fail("flow:jobs", "error mismatch: '" + seq.error +
                                          "' vs '" + par.error + "'");
            } else if (seq.summary != par.summary) {
                fail("flow:jobs",
                     "FlowResult differs between jobs=1 and jobs=" +
                         std::to_string(options.flow_jobs));
            }
        }

        // ---- cold vs warm persistent cache (flow:cache) --------------
        // Three states must agree byte for byte: no disk cache (seq,
        // above), a cold run that populates an empty store, and a warm
        // run served from the store with the in-memory caches dropped.
        if (options.check_cache && !seq.crash) {
            ++out.oracles_run;
            namespace fs = std::filesystem;
            static std::atomic<std::uint64_t> cache_serial{0};
            const bool own_dir = options.cache_dir.empty();
            const fs::path root =
                own_dir ? fs::temp_directory_path() /
                              ("psaflow-fuzz-cache-" +
                               std::to_string(::getpid()) + "-" +
                               std::to_string(++cache_serial))
                        : fs::path(options.cache_dir);

            cas::configure(root.string());
            analysis::ProfileCache::global().clear();
            const auto cold = run_flow_at(1);
            analysis::ProfileCache::global().clear();
            const auto warm = run_flow_at(1);
            cas::configure("");
            if (own_dir) {
                std::error_code ec;
                fs::remove_all(root, ec);
            }

            auto check_against = [&](const char* label,
                                     const decltype(seq)& run) {
                if (run.crash) {
                    fail("flow:crash",
                         std::string(label) + " cache run: " + run.error);
                } else if (seq.threw != run.threw) {
                    fail("flow:cache",
                         std::string("uncached run ") +
                             (seq.threw ? "failed" : "succeeded") + " but " +
                             label + " run " +
                             (run.threw ? "failed ('" + run.error + "')"
                                        : "succeeded"));
                } else if (seq.threw) {
                    if (seq.error != run.error)
                        fail("flow:cache",
                             std::string(label) + " error mismatch: '" +
                                 seq.error + "' vs '" + run.error + "'");
                } else if (seq.summary != run.summary) {
                    fail("flow:cache",
                         "FlowResult differs between the uncached and the " +
                             std::string(label) + " cache run");
                }
            };
            check_against("cold", cold);
            check_against("warm", warm);
        }
    }

    return out;
}

} // namespace psaflow::fuzz
