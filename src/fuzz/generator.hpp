// Deterministic random-program generation for the fuzzing harness.
//
// The generator emits well-typed HLC modules through ast::build, drawing
// every choice from a SplitMix64 stream so a seed identifies a program
// byte-for-byte. Programs follow the shape of the paper's benchmark
// applications — one or two kernel functions full of canonical loop nests
// over runtime bounds, an entry `run` that calls them — while sweeping the
// full grammar: nested and fixed-bound loops, scalar reductions, array
// accumulations at invariant indices, float and double buffers, local
// arrays, if/while statements, builtin math calls and user helper calls.
//
// Runtime safety is part of well-typedness here: every generated subscript
// is provably in [0, n), loop steps are positive constants, while loops
// count to a constant bound, and math builtins are wrapped so their domain
// preconditions hold (sqrt(fabs(x)), log(fabs(x) + 1.0), clamped exp/pow).
// A generated program therefore parses, type-checks and interprets without
// error — any deviation is a toolchain bug, which is exactly what the
// differential oracles in oracle.hpp test for.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/workload.hpp"
#include "ast/nodes.hpp"

namespace psaflow::fuzz {

struct GenOptions {
    /// Base problem size bound to the entry's `n` at workload scale 1.0.
    /// Loops over `n` execute this many iterations per level.
    int problem_size = 24;

    /// Kernel functions generated besides the entry (1 or 2 are drawn in
    /// [1, max_kernels]).
    int max_kernels = 2;

    /// Maximum loop-nest depth inside a kernel.
    int max_loop_depth = 3;

    /// Maximum statements drawn per block (at least 1).
    int max_block_stmts = 4;

    /// Maximum expression depth (atoms are depth 0).
    int max_expr_depth = 3;
};

struct GeneratedProgram {
    ast::ModulePtr module;
    std::string source; ///< printed module (the canonical form)
    std::uint64_t seed = 0;
};

/// Generate the program identified by `seed`. Identical (seed, options)
/// produce byte-identical source on every platform and run.
[[nodiscard]] GeneratedProgram generate_program(std::uint64_t seed,
                                                const GenOptions& options = {});

/// Deterministic workload for a generated (or corpus-replayed) module:
/// arguments are derived from the `run` entry signature alone — the first
/// int parameter receives round(problem_size * scale), further scalars and
/// buffer contents are seeded from FNV-1a hashes of the parameter names.
/// Programs emitted by generate_program are guaranteed to execute crash-free
/// under exactly this workload.
[[nodiscard]] analysis::Workload fuzz_workload(const ast::Module& module,
                                               int problem_size = 24);

} // namespace psaflow::fuzz
