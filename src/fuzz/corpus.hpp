// Replayable failure corpus.
//
// Every failure the fuzzer finds is persisted as a plain `.psa` source file
// with a `//`-comment header recording the seed, the failing oracle and the
// mismatch detail. The lexer skips comments, so a corpus file feeds straight
// back into run_oracles — `psaflow-fuzz --replay <dir>` and the checked-in
// tests/corpus/ regression suite both work off this format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psaflow::fuzz {

struct CorpusEntry {
    std::string path;   ///< file the entry was loaded from
    std::string source; ///< full file contents (header comments included)
};

/// Write `source` under `dir` (created if missing) with a reproducer
/// header. Returns the path written. `oracle` and `detail` may be empty
/// for seed-corpus entries.
std::string save_corpus_entry(const std::string& dir, std::uint64_t seed,
                              const std::string& oracle,
                              const std::string& detail,
                              const std::string& source);

/// All `.psa` files under `dir`, sorted by filename for deterministic
/// replay order. Returns empty when the directory does not exist.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& dir);

} // namespace psaflow::fuzz
