#include "fuzz/shrink.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ast/builder.hpp"
#include "ast/clone.hpp"
#include "ast/nodes.hpp"
#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "frontend/parser.hpp"
#include "meta/query.hpp"
#include "transform/rewrite.hpp"

namespace psaflow::fuzz {

namespace {

using namespace ast;

enum class EditKind {
    RemoveFunction, ///< drop a function and any call statements to it
    RemoveStmt,     ///< drop one statement from a block
    InlineBody,     ///< replace a For/While/If with its (then-)body
    LimitTwo,       ///< pin a loop limit to the constant 2
    Literalize,     ///< replace a non-literal subexpression with 1
};

struct Edit {
    EditKind kind;
    std::size_t ordinal;
};

struct StmtSlot {
    Block* block;
    std::size_t index;
};

std::vector<Block*> blocks_of(Module& m) {
    std::vector<Block*> out;
    walk(static_cast<Node&>(m), [&](Node& n) {
        if (auto* b = dyn_cast<Block>(&n)) out.push_back(b);
        return true;
    });
    return out;
}

std::vector<StmtSlot> stmt_slots(Module& m) {
    std::vector<StmtSlot> out;
    for (Block* b : blocks_of(m))
        for (std::size_t i = 0; i < b->stmts.size(); ++i)
            out.push_back({b, i});
    return out;
}

bool is_literal(const Expr& e) {
    const NodeKind k = e.kind();
    return k == NodeKind::IntLit || k == NodeKind::FloatLit ||
           k == NodeKind::BoolLit;
}

/// Remove `ExprStmt` calls to `name` everywhere (used after dropping the
/// callee so the program still resolves).
void prune_calls(Module& m, const std::string& name) {
    for (Block* b : blocks_of(m)) {
        auto& stmts = b->stmts;
        for (std::size_t i = stmts.size(); i-- > 0;) {
            const auto* es = dyn_cast<ExprStmt>(stmts[i].get());
            if (es == nullptr) continue;
            const auto* call = dyn_cast<Call>(es->expr.get());
            if (call != nullptr && call->callee == name)
                stmts.erase(stmts.begin() +
                            static_cast<std::ptrdiff_t>(i));
        }
    }
}

/// Apply `edit` to `m`; false when the ordinal is stale or the edit would
/// be a no-op.
bool apply_edit(Module& m, const Edit& edit) {
    switch (edit.kind) {
        case EditKind::RemoveFunction: {
            if (m.functions.size() <= 1 ||
                edit.ordinal >= m.functions.size())
                return false;
            const std::string name = m.functions[edit.ordinal]->name;
            m.functions.erase(m.functions.begin() +
                              static_cast<std::ptrdiff_t>(edit.ordinal));
            prune_calls(m, name);
            return true;
        }
        case EditKind::RemoveStmt: {
            auto slots = stmt_slots(m);
            if (edit.ordinal >= slots.size()) return false;
            auto [block, index] = slots[edit.ordinal];
            block->stmts.erase(block->stmts.begin() +
                               static_cast<std::ptrdiff_t>(index));
            return true;
        }
        case EditKind::InlineBody: {
            auto slots = stmt_slots(m);
            if (edit.ordinal >= slots.size()) return false;
            auto [block, index] = slots[edit.ordinal];
            Stmt* stmt = block->stmts[index].get();
            Block* body = nullptr;
            if (auto* f = dyn_cast<For>(stmt)) body = f->body.get();
            else if (auto* w = dyn_cast<While>(stmt)) body = w->body.get();
            else if (auto* i = dyn_cast<If>(stmt)) body = i->then_body.get();
            if (body == nullptr) return false;
            std::vector<StmtPtr> moved = std::move(body->stmts);
            block->stmts.erase(block->stmts.begin() +
                               static_cast<std::ptrdiff_t>(index));
            block->stmts.insert(block->stmts.begin() +
                                    static_cast<std::ptrdiff_t>(index),
                                std::make_move_iterator(moved.begin()),
                                std::make_move_iterator(moved.end()));
            return true;
        }
        case EditKind::LimitTwo: {
            auto loops = meta::for_loops(m);
            if (edit.ordinal >= loops.size()) return false;
            For* loop = loops[edit.ordinal];
            if (const auto* lit = dyn_cast<IntLit>(loop->limit.get()))
                if (lit->value <= 2) return false;
            loop->limit = build::int_lit(2);
            return true;
        }
        case EditKind::Literalize: {
            std::size_t count = 0;
            bool replaced = false;
            for (auto& fn : m.functions) {
                for (auto& stmt : fn->body->stmts) {
                    transform::for_each_expr_slot(
                        *stmt, [&](ExprPtr& slot) {
                            if (replaced || !slot || is_literal(*slot))
                                return;
                            if (count++ == edit.ordinal) {
                                slot = build::int_lit(1);
                                replaced = true;
                            }
                        });
                    if (replaced) return true;
                }
            }
            return replaced;
        }
    }
    return false;
}

/// All candidate edits for the current module, coarse to fine. Statement
/// removal and body inlining run back-to-front so dropping a value's users
/// is attempted before dropping its definition.
std::vector<Edit> enumerate_edits(Module& m) {
    std::vector<Edit> out;
    for (std::size_t i = 0; i < m.functions.size(); ++i)
        out.push_back({EditKind::RemoveFunction, i});
    const std::size_t nslots = stmt_slots(m).size();
    for (std::size_t i = nslots; i-- > 0;)
        out.push_back({EditKind::RemoveStmt, i});
    for (std::size_t i = nslots; i-- > 0;)
        out.push_back({EditKind::InlineBody, i});
    const std::size_t nloops = meta::for_loops(m).size();
    for (std::size_t i = 0; i < nloops; ++i)
        out.push_back({EditKind::LimitTwo, i});
    std::size_t nexprs = 0;
    for (auto& fn : m.functions)
        for (auto& stmt : fn->body->stmts)
            transform::for_each_expr_slot(*stmt, [&](ExprPtr& slot) {
                if (slot && !is_literal(*slot)) ++nexprs;
            });
    for (std::size_t i = 0; i < nexprs; ++i)
        out.push_back({EditKind::Literalize, i});
    return out;
}

} // namespace

ShrinkResult shrink_source(const std::string& source,
                           const FailurePredicate& still_fails,
                           const ShrinkOptions& options) {
    ShrinkResult res;
    res.source = source;

    bool progress = true;
    while (progress && res.checks_used < options.max_checks) {
        progress = false;
        ModulePtr module;
        try {
            module = frontend::parse_module(res.source, "shrink");
        } catch (const std::exception&) {
            break; // unparseable input: nothing structural to reduce
        }
        for (const Edit& edit : enumerate_edits(*module)) {
            if (res.checks_used >= options.max_checks) break;
            auto candidate = clone_module(*module);
            if (!apply_edit(*candidate, edit)) continue;
            const std::string text = to_source(*candidate);
            if (text == res.source) continue;
            ++res.checks_used;
            if (still_fails(text)) {
                res.source = text;
                ++res.edits_applied;
                progress = true;
                break; // restart enumeration on the reduced program
            }
        }
    }
    return res;
}

FailurePredicate make_failure_predicate(const std::string& oracle,
                                        OracleOptions base) {
    const auto starts = [](const std::string& s, const char* prefix) {
        return s.rfind(prefix, 0) == 0;
    };
    // Only the family that produced the failure needs to run; the always-on
    // parse/sema/baseline/roundtrip stages are cheap and keep candidates
    // honest.
    base.check_transforms = starts(oracle, "transform:");
    base.check_codegen = starts(oracle, "codegen:");
    base.check_flow = starts(oracle, "flow:");
    base.check_vm = starts(oracle, "interp:");
    return [oracle, base](const std::string& src) {
        const OracleOutcome outcome = run_oracles(src, base);
        for (const auto& f : outcome.failures)
            if (f.oracle == oracle) return true;
        return false;
    };
}

} // namespace psaflow::fuzz
