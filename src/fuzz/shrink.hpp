// Greedy delta-reduction of failing fuzz programs.
//
// Given a program and a predicate "does this still exhibit the failure",
// the shrinker enumerates structural simplifications from coarse to fine —
// drop a function, drop a statement, inline a loop/branch body, pin a loop
// bound to 2, replace a subexpression with a literal — and greedily commits
// every edit that keeps the predicate true, restarting enumeration after
// each success until a full pass makes no progress. Candidates that break
// parsing or typing simply fail the predicate (the failure changes oracle),
// so no edit needs its own validity check.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "fuzz/oracle.hpp"

namespace psaflow::fuzz {

/// Does `source` still exhibit the failure being reduced?
using FailurePredicate = std::function<bool(const std::string& source)>;

struct ShrinkOptions {
    /// Upper bound on predicate evaluations; each evaluation re-runs the
    /// oracles, so this caps the total shrinking cost.
    std::size_t max_checks = 1500;
};

struct ShrinkResult {
    std::string source;          ///< the reduced program
    int edits_applied = 0;       ///< committed simplifications
    std::size_t checks_used = 0; ///< predicate evaluations consumed
};

/// Reduce `source` while `still_fails(candidate)` holds. `source` itself
/// must satisfy the predicate; the result always does.
[[nodiscard]] ShrinkResult shrink_source(const std::string& source,
                                         const FailurePredicate& still_fails,
                                         const ShrinkOptions& options = {});

/// Predicate matching "run_oracles reports a failure named `oracle`", with
/// oracle families that cannot produce `oracle` disabled for speed (e.g.
/// shrinking a transform failure skips the flow engine entirely).
[[nodiscard]] FailurePredicate
make_failure_predicate(const std::string& oracle, OracleOptions base);

} // namespace psaflow::fuzz
