#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace psaflow::fuzz {

namespace fs = std::filesystem;

namespace {

/// Flatten a detail message onto one comment line.
std::string one_line(const std::string& text) {
    std::string out = text;
    for (char& c : out)
        if (c == '\n' || c == '\r') c = ' ';
    return out;
}

/// Filesystem-safe oracle tag ("transform:unroll2" -> "transform-unroll2").
std::string slug(const std::string& oracle) {
    std::string out = oracle.empty() ? std::string("seed") : oracle;
    for (char& c : out)
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '-';
    return out;
}

} // namespace

std::string save_corpus_entry(const std::string& dir, std::uint64_t seed,
                              const std::string& oracle,
                              const std::string& detail,
                              const std::string& source) {
    fs::create_directories(dir);
    const fs::path path =
        fs::path(dir) / (slug(oracle) + "-seed" + std::to_string(seed) +
                         ".psa");
    std::ofstream out(path);
    ensure(out.good(), "corpus: cannot write " + path.string());
    out << "// psaflow-fuzz reproducer\n";
    out << "// seed: " << seed << "\n";
    if (!oracle.empty()) out << "// oracle: " << oracle << "\n";
    if (!detail.empty()) out << "// detail: " << one_line(detail) << "\n";
    out << "\n" << source;
    ensure(out.good(), "corpus: write failed for " + path.string());
    return path.string();
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
    std::vector<CorpusEntry> entries;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) return entries;
    for (const auto& de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file() || de.path().extension() != ".psa")
            continue;
        std::ifstream in(de.path());
        ensure(in.good(), "corpus: cannot read " + de.path().string());
        std::ostringstream text;
        text << in.rdbuf();
        entries.push_back({de.path().string(), text.str()});
    }
    std::sort(entries.begin(), entries.end(),
              [](const CorpusEntry& a, const CorpusEntry& b) {
                  return a.path < b.path;
              });
    return entries;
}

} // namespace psaflow::fuzz
