#include "fuzz/manifest_fuzz.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "flow/manifest.hpp"
#include "flow/session.hpp"
#include "flow/strategy.hpp"
#include "flow/task_registry.hpp"
#include "frontend/parser.hpp"
#include "fuzz/generator.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"

namespace psaflow::fuzz {

namespace {

// The fixed probe program: compute-bound, parallel outer loop, inner
// reduction over a runtime bound — every target family of the standard
// flow produces designs for it, so random path subsets stay exercisable.
// Fixed on purpose: the profile cache stays warm across a seed sweep.
constexpr const char* kProbeSource = R"(
void work(int n, double* a, double* out) {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc += exp(a[j] * 0.001) * a[i];
        }
        out[i] = acc;
    }
}

void run(int n, double* a, double* out) {
    work(n, a, out);
}
)";

struct StrategyPlan {
    enum Kind { Informed, SelectAll, FixedPath } kind = SelectAll;
    std::vector<std::string> fixed; ///< path names when kind == FixedPath
};

struct DevicePlan {
    std::string name;
    std::vector<std::string> tasks;
};

struct NestedPlan {
    std::string name;
    StrategyPlan strategy;
    std::vector<DevicePlan> paths;
};

struct FamilyPlan {
    std::string name;
    std::vector<std::string> tasks;
    std::optional<NestedPlan> nested;
    bool nested_via_ref = false; ///< spell the nest as a "branches" ref
    std::string ref_name;
};

struct FlowPlan {
    std::vector<std::string> prologue;
    StrategyPlan root_strategy;
    std::vector<FamilyPlan> families;

    [[nodiscard]] bool uses_refs() const {
        for (const FamilyPlan& family : families)
            if (family.nested_via_ref) return true;
        return false;
    }
};

std::vector<std::string> draw_subset(SplitMix64& rng,
                                     const std::vector<std::string>& pool) {
    std::vector<std::string> out;
    for (const std::string& item : pool)
        if (rng.next_below(2) == 0) out.push_back(item);
    return out;
}

StrategyPlan draw_strategy(SplitMix64& rng, bool allow_informed,
                           const std::vector<std::string>& path_names) {
    StrategyPlan plan;
    const std::uint64_t pick = rng.next_below(allow_informed ? 3 : 2);
    if (allow_informed && pick == 2) {
        plan.kind = StrategyPlan::Informed;
    } else if (pick == 1) {
        plan.kind = StrategyPlan::FixedPath;
        plan.fixed = draw_subset(rng, path_names);
        if (plan.fixed.empty())
            plan.fixed.push_back(
                path_names[rng.next_below(path_names.size())]);
    } else {
        plan.kind = StrategyPlan::SelectAll;
    }
    return plan;
}

FlowPlan draw_plan(std::uint64_t seed) {
    SplitMix64 rng(seed ^ 0x8f1e7a2cb5d3946ULL);
    FlowPlan plan;
    plan.prologue = {
        "identify-hotspot-loops",    "hotspot-loop-extraction",
        "pointer-analysis",          "arithmetic-intensity-analysis",
        "data-in-out-analysis",      "loop-dependence-analysis",
        "loop-trip-count-analysis",  "remove-array-dependency"};

    const std::uint64_t family_bits = 1 + rng.next_below(7);
    const bool with_gpu = (family_bits & 1) != 0;
    const bool with_fpga = (family_bits & 2) != 0;
    const bool with_cpu = (family_bits & 4) != 0;

    if (with_gpu) {
        FamilyPlan gpu;
        gpu.name = "gpu";
        gpu.tasks = {"generate-hip-design"};
        for (const std::string& task : draw_subset(
                 rng, {"employ-hip-pinned-memory", "employ-sp-math-fns",
                       "employ-sp-numeric-literals",
                       "introduce-shared-mem-buf",
                       "employ-specialised-math-fns"}))
            gpu.tasks.push_back(task);

        NestedPlan devices;
        devices.name = "C (GPU device)";
        std::vector<DevicePlan> pool = {
            {"gtx1080ti", {"gtx-1080-ti-blocksize-dse"}},
            {"rtx2080ti", {"rtx-2080-ti-blocksize-dse"}}};
        const std::uint64_t device_bits = 1 + rng.next_below(3);
        for (std::size_t i = 0; i < pool.size(); ++i)
            if ((device_bits & (1ULL << i)) != 0)
                devices.paths.push_back(pool[i]);
        std::vector<std::string> names;
        for (const DevicePlan& d : devices.paths) names.push_back(d.name);
        devices.strategy = draw_strategy(rng, /*allow_informed=*/false, names);
        gpu.nested = std::move(devices);
        plan.families.push_back(std::move(gpu));
    }
    if (with_fpga) {
        FamilyPlan fpga;
        fpga.name = "fpga";
        fpga.tasks = {"generate-oneapi-design"};
        for (const std::string& task : draw_subset(
                 rng, {"unroll-fixed-loops", "employ-sp-math-fns",
                       "employ-sp-numeric-literals"}))
            fpga.tasks.push_back(task);

        // The device branch is mandatory: the leaf finaliser needs the
        // synthesis report only the unroll-until-overmap DSEs produce.
        NestedPlan devices;
        devices.name = "B (FPGA device)";
        std::vector<DevicePlan> pool = {
            {"arria10", {"arria10-unroll-until-overmap-dse"}},
            {"stratix10",
             {"zero-copy-data-transfer", "stratix10-unroll-until-overmap-dse"}}};
        const std::uint64_t device_bits = 1 + rng.next_below(3);
        for (std::size_t i = 0; i < pool.size(); ++i)
            if ((device_bits & (1ULL << i)) != 0)
                devices.paths.push_back(pool[i]);
        std::vector<std::string> names;
        for (const DevicePlan& d : devices.paths) names.push_back(d.name);
        devices.strategy = draw_strategy(rng, /*allow_informed=*/false, names);
        fpga.nested = std::move(devices);
        fpga.nested_via_ref = rng.next_below(2) == 0;
        fpga.ref_name = "fpga-devices";
        plan.families.push_back(std::move(fpga));
    }
    if (with_cpu) {
        FamilyPlan cpu;
        cpu.name = "cpu";
        cpu.tasks = {"multi-thread-parallel-loops"};
        if (rng.next_below(2) == 0)
            cpu.tasks.push_back("omp-num-threads-dse");
        plan.families.push_back(std::move(cpu));
    }

    // The informed strategy falls back across cpu/gpu/fpga by name, so it
    // is only drawn when every family it may name exists.
    std::vector<std::string> family_names;
    for (const FamilyPlan& family : plan.families)
        family_names.push_back(family.name);
    plan.root_strategy = draw_strategy(
        rng, /*allow_informed=*/with_gpu && with_fpga && with_cpu,
        family_names);
    return plan;
}

// ---- plan -> programmatic DesignFlow ---------------------------------

std::shared_ptr<flow::PsaStrategy> make_strategy(const StrategyPlan& plan) {
    switch (plan.kind) {
    case StrategyPlan::Informed: return flow::informed_strategy();
    case StrategyPlan::FixedPath: return flow::fixed_path_strategy(plan.fixed);
    case StrategyPlan::SelectAll: break;
    }
    return flow::select_all();
}

flow::DesignFlow make_flow(const FlowPlan& plan) {
    const auto& registry = flow::TaskRegistry::global();
    flow::DesignFlow out;
    for (const std::string& id : plan.prologue)
        out.prologue.push_back(registry.make(id));

    auto branch = std::make_shared<flow::BranchPoint>();
    branch->name = "A (target)";
    branch->strategy = make_strategy(plan.root_strategy);
    for (const FamilyPlan& family : plan.families) {
        flow::FlowPath path;
        path.name = family.name;
        for (const std::string& id : family.tasks)
            path.tasks.push_back(registry.make(id));
        if (family.nested.has_value()) {
            auto nested = std::make_shared<flow::BranchPoint>();
            nested->name = family.nested->name;
            nested->strategy = make_strategy(family.nested->strategy);
            for (const DevicePlan& device : family.nested->paths) {
                flow::FlowPath leaf;
                leaf.name = device.name;
                for (const std::string& id : device.tasks)
                    leaf.tasks.push_back(registry.make(id));
                nested->paths.push_back(std::move(leaf));
            }
            path.next = std::move(nested);
        }
        branch->paths.push_back(std::move(path));
    }
    out.branch = std::move(branch);
    return out;
}

// ---- plan -> manifest document ---------------------------------------
// Member order deliberately matches flow::to_manifest so that inline-only
// documents compare byte-equal against the exporter.

json::Value strategy_doc(const StrategyPlan& plan) {
    switch (plan.kind) {
    case StrategyPlan::Informed: return json::Value::string("informed");
    case StrategyPlan::FixedPath: {
        json::Value spec = json::Value::object();
        spec.set("name", json::Value::string("fixed-path"));
        json::Value paths = json::Value::array();
        for (const std::string& name : plan.fixed)
            paths.push(json::Value::string(name));
        spec.set("paths", std::move(paths));
        return spec;
    }
    case StrategyPlan::SelectAll: break;
    }
    return json::Value::string("select-all");
}

json::Value tasks_doc(const std::vector<std::string>& ids) {
    json::Value tasks = json::Value::array();
    for (const std::string& id : ids) tasks.push(json::Value::string(id));
    return tasks;
}

json::Value nested_doc(const NestedPlan& plan) {
    json::Value branch = json::Value::object();
    branch.set("name", json::Value::string(plan.name));
    branch.set("strategy", strategy_doc(plan.strategy));
    json::Value paths = json::Value::array();
    for (const DevicePlan& device : plan.paths) {
        json::Value path = json::Value::object();
        path.set("name", json::Value::string(device.name));
        path.set("tasks", tasks_doc(device.tasks));
        paths.push(std::move(path));
    }
    branch.set("paths", std::move(paths));
    return branch;
}

json::Value make_doc(const FlowPlan& plan) {
    json::Value doc = json::Value::object();
    doc.set("psaflow_manifest", json::Value::number(1.0));
    doc.set("prologue", tasks_doc(plan.prologue));

    if (plan.uses_refs()) {
        json::Value defs = json::Value::object();
        for (const FamilyPlan& family : plan.families)
            if (family.nested_via_ref && family.nested.has_value())
                defs.set(family.ref_name, nested_doc(*family.nested));
        doc.set("branches", std::move(defs));
    }

    json::Value branch = json::Value::object();
    branch.set("name", json::Value::string("A (target)"));
    branch.set("strategy", strategy_doc(plan.root_strategy));
    json::Value paths = json::Value::array();
    for (const FamilyPlan& family : plan.families) {
        json::Value path = json::Value::object();
        path.set("name", json::Value::string(family.name));
        path.set("tasks", tasks_doc(family.tasks));
        if (family.nested.has_value()) {
            if (family.nested_via_ref)
                path.set("branch", json::Value::string(family.ref_name));
            else
                path.set("branch", nested_doc(*family.nested));
        }
        paths.push(std::move(path));
    }
    branch.set("paths", std::move(paths));
    doc.set("branch", std::move(branch));
    return doc;
}

// ---- execution capture ------------------------------------------------

struct RunCapture {
    bool threw = false;
    std::string error;
    std::string summary;
};

RunCapture run_probe(const flow::DesignFlow& design) {
    RunCapture cap;
    try {
        auto module = frontend::parse_module(kProbeSource, "manifest-probe");
        analysis::Workload workload = fuzz_workload(*module);
        flow::FlowContext ctx("manifest-probe", std::move(module),
                              std::move(workload));
        const auto result = flow::FlowSession().run(design, std::move(ctx));

        std::ostringstream os;
        os.precision(17);
        os << "reference_seconds=" << result.reference_seconds << "\n";
        for (const auto& line : result.log) os << "| " << line << "\n";
        for (const auto& d : result.designs) {
            os << "design " << d.name() << " speedup=" << d.speedup
               << " loc_delta=" << d.loc_delta
               << " synthesizable=" << d.synthesizable << "\n";
            os << d.source << "\n";
            for (const auto& line : d.log) os << "| " << line << "\n";
        }
        cap.summary = os.str();
    } catch (const Error& e) {
        cap.threw = true;
        cap.error = e.what();
    }
    return cap;
}

} // namespace

std::optional<std::string> check_manifest(std::uint64_t seed) {
    const FlowPlan plan = draw_plan(seed);
    const flow::DesignFlow programmatic = make_flow(plan);
    const json::Value doc = make_doc(plan);

    // Property 1: the exporter and the generator agree on the manifest
    // spelling of the same flow (inline documents only — the exporter
    // never emits "branches" references).
    if (!plan.uses_refs()) {
        const std::string exported =
            json::dump(flow::to_manifest(programmatic));
        const std::string generated = json::dump(doc);
        if (exported != generated)
            return "manifest:export mismatch\n  generated: " + generated +
                   "\n  exported:  " + exported;
    }

    // Lowering a generator-built document must never fail.
    flow::ManifestFlow lowered;
    try {
        lowered = flow::from_manifest(doc);
    } catch (const Error& e) {
        return "manifest:lower valid manifest rejected: " +
               std::string(e.what()) + "\n  document: " + json::dump(doc);
    }

    // Property 2: byte-identical execution.
    const RunCapture direct = run_probe(programmatic);
    const RunCapture via_manifest = run_probe(lowered.flow);
    if (direct.threw != via_manifest.threw)
        return std::string("manifest:run programmatic flow ") +
               (direct.threw ? "failed ('" + direct.error + "')"
                             : "succeeded") +
               " but lowered flow " +
               (via_manifest.threw
                    ? "failed ('" + via_manifest.error + "')"
                    : "succeeded");
    if (direct.threw) {
        if (direct.error != via_manifest.error)
            return "manifest:run error mismatch: '" + direct.error +
                   "' vs '" + via_manifest.error + "'";
        return std::nullopt;
    }
    if (direct.summary != via_manifest.summary)
        return "manifest:run FlowResult differs between the programmatic "
               "flow and its lowered manifest\n  document: " +
               json::dump(doc);
    return std::nullopt;
}

} // namespace psaflow::fuzz
