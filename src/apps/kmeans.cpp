#include "apps/apps.hpp"

#include "interp/value.hpp"
#include "support/prng.hpp"

namespace psaflow::apps {

namespace {

// K-Means classification. The hotspot is the assignment loop: for every
// point, find the nearest of k centroids. Arithmetic intensity against the
// streamed points is low (~3k/8 FLOPs per byte with k=8), so the informed
// PSA classifies it memory-bound and selects the multi-thread CPU branch —
// the paper's outcome. The update phase carries the sums[...] += array
// accumulation the "Remove Array += Dependency" transform targets.
const char* kSource = R"(
void kmeans_assign(int n, int k, int dim, double* points, double* centroids, int* assignment) {
    for (int i = 0; i < n; i = i + 1) {
        double best = 1e300;
        int bestc = 0;
        for (int c = 0; c < k; c = c + 1) {
            double dist = 0.0;
            for (int d = 0; d < dim; d = d + 1) {
                double diff = points[i * dim + d] - centroids[c * dim + d];
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                bestc = c;
            }
        }
        assignment[i] = bestc;
    }
}

void kmeans_update(int n, int k, int dim, double* points, double* centroids, int* assignment, double* sums, int* counts) {
    for (int z = 0; z < k * dim; z = z + 1) {
        sums[z] = 0.0;
    }
    for (int c = 0; c < k; c = c + 1) {
        counts[c] = 0;
    }
    for (int i = 0; i < n; i = i + 1) {
        counts[assignment[i]] += 1;
        for (int d = 0; d < dim; d = d + 1) {
            sums[assignment[i] * dim + d] += points[i * dim + d];
        }
    }
    for (int c = 0; c < k; c = c + 1) {
        if (counts[c] > 0) {
            for (int d = 0; d < dim; d = d + 1) {
                centroids[c * dim + d] = sums[c * dim + d] / counts[c];
            }
        }
    }
}

void run(int n, int k, int dim, int iters, double* points, double* centroids, int* assignment, double* sums, int* counts) {
    for (int t = 0; t < iters; t = t + 1) {
        kmeans_assign(n, k, dim, points, centroids, assignment);
        kmeans_update(n, k, dim, points, centroids, assignment, sums, counts);
    }
}
)";

std::vector<interp::Arg> make_args(double scale) {
    const int n = static_cast<int>(256 * scale);
    const int k = 8;
    const int dim = 8;
    const int iters = 5;

    auto points = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(n * dim), "points");
    SplitMix64 rng(23);
    for (int i = 0; i < n * dim; ++i) points->store(i, rng.uniform(0.0, 10.0));

    auto centroids = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(k * dim), "centroids");
    SplitMix64 crng(29);
    for (int i = 0; i < k * dim; ++i)
        centroids->store(i, crng.uniform(0.0, 10.0));

    auto assignment = std::make_shared<interp::Buffer>(
        ast::Type::Int, static_cast<std::size_t>(n), "assignment");
    auto sums = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(k * dim), "sums");
    auto counts = std::make_shared<interp::Buffer>(
        ast::Type::Int, static_cast<std::size_t>(k), "counts");

    return {
        interp::Value::of_int(n),    interp::Value::of_int(k),
        interp::Value::of_int(dim),  interp::Value::of_int(iters),
        points,                      centroids,
        assignment,                  sums,
        counts,
    };
}

} // namespace

const Application& kmeans() {
    static const Application app = [] {
        Application a;
        a.name = "kmeans";
        a.description = "K-Means classification (k=8, dim=8, 5 iterations; "
                        "memory-bound assignment hotspot)";
        a.source = kSource;
        a.workload.entry = "run";
        a.workload.make_args = make_args;
        a.workload.profile_scale = 1.0;   // n = 256
        a.workload.eval_scale = 16384.0;  // n = 4.19M points
        a.allow_single_precision = true;
        a.paper = PaperSpeedups{30.0, 19.0, 24.0, 7.0, 13.0, 30.0, "cpu"};
        a.paper_loc_omp = 0.04;
        a.paper_loc_hip = 0.81;
        a.paper_loc_a10 = 1.01;
        a.paper_loc_s10 = 1.47;
        return a;
    }();
    return app;
}

} // namespace psaflow::apps
