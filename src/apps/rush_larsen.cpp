#include "apps/apps.hpp"

#include <string>

#include "interp/value.hpp"
#include "support/prng.hpp"

namespace psaflow::apps {

namespace {

constexpr int kGates = 13;

// Rush–Larsen exponential-integrator update for a cardiac-cell membrane
// model: thirteen Hodgkin-Huxley-style gating variables, each with
// voltage-dependent steady state and time "constant" built from exp()
// rate functions, integrated as g' = ginf + (g - ginf) * exp(-dt/tau).
//
// The body is one huge straight-line block per cell: ~80 exp-class
// operations and dozens of live intermediates. That is what produces the
// paper's observations — 255 registers/thread on the GPUs (saturating the
// GTX 1080 Ti) and FPGA designs that overmap both devices at unroll 1
// ("the resulting designs are sizeable and exceed the capacity of our
// current FPGA devices"). Precision-sensitive: single-precision conversion
// is disallowed (ODE stability), so all targets compute in double.
std::string make_source() {
    std::string body;
    // Per-gate rate constants: vary the shift/slope so gates are distinct.
    for (int g = 0; g < kGates; ++g) {
        const std::string i = std::to_string(g);
        const std::string shift = std::to_string(20.0 + 3.5 * g);
        const std::string slope = std::to_string(5.0 + 0.7 * g);
        const std::string ascale = std::to_string(0.32 + 0.01 * g);
        const std::string bscale = std::to_string(0.08 + 0.005 * g);
        body += "        double a" + i + " = " + ascale + " * (v + " + shift +
                ") / (1.0 - exp(0.0 - (v + " + shift + ") / " + slope +
                "));\n";
        body += "        double b" + i + " = " + bscale + " * exp(0.0 - (v + " +
                shift + ") / (" + slope + " * 4.0));\n";
        body += "        double inf" + i + " = a" + i + " / (a" + i + " + b" +
                i + ") * (1.0 / (1.0 + exp(0.0 - (v + " + shift + ") / " +
                slope + ")));\n";
        body += "        double tau" + i + " = 1.0 / (a" + i + " + b" + i +
                ") + 0.1 * exp(0.0 - v * v / 400.0);\n";
        body += "        double g" + i + " = gates[i * " +
                std::to_string(kGates) + " + " + i + "];\n";
        body += "        double e" + i + " = exp(0.0 - dt / tau" + i + ");\n";
        body += "        gates[i * " + std::to_string(kGates) + " + " + i +
                "] = inf" + i + " + (g" + i + " - inf" + i + ") * e" + i +
                ";\n";
    }

    // Membrane currents from the freshly updated gates (a few pow-class
    // nonlinearities), then the voltage update.
    body += "        double ina = 23.0 * pow(gates[i * 13 + 0], 3.0) * "
            "gates[i * 13 + 1] * gates[i * 13 + 2] * (v - 50.0);\n";
    body += "        double ik = 0.282 * pow(gates[i * 13 + 3], 4.0) * (v + "
            "77.0) * exp(0.0 - v / 40.0);\n";
    body += "        double ica = 0.09 * gates[i * 13 + 4] * gates[i * 13 + "
            "5] * (v - 120.0) / (1.0 + exp(0.0 - v / 15.0));\n";
    body += "        double ileak = 0.03 * (v + 54.4);\n";
    body += "        voltage[i] = v - dt * (ina + ik + ica + ileak - "
            "stim[i]);\n";

    std::string source;
    source += "void rush_larsen_step(int n, double dt, double* voltage, "
              "double* gates, double* stim) {\n";
    source += "    for (int i = 0; i < n; i = i + 1) {\n";
    source += "        double v = voltage[i];\n";
    source += body;
    source += "    }\n";
    source += "}\n\n";
    source += "void run(int n, int steps, double dt, double* voltage, "
              "double* gates, double* stim) {\n";
    source += "    for (int t = 0; t < steps; t = t + 1) {\n";
    source += "        rush_larsen_step(n, dt, voltage, gates, stim);\n";
    source += "    }\n";
    source += "}\n";
    return source;
}

std::vector<interp::Arg> make_args(double scale) {
    const int n = static_cast<int>(128 * scale);
    const int steps = 25;

    auto voltage = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(n), "voltage");
    auto gates = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(n * kGates), "gates");
    auto stim = std::make_shared<interp::Buffer>(
        ast::Type::Double, static_cast<std::size_t>(n), "stim");

    SplitMix64 rng(41);
    for (int i = 0; i < n; ++i) {
        voltage->store(i, rng.uniform(-80.0, -20.0));
        stim->store(i, rng.uniform(0.0, 1.0));
    }
    for (int i = 0; i < n * kGates; ++i) gates->store(i, rng.uniform(0.0, 1.0));

    return {
        interp::Value::of_int(n), interp::Value::of_int(steps),
        interp::Value::of_double(0.02),
        voltage, gates, stim,
    };
}

} // namespace

const Application& rush_larsen() {
    static const Application app = [] {
        Application a;
        a.name = "rushlarsen";
        a.description = "Rush-Larsen exponential integrator for a 13-gate "
                        "cardiac cell model (huge straight-line kernel; "
                        "precision-sensitive)";
        a.source = make_source();
        a.workload.entry = "run";
        a.workload.make_args = make_args;
        a.workload.profile_scale = 1.0; // n = 128 cells
        a.workload.eval_scale = 8192.0; // n = 1.05M cells
        a.allow_single_precision = false; // ODE stability demands double
        a.paper = PaperSpeedups{28.0, 63.0, 98.0, -1.0, -1.0, 98.0, "gpu"};
        a.paper_loc_omp = 0.004;
        a.paper_loc_hip = 0.06;
        a.paper_loc_a10 = -1.0; // n/a: designs exceed device capacity
        a.paper_loc_s10 = -1.0;
        return a;
    }();
    return app;
}

} // namespace psaflow::apps
