#include "apps/apps.hpp"

#include "support/error.hpp"

namespace psaflow::apps {

std::vector<const Application*> all_applications() {
    return {&rush_larsen(), &nbody(), &bezier(), &adpredictor(), &kmeans()};
}

const Application& application_by_name(const std::string& name) {
    for (const Application* app : all_applications()) {
        if (app->name == name) return *app;
    }
    throw Error("unknown application '" + name + "'");
}

} // namespace psaflow::apps
