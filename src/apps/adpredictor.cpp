#include "apps/apps.hpp"

#include "interp/value.hpp"
#include "support/prng.hpp"

namespace psaflow::apps {

namespace {

// AdPredictor: Bayesian click-through-rate inference. Every impression
// carries NF=12 feature values; the per-impression score accumulates
// Gaussian message contributions over a *fixed-bound* inner loop with a
// scalar accumulation dependency — exactly the structure the paper calls
// "simple fixed-bound, fully-unrollable inner loops", which sends the
// informed PSA down the CPU+FPGA branch (pipelined, II=1).
const char* kSource = R"(
void adpredictor_infer(int n, float beta2, float* feats, float* wmean, float* wvar, float* preds) {
    for (int i = 0; i < n; i = i + 1) {
        double smean = 0.0;
        double svar = 0.0;
        for (int f = 0; f < 12; f = f + 1) {
            double x = feats[i * 12 + f];
            double t = wmean[f] * x;
            double u = wvar[f] * x * x;
            double g = exp(0.0 - 0.5 * t * t / (u + 1.0));
            double c = erfc(0.0 - t / sqrt(2.0 * u + 2.0));
            smean += t * c;
            svar += u * g;
        }
        double z = smean / sqrt(svar + beta2);
        preds[i] = 0.5 * erfc(0.0 - z * 0.70710678118654752);
    }
}

void run(int n, float beta2, float* feats, float* wmean, float* wvar, float* preds) {
    adpredictor_infer(n, beta2, feats, wmean, wvar, preds);
}
)";

constexpr int kNumFeatures = 12;

std::vector<interp::Arg> make_args(double scale) {
    const int n = static_cast<int>(256 * scale);

    auto feats = std::make_shared<interp::Buffer>(
        ast::Type::Float, static_cast<std::size_t>(n * kNumFeatures),
        "feats");
    SplitMix64 rng(31);
    for (int i = 0; i < n * kNumFeatures; ++i)
        feats->store(i, rng.uniform(0.0, 1.0));

    auto wmean = std::make_shared<interp::Buffer>(ast::Type::Float,
                                                  kNumFeatures, "wmean");
    auto wvar = std::make_shared<interp::Buffer>(ast::Type::Float,
                                                 kNumFeatures, "wvar");
    SplitMix64 wrng(37);
    for (int i = 0; i < kNumFeatures; ++i) {
        wmean->store(i, wrng.uniform(-1.0, 1.0));
        wvar->store(i, wrng.uniform(0.1, 1.0));
    }

    auto preds = std::make_shared<interp::Buffer>(
        ast::Type::Float, static_cast<std::size_t>(n), "preds");

    return {
        interp::Value::of_int(n), interp::Value::of_float(1.0),
        feats,                    wmean,
        wvar,                     preds,
    };
}

} // namespace

const Application& adpredictor() {
    static const Application app = [] {
        Application a;
        a.name = "adpredictor";
        a.description = "AdPredictor Bayesian CTR inference (12 fixed "
                        "features per impression, fully-unrollable inner "
                        "loop)";
        a.source = kSource;
        a.workload.entry = "run";
        a.workload.make_args = make_args;
        a.workload.profile_scale = 1.0;  // n = 256 impressions
        a.workload.eval_scale = 32768.0; // n = 8.39M impressions
        a.allow_single_precision = true;
        a.paper = PaperSpeedups{28.0, 10.0, 10.0, 14.0, 32.0, 32.0, "fpga"};
        a.paper_loc_omp = 0.02;
        a.paper_loc_hip = 0.31;
        a.paper_loc_a10 = 0.42;
        a.paper_loc_s10 = 0.63;
        return a;
    }();
    return app;
}

} // namespace psaflow::apps
