// The five evaluation applications of the paper (Section IV-A): N-Body
// Simulation, K-Means Classification, AdPredictor, Rush Larsen ODE Solver
// and Bezier Surface Generation — each as an HLC source, a deterministic
// workload factory, and the paper's reported Fig. 5 numbers for the
// reproduction benches to compare against.
#pragma once

#include <string>
#include <vector>

#include "analysis/workload.hpp"

namespace psaflow::apps {

/// Fig. 5 hotspot-region speedups as reported in the paper (x vs a single
/// CPU thread). Negative entries mean "not reported" (Rush Larsen FPGA
/// designs exceeded device capacity).
struct PaperSpeedups {
    double omp = 0.0;
    double gpu_1080 = 0.0;
    double gpu_2080 = 0.0;
    double fpga_a10 = 0.0;
    double fpga_s10 = 0.0;
    double auto_selected = 0.0;
    std::string auto_target; ///< "cpu", "gpu" or "fpga"
};

struct Application {
    std::string name;
    std::string description;
    std::string source; ///< HLC translation unit
    analysis::Workload workload;
    bool allow_single_precision = true;
    PaperSpeedups paper;

    /// Paper Table I added-LOC percentages (fractions; <0 = n/a).
    double paper_loc_omp = 0.0;
    double paper_loc_hip = 0.0;
    double paper_loc_a10 = 0.0;
    double paper_loc_s10 = 0.0;
};

[[nodiscard]] const Application& nbody();
[[nodiscard]] const Application& kmeans();
[[nodiscard]] const Application& adpredictor();
[[nodiscard]] const Application& rush_larsen();
[[nodiscard]] const Application& bezier();

/// All five, in the paper's presentation order.
[[nodiscard]] std::vector<const Application*> all_applications();

[[nodiscard]] const Application& application_by_name(const std::string& name);

} // namespace psaflow::apps
