#include "apps/apps.hpp"

#include "interp/value.hpp"
#include "support/prng.hpp"

namespace psaflow::apps {

namespace {

// Bezier surface generation: evaluate a degree-m tensor-product Bezier
// patch on an (nu x nv) sample grid. One flat parallel loop over sample
// points; inside, a complex multi-nested inner structure over the
// (m+1) x (m+1) control grid whose bounds are runtime values — so the
// inner accumulation loops are *not* fully unrollable and the informed PSA
// selects the CPU+GPU branch, as in the paper.
const char* kSource = R"(
void bezier_surface(int nu, int nv, int m, double* binom, double* cx, double* cy, double* cz, double* outx, double* outy, double* outz) {
    for (int p = 0; p < nu * nv; p = p + 1) {
        int ui = p / nv;
        int vi = p % nv;
        double u = 1.0 * ui / (nu - 1);
        double v = 1.0 * vi / (nv - 1);
        double sx = 0.0;
        double sy = 0.0;
        double sz = 0.0;
        for (int a = 0; a < m + 1; a = a + 1) {
            double bu = binom[a] * pow(u, 1.0 * a) * pow(1.0 - u, 1.0 * (m - a));
            for (int b = 0; b < m + 1; b = b + 1) {
                double bv = binom[b] * pow(v, 1.0 * b) * pow(1.0 - v, 1.0 * (m - b));
                double w = bu * bv;
                sx += w * cx[a * (m + 1) + b];
                sy += w * cy[a * (m + 1) + b];
                sz += w * cz[a * (m + 1) + b];
            }
        }
        outx[p] = sx;
        outy[p] = sy;
        outz[p] = sz;
    }
}

void run(int nu, int nv, int m, double* binom, double* cx, double* cy, double* cz, double* outx, double* outy, double* outz) {
    bezier_surface(nu, nv, m, binom, cx, cy, cz, outx, outy, outz);
}
)";

constexpr int kDegree = 15; // 16x16 control grid

std::vector<interp::Arg> make_args(double scale) {
    const int nu = static_cast<int>(8 * scale);
    const int nv = nu;
    const int ctrl = (kDegree + 1) * (kDegree + 1);

    auto binom = std::make_shared<interp::Buffer>(ast::Type::Double,
                                                  kDegree + 1, "binom");
    double coeff = 1.0;
    for (int a = 0; a <= kDegree; ++a) {
        binom->store(a, coeff);
        coeff = coeff * (kDegree - a) / (a + 1);
    }

    auto control = [&](const char* name, std::uint64_t seed) {
        auto buf = std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(ctrl), name);
        SplitMix64 rng(seed);
        for (int i = 0; i < ctrl; ++i) buf->store(i, rng.uniform(-2.0, 2.0));
        return buf;
    };
    auto out = [&](const char* name) {
        return std::make_shared<interp::Buffer>(
            ast::Type::Double, static_cast<std::size_t>(nu * nv), name);
    };

    return {
        interp::Value::of_int(nu), interp::Value::of_int(nv),
        interp::Value::of_int(kDegree),
        binom,
        control("cx", 51), control("cy", 52), control("cz", 53),
        out("outx"), out("outy"), out("outz"),
    };
}

} // namespace

const Application& bezier() {
    static const Application app = [] {
        Application a;
        a.name = "bezier";
        a.description = "Degree-15 tensor-product Bezier surface evaluation "
                        "(complex multi-nested inner loop structure)";
        a.source = kSource;
        a.workload.entry = "run";
        a.workload.make_args = make_args;
        a.workload.profile_scale = 1.0; // 8x8 samples
        a.workload.eval_scale = 10.0;   // 80x80 = 6400 samples
        a.allow_single_precision = false; // surface accuracy: keep double
        a.paper = PaperSpeedups{30.0, 63.0, 67.0, 23.0, 27.0, 67.0, "gpu"};
        a.paper_loc_omp = 0.02;
        a.paper_loc_hip = 0.26;
        a.paper_loc_a10 = 0.34;
        a.paper_loc_s10 = 0.42;
        return a;
    }();
    return app;
}

} // namespace psaflow::apps
