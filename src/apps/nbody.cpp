#include "apps/apps.hpp"

#include "interp/value.hpp"
#include "support/prng.hpp"

namespace psaflow::apps {

namespace {

// All-pairs gravitational N-Body simulation. The hotspot is the force
// loop: a double loop nest with bounds unknown at compile time (the paper's
// characterisation). Compute-bound, parallel outer loop, inner loop bound
// not fixed => the informed PSA selects the CPU+GPU branch.
const char* kSource = R"(
void nbody_step(int n, double dt, double* px, double* py, double* pz, double* vx, double* vy, double* vz, double* mass) {
    for (int i = 0; i < n; i = i + 1) {
        double ax = 0.0;
        double ay = 0.0;
        double az = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            double dx = px[j] - px[i];
            double dy = py[j] - py[i];
            double dz = pz[j] - pz[i];
            double d2 = dx * dx + dy * dy + dz * dz + 0.0001;
            double inv = 1.0 / sqrt(d2);
            double inv3 = inv * inv * inv * mass[j];
            ax += dx * inv3;
            ay += dy * inv3;
            az += dz * inv3;
        }
        vx[i] += dt * ax;
        vy[i] += dt * ay;
        vz[i] += dt * az;
    }
    for (int i = 0; i < n; i = i + 1) {
        px[i] += dt * vx[i];
        py[i] += dt * vy[i];
        pz[i] += dt * vz[i];
    }
}

void run(int n, int steps, double dt, double* px, double* py, double* pz, double* vx, double* vy, double* vz, double* mass) {
    for (int t = 0; t < steps; t = t + 1) {
        nbody_step(n, dt, px, py, pz, vx, vy, vz, mass);
    }
}
)";

std::vector<interp::Arg> make_args(double scale) {
    const int n = static_cast<int>(64 * scale);
    const int steps = 2;

    auto buffer = [&](const char* name, std::uint64_t seed, double lo,
                      double hi) {
        auto buf = std::make_shared<interp::Buffer>(ast::Type::Double,
                                                    static_cast<std::size_t>(n),
                                                    name);
        SplitMix64 rng(seed);
        for (int i = 0; i < n; ++i) buf->store(i, rng.uniform(lo, hi));
        return buf;
    };

    return {
        interp::Value::of_int(n),
        interp::Value::of_int(steps),
        interp::Value::of_double(0.01),
        buffer("px", 11, -1.0, 1.0),
        buffer("py", 12, -1.0, 1.0),
        buffer("pz", 13, -1.0, 1.0),
        buffer("vx", 14, -0.1, 0.1),
        buffer("vy", 15, -0.1, 0.1),
        buffer("vz", 16, -0.1, 0.1),
        buffer("mass", 17, 0.5, 1.5),
    };
}

} // namespace

const Application& nbody() {
    static const Application app = [] {
        Application a;
        a.name = "nbody";
        a.description = "All-pairs gravitational N-Body simulation (O(n^2) "
                        "force loop, 2 time steps)";
        a.source = kSource;
        a.workload.entry = "run";
        a.workload.make_args = make_args;
        a.workload.profile_scale = 1.0;  // n = 64
        a.workload.eval_scale = 1024.0;  // n = 65536
        a.allow_single_precision = true;
        a.paper = PaperSpeedups{30.0, 337.0, 751.0, 1.1, 1.4, 751.0, "gpu"};
        a.paper_loc_omp = 0.02;
        a.paper_loc_hip = 0.37;
        a.paper_loc_a10 = 0.52;
        a.paper_loc_s10 = 0.69;
        return a;
    }();
    return app;
}

} // namespace psaflow::apps
