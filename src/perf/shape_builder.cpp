#include "perf/shape_builder.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/dependence.hpp"
#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"

namespace psaflow::perf {

using namespace psaflow::ast;
using analysis::KernelCharacterization;

namespace {

/// Count scalar VarDecls and total expression nodes in the kernel.
struct BodyStats {
    int scalar_locals = 0;
    int expr_nodes = 0;
};

BodyStats body_stats(const Function& kernel) {
    BodyStats out;
    std::unordered_set<std::string> seen;
    walk(static_cast<const Node&>(*kernel.body), [&](const Node& n) {
        if (const auto* d = dyn_cast<VarDecl>(&n)) {
            if (!d->is_array && seen.insert(d->name).second)
                ++out.scalar_locals;
        }
        switch (n.kind()) {
            case NodeKind::Binary:
            case NodeKind::Unary:
            case NodeKind::Call:
            case NodeKind::Index:
                ++out.expr_nodes;
                break;
            default:
                break;
        }
        return true;
    });
    return out;
}

} // namespace

int estimate_regs_per_thread(const Function& kernel, bool double_precision) {
    const BodyStats stats = body_stats(kernel);
    // Live scalars need a register pair in double precision; expression
    // trees add temporaries roughly proportional to their size (the
    // compiler keeps several subexpressions in flight).
    const double per_local = double_precision ? 4.0 : 2.0;
    const double per_node = double_precision ? 0.5 : 0.25;
    const double regs = 16.0 + per_local * stats.scalar_locals +
                        per_node * stats.expr_nodes;
    return static_cast<int>(std::min(regs, 255.0));
}

platform::KernelShape
build_kernel_shape(const Function& kernel, const sema::TypeInfo& types,
                   const Module& module, const KernelCharacterization& ch,
                   const ShapeOptions& options) {
    const double s = options.relative_scale;
    platform::KernelShape shape;
    shape.flops = ch.flops.at(s);
    shape.footprint_bytes = ch.footprint.at(s);
    shape.stream_bytes = ch.mem_bytes.at(s);
    shape.bytes_in = ch.bytes_in.at(s);
    shape.bytes_out = ch.bytes_out.at(s);
    shape.invocations = static_cast<double>(ch.kernel_calls);
    shape.double_precision = !options.single_precision;
    shape.regs_per_thread =
        estimate_regs_per_thread(kernel, shape.double_precision);

    // ---- parallel iterations: the kernel's outermost loop -----------------
    auto outer_loops =
        meta::outermost_for_loops(const_cast<Function&>(kernel));
    ensure(!outer_loops.empty(),
           "build_kernel_shape: kernel has no outermost loop");
    const For* outer = outer_loops.front();
    if (const auto* lp = ch.loop(outer->id)) {
        shape.parallel_iters = lp->trips_total.at(s);
    } else {
        shape.parallel_iters = 1.0;
    }

    // ---- dependent fraction: flops inside inner loops with *carried*
    // dependencies, as a fraction of kernel flops. Pure scalar reductions
    // are excluded: compilers unroll them into independent accumulators, so
    // they do not starve GPU ILP. -------------------------------------------
    double dep_flops = 0.0;
    for (For* inner : meta::inner_for_loops(*const_cast<For*>(outer))) {
        const auto info = analysis::analyze_dependence(module, *inner);
        if (!info.carried.empty() || !info.array_accumulations.empty()) {
            if (const auto* lp = ch.loop(inner->id)) {
                dep_flops += lp->flops.at(s);
            }
        }
    }
    if (shape.flops > 0.0) {
        shape.dependent_fraction =
            std::clamp(dep_flops / shape.flops, 0.0, 1.0);
        shape.transcendental_fraction =
            std::clamp(ch.call_flops.at(s) / shape.flops, 0.0, 1.0);
    }

    // ---- FPGA pipeline issue rate: iterations of the remaining
    // (non-unrolled) inner loops per outer iteration -------------------------
    double inner_trips_total = 0.0;
    for (For* inner : meta::inner_for_loops(*const_cast<For*>(outer))) {
        if (const auto* lp = ch.loop(inner->id)) {
            // Only innermost levels issue elements through the pipeline;
            // intermediate levels are control. Counting every level's trips
            // overestimates mildly and keeps the model conservative.
            if (meta::inner_for_loops(*inner).empty())
                inner_trips_total += lp->trips_total.at(s);
        }
    }
    const double outer_trips = std::max(1.0, shape.parallel_iters);
    shape.sequential_cycles_per_iter =
        std::max(1.0, inner_trips_total / outer_trips);

    // ---- per-buffer modelling ----------------------------------------------

    // Static access structure: an array whose every subscript advances with
    // the outer induction variable is *streamed* (each outer iteration
    // touches fresh elements, held in registers across inner reuse); an
    // array subscripted independently of the outer variable is *rescanned*
    // every iteration (the N-Body pos[j] pattern) and pays full traffic.
    std::unordered_set<std::string> rescanned;
    walk(static_cast<const Node&>(*outer), [&](const Node& n) {
        const auto* ix = dyn_cast<Index>(&n);
        if (ix == nullptr) return true;
        const auto* base = dyn_cast<Ident>(ix->base.get());
        if (base == nullptr) return true;
        bool uses_outer = false;
        walk(static_cast<const Node&>(*ix->index), [&](const Node& sub) {
            if (const auto* id = dyn_cast<Ident>(&sub)) {
                if (id->name == outer->var) uses_outer = true;
            }
            return !uses_outer;
        });
        if (!uses_outer) rescanned.insert(base->name);
        return true;
    });

    double fpga_traffic = 0.0;
    double shared_saved = 0.0;
    double total_accessed = 0.0;
    double total_extent = 0.0; // summed buffer extents (for GPU staging)
    for (const auto& buf : ch.buffers) {
        const double accessed = buf.accessed.at(s);
        const double footprint = buf.footprint(s);
        total_accessed += accessed;
        total_extent += buf.extent(s);

        // FPGA: small arrays live in BRAM after an initial load; streamed
        // arrays pay their footprint once per kernel invocation; rescanned
        // arrays pay every access.
        if (footprint <= options.fpga_onchip_threshold_bytes) {
            fpga_traffic += footprint;
        } else if (rescanned.count(buf.name) == 0) {
            fpga_traffic += footprint * std::max(1.0, shape.invocations);
        } else {
            fpga_traffic += accessed;
        }

        // GPU shared memory: staged arrays are read once per block from DRAM
        // instead of once per thread.
        if (std::find(options.shared_arrays.begin(),
                      options.shared_arrays.end(),
                      buf.name) != options.shared_arrays.end()) {
            shared_saved += accessed;
        }
    }
    shape.fpga_stream_bytes = fpga_traffic;
    // The generated HIP host wrapper copies read ranges in and written
    // ranges out (directional staging from the data in/out analysis).
    shape.gpu_transfer_bytes = shape.bytes_in + shape.bytes_out;
    (void)total_extent;
    if (total_accessed > 0.0)
        shape.shared_mem_reuse =
            std::clamp(shared_saved / total_accessed, 0.0, 0.98);

    return shape;
}

} // namespace psaflow::perf
