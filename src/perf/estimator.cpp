#include "perf/estimator.hpp"

#include <algorithm>

namespace psaflow::perf {

using namespace psaflow::platform;

double cpu_reference_seconds(const KernelShape& shape) {
    return CpuModel(epyc7543()).time_single_thread(shape);
}

double omp_seconds(const KernelShape& shape, int threads) {
    return CpuModel(epyc7543()).time_multi_thread(shape, threads);
}

GpuEstimate gpu_estimate(const KernelShape& shape,
                         const GpuDesignPoint& point) {
    GpuModel model(gpu_spec(point.device));
    LaunchConfig config;
    config.block_size = point.block_size;
    config.pinned_host_memory = point.pinned_host_memory;
    config.smem_per_block_kb = point.smem_per_block_kb;
    return model.estimate(shape, config);
}

FpgaEstimate fpga_estimate(const KernelShape& shape,
                           const FpgaDesignPoint& point) {
    FpgaModel model(fpga_spec(point.device));
    return model.estimate(shape, point.report);
}

double transfer_seconds_estimate(const KernelShape& shape) {
    // The PSA offload test uses the best-case link among the available
    // accelerators: pinned PCIe to a GPU or USM to the Stratix10.
    const double best_bw =
        std::max({gtx1080ti().pcie_pinned_bw_gbs,
                  rtx2080ti().pcie_pinned_bw_gbs, stratix10().usm_bw_gbs}) *
        1e9;
    return shape.transfer_bytes() / best_bw;
}

} // namespace psaflow::perf
