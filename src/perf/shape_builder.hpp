// Builds the device-independent KernelShape from the dynamic kernel
// characterisation plus the static structure of (this design variant of)
// the kernel. Every quantity is extrapolated from profile scale to the
// requested evaluation scale with the fitted power laws.
#pragma once

#include <string>
#include <vector>

#include "analysis/characterize.hpp"
#include "ast/nodes.hpp"
#include "platform/kernel_shape.hpp"
#include "sema/type_check.hpp"

namespace psaflow::perf {

struct ShapeOptions {
    /// Evaluation scale relative to profile scale.
    double relative_scale = 1.0;
    /// The design computes in single precision (SP transforms applied).
    bool single_precision = false;
    /// Arrays staged in GPU shared memory (from the shared-mem annotation).
    std::vector<std::string> shared_arrays;
    /// Arrays whose footprint fits on-chip FPGA BRAM are buffered there and
    /// do not generate DDR traffic beyond the initial load.
    double fpga_onchip_threshold_bytes = 256.0 * 1024.0;
    /// (internal) names of kernel arrays rescanned every outer iteration;
    /// filled by build_kernel_shape from static access structure.
};

/// Assemble a KernelShape for `kernel` (in its current, possibly
/// transformed, form) from `ch`. `ch` must have been produced by
/// characterize_kernel on the same module state.
[[nodiscard]] platform::KernelShape
build_kernel_shape(const ast::Function& kernel, const sema::TypeInfo& types,
                   const ast::Module& module,
                   const analysis::KernelCharacterization& ch,
                   const ShapeOptions& options);

/// Register-pressure estimate for one thread executing the body of the
/// kernel's outer loop: parameters + live locals + expression temporaries,
/// doubled for double precision. Deterministic and documented — this is
/// the lever that reproduces the paper's "255 registers per thread" Rush
/// Larsen observation.
[[nodiscard]] int estimate_regs_per_thread(const ast::Function& kernel,
                                           bool double_precision);

} // namespace psaflow::perf
