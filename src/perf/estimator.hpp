// Design-point performance estimation: one thin, uniform interface over the
// platform models, used by the PSA strategies, the DSE engines and the
// Fig. 5 / Fig. 6 benches. All times are seconds for the hotspot region of
// one application run; speedups are against the single-thread CPU reference.
#pragma once

#include <string>

#include "platform/cpu.hpp"
#include "platform/devices.hpp"
#include "platform/fpga.hpp"
#include "platform/gpu.hpp"
#include "platform/kernel_shape.hpp"

namespace psaflow::perf {

/// The single-thread CPU reference time for the *unoptimised* kernel shape.
[[nodiscard]] double cpu_reference_seconds(const platform::KernelShape& shape);

/// OpenMP multi-thread CPU time.
[[nodiscard]] double omp_seconds(const platform::KernelShape& shape,
                                 int threads);

struct GpuDesignPoint {
    platform::DeviceId device = platform::DeviceId::Rtx2080Ti;
    int block_size = 256;
    bool pinned_host_memory = false;
    double smem_per_block_kb = 0.0;
};

[[nodiscard]] platform::GpuEstimate
gpu_estimate(const platform::KernelShape& shape, const GpuDesignPoint& point);

struct FpgaDesignPoint {
    platform::DeviceId device = platform::DeviceId::Stratix10;
    platform::FpgaReport report; ///< from the unroll DSE
};

[[nodiscard]] platform::FpgaEstimate
fpga_estimate(const platform::KernelShape& shape,
              const FpgaDesignPoint& point);

/// Estimated accelerator transfer time for the PSA offload test
/// (T_data_trnsfr in Fig. 3), using the faster of the candidate links.
[[nodiscard]] double
transfer_seconds_estimate(const platform::KernelShape& shape);

} // namespace psaflow::perf
