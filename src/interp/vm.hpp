// Bytecode VM for the profiling interpreter.
//
// Drop-in replacement for the tree-walking Interpreter: same constructor
// shape, same call/profile interface, same cooperative cancellation (the
// dispatch loop polls the ambient CancelToken on exactly the tree walker's
// step cadence) and — by construction of the lowering in bytecode.hpp —
// bit-identical results, profiles and error strings. Engine selection
// lives in interpreter.hpp (`Engine`, `--interp`, PSAFLOW_INTERP).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"

namespace psaflow::interp {

/// Executes checked HLC modules by lowering them to bytecode once and then
/// running a register-based dispatch loop. Observationally identical to
/// Interpreter; differential coverage lives in tests/test_vm.cpp and the
/// `interp:vm` fuzz oracle.
class Vm {
public:
    /// `module` and `types` must outlive the VM; `types` must come from
    /// sema::check on exactly this module. Lowering happens here (O(AST),
    /// negligible next to any profiled run).
    Vm(const ast::Module& module, const sema::TypeInfo& types,
       InterpOptions options = {});

    ~Vm();
    Vm(const Vm&) = delete;
    Vm& operator=(const Vm&) = delete;

    /// Call function `name` with `args` — contract and error behavior of
    /// Interpreter::call.
    Value call(const std::string& name, const std::vector<Arg>& args);

    /// Profile of everything executed so far (meaningful when
    /// options.profile was set).
    [[nodiscard]] const ExecutionProfile& profile() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace psaflow::interp
