// Execution profiles collected by the interpreter. These are the raw
// material of the paper's dynamic analyses: per-loop cost ("loop timers"),
// trip counts, per-buffer access ranges (data in/out), and observed argument
// aliasing for the kernel function.
#pragma once

#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::interp {

/// Statistics for one loop node, keyed by node id.
struct LoopStats {
    long long entries = 0;   ///< how many times execution reached the loop
    long long trips = 0;     ///< total iterations across all entries
    double cost = 0.0;       ///< cost units attributed (including nested work)
    /// Cost excluding work done inside called functions: a time-step driver
    /// loop has a large `cost` but a tiny `self_cost`, so hotspot detection
    /// ranks the loop *doing* the work, not the loop calling it.
    double self_cost = 0.0;
    double flops = 0.0;      ///< floating-point operation count (weighted)
    double mem_bytes = 0.0;  ///< bytes moved by array accesses

    [[nodiscard]] double avg_trip_count() const {
        return entries == 0 ? 0.0
                            : static_cast<double>(trips) /
                                  static_cast<double>(entries);
    }
};

/// Observed access range for one buffer within the focus function.
struct BufferAccess {
    std::string buffer_name; ///< name of the parameter inside the focus fn
    int elem_bytes = 0;
    long long min_read = std::numeric_limits<long long>::max();
    long long max_read = -1;
    long long min_write = std::numeric_limits<long long>::max();
    long long max_write = -1;
    long long reads = 0;
    long long writes = 0;

    [[nodiscard]] bool read() const { return reads > 0; }
    [[nodiscard]] bool written() const { return writes > 0; }

    /// Bytes that must be transferred *to* an accelerator for this buffer:
    /// the extent of the read range.
    [[nodiscard]] long long bytes_in() const {
        return read() ? (max_read - min_read + 1) * elem_bytes : 0;
    }
    /// Bytes transferred *back*: the extent of the written range.
    [[nodiscard]] long long bytes_out() const {
        return written() ? (max_write - min_write + 1) * elem_bytes : 0;
    }
};

/// Full profile of one interpreted run.
struct ExecutionProfile {
    /// Per-loop statistics, keyed by AST node id.
    std::unordered_map<ast::Node::Id, LoopStats> loops;

    /// Total cost units of the run (the "single CPU thread" reference work).
    double total_cost = 0.0;
    double total_flops = 0.0;
    double total_call_flops = 0.0; ///< flops charged by builtin math calls
    double total_mem_bytes = 0.0;

    /// Focus-function observations (set when the interpreter was given a
    /// focus function, normally the extracted hotspot kernel).
    std::string focus_function;
    long long focus_calls = 0;
    double focus_cost = 0.0;
    double focus_flops = 0.0;
    double focus_call_flops = 0.0;
    double focus_mem_bytes = 0.0;
    /// Access summary per pointer parameter of the focus function.
    std::vector<BufferAccess> focus_buffers;
    /// True if two pointer arguments of any focus call named the same buffer.
    bool focus_args_alias = false;

    [[nodiscard]] const LoopStats* loop(ast::Node::Id id) const {
        auto it = loops.find(id);
        return it == loops.end() ? nullptr : &it->second;
    }

    [[nodiscard]] const BufferAccess* buffer(const std::string& name) const {
        for (const auto& b : focus_buffers) {
            if (b.buffer_name == name) return &b;
        }
        return nullptr;
    }

    /// Total bytes in+out for the focus function — the paper's "data in/out
    /// analysis" result used to estimate accelerator transfer time.
    [[nodiscard]] long long focus_bytes_in() const {
        long long total = 0;
        for (const auto& b : focus_buffers) total += b.bytes_in();
        return total;
    }
    [[nodiscard]] long long focus_bytes_out() const {
        long long total = 0;
        for (const auto& b : focus_buffers) total += b.bytes_out();
        return total;
    }
};

} // namespace psaflow::interp
