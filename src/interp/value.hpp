// Runtime values and buffers for the HLC interpreter.
//
// The interpreter is the substitute for native execution in the paper's
// *dynamic* design-flow tasks (hotspot detection, trip-count, data-movement
// and alias analyses all carry the "requires program execution" marker in
// Fig. 4). Scalars are stored widened; the static type tag decides rounding
// so single-precision transforms are observable in results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ast/type.hpp"
#include "support/error.hpp"

namespace psaflow::interp {

/// A scalar runtime value with its HLC type.
class Value {
public:
    Value() = default;

    [[nodiscard]] static Value of_int(long long v) {
        Value out;
        out.type_ = ast::Type::Int;
        out.int_ = v;
        return out;
    }
    [[nodiscard]] static Value of_bool(bool v) {
        Value out;
        out.type_ = ast::Type::Bool;
        out.bool_ = v;
        return out;
    }
    [[nodiscard]] static Value of_double(double v) {
        Value out;
        out.type_ = ast::Type::Double;
        out.num_ = v;
        return out;
    }
    /// Stored at float precision (rounded), typed Float.
    [[nodiscard]] static Value of_float(double v) {
        Value out;
        out.type_ = ast::Type::Float;
        out.num_ = static_cast<double>(static_cast<float>(v));
        return out;
    }
    [[nodiscard]] static Value void_value() { return Value{}; }

    [[nodiscard]] ast::Type type() const { return type_; }

    /// Numeric read with implicit conversion; throws for bool/void.
    [[nodiscard]] double as_double() const {
        switch (type_) {
            case ast::Type::Int: return static_cast<double>(int_);
            case ast::Type::Float:
            case ast::Type::Double: return num_;
            default: throw InterpError("value is not numeric");
        }
    }

    /// Integer read; floating values truncate toward zero (C semantics).
    [[nodiscard]] long long as_int() const {
        switch (type_) {
            case ast::Type::Int: return int_;
            case ast::Type::Float:
            case ast::Type::Double: return static_cast<long long>(num_);
            default: throw InterpError("value is not numeric");
        }
    }

    [[nodiscard]] bool as_bool() const {
        if (type_ != ast::Type::Bool)
            throw InterpError("value is not bool");
        return bool_;
    }

    /// Convert to the declared type `want` (assignment / parameter passing).
    [[nodiscard]] Value convert_to(ast::Type want) const {
        switch (want) {
            case ast::Type::Int: return of_int(as_int());
            case ast::Type::Float: return of_float(as_double());
            case ast::Type::Double: return of_double(as_double());
            case ast::Type::Bool: return of_bool(as_bool());
            default: throw InterpError("cannot convert to void");
        }
    }

private:
    ast::Type type_ = ast::Type::Void;
    double num_ = 0.0;
    long long int_ = 0;
    bool bool_ = false;
};

/// A typed linear buffer backing an HLC array. Buffers have identity (`id`)
/// — the dynamic pointer-alias analysis checks whether two kernel arguments
/// name the same buffer.
class Buffer {
public:
    Buffer(ast::Type elem, std::size_t size, std::string name = {})
        : elem_(elem), name_(std::move(name)), data_(size, 0.0),
          id_(next_id()) {
        ensure(is_numeric(elem), "buffers hold numeric elements");
    }

    [[nodiscard]] ast::Type elem_type() const { return elem_; }
    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int elem_bytes() const { return ast::size_of(elem_); }

    [[nodiscard]] double load(long long index) const {
        check(index);
        return data_[static_cast<std::size_t>(index)];
    }

    void store(long long index, double value) {
        check(index);
        // Stores round to the element type so float arrays behave like
        // float arrays.
        if (elem_ == ast::Type::Float)
            value = static_cast<double>(static_cast<float>(value));
        else if (elem_ == ast::Type::Int)
            value = static_cast<double>(static_cast<long long>(value));
        data_[static_cast<std::size_t>(index)] = value;
    }

    [[nodiscard]] const std::vector<double>& raw() const { return data_; }
    [[nodiscard]] std::vector<double>& raw() { return data_; }

private:
    void check(long long index) const {
        if (index < 0 || static_cast<std::size_t>(index) >= data_.size())
            throw InterpError("buffer '" + name_ + "' index " +
                              std::to_string(index) + " out of bounds [0, " +
                              std::to_string(data_.size()) + ")");
    }

    static int next_id();

    ast::Type elem_;
    std::string name_;
    std::vector<double> data_;
    int id_;
};

using BufferPtr = std::shared_ptr<Buffer>;

} // namespace psaflow::interp
