// Bytecode for the profiling interpreter.
//
// The tree walker in interpreter.cpp pays virtual dispatch, a per-variable
// hash lookup and a Value box for every node it touches; on a cold compile
// that constant factor dominates the whole flow (BENCH_5: 26-79x cold vs
// warm). This compiler lowers a checked HLC module once into a compact
// register-based instruction stream whose dispatch loop (vm.hpp) performs
// the *same sequence of charges in the same order* as the tree walker —
// profiling hooks (loop trip counters, work estimates, memory footprints,
// aliasing probes) are explicit instructions, so profiles, results and
// error strings come out bit-identical while the walking overhead is gone.
//
// Lowering invariants relied on throughout (all guaranteed by sema::check):
//   - one declared type per name per function, so every scalar gets a fixed
//     register and every array a fixed buffer slot;
//   - for-loop init/limit/step and subscripts are statically Int;
//   - conditions and logical operands are strictly Bool;
//   - call arity and argument kinds match the callee's parameters.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/nodes.hpp"
#include "sema/builtins.hpp"
#include "sema/type_check.hpp"

namespace psaflow::interp::bc {

/// Instruction set. Naming: I/D/F suffixes are the *static* operand types
/// (Int, Double, Float); Float values live in double registers, rounded to
/// float precision exactly where the tree walker rounds (Value::of_float).
/// "charge-free" ops mirror tree-walker work that never called charge().
enum class Op : std::uint8_t {
    // ---- charge-free data movement ----
    LoadI,  ///< S[a].i = int_pool[b]
    LoadD,  ///< S[a].d = real_pool[b]
    LoadB,  ///< S[a].b = (b != 0)
    Mov,    ///< S[a] = S[b] (raw copy)
    I2D,    ///< S[a].d = double(S[b].i)
    D2I,    ///< S[a].i = (long long)S[b].d   (truncate toward zero)
    D2F,    ///< S[a].d = double(float(S[b].d))
    I2F,    ///< S[a].d = double(float(double(S[b].i)))
    // ---- charge-free control flow ----
    Jmp,  ///< pc = a
    JmpF, ///< if (!S[a].b) pc = b
    JmpT, ///< if (S[a].b) pc = b
    // ---- standalone charges (tree walker charges before evaluating) ----
    ChargeCmp,    ///< charge(kCmpCost): If/While heads, And/Or
    ChargeAssign, ///< charge(kAssignCost): Assign and VarDecl statements
    // ---- int arithmetic (charge kIntOpCost) ----
    AddI, ///< charge(1); S[a].i = S[b].i + S[c].i
    SubI,
    MulI,
    DivI, ///< charge(1); throws on S[c].i == 0
    ModI, ///< charge(1); throws on S[c].i == 0
    NegI, ///< charge(1); S[a].i = -S[b].i
    IncI, ///< S[a].i = S[b].i + S[c].i, charge-free (loop var update)
    // ---- double arithmetic (charge w,w with w = Div ? 4 : 1) ----
    AddD,
    SubD,
    MulD,
    DivD,
    NegD,
    // ---- float arithmetic: compute in float, store rounded ----
    AddF, ///< charge(1,1); S[a].d = double(float(S[b].d) + float(S[c].d))
    SubF,
    MulF,
    DivF, ///< charge(4,4)
    NegF, ///< charge(1,1); S[a].d = double(float(-S[b].d))
    // ---- compound-assign arithmetic (the tree walker's `combined`:
    //      Float targets compute in double, then round once) ----
    CAddI, ///< charge(1,0); S[a].i = S[b].i + S[c].i
    CSubI,
    CMulI,
    CDivI, ///< charge(4,0); throws on S[c].i == 0
    CAddD, ///< charge(1,1)
    CSubD,
    CMulD,
    CDivD, ///< charge(4,4)
    CAddF, ///< charge(1,1); S[a].d = double(float(S[b].d + S[c].d))
    CSubF,
    CMulF,
    CDivF, ///< charge(4,4)
    // ---- comparisons (charge kCmpCost) ----
    LtI, ///< charge(1); S[a].b = S[b].i < S[c].i
    LeI,
    GtI,
    GeI,
    EqI,
    NeI,
    LtD, ///< charge(1); S[a].b = S[b].d < S[c].d
    LeD,
    GtD,
    GeD,
    EqD,
    NeD,
    NotB, ///< charge(1); S[a].b = !S[b].b
    // ---- for loops ----
    LoopEnter, ///< profiling: ++entries of loop_pool[a], push active loop
    LoopHead,  ///< charge(kCmpCost); if (S[a].i >= S[b].i) pc = c
    LoopTrip,  ///< profiling: ++trips of loop_pool[a]; charge(kLoopIterCost)
    LoopExit,  ///< profiling: pop active loop
    StepCheck, ///< if (S[a].i <= 0) throw InterpError(name_pool[b])
    // ---- buffers ----
    NewBuf,    ///< B[a] = fresh Buffer(buf_pool[c], size S[b].i)
    LoadElemI, ///< note_access(read); S[a].i = (long long)B[b]->load(S[c].i)
    LoadElemF, ///< note_access(read); S[a].d = round_f(B[b]->load(S[c].i))
    LoadElemD, ///< note_access(read); S[a].d = B[b]->load(S[c].i)
    StoreElem, ///< B[a]->store(S[b].i, S[c].d); note_access(write)
    // ---- calls and termination ----
    CallBuiltin, ///< S[a] = builtin_pool[b](args at arg_pool[c..])
    CallUser,    ///< call functions[b] with args at arg_pool[c..], result -> a
    Ret,         ///< return S[a] (already converted to the return type)
    RetVoid,     ///< return from a void function
    Trap,        ///< throw InterpError(name_pool[a])
};

[[nodiscard]] const char* to_string(Op op);

/// One instruction. Operand meaning is per-op (see Op); `a` is usually the
/// destination scalar register, `b`/`c` sources or pool indices.
struct Insn {
    Op op;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
};

/// Element type and declared name of a local array (NewBuf operand).
struct BufDecl {
    ast::Type elem = ast::Type::Double;
    std::string name;
};

/// Compile-time view of one parameter, in declaration order. Scalar params
/// bind to scalar registers 0..n in scalar-param order; pointer params bind
/// to buffer slots 0..m in pointer-param order.
struct ParamSpec {
    bool is_pointer = false;
    ast::Type elem = ast::Type::Double;
    std::string name;
};

struct CompiledFunction {
    std::string name;
    ast::Type ret = ast::Type::Void;
    std::vector<ParamSpec> params;
    std::uint32_t n_sregs = 0; ///< scalar frame size (named vars + temps)
    std::uint32_t n_bregs = 0; ///< buffer frame size
    bool is_focus = false;     ///< profile focus function (baked at compile)
    std::vector<Insn> code;
};

/// A whole lowered module. Pools are shared across functions; the loop pool
/// maps compact loop indices back to AST node ids so profiles stay keyed
/// exactly like the tree walker's.
struct CompiledModule {
    std::vector<CompiledFunction> functions;
    std::unordered_map<std::string, std::uint32_t> fn_index;
    std::vector<long long> int_pool;
    std::vector<double> real_pool;
    std::vector<std::string> name_pool; ///< pre-composed error messages
    std::vector<const sema::BuiltinInfo*> builtin_pool;
    std::vector<ast::Node::Id> loop_pool; ///< For node ids, compile order
    std::vector<BufDecl> buf_pool;
    std::vector<std::int32_t> arg_pool; ///< flattened call argument registers

    [[nodiscard]] const CompiledFunction* find(const std::string& name) const {
        auto it = fn_index.find(name);
        return it == fn_index.end() ? nullptr : &functions[it->second];
    }
};

/// Lower every function of a checked module. `focus_function` is baked into
/// the CompiledFunction::is_focus flags (compilation is O(AST) and cheap
/// next to any profiled run, so the VM compiles per run like the tree
/// walker constructs its Impl).
[[nodiscard]] CompiledModule compile(const ast::Module& module,
                                     const sema::TypeInfo& types,
                                     const std::string& focus_function = {});

/// Human-readable listing of one function / the whole module, used by the
/// lowering snapshot tests. Loop operands print as pool indices (node ids
/// are process-unique and would not be stable snapshot material).
[[nodiscard]] std::string disassemble(const CompiledModule& module,
                                      const CompiledFunction& fn);
[[nodiscard]] std::string disassemble(const CompiledModule& module);

} // namespace psaflow::interp::bc
