#include "interp/interpreter.hpp"

#include <atomic>
#include <cstdlib>
#include <unordered_map>

#include "interp/vm.hpp"
#include "sema/builtins.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace psaflow::interp {

namespace {

using namespace psaflow::ast;

// Deterministic cost-unit weights. Only relative magnitudes matter: hotspot
// detection ranks loops, and the CPU reference time in the perf models is
// derived from flop/byte counts, not from these units.
constexpr double kIntOpCost = 1.0;
constexpr double kCmpCost = 1.0;
constexpr double kMemCost = 2.0;
constexpr double kLoopIterCost = 2.0;
constexpr double kAssignCost = 1.0;
constexpr double kCallCost = 8.0;

int flop_weight(BinaryOp op) {
    switch (op) {
        case BinaryOp::Div: return 4;
        default: return 1;
    }
}

} // namespace

int Buffer::next_id() {
    // Atomic: buffers are allocated from concurrent flow-engine paths.
    static std::atomic<int> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

struct Interpreter::Impl {
    const Module& module;
    const sema::TypeInfo& types;
    InterpOptions options;
    ExecutionProfile prof;

    using Slot = std::variant<Value, BufferPtr>;
    using Frame = std::unordered_map<std::string, Slot>;
    std::vector<Frame> frames;

    // Loop attribution stack: every charge is added to all active loops;
    // `frame` records the call depth the loop belongs to so self-cost can
    // exclude work done inside called functions.
    struct ActiveLoop {
        LoopStats* stats;
        std::size_t frame;
    };
    std::vector<ActiveLoop> loop_stack;

    // Focus-function tracking (active only at recursion depth 1).
    int focus_depth = 0;
    std::unordered_map<int, std::size_t> focus_buffer_index; // buffer id -> idx

    long long steps = 0;

    enum class Flow { Normal, Returned };
    Value return_value;

    Impl(const Module& m, const sema::TypeInfo& t, InterpOptions o)
        : module(m), types(t), options(std::move(o)) {}

    // ---- bookkeeping -------------------------------------------------------

    void charge(double cost, double flops = 0.0, double bytes = 0.0) {
        if (++steps > options.max_steps)
            throw InterpError("execution exceeded max_steps (runaway loop?)");
        // Cooperative cancellation: a serving deadline must be able to
        // interrupt a long profiling run, so poll the ambient token every
        // few thousand steps (a TLS read; the clock is only consulted when
        // a deadline is armed).
        if ((steps & 0x1fff) == 0) poll_cancellation();
        if (!options.profile) return;
        prof.total_cost += cost;
        prof.total_flops += flops;
        prof.total_mem_bytes += bytes;
        for (ActiveLoop& al : loop_stack) {
            al.stats->cost += cost;
            al.stats->flops += flops;
            al.stats->mem_bytes += bytes;
            if (al.frame == frames.size()) al.stats->self_cost += cost;
        }
    }

    void note_access(const BufferPtr& buf, long long index, bool write) {
        charge(kMemCost, 0.0, buf->elem_bytes());
        if (!options.profile || focus_depth != 1) return;
        auto it = focus_buffer_index.find(buf->id());
        if (it == focus_buffer_index.end()) return;
        BufferAccess& acc = prof.focus_buffers[it->second];
        if (write) {
            acc.min_write = std::min(acc.min_write, index);
            acc.max_write = std::max(acc.max_write, index);
            ++acc.writes;
        } else {
            acc.min_read = std::min(acc.min_read, index);
            acc.max_read = std::max(acc.max_read, index);
            ++acc.reads;
        }
    }

    // ---- environment -------------------------------------------------------

    Frame& frame() { return frames.back(); }

    Slot& lookup(const std::string& name, SrcLoc loc) {
        auto it = frame().find(name);
        if (it == frame().end())
            throw InterpError(to_string(loc) + ": unbound name '" + name + "'");
        return it->second;
    }

    Value scalar(const std::string& name, SrcLoc loc) {
        Slot& slot = lookup(name, loc);
        auto* v = std::get_if<Value>(&slot);
        if (v == nullptr)
            throw InterpError(to_string(loc) + ": '" + name +
                              "' is an array, not a scalar");
        return *v;
    }

    BufferPtr buffer(const std::string& name, SrcLoc loc) {
        Slot& slot = lookup(name, loc);
        auto* b = std::get_if<BufferPtr>(&slot);
        if (b == nullptr)
            throw InterpError(to_string(loc) + ": '" + name +
                              "' is a scalar, not an array");
        return *b;
    }

    // ---- calls -------------------------------------------------------------

    Value call_function(const Function& fn, std::vector<Slot> arg_slots) {
        charge(kCallCost);
        ensure(arg_slots.size() == fn.params.size(),
               "internal: call arity mismatch for '" + fn.name + "'");

        const bool is_focus =
            options.profile && fn.name == options.focus_function;
        double cost_before = 0.0;
        double flops_before = 0.0;
        double call_flops_before = 0.0;
        double bytes_before = 0.0;
        if (is_focus) {
            ++focus_depth;
            if (focus_depth == 1) {
                prof.focus_function = fn.name;
                ++prof.focus_calls;
                cost_before = prof.total_cost;
                flops_before = prof.total_flops;
                call_flops_before = prof.total_call_flops;
                bytes_before = prof.total_mem_bytes;
                bind_focus_buffers(fn, arg_slots);
            }
        }

        Frame new_frame;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            const Param& p = *fn.params[i];
            if (p.type.is_pointer) {
                auto* b = std::get_if<BufferPtr>(&arg_slots[i]);
                ensure(b != nullptr, "array argument expected for parameter '" +
                                         p.name + "'");
                ensure((*b)->elem_type() == p.type.elem,
                       "buffer element type mismatch for parameter '" + p.name +
                           "'");
                new_frame.emplace(p.name, *b);
            } else {
                auto* v = std::get_if<Value>(&arg_slots[i]);
                ensure(v != nullptr, "scalar argument expected for parameter '" +
                                         p.name + "'");
                new_frame.emplace(p.name, v->convert_to(p.type.elem));
            }
        }

        frames.push_back(std::move(new_frame));
        // Loops of the callee attribute to the callee's own stack only; the
        // caller's enclosing loops still accumulate (stack is not cleared).
        return_value = Value::void_value();
        exec_block(*fn.body);
        Value result = return_value;
        frames.pop_back();

        if (is_focus) {
            if (focus_depth == 1) {
                prof.focus_cost += prof.total_cost - cost_before;
                prof.focus_flops += prof.total_flops - flops_before;
                prof.focus_call_flops +=
                    prof.total_call_flops - call_flops_before;
                prof.focus_mem_bytes += prof.total_mem_bytes - bytes_before;
            }
            --focus_depth;
        }

        if (fn.ret != Type::Void) return result.convert_to(fn.ret);
        return Value::void_value();
    }

    void bind_focus_buffers(const Function& fn, const std::vector<Slot>& args) {
        std::unordered_map<int, std::string> seen;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            if (!fn.params[i]->type.is_pointer) continue;
            const auto* b = std::get_if<BufferPtr>(&args[i]);
            if (b == nullptr) continue;
            const int id = (*b)->id();
            if (auto it = seen.find(id); it != seen.end()) {
                prof.focus_args_alias = true;
            }
            seen.emplace(id, fn.params[i]->name);
            if (focus_buffer_index.count(id) == 0) {
                BufferAccess acc;
                acc.buffer_name = fn.params[i]->name;
                acc.elem_bytes = (*b)->elem_bytes();
                focus_buffer_index.emplace(id, prof.focus_buffers.size());
                prof.focus_buffers.push_back(acc);
            }
        }
    }

    // ---- statements -------------------------------------------------------

    Flow exec_block(const Block& block) {
        for (const auto& s : block.stmts) {
            if (exec_stmt(*s) == Flow::Returned) return Flow::Returned;
        }
        return Flow::Normal;
    }

    Flow exec_stmt(const Stmt& stmt) {
        switch (stmt.kind()) {
            case NodeKind::Block:
                return exec_block(static_cast<const Block&>(stmt));
            case NodeKind::VarDecl: {
                const auto& d = static_cast<const VarDecl&>(stmt);
                if (d.is_array) {
                    const long long n = eval(*d.array_size).as_int();
                    if (n < 0)
                        throw InterpError("negative array size for '" + d.name +
                                          "'");
                    frame()[d.name] = std::make_shared<Buffer>(
                        d.elem, static_cast<std::size_t>(n), d.name);
                } else {
                    Value init = d.init ? eval(*d.init) : Value::of_int(0);
                    frame()[d.name] = init.convert_to(d.elem);
                }
                charge(kAssignCost);
                return Flow::Normal;
            }
            case NodeKind::Assign:
                exec_assign(static_cast<const Assign&>(stmt));
                return Flow::Normal;
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(stmt);
                charge(kCmpCost);
                if (eval(*i.cond).as_bool()) return exec_block(*i.then_body);
                if (i.else_body) return exec_block(*i.else_body);
                return Flow::Normal;
            }
            case NodeKind::For:
                return exec_for(static_cast<const For&>(stmt));
            case NodeKind::While: {
                const auto& w = static_cast<const While&>(stmt);
                while (true) {
                    charge(kCmpCost);
                    if (!eval(*w.cond).as_bool()) return Flow::Normal;
                    if (exec_block(*w.body) == Flow::Returned)
                        return Flow::Returned;
                }
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(stmt);
                return_value =
                    r.value ? eval(*r.value) : Value::void_value();
                return Flow::Returned;
            }
            case NodeKind::ExprStmt: {
                const auto& e = static_cast<const ExprStmt&>(stmt);
                (void)eval(*e.expr);
                return Flow::Normal;
            }
            default:
                throw InterpError("unexpected statement node in interpreter");
        }
    }

    Flow exec_for(const For& loop) {
        LoopStats* stats = nullptr;
        if (options.profile) {
            stats = &prof.loops[loop.id];
            ++stats->entries;
            loop_stack.push_back(ActiveLoop{stats, frames.size()});
        }

        const long long init = eval(*loop.init).as_int();
        frame()[loop.var] = Value::of_int(init);

        Flow flow = Flow::Normal;
        while (true) {
            const long long i = scalar(loop.var, loop.loc).as_int();
            const long long limit = eval(*loop.limit).as_int();
            charge(kCmpCost);
            if (i >= limit) break;
            if (stats != nullptr) ++stats->trips;
            charge(kLoopIterCost);
            if (exec_block(*loop.body) == Flow::Returned) {
                flow = Flow::Returned;
                break;
            }
            const long long step = eval(*loop.step).as_int();
            if (step <= 0)
                throw InterpError(to_string(loop.loc) +
                                  ": for-loop step must be positive");
            frame()[loop.var] = Value::of_int(i + step);
        }

        if (options.profile) loop_stack.pop_back();
        return flow;
    }

    void exec_assign(const Assign& a) {
        charge(kAssignCost);
        const Value rhs = eval(*a.value);

        auto combined = [&](Value current) -> Value {
            if (a.op == AssignOp::Set) return rhs;
            const Type t = types.type_of(*a.target);
            charge(a.op == AssignOp::Div ? 4.0 : 1.0,
                   is_floating(t) ? (a.op == AssignOp::Div ? 4.0 : 1.0) : 0.0);
            if (t == Type::Int) {
                const long long l = current.as_int();
                const long long r = rhs.as_int();
                switch (a.op) {
                    case AssignOp::Add: return Value::of_int(l + r);
                    case AssignOp::Sub: return Value::of_int(l - r);
                    case AssignOp::Mul: return Value::of_int(l * r);
                    case AssignOp::Div:
                        if (r == 0) throw InterpError("integer division by zero");
                        return Value::of_int(l / r);
                    default: break;
                }
            }
            const double l = current.as_double();
            const double r = rhs.as_double();
            double out = 0.0;
            switch (a.op) {
                case AssignOp::Add: out = l + r; break;
                case AssignOp::Sub: out = l - r; break;
                case AssignOp::Mul: out = l * r; break;
                case AssignOp::Div: out = l / r; break;
                default: break;
            }
            return t == Type::Float ? Value::of_float(out)
                                    : Value::of_double(out);
        };

        if (const auto* id = dyn_cast<Ident>(a.target.get())) {
            Slot& slot = lookup(id->name, id->loc);
            auto* v = std::get_if<Value>(&slot);
            if (v == nullptr)
                throw InterpError("cannot assign to array '" + id->name + "'");
            const Type declared = types.type_of(*a.target);
            *v = combined(*v).convert_to(declared);
            return;
        }

        const auto& ix = static_cast<const Index&>(*a.target);
        const auto& base = static_cast<const Ident&>(*ix.base);
        BufferPtr buf = buffer(base.name, base.loc);
        const long long index = eval(*ix.index).as_int();
        if (a.op != AssignOp::Set) {
            note_access(buf, index, /*write=*/false);
            Value current = buf->elem_type() == Type::Int
                                ? Value::of_int(static_cast<long long>(
                                      buf->load(index)))
                                : (buf->elem_type() == Type::Float
                                       ? Value::of_float(buf->load(index))
                                       : Value::of_double(buf->load(index)));
            buf->store(index, combined(current).as_double());
        } else {
            buf->store(index, rhs.as_double());
        }
        note_access(buf, index, /*write=*/true);
    }

    // ---- expressions -------------------------------------------------------

    Value eval(const Expr& e) {
        switch (e.kind()) {
            case NodeKind::IntLit:
                return Value::of_int(static_cast<const IntLit&>(e).value);
            case NodeKind::FloatLit: {
                const auto& lit = static_cast<const FloatLit&>(e);
                return lit.single ? Value::of_float(lit.value)
                                  : Value::of_double(lit.value);
            }
            case NodeKind::BoolLit:
                return Value::of_bool(static_cast<const BoolLit&>(e).value);
            case NodeKind::Ident: {
                const auto& id = static_cast<const Ident&>(e);
                return scalar(id.name, id.loc);
            }
            case NodeKind::Unary: {
                const auto& u = static_cast<const Unary&>(e);
                const Value v = eval(*u.operand);
                if (u.op == UnaryOp::Not) {
                    charge(kCmpCost);
                    return Value::of_bool(!v.as_bool());
                }
                const Type t = types.type_of(e);
                charge(1.0, is_floating(t) ? 1.0 : 0.0);
                if (t == Type::Int) return Value::of_int(-v.as_int());
                return t == Type::Float ? Value::of_float(-v.as_double())
                                        : Value::of_double(-v.as_double());
            }
            case NodeKind::Binary:
                return eval_binary(static_cast<const Binary&>(e));
            case NodeKind::Call:
                return eval_call(static_cast<const Call&>(e));
            case NodeKind::Index: {
                const auto& ix = static_cast<const Index&>(e);
                const auto& base = static_cast<const Ident&>(*ix.base);
                BufferPtr buf = buffer(base.name, base.loc);
                const long long index = eval(*ix.index).as_int();
                note_access(buf, index, /*write=*/false);
                const double raw = buf->load(index);
                switch (buf->elem_type()) {
                    case Type::Int:
                        return Value::of_int(static_cast<long long>(raw));
                    case Type::Float: return Value::of_float(raw);
                    default: return Value::of_double(raw);
                }
            }
            default:
                throw InterpError("unexpected expression node in interpreter");
        }
    }

    Value eval_binary(const Binary& b) {
        // Short-circuit logical operators evaluate lazily, like C.
        if (b.op == BinaryOp::And) {
            charge(kCmpCost);
            if (!eval(*b.lhs).as_bool()) return Value::of_bool(false);
            return Value::of_bool(eval(*b.rhs).as_bool());
        }
        if (b.op == BinaryOp::Or) {
            charge(kCmpCost);
            if (eval(*b.lhs).as_bool()) return Value::of_bool(true);
            return Value::of_bool(eval(*b.rhs).as_bool());
        }

        const Value l = eval(*b.lhs);
        const Value r = eval(*b.rhs);

        if (is_comparison(b.op)) {
            charge(kCmpCost);
            const bool both_int =
                l.type() == Type::Int && r.type() == Type::Int;
            if (both_int) {
                const long long a = l.as_int();
                const long long c = r.as_int();
                switch (b.op) {
                    case BinaryOp::Lt: return Value::of_bool(a < c);
                    case BinaryOp::Le: return Value::of_bool(a <= c);
                    case BinaryOp::Gt: return Value::of_bool(a > c);
                    case BinaryOp::Ge: return Value::of_bool(a >= c);
                    case BinaryOp::Eq: return Value::of_bool(a == c);
                    default: return Value::of_bool(a != c);
                }
            }
            const double a = l.as_double();
            const double c = r.as_double();
            switch (b.op) {
                case BinaryOp::Lt: return Value::of_bool(a < c);
                case BinaryOp::Le: return Value::of_bool(a <= c);
                case BinaryOp::Gt: return Value::of_bool(a > c);
                case BinaryOp::Ge: return Value::of_bool(a >= c);
                case BinaryOp::Eq: return Value::of_bool(a == c);
                default: return Value::of_bool(a != c);
            }
        }

        const Type t = types.type_of(b);
        if (t == Type::Int) {
            charge(kIntOpCost);
            const long long a = l.as_int();
            const long long c = r.as_int();
            switch (b.op) {
                case BinaryOp::Add: return Value::of_int(a + c);
                case BinaryOp::Sub: return Value::of_int(a - c);
                case BinaryOp::Mul: return Value::of_int(a * c);
                case BinaryOp::Div:
                    if (c == 0) throw InterpError("integer division by zero");
                    return Value::of_int(a / c);
                case BinaryOp::Mod:
                    if (c == 0) throw InterpError("integer modulo by zero");
                    return Value::of_int(a % c);
                default: break;
            }
            throw InterpError("bad int binary op");
        }

        const double w = flop_weight(b.op);
        charge(w, w);
        if (t == Type::Float) {
            // Single-precision arithmetic: compute in float.
            const float a = static_cast<float>(l.as_double());
            const float c = static_cast<float>(r.as_double());
            switch (b.op) {
                case BinaryOp::Add: return Value::of_float(a + c);
                case BinaryOp::Sub: return Value::of_float(a - c);
                case BinaryOp::Mul: return Value::of_float(a * c);
                case BinaryOp::Div: return Value::of_float(a / c);
                default: break;
            }
            throw InterpError("bad float binary op");
        }
        const double a = l.as_double();
        const double c = r.as_double();
        switch (b.op) {
            case BinaryOp::Add: return Value::of_double(a + c);
            case BinaryOp::Sub: return Value::of_double(a - c);
            case BinaryOp::Mul: return Value::of_double(a * c);
            case BinaryOp::Div: return Value::of_double(a / c);
            default: break;
        }
        throw InterpError("bad double binary op");
    }

    Value eval_call(const Call& c) {
        if (const sema::BuiltinInfo* b = sema::find_builtin(c.callee)) {
            std::vector<double> args;
            args.reserve(c.args.size());
            for (const auto& a : c.args) args.push_back(eval(*a).as_double());
            charge(b->flop_cost, b->flop_cost);
            if (options.profile) prof.total_call_flops += b->flop_cost;
            const double out = sema::eval_builtin(*b, args);
            return b->result == Type::Float ? Value::of_float(out)
                                            : Value::of_double(out);
        }

        const Function* fn = module.find_function(c.callee);
        if (fn == nullptr)
            throw InterpError("call to unknown function '" + c.callee + "'");

        std::vector<Slot> arg_slots;
        arg_slots.reserve(c.args.size());
        for (std::size_t i = 0; i < c.args.size(); ++i) {
            if (fn->params[i]->type.is_pointer) {
                const auto& id = static_cast<const Ident&>(*c.args[i]);
                arg_slots.emplace_back(buffer(id.name, id.loc));
            } else {
                arg_slots.emplace_back(eval(*c.args[i]));
            }
        }
        return call_function(*fn, std::move(arg_slots));
    }
};

Interpreter::Interpreter(const ast::Module& module,
                         const sema::TypeInfo& types, InterpOptions options)
    : impl_(std::make_unique<Impl>(module, types, std::move(options))) {}

Interpreter::~Interpreter() = default;

Value Interpreter::call(const std::string& name, const std::vector<Arg>& args) {
    const Function* fn = impl_->module.find_function(name);
    if (fn == nullptr)
        throw InterpError("entry function '" + name + "' not found");
    ensure(args.size() == fn->params.size(),
           "entry call arity mismatch for '" + name + "'");

    std::vector<Impl::Slot> slots;
    slots.reserve(args.size());
    for (const auto& a : args) {
        if (const auto* v = std::get_if<Value>(&a)) {
            slots.emplace_back(*v);
        } else {
            slots.emplace_back(std::get<BufferPtr>(a));
        }
    }
    const long long steps_before = impl_->steps;
    Value out = impl_->call_function(*fn, std::move(slots));
    trace::Registry::current().count(
        "interp.steps",
        static_cast<std::uint64_t>(impl_->steps - steps_before));
    return out;
}

const ExecutionProfile& Interpreter::profile() const { return impl_->prof; }

// ---- engine selection ------------------------------------------------

const char* to_string(Engine engine) {
    return engine == Engine::Tree ? "tree" : "vm";
}

std::optional<Engine> parse_engine(std::string_view name) {
    if (name == "tree") return Engine::Tree;
    if (name == "vm") return Engine::Vm;
    return std::nullopt;
}

const char* engine_category(Engine engine) {
    return engine == Engine::Tree ? "interp:tree" : "interp:vm";
}

namespace {

// -1 = unresolved; otherwise an Engine value. One process-wide slot: the
// env var is read once, and --interp overrides it before any run.
std::atomic<int> g_default_engine{-1};

Engine engine_from_env() {
    if (const char* env = std::getenv("PSAFLOW_INTERP")) {
        if (const auto parsed = parse_engine(env)) return *parsed;
    }
    return Engine::Vm;
}

} // namespace

Engine default_engine() {
    int v = g_default_engine.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(engine_from_env());
        g_default_engine.store(v, std::memory_order_relaxed);
    }
    return static_cast<Engine>(v);
}

void set_default_engine(Engine engine) {
    g_default_engine.store(static_cast<int>(engine),
                           std::memory_order_relaxed);
}

RunResult run_function(const ast::Module& module, const sema::TypeInfo& types,
                       const std::string& fn, const std::vector<Arg>& args,
                       InterpOptions options) {
    options.profile = true;
    const Engine engine = options.engine.value_or(default_engine());

    // Both branches run the identical charge sequence; which one executed
    // is observable only through speed and the engine-tagged trace spans.
    if (engine == Engine::Vm) {
        Vm machine(module, types, options);
        Value result = machine.call(fn, args);
        trace::Registry::current().count("interp.runs", 1);
        trace::Registry::current().count(
            "interp.cost_units",
            static_cast<std::uint64_t>(machine.profile().total_cost));
        return RunResult{result, machine.profile()};
    }
    Interpreter interp(module, types, options);
    Value result = interp.call(fn, args);
    trace::Registry::current().count("interp.runs", 1);
    trace::Registry::current().count(
        "interp.cost_units",
        static_cast<std::uint64_t>(interp.profile().total_cost));
    return RunResult{result, interp.profile()};
}

} // namespace psaflow::interp
