#include "interp/bytecode.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/error.hpp"

namespace psaflow::interp::bc {

namespace {

using namespace psaflow::ast;

// The lowering mirrors interpreter.cpp statement by statement: every charge
// the tree walker makes has a corresponding charging instruction at the same
// point of the evaluation order, every rounding (Value::of_float, Buffer
// rounding stores) a corresponding F-typed op, and every runtime error an
// identically worded throw. Divergence here is a bug the interp:vm fuzz
// oracle is designed to catch.

struct Reg {
    std::int32_t idx = -1;
    Type type = Type::Void;
};

struct ModuleCompiler {
    ModuleCompiler(const Module& m, const sema::TypeInfo& t, std::string f)
        : module(m), types(t), focus(std::move(f)) {}

    const Module& module;
    const sema::TypeInfo& types;
    const std::string focus;
    CompiledModule out;

    std::unordered_map<long long, std::int32_t> int_ids;
    std::unordered_map<std::uint64_t, std::int32_t> real_ids;
    std::unordered_map<std::string, std::int32_t> name_ids;
    std::unordered_map<const sema::BuiltinInfo*, std::int32_t> builtin_ids;
    std::unordered_map<std::string, std::int32_t> buf_ids;

    std::int32_t intern_int(long long v) {
        auto [it, fresh] = int_ids.try_emplace(
            v, static_cast<std::int32_t>(out.int_pool.size()));
        if (fresh) out.int_pool.push_back(v);
        return it->second;
    }

    std::int32_t intern_real(double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        auto [it, fresh] = real_ids.try_emplace(
            bits, static_cast<std::int32_t>(out.real_pool.size()));
        if (fresh) out.real_pool.push_back(v);
        return it->second;
    }

    std::int32_t intern_name(const std::string& s) {
        auto [it, fresh] = name_ids.try_emplace(
            s, static_cast<std::int32_t>(out.name_pool.size()));
        if (fresh) out.name_pool.push_back(s);
        return it->second;
    }

    std::int32_t intern_builtin(const sema::BuiltinInfo* b) {
        auto [it, fresh] = builtin_ids.try_emplace(
            b, static_cast<std::int32_t>(out.builtin_pool.size()));
        if (fresh) out.builtin_pool.push_back(b);
        return it->second;
    }

    std::int32_t intern_loop(Node::Id id) {
        out.loop_pool.push_back(id);
        return static_cast<std::int32_t>(out.loop_pool.size() - 1);
    }

    std::int32_t intern_buf(Type elem, const std::string& name) {
        const std::string key = to_string(elem) + std::string("|") + name;
        auto [it, fresh] = buf_ids.try_emplace(
            key, static_cast<std::int32_t>(out.buf_pool.size()));
        if (fresh) out.buf_pool.push_back(BufDecl{elem, name});
        return it->second;
    }

    std::int32_t arg_list(const std::vector<std::int32_t>& regs) {
        const auto base = static_cast<std::int32_t>(out.arg_pool.size());
        out.arg_pool.insert(out.arg_pool.end(), regs.begin(), regs.end());
        return base;
    }
};

class FnCompiler {
public:
    FnCompiler(ModuleCompiler& mc, const Function& fn) : mc_(mc), fn_(fn) {}

    CompiledFunction compile() {
        cf_.name = fn_.name;
        cf_.ret = fn_.ret;
        cf_.is_focus = !mc_.focus.empty() && fn_.name == mc_.focus;
        for (const auto& p : fn_.params)
            cf_.params.push_back(
                ParamSpec{p->type.is_pointer, p->type.elem, p->name});

        // Fixed registers for every named variable: scalar params take
        // sregs 0.. in scalar-param order, pointer params bregs 0.. in
        // pointer-param order, then locals in declaration order (one type
        // per name per function is a sema guarantee).
        std::int32_t n_bregs = 0;
        for (const auto& v : mc_.types.variables(fn_)) {
            if (v.type.is_pointer || v.is_array) {
                if (breg_of_.try_emplace(v.name, n_bregs).second) {
                    buf_elem_.emplace(v.name, v.type.elem);
                    ++n_bregs;
                }
            } else if (sreg_of_.try_emplace(v.name, next_reg_).second) {
                scalar_type_.emplace(v.name, v.type.elem);
                ++next_reg_;
            }
        }
        max_reg_ = next_reg_;

        emit_block(*fn_.body);
        // Falling off the end of a non-void function mirrors the tree
        // walker: Value::void_value().convert_to(ret) throws.
        emit_implicit_return();

        cf_.n_sregs = static_cast<std::uint32_t>(max_reg_);
        cf_.n_bregs = static_cast<std::uint32_t>(n_bregs);
        return std::move(cf_);
    }

private:
    ModuleCompiler& mc_;
    const Function& fn_;
    CompiledFunction cf_;
    std::unordered_map<std::string, std::int32_t> sreg_of_;
    std::unordered_map<std::string, std::int32_t> breg_of_;
    std::unordered_map<std::string, Type> scalar_type_;
    std::unordered_map<std::string, Type> buf_elem_;
    std::int32_t next_reg_ = 0;
    std::int32_t max_reg_ = 0;

    // ---- emission helpers --------------------------------------------

    std::int32_t here() const {
        return static_cast<std::int32_t>(cf_.code.size());
    }

    std::int32_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0,
                      std::int32_t c = 0) {
        cf_.code.push_back(Insn{op, a, b, c});
        return here() - 1;
    }

    std::int32_t alloc() {
        const std::int32_t r = next_reg_++;
        max_reg_ = std::max(max_reg_, next_reg_);
        return r;
    }

    [[noreturn]] void internal(const std::string& what) const {
        throw Error("bytecode lowering: " + what + " in function '" +
                    fn_.name + "'");
    }

    std::int32_t sreg(const std::string& name) const {
        auto it = sreg_of_.find(name);
        if (it == sreg_of_.end()) internal("no scalar register for '" + name +
                                           "'");
        return it->second;
    }

    std::int32_t breg(const std::string& name) const {
        auto it = breg_of_.find(name);
        if (it == breg_of_.end()) internal("no buffer slot for '" + name +
                                           "'");
        return it->second;
    }

    // ---- conversions (all charge-free, mirroring Value::convert_to /
    //      as_double / as_int, which never charge) ----------------------

    /// A trap for the conversions convert_to makes impossible at runtime;
    /// sema rejects these programs, but the tree walker would throw, so a
    /// lowering that meets one emits the identical throw.
    Reg trap(const char* message) {
        emit(Op::Trap, mc_.intern_name(message));
        return Reg{alloc(), Type::Void};
    }

    /// Value as a double register (Value::as_double).
    Reg to_double(Reg src) {
        switch (src.type) {
            case Type::Int: {
                const std::int32_t r = alloc();
                emit(Op::I2D, r, src.idx);
                return Reg{r, Type::Double};
            }
            case Type::Float: // stored widened; the value is already exact
                return Reg{src.idx, Type::Double};
            case Type::Double: return src;
            default: return trap("value is not numeric");
        }
    }

    /// Value as an int register (Value::as_int, truncating toward zero).
    Reg to_int(Reg src) {
        switch (src.type) {
            case Type::Int: return src;
            case Type::Float:
            case Type::Double: {
                const std::int32_t r = alloc();
                emit(Op::D2I, r, src.idx);
                return Reg{r, Type::Int};
            }
            default: return trap("value is not numeric");
        }
    }

    /// Store `src` converted to declared type `want` into scalar reg `dst`
    /// (Value::convert_to at assignment / declaration).
    void conv_into(std::int32_t dst, Reg src, Type want) {
        switch (want) {
            case Type::Int:
                switch (src.type) {
                    case Type::Int:
                        if (dst != src.idx) emit(Op::Mov, dst, src.idx);
                        return;
                    case Type::Float:
                    case Type::Double: emit(Op::D2I, dst, src.idx); return;
                    default: trap("value is not numeric"); return;
                }
            case Type::Double:
                switch (src.type) {
                    case Type::Int: emit(Op::I2D, dst, src.idx); return;
                    case Type::Float:
                    case Type::Double:
                        if (dst != src.idx) emit(Op::Mov, dst, src.idx);
                        return;
                    default: trap("value is not numeric"); return;
                }
            case Type::Float:
                switch (src.type) {
                    case Type::Int: emit(Op::I2F, dst, src.idx); return;
                    case Type::Float:
                        if (dst != src.idx) emit(Op::Mov, dst, src.idx);
                        return;
                    case Type::Double: emit(Op::D2F, dst, src.idx); return;
                    default: trap("value is not numeric"); return;
                }
            case Type::Bool:
                if (src.type == Type::Bool) {
                    if (dst != src.idx) emit(Op::Mov, dst, src.idx);
                } else {
                    trap("value is not bool");
                }
                return;
            default: trap("cannot convert to void"); return;
        }
    }

    /// Fresh register holding `src` converted to `want`.
    Reg conv(Reg src, Type want) {
        if (src.type == want) return src;
        if (want == Type::Double && src.type == Type::Float)
            return Reg{src.idx, Type::Double}; // representation unchanged
        const std::int32_t r = alloc();
        conv_into(r, src, want);
        return Reg{r, want};
    }

    // ---- expressions --------------------------------------------------

    Type type_of(const Expr& e) const { return mc_.types.type_of(e); }

    Reg emit_expr(const Expr& e) {
        switch (e.kind()) {
            case NodeKind::IntLit: {
                const std::int32_t r = alloc();
                emit(Op::LoadI, r,
                     mc_.intern_int(static_cast<const IntLit&>(e).value));
                return Reg{r, Type::Int};
            }
            case NodeKind::FloatLit: {
                const auto& lit = static_cast<const FloatLit&>(e);
                const std::int32_t r = alloc();
                if (lit.single) {
                    // Value::of_float rounds at construction.
                    const double rounded = static_cast<double>(
                        static_cast<float>(lit.value));
                    emit(Op::LoadD, r, mc_.intern_real(rounded));
                    return Reg{r, Type::Float};
                }
                emit(Op::LoadD, r, mc_.intern_real(lit.value));
                return Reg{r, Type::Double};
            }
            case NodeKind::BoolLit: {
                const std::int32_t r = alloc();
                emit(Op::LoadB, r,
                     static_cast<const BoolLit&>(e).value ? 1 : 0);
                return Reg{r, Type::Bool};
            }
            case NodeKind::Ident: {
                const auto& id = static_cast<const Ident&>(e);
                auto it = sreg_of_.find(id.name);
                if (it == sreg_of_.end())
                    internal("array '" + id.name + "' read as a scalar");
                return Reg{it->second, scalar_type_.at(id.name)};
            }
            case NodeKind::Unary: return emit_unary(static_cast<const Unary&>(e));
            case NodeKind::Binary:
                return emit_binary(static_cast<const Binary&>(e));
            case NodeKind::Call: return emit_call(static_cast<const Call&>(e));
            case NodeKind::Index: {
                const auto& ix = static_cast<const Index&>(e);
                const auto& base = static_cast<const Ident&>(*ix.base);
                const Reg idx = to_int(emit_expr(*ix.index));
                return emit_load_elem(base.name, idx);
            }
            default: internal("unexpected expression node");
        }
    }

    Reg emit_load_elem(const std::string& buf_name, Reg idx) {
        const Type elem = buf_elem_.at(buf_name);
        const std::int32_t dst = alloc();
        const Op op = elem == Type::Int
                          ? Op::LoadElemI
                          : (elem == Type::Float ? Op::LoadElemF
                                                 : Op::LoadElemD);
        emit(op, dst, breg(buf_name), idx.idx);
        return Reg{dst, elem};
    }

    Reg emit_unary(const Unary& u) {
        const Reg v = emit_expr(*u.operand);
        if (u.op == UnaryOp::Not) {
            const std::int32_t dst = alloc();
            emit(Op::NotB, dst, v.idx);
            return Reg{dst, Type::Bool};
        }
        const Type t = type_of(u);
        const std::int32_t dst = alloc();
        switch (t) {
            case Type::Int: emit(Op::NegI, dst, v.idx); break;
            case Type::Float: emit(Op::NegF, dst, v.idx); break;
            default: emit(Op::NegD, dst, v.idx); break;
        }
        return Reg{dst, t};
    }

    Reg emit_binary(const Binary& b) {
        // Short-circuit logical operators: the tree walker charges the
        // comparison before evaluating either side, then evaluates lazily.
        if (b.op == BinaryOp::And || b.op == BinaryOp::Or) {
            emit(Op::ChargeCmp);
            const std::int32_t dst = alloc();
            const Reg l = emit_expr(*b.lhs);
            emit(Op::LoadB, dst, b.op == BinaryOp::And ? 0 : 1);
            const std::int32_t jump = emit(
                b.op == BinaryOp::And ? Op::JmpF : Op::JmpT, l.idx, 0);
            const Reg r = emit_expr(*b.rhs);
            emit(Op::Mov, dst, r.idx);
            cf_.code[static_cast<std::size_t>(jump)].b = here();
            return Reg{dst, Type::Bool};
        }

        const Reg l = emit_expr(*b.lhs);
        const Reg r = emit_expr(*b.rhs);

        if (is_comparison(b.op)) {
            // Int compare iff both operands are Int (statically decidable:
            // the tree walker's runtime tags equal the static types).
            const bool both_int =
                l.type == Type::Int && r.type == Type::Int;
            const std::int32_t dst = alloc();
            if (both_int) {
                emit(cmp_op(b.op, /*ints=*/true), dst, l.idx, r.idx);
            } else {
                const Reg ld = to_double(l);
                const Reg rd = to_double(r);
                emit(cmp_op(b.op, /*ints=*/false), dst, ld.idx, rd.idx);
            }
            return Reg{dst, Type::Bool};
        }

        const Type t = type_of(b);
        const std::int32_t dst = alloc();
        if (t == Type::Int) {
            emit(arith_op(b.op, Type::Int), dst, l.idx, r.idx);
            return Reg{dst, Type::Int};
        }
        const Reg ld = to_double(l);
        const Reg rd = to_double(r);
        emit(arith_op(b.op, t), dst, ld.idx, rd.idx);
        return Reg{dst, t};
    }

    Op cmp_op(BinaryOp op, bool ints) const {
        switch (op) {
            case BinaryOp::Lt: return ints ? Op::LtI : Op::LtD;
            case BinaryOp::Le: return ints ? Op::LeI : Op::LeD;
            case BinaryOp::Gt: return ints ? Op::GtI : Op::GtD;
            case BinaryOp::Ge: return ints ? Op::GeI : Op::GeD;
            case BinaryOp::Eq: return ints ? Op::EqI : Op::EqD;
            case BinaryOp::Ne: return ints ? Op::NeI : Op::NeD;
            default: internal("non-comparison op in cmp_op");
        }
    }

    Op arith_op(BinaryOp op, Type t) const {
        switch (op) {
            case BinaryOp::Add:
                return t == Type::Int ? Op::AddI
                                      : (t == Type::Float ? Op::AddF
                                                          : Op::AddD);
            case BinaryOp::Sub:
                return t == Type::Int ? Op::SubI
                                      : (t == Type::Float ? Op::SubF
                                                          : Op::SubD);
            case BinaryOp::Mul:
                return t == Type::Int ? Op::MulI
                                      : (t == Type::Float ? Op::MulF
                                                          : Op::MulD);
            case BinaryOp::Div:
                return t == Type::Int ? Op::DivI
                                      : (t == Type::Float ? Op::DivF
                                                          : Op::DivD);
            case BinaryOp::Mod:
                if (t == Type::Int) return Op::ModI;
                internal("non-int modulo");
            default: internal("non-arithmetic op in arith_op");
        }
    }

    Reg emit_call(const Call& c) {
        if (const sema::BuiltinInfo* b = sema::find_builtin(c.callee)) {
            // All arguments evaluate to doubles first, then one charge of
            // the builtin's flop cost (CallBuiltin performs it).
            std::vector<std::int32_t> arg_regs;
            arg_regs.reserve(c.args.size());
            for (const auto& a : c.args)
                arg_regs.push_back(to_double(emit_expr(*a)).idx);
            const std::int32_t dst = alloc();
            emit(Op::CallBuiltin, dst, mc_.intern_builtin(b),
                 mc_.arg_list(arg_regs));
            return Reg{dst, b->result};
        }

        const Function* callee = mc_.module.find_function(c.callee);
        if (callee == nullptr)
            internal("call to unknown function '" + c.callee + "'");
        auto idx_it = mc_.out.fn_index.find(c.callee);
        if (idx_it == mc_.out.fn_index.end())
            internal("uncompiled callee '" + c.callee + "'");

        std::vector<std::int32_t> arg_regs;
        arg_regs.reserve(c.args.size());
        for (std::size_t i = 0; i < c.args.size(); ++i) {
            const Param& p = *callee->params[i];
            if (p.type.is_pointer) {
                const auto& id = static_cast<const Ident&>(*c.args[i]);
                arg_regs.push_back(breg(id.name));
            } else {
                // convert_to(param type) at bind time is charge-free; the
                // conversion commutes with the kCallCost charge, so it can
                // be emitted in the caller.
                const Reg v = conv(emit_expr(*c.args[i]), p.type.elem);
                arg_regs.push_back(v.idx);
            }
        }
        const std::int32_t dst = alloc();
        emit(Op::CallUser, callee->ret == Type::Void ? -1 : dst,
             static_cast<std::int32_t>(idx_it->second),
             mc_.arg_list(arg_regs));
        return Reg{dst, callee->ret};
    }

    // ---- statements ---------------------------------------------------

    void emit_block(const Block& block) {
        for (const auto& s : block.stmts) emit_stmt(*s);
    }

    void emit_stmt(const Stmt& stmt) {
        const std::int32_t save = next_reg_;
        switch (stmt.kind()) {
            case NodeKind::Block:
                emit_block(static_cast<const Block&>(stmt));
                break;
            case NodeKind::VarDecl:
                emit_var_decl(static_cast<const VarDecl&>(stmt));
                break;
            case NodeKind::Assign:
                emit_assign(static_cast<const Assign&>(stmt));
                break;
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(stmt);
                emit(Op::ChargeCmp);
                const Reg cond = emit_expr(*i.cond);
                const std::int32_t jf = emit(Op::JmpF, cond.idx, 0);
                next_reg_ = save;
                emit_block(*i.then_body);
                if (i.else_body) {
                    const std::int32_t jend = emit(Op::Jmp, 0);
                    cf_.code[static_cast<std::size_t>(jf)].b = here();
                    emit_block(*i.else_body);
                    cf_.code[static_cast<std::size_t>(jend)].a = here();
                } else {
                    cf_.code[static_cast<std::size_t>(jf)].b = here();
                }
                break;
            }
            case NodeKind::For:
                emit_for(static_cast<const For&>(stmt));
                break;
            case NodeKind::While: {
                const auto& w = static_cast<const While&>(stmt);
                const std::int32_t head = here();
                emit(Op::ChargeCmp);
                const Reg cond = emit_expr(*w.cond);
                const std::int32_t jf = emit(Op::JmpF, cond.idx, 0);
                next_reg_ = save;
                emit_block(*w.body);
                emit(Op::Jmp, head);
                cf_.code[static_cast<std::size_t>(jf)].b = here();
                break;
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(stmt);
                if (r.value) {
                    const Reg v = emit_expr(*r.value);
                    if (fn_.ret == Type::Void) {
                        emit(Op::RetVoid);
                    } else {
                        // convert_to(ret) at the call boundary is
                        // charge-free and cannot throw on a real value.
                        const Reg rv = conv(v, fn_.ret);
                        emit(Op::Ret, rv.idx);
                    }
                } else if (fn_.ret == Type::Void) {
                    emit(Op::RetVoid);
                } else {
                    // void_value().convert_to(ret) throws in the caller.
                    trap(fn_.ret == Type::Bool ? "value is not bool"
                                               : "value is not numeric");
                }
                break;
            }
            case NodeKind::ExprStmt:
                (void)emit_expr(*static_cast<const ExprStmt&>(stmt).expr);
                break;
            default: internal("unexpected statement node");
        }
        next_reg_ = save;
    }

    void emit_implicit_return() {
        if (fn_.ret == Type::Void) {
            emit(Op::RetVoid);
        } else {
            trap(fn_.ret == Type::Bool ? "value is not bool"
                                       : "value is not numeric");
        }
    }

    void emit_var_decl(const VarDecl& d) {
        if (d.is_array) {
            const Reg size = to_int(emit_expr(*d.array_size));
            emit(Op::NewBuf, breg(d.name), size.idx,
                 mc_.intern_buf(d.elem, d.name));
        } else {
            const std::int32_t dst = sreg(d.name);
            if (d.init) {
                conv_into(dst, emit_expr(*d.init), d.elem);
            } else if (d.elem == Type::Bool) {
                // of_int(0).convert_to(Bool) throws in the tree walker.
                trap("value is not bool");
            } else if (d.elem == Type::Int) {
                emit(Op::LoadI, dst, mc_.intern_int(0));
            } else {
                emit(Op::LoadD, dst, mc_.intern_real(0.0));
            }
        }
        emit(Op::ChargeAssign);
    }

    Op compound_op(AssignOp op, Type t) const {
        switch (op) {
            case AssignOp::Add:
                return t == Type::Int ? Op::CAddI
                                      : (t == Type::Float ? Op::CAddF
                                                          : Op::CAddD);
            case AssignOp::Sub:
                return t == Type::Int ? Op::CSubI
                                      : (t == Type::Float ? Op::CSubF
                                                          : Op::CSubD);
            case AssignOp::Mul:
                return t == Type::Int ? Op::CMulI
                                      : (t == Type::Float ? Op::CMulF
                                                          : Op::CMulD);
            case AssignOp::Div:
                return t == Type::Int ? Op::CDivI
                                      : (t == Type::Float ? Op::CDivF
                                                          : Op::CDivD);
            default: internal("Set in compound_op");
        }
    }

    void emit_assign(const Assign& a) {
        emit(Op::ChargeAssign);
        const Reg rhs = emit_expr(*a.value);

        if (const auto* id = dyn_cast<Ident>(a.target.get())) {
            if (sreg_of_.count(id->name) == 0) {
                // The tree walker throws when the slot holds a buffer.
                trap(("cannot assign to array '" + id->name + "'").c_str());
                return;
            }
            const std::int32_t var = sreg(id->name);
            const Type declared = type_of(*a.target);
            if (a.op == AssignOp::Set) {
                conv_into(var, rhs, declared);
                return;
            }
            switch (declared) {
                case Type::Int: {
                    const Reg rc = to_int(rhs);
                    emit(compound_op(a.op, Type::Int), var, var, rc.idx);
                    return;
                }
                case Type::Float:
                case Type::Double: {
                    const Reg rc = to_double(rhs);
                    emit(compound_op(a.op, declared), var, var, rc.idx);
                    return;
                }
                default:
                    // current.as_double() on a bool target throws.
                    trap("value is not numeric");
                    return;
            }
        }

        const auto& ix = static_cast<const Index&>(*a.target);
        const auto& base = static_cast<const Ident&>(*ix.base);
        const std::int32_t buf = breg(base.name);
        const Type elem = buf_elem_.at(base.name);
        const Reg idx = to_int(emit_expr(*ix.index));

        if (a.op == AssignOp::Set) {
            const Reg rd = to_double(rhs);
            emit(Op::StoreElem, buf, idx.idx, rd.idx);
            return;
        }

        const Reg cur = emit_load_elem(base.name, idx);
        if (elem == Type::Int) {
            const Reg rc = to_int(rhs);
            emit(compound_op(a.op, Type::Int), cur.idx, cur.idx, rc.idx);
            const Reg curd = to_double(Reg{cur.idx, Type::Int});
            emit(Op::StoreElem, buf, idx.idx, curd.idx);
        } else {
            const Reg rc = to_double(rhs);
            emit(compound_op(a.op, elem), cur.idx, cur.idx, rc.idx);
            emit(Op::StoreElem, buf, idx.idx, cur.idx);
        }
    }

    void emit_for(const For& loop) {
        const std::int32_t save = next_reg_;
        const std::int32_t lidx = mc_.intern_loop(loop.id);
        emit(Op::LoopEnter, lidx);

        const Reg init = to_int(emit_expr(*loop.init));
        const std::int32_t var = sreg(loop.var);
        if (var != init.idx) emit(Op::Mov, var, init.idx);
        next_reg_ = save;

        // Head snapshot: the step update uses the value read at the head,
        // so a body write to the loop variable does not change the next
        // iteration (exactly the tree walker's local `i`).
        const std::int32_t snap = alloc();
        const std::int32_t head = here();
        emit(Op::Mov, snap, var);
        const std::int32_t body_save = next_reg_;
        const Reg limit = to_int(emit_expr(*loop.limit));
        const std::int32_t jexit = emit(Op::LoopHead, snap, limit.idx, 0);
        next_reg_ = body_save;
        emit(Op::LoopTrip, lidx);
        emit_block(*loop.body);
        const Reg step = to_int(emit_expr(*loop.step));
        emit(Op::StepCheck, step.idx,
             mc_.intern_name(to_string(loop.loc) +
                             ": for-loop step must be positive"));
        emit(Op::IncI, var, snap, step.idx);
        next_reg_ = body_save;
        emit(Op::Jmp, head);
        cf_.code[static_cast<std::size_t>(jexit)].c = here();
        emit(Op::LoopExit);
        next_reg_ = save;
    }
};

} // namespace

CompiledModule compile(const ast::Module& module, const sema::TypeInfo& types,
                       const std::string& focus_function) {
    ModuleCompiler mc(module, types, focus_function);
    // Two phases: indices first, so calls can reference any function.
    for (const auto& fn : module.functions) {
        mc.out.fn_index.emplace(
            fn->name, static_cast<std::uint32_t>(mc.out.functions.size()));
        mc.out.functions.emplace_back();
    }
    for (const auto& fn : module.functions) {
        FnCompiler fc(mc, *fn);
        mc.out.functions[mc.out.fn_index.at(fn->name)] = fc.compile();
    }
    return std::move(mc.out);
}

// ------------------------------------------------------------------------
// Disassembler
// ------------------------------------------------------------------------

const char* to_string(Op op) {
    switch (op) {
        case Op::LoadI: return "LoadI";
        case Op::LoadD: return "LoadD";
        case Op::LoadB: return "LoadB";
        case Op::Mov: return "Mov";
        case Op::I2D: return "I2D";
        case Op::D2I: return "D2I";
        case Op::D2F: return "D2F";
        case Op::I2F: return "I2F";
        case Op::Jmp: return "Jmp";
        case Op::JmpF: return "JmpF";
        case Op::JmpT: return "JmpT";
        case Op::ChargeCmp: return "ChargeCmp";
        case Op::ChargeAssign: return "ChargeAssign";
        case Op::AddI: return "AddI";
        case Op::SubI: return "SubI";
        case Op::MulI: return "MulI";
        case Op::DivI: return "DivI";
        case Op::ModI: return "ModI";
        case Op::NegI: return "NegI";
        case Op::IncI: return "IncI";
        case Op::AddD: return "AddD";
        case Op::SubD: return "SubD";
        case Op::MulD: return "MulD";
        case Op::DivD: return "DivD";
        case Op::NegD: return "NegD";
        case Op::AddF: return "AddF";
        case Op::SubF: return "SubF";
        case Op::MulF: return "MulF";
        case Op::DivF: return "DivF";
        case Op::NegF: return "NegF";
        case Op::CAddI: return "CAddI";
        case Op::CSubI: return "CSubI";
        case Op::CMulI: return "CMulI";
        case Op::CDivI: return "CDivI";
        case Op::CAddD: return "CAddD";
        case Op::CSubD: return "CSubD";
        case Op::CMulD: return "CMulD";
        case Op::CDivD: return "CDivD";
        case Op::CAddF: return "CAddF";
        case Op::CSubF: return "CSubF";
        case Op::CMulF: return "CMulF";
        case Op::CDivF: return "CDivF";
        case Op::LtI: return "LtI";
        case Op::LeI: return "LeI";
        case Op::GtI: return "GtI";
        case Op::GeI: return "GeI";
        case Op::EqI: return "EqI";
        case Op::NeI: return "NeI";
        case Op::LtD: return "LtD";
        case Op::LeD: return "LeD";
        case Op::GtD: return "GtD";
        case Op::GeD: return "GeD";
        case Op::EqD: return "EqD";
        case Op::NeD: return "NeD";
        case Op::NotB: return "NotB";
        case Op::LoopEnter: return "LoopEnter";
        case Op::LoopHead: return "LoopHead";
        case Op::LoopTrip: return "LoopTrip";
        case Op::LoopExit: return "LoopExit";
        case Op::StepCheck: return "StepCheck";
        case Op::NewBuf: return "NewBuf";
        case Op::LoadElemI: return "LoadElemI";
        case Op::LoadElemF: return "LoadElemF";
        case Op::LoadElemD: return "LoadElemD";
        case Op::StoreElem: return "StoreElem";
        case Op::CallBuiltin: return "CallBuiltin";
        case Op::CallUser: return "CallUser";
        case Op::Ret: return "Ret";
        case Op::RetVoid: return "RetVoid";
        case Op::Trap: return "Trap";
    }
    return "?";
}

namespace {

std::string fmt_real(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void disasm_insn(std::ostringstream& os, const CompiledModule& m,
                 const Insn& in) {
    const auto s = [](std::int32_t r) { return "s" + std::to_string(r); };
    const auto b = [](std::int32_t r) { return "b" + std::to_string(r); };
    const auto at = [](std::int32_t pc) { return "@" + std::to_string(pc); };
    os << to_string(in.op);
    switch (in.op) {
        case Op::LoadI:
            os << " " << s(in.a) << ", "
               << m.int_pool[static_cast<std::size_t>(in.b)];
            break;
        case Op::LoadD:
            os << " " << s(in.a) << ", "
               << fmt_real(m.real_pool[static_cast<std::size_t>(in.b)]);
            break;
        case Op::LoadB:
            os << " " << s(in.a) << ", " << (in.b != 0 ? "true" : "false");
            break;
        case Op::Mov:
        case Op::I2D:
        case Op::D2I:
        case Op::D2F:
        case Op::I2F:
        case Op::NegI:
        case Op::NegD:
        case Op::NegF:
        case Op::NotB:
            os << " " << s(in.a) << ", " << s(in.b);
            break;
        case Op::Jmp: os << " " << at(in.a); break;
        case Op::JmpF:
        case Op::JmpT:
            os << " " << s(in.a) << ", " << at(in.b);
            break;
        case Op::ChargeCmp:
        case Op::ChargeAssign:
        case Op::LoopExit:
        case Op::RetVoid:
            break;
        case Op::LoopEnter:
        case Op::LoopTrip:
            os << " L" << in.a;
            break;
        case Op::LoopHead:
            os << " " << s(in.a) << ", " << s(in.b) << ", " << at(in.c);
            break;
        case Op::StepCheck:
            os << " " << s(in.a) << ", \""
               << m.name_pool[static_cast<std::size_t>(in.b)] << "\"";
            break;
        case Op::NewBuf: {
            const BufDecl& d = m.buf_pool[static_cast<std::size_t>(in.c)];
            os << " " << b(in.a) << ", " << s(in.b) << ", "
               << ast::to_string(d.elem) << " '" << d.name << "'";
            break;
        }
        case Op::LoadElemI:
        case Op::LoadElemF:
        case Op::LoadElemD:
            os << " " << s(in.a) << ", " << b(in.b) << "[" << s(in.c) << "]";
            break;
        case Op::StoreElem:
            os << " " << b(in.a) << "[" << s(in.b) << "], " << s(in.c);
            break;
        case Op::CallBuiltin: {
            const sema::BuiltinInfo* info =
                m.builtin_pool[static_cast<std::size_t>(in.b)];
            os << " " << s(in.a) << ", " << info->name << "(";
            for (int i = 0; i < info->arity; ++i)
                os << (i > 0 ? ", " : "")
                   << s(m.arg_pool[static_cast<std::size_t>(in.c + i)]);
            os << ")";
            break;
        }
        case Op::CallUser: {
            const CompiledFunction& callee =
                m.functions[static_cast<std::size_t>(in.b)];
            if (in.a >= 0) os << " " << s(in.a) << ",";
            os << " " << callee.name << "(";
            for (std::size_t i = 0; i < callee.params.size(); ++i) {
                const std::int32_t reg =
                    m.arg_pool[static_cast<std::size_t>(in.c) + i];
                os << (i > 0 ? ", " : "")
                   << (callee.params[i].is_pointer ? b(reg) : s(reg));
            }
            os << ")";
            break;
        }
        case Op::Ret: os << " " << s(in.a); break;
        case Op::Trap:
            os << " \"" << m.name_pool[static_cast<std::size_t>(in.a)]
               << "\"";
            break;
        default:
            os << " " << s(in.a) << ", " << s(in.b) << ", " << s(in.c);
            break;
    }
}

} // namespace

std::string disassemble(const CompiledModule& module,
                        const CompiledFunction& fn) {
    std::ostringstream os;
    os << "func " << fn.name << "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
        const ParamSpec& p = fn.params[i];
        os << (i > 0 ? ", " : "") << p.name << ": "
           << ast::to_string(p.elem) << (p.is_pointer ? "*" : "");
    }
    os << ") ret=" << ast::to_string(fn.ret) << " sregs=" << fn.n_sregs
       << " bregs=" << fn.n_bregs;
    if (fn.is_focus) os << " focus";
    os << "\n";
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
        os << "  ";
        if (pc < 10) os << " ";
        os << pc << ": ";
        disasm_insn(os, module, fn.code[pc]);
        os << "\n";
    }
    return std::move(os).str();
}

std::string disassemble(const CompiledModule& module) {
    std::ostringstream os;
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
        if (i > 0) os << "\n";
        os << disassemble(module, module.functions[i]);
    }
    return std::move(os).str();
}

} // namespace psaflow::interp::bc
