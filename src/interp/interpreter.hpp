// Tree-walking interpreter for HLC.
//
// Substitutes for native execution in all dynamic design-flow tasks. Costs
// are deterministic "work units" (roughly: scalar operations weighted by the
// builtin flop table, plus memory-access and loop overheads), which makes
// hotspot detection reproducible across machines — a property wall-clock
// timers do not have.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ast/nodes.hpp"
#include "interp/profile.hpp"
#include "interp/value.hpp"
#include "sema/type_check.hpp"

namespace psaflow::interp {

/// An argument to a top-level call: a scalar or a buffer (array).
using Arg = std::variant<Value, BufferPtr>;

/// Which execution engine runs HLC code. Both are observationally
/// identical (bit-equal results, profiles and error strings — enforced by
/// tests/test_vm.cpp and the `interp:vm` fuzz oracle); the bytecode VM is
/// simply faster on cold paths, so it is the default.
enum class Engine {
    Tree, ///< AST-walking Interpreter (the reference implementation)
    Vm,   ///< bytecode compiler + register VM (vm.hpp)
};

[[nodiscard]] const char* to_string(Engine engine);

/// Parse "tree" / "vm"; nullopt for anything else.
[[nodiscard]] std::optional<Engine> parse_engine(std::string_view name);

/// Trace-span category for runs under `engine`: "interp:tree" or
/// "interp:vm", so BENCH and --explain can attribute cold time.
[[nodiscard]] const char* engine_category(Engine engine);

/// Process-wide default engine. Resolved once from the PSAFLOW_INTERP
/// environment variable ("tree" or "vm"; unset or unrecognized means Vm);
/// set_default_engine (the tools' --interp flag) overrides it.
[[nodiscard]] Engine default_engine();
void set_default_engine(Engine engine);

struct InterpOptions {
    bool profile = false;            ///< collect ExecutionProfile
    std::string focus_function;      ///< function whose calls are summarised
    long long max_steps = 500'000'000; ///< abort runaway programs
    /// Engine override for this run; nullopt uses default_engine().
    /// NOTE: the profile cache key deliberately excludes this — both
    /// engines produce identical profiles, so warm hits stay shared.
    std::optional<Engine> engine;
};

class Interpreter {
public:
    /// `module` and `types` must outlive the interpreter; `types` must have
    /// been produced by sema::check on exactly this module.
    Interpreter(const ast::Module& module, const sema::TypeInfo& types,
                InterpOptions options = {});

    ~Interpreter();
    Interpreter(const Interpreter&) = delete;
    Interpreter& operator=(const Interpreter&) = delete;

    /// Call function `name` with `args`. Scalar args convert to the declared
    /// parameter types; buffer args must match element types exactly.
    Value call(const std::string& name, const std::vector<Arg>& args);

    /// Profile of everything executed so far (meaningful when
    /// options.profile was set).
    [[nodiscard]] const ExecutionProfile& profile() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: parse nothing, just run `fn(args)` on an already
/// checked module and return the result value plus profile.
struct RunResult {
    Value result;
    ExecutionProfile profile;
};

[[nodiscard]] RunResult run_function(const ast::Module& module,
                                     const sema::TypeInfo& types,
                                     const std::string& fn,
                                     const std::vector<Arg>& args,
                                     InterpOptions options = {});

} // namespace psaflow::interp
