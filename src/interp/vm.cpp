#include "interp/vm.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "interp/bytecode.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace psaflow::interp {

namespace {

// The cost-unit weights, duplicated from interpreter.cpp byte for byte: the
// two engines must charge identical amounts at identical points.
constexpr double kIntOpCost = 1.0;
constexpr double kCmpCost = 1.0;
constexpr double kMemCost = 2.0;
constexpr double kLoopIterCost = 2.0;
constexpr double kAssignCost = 1.0;
constexpr double kCallCost = 8.0;

/// One scalar register. Float values are stored in `d` already rounded to
/// float precision (the lowering rounds wherever Value::of_float did), so
/// the union needs no type tag: the instruction encodes which member it
/// reads. Frames are zero-initialized on allocation, so reads are always
/// defined even for (sema-impossible) use-before-declaration.
union Sreg {
    long long i;
    double d;
    bool b;
};

static_assert(sizeof(Sreg) == 8);

double round_f(double v) {
    return static_cast<double>(static_cast<float>(v));
}

} // namespace

struct Vm::Impl {
    InterpOptions options;
    bc::CompiledModule code;
    ExecutionProfile prof;

    // Contiguous register stack: frame k owns sregs[sbase, sbase+n_sregs)
    // and bregs[bbase, bbase+n_bregs). resize() value-initializes fresh
    // slots, so every frame starts zeroed.
    std::vector<Sreg> sregs;
    std::vector<BufferPtr> bregs;

    struct Frame {
        const bc::CompiledFunction* fn = nullptr;
        std::int32_t ret_pc = 0;  ///< caller pc to resume at
        std::int32_t ret_dst = -1; ///< caller sreg for the result; -1 = none
        std::size_t sbase = 0;
        std::size_t bbase = 0;
        std::size_t loop_mark = 0; ///< loop_stack depth at entry (Ret unwind)
        // Focus snapshots (depth-1 focus calls only), mirroring the locals
        // of the tree walker's call_function.
        double cost_before = 0.0;
        double flops_before = 0.0;
        double call_flops_before = 0.0;
        double bytes_before = 0.0;
    };
    std::vector<Frame> frames;

    // Loop attribution stack — field-for-field the tree walker's.
    struct ActiveLoop {
        LoopStats* stats;
        std::size_t frame;
    };
    std::vector<ActiveLoop> loop_stack;
    /// LoopStats per loop-pool index, resolved lazily; prof.loops is an
    /// unordered_map, so the pointers are rehash-stable.
    std::vector<LoopStats*> loop_cache;

    int focus_depth = 0;
    /// Buffer id -> prof.focus_buffers index. Focus functions have a
    /// handful of pointer params, so a flat scan beats hashing on the
    /// per-element-access path.
    std::vector<std::pair<int, std::size_t>> focus_buffer_index;

    long long steps = 0;

    // Charges not yet attributed to the active-loop stack. Every cost
    // weight, flop count and byte count is a small integer, so double
    // addition is exact here and batching at loop/call boundaries is
    // bit-identical to the tree walker's per-charge accumulation — while
    // turning the O(active loops) walk per instruction into O(1).
    double pend_cost = 0.0;
    double pend_flops = 0.0;
    double pend_bytes = 0.0;

    // Per-call arg staging (the dispatch loop is not reentrant).
    std::vector<Sreg> scratch_s;
    std::vector<BufferPtr> scratch_b;

    Impl(const ast::Module& m, const sema::TypeInfo& t, InterpOptions o)
        : options(std::move(o)),
          code(bc::compile(m, t, options.focus_function)),
          loop_cache(code.loop_pool.size(), nullptr) {}

    // ---- bookkeeping (identical to the tree walker's) -----------------

    void charge(double cost, double flops = 0.0, double bytes = 0.0) {
        if (++steps > options.max_steps)
            throw InterpError("execution exceeded max_steps (runaway loop?)");
        if ((steps & 0x1fff) == 0) poll_cancellation();
        if (!options.profile) return;
        pend_cost += cost;
        pend_flops += flops;
        pend_bytes += bytes;
    }

    /// Fold the pending charges into the profile totals and every active
    /// loop. Must run before anything that reads the totals (focus
    /// snapshots) or changes what "active" means — a loop_stack push/pop or
    /// a frames push/pop (self_cost attribution keys on the frame depth the
    /// charges happened at).
    void flush_charges() {
        if (pend_cost == 0.0 && pend_flops == 0.0 && pend_bytes == 0.0)
            return;
        prof.total_cost += pend_cost;
        prof.total_flops += pend_flops;
        prof.total_mem_bytes += pend_bytes;
        const std::size_t depth = frames.size();
        for (ActiveLoop& al : loop_stack) {
            al.stats->cost += pend_cost;
            al.stats->flops += pend_flops;
            al.stats->mem_bytes += pend_bytes;
            if (al.frame == depth) al.stats->self_cost += pend_cost;
        }
        pend_cost = 0.0;
        pend_flops = 0.0;
        pend_bytes = 0.0;
    }

    void note_access(const BufferPtr& buf, long long index, bool write) {
        charge(kMemCost, 0.0, buf->elem_bytes());
        if (!options.profile || focus_depth != 1) return;
        const int id = buf->id();
        for (const auto& [bid, slot] : focus_buffer_index) {
            if (bid != id) continue;
            BufferAccess& acc = prof.focus_buffers[slot];
            if (write) {
                acc.min_write = std::min(acc.min_write, index);
                acc.max_write = std::max(acc.max_write, index);
                ++acc.writes;
            } else {
                acc.min_read = std::min(acc.min_read, index);
                acc.max_read = std::max(acc.max_read, index);
                ++acc.reads;
            }
            return;
        }
    }

    // ---- focus tracking ------------------------------------------------

    /// Mirrors bind_focus_buffers: pointer params in declaration order,
    /// aliasing detected by buffer identity.
    void bind_focus(const bc::CompiledFunction& fn,
                    const std::vector<BufferPtr>& bufs) {
        std::vector<int> seen;
        std::size_t bi = 0;
        for (const bc::ParamSpec& p : fn.params) {
            if (!p.is_pointer) continue;
            const BufferPtr& b = bufs[bi++];
            const int id = b->id();
            if (std::find(seen.begin(), seen.end(), id) != seen.end())
                prof.focus_args_alias = true;
            seen.push_back(id);
            bool known = false;
            for (const auto& [bid, slot] : focus_buffer_index)
                if (bid == id) known = true;
            if (!known) {
                BufferAccess acc;
                acc.buffer_name = p.name;
                acc.elem_bytes = b->elem_bytes();
                focus_buffer_index.emplace_back(id,
                                                prof.focus_buffers.size());
                prof.focus_buffers.push_back(acc);
            }
        }
    }

    /// Focus-entry bookkeeping shared by entry and nested calls; runs after
    /// the kCallCost charge and before parameter binding, exactly like the
    /// tree walker.
    void focus_enter(const bc::CompiledFunction& fn, Frame& f,
                     const std::vector<BufferPtr>& bufs) {
        ++focus_depth;
        if (focus_depth != 1) return;
        prof.focus_function = fn.name;
        ++prof.focus_calls;
        f.cost_before = prof.total_cost;
        f.flops_before = prof.total_flops;
        f.call_flops_before = prof.total_call_flops;
        f.bytes_before = prof.total_mem_bytes;
        bind_focus(fn, bufs);
    }

    void focus_exit(const Frame& f) {
        if (focus_depth == 1) {
            prof.focus_cost += prof.total_cost - f.cost_before;
            prof.focus_flops += prof.total_flops - f.flops_before;
            prof.focus_call_flops +=
                prof.total_call_flops - f.call_flops_before;
            prof.focus_mem_bytes += prof.total_mem_bytes - f.bytes_before;
        }
        --focus_depth;
    }

    // ---- entry ---------------------------------------------------------

    Value call_entry(const bc::CompiledFunction& fn,
                     const std::vector<Arg>& args) {
        charge(kCallCost);
        flush_charges(); // before the focus snapshot reads the totals
        ensure(args.size() == fn.params.size(),
               "internal: call arity mismatch for '" + fn.name + "'");

        Frame f;
        f.fn = &fn;
        f.sbase = sregs.size();
        f.bbase = bregs.size();
        f.loop_mark = loop_stack.size();

        if (options.profile && fn.is_focus) {
            // Focus binding sees the buffer args only (a scalar passed for
            // a pointer param is skipped here and rejected just below).
            std::vector<BufferPtr> bufs;
            for (std::size_t i = 0; i < fn.params.size(); ++i) {
                if (!fn.params[i].is_pointer) continue;
                if (const auto* b = std::get_if<BufferPtr>(&args[i]))
                    bufs.push_back(*b);
            }
            focus_enter(fn, f, bufs);
        }

        scratch_s.clear();
        scratch_b.clear();
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            const bc::ParamSpec& p = fn.params[i];
            if (p.is_pointer) {
                const auto* b = std::get_if<BufferPtr>(&args[i]);
                ensure(b != nullptr,
                       "array argument expected for parameter '" + p.name +
                           "'");
                ensure((*b)->elem_type() == p.elem,
                       "buffer element type mismatch for parameter '" +
                           p.name + "'");
                scratch_b.push_back(*b);
            } else {
                const auto* v = std::get_if<Value>(&args[i]);
                ensure(v != nullptr,
                       "scalar argument expected for parameter '" + p.name +
                           "'");
                scratch_s.push_back(unbox(v->convert_to(p.elem), p.elem));
            }
        }

        frames.push_back(f);
        sregs.resize(f.sbase + fn.n_sregs);
        bregs.resize(f.bbase + fn.n_bregs);
        for (std::size_t k = 0; k < scratch_s.size(); ++k)
            sregs[f.sbase + k] = scratch_s[k];
        for (std::size_t k = 0; k < scratch_b.size(); ++k)
            bregs[f.bbase + k] = scratch_b[k];

        return dispatch();
    }

    static Sreg unbox(const Value& v, ast::Type t) {
        Sreg r{};
        switch (t) {
            case ast::Type::Int: r.i = v.as_int(); break;
            case ast::Type::Bool: r.b = v.as_bool(); break;
            default: r.d = v.as_double(); break;
        }
        return r;
    }

    static Value box(ast::Type t, Sreg r) {
        switch (t) {
            case ast::Type::Int: return Value::of_int(r.i);
            case ast::Type::Float: return Value::of_float(r.d);
            case ast::Type::Double: return Value::of_double(r.d);
            case ast::Type::Bool: return Value::of_bool(r.b);
            default: return Value::void_value();
        }
    }

    // ---- the dispatch loop ---------------------------------------------

    Value dispatch() {
        using bc::Op;
        const Frame* fr = &frames.back();
        const bc::Insn* ip = fr->fn->code.data();
        std::int32_t pc = 0;
        Sreg* S = sregs.data() + fr->sbase;
        BufferPtr* B = bregs.data() + fr->bbase;

        for (;;) {
            const bc::Insn in = ip[pc++];
            switch (in.op) {
                // ---- data movement ----
                case Op::LoadI:
                    S[in.a].i = code.int_pool[static_cast<std::size_t>(in.b)];
                    break;
                case Op::LoadD:
                    S[in.a].d = code.real_pool[static_cast<std::size_t>(in.b)];
                    break;
                case Op::LoadB: S[in.a].b = in.b != 0; break;
                case Op::Mov: S[in.a] = S[in.b]; break;
                case Op::I2D:
                    S[in.a].d = static_cast<double>(S[in.b].i);
                    break;
                case Op::D2I:
                    S[in.a].i = static_cast<long long>(S[in.b].d);
                    break;
                case Op::D2F: S[in.a].d = round_f(S[in.b].d); break;
                case Op::I2F:
                    // Via double, like of_float(as_double()).
                    S[in.a].d = round_f(static_cast<double>(S[in.b].i));
                    break;
                // ---- control ----
                case Op::Jmp: pc = in.a; break;
                case Op::JmpF:
                    if (!S[in.a].b) pc = in.b;
                    break;
                case Op::JmpT:
                    if (S[in.a].b) pc = in.b;
                    break;
                // ---- standalone charges ----
                case Op::ChargeCmp: charge(kCmpCost); break;
                case Op::ChargeAssign: charge(kAssignCost); break;
                // ---- int arithmetic ----
                case Op::AddI:
                    charge(kIntOpCost);
                    S[in.a].i = S[in.b].i + S[in.c].i;
                    break;
                case Op::SubI:
                    charge(kIntOpCost);
                    S[in.a].i = S[in.b].i - S[in.c].i;
                    break;
                case Op::MulI:
                    charge(kIntOpCost);
                    S[in.a].i = S[in.b].i * S[in.c].i;
                    break;
                case Op::DivI:
                    charge(kIntOpCost);
                    if (S[in.c].i == 0)
                        throw InterpError("integer division by zero");
                    S[in.a].i = S[in.b].i / S[in.c].i;
                    break;
                case Op::ModI:
                    charge(kIntOpCost);
                    if (S[in.c].i == 0)
                        throw InterpError("integer modulo by zero");
                    S[in.a].i = S[in.b].i % S[in.c].i;
                    break;
                case Op::NegI:
                    charge(1.0);
                    S[in.a].i = -S[in.b].i;
                    break;
                case Op::IncI: S[in.a].i = S[in.b].i + S[in.c].i; break;
                // ---- double arithmetic ----
                case Op::AddD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d + S[in.c].d;
                    break;
                case Op::SubD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d - S[in.c].d;
                    break;
                case Op::MulD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d * S[in.c].d;
                    break;
                case Op::DivD:
                    charge(4.0, 4.0);
                    S[in.a].d = S[in.b].d / S[in.c].d;
                    break;
                case Op::NegD:
                    charge(1.0, 1.0);
                    S[in.a].d = -S[in.b].d;
                    break;
                // ---- float arithmetic (compute in float) ----
                case Op::AddF:
                    charge(1.0, 1.0);
                    S[in.a].d = static_cast<double>(
                        static_cast<float>(S[in.b].d) +
                        static_cast<float>(S[in.c].d));
                    break;
                case Op::SubF:
                    charge(1.0, 1.0);
                    S[in.a].d = static_cast<double>(
                        static_cast<float>(S[in.b].d) -
                        static_cast<float>(S[in.c].d));
                    break;
                case Op::MulF:
                    charge(1.0, 1.0);
                    S[in.a].d = static_cast<double>(
                        static_cast<float>(S[in.b].d) *
                        static_cast<float>(S[in.c].d));
                    break;
                case Op::DivF:
                    charge(4.0, 4.0);
                    S[in.a].d = static_cast<double>(
                        static_cast<float>(S[in.b].d) /
                        static_cast<float>(S[in.c].d));
                    break;
                case Op::NegF:
                    charge(1.0, 1.0);
                    S[in.a].d = round_f(-S[in.b].d);
                    break;
                // ---- compound-assign arithmetic (`combined`) ----
                case Op::CAddI:
                    charge(1.0);
                    S[in.a].i = S[in.b].i + S[in.c].i;
                    break;
                case Op::CSubI:
                    charge(1.0);
                    S[in.a].i = S[in.b].i - S[in.c].i;
                    break;
                case Op::CMulI:
                    charge(1.0);
                    S[in.a].i = S[in.b].i * S[in.c].i;
                    break;
                case Op::CDivI:
                    charge(4.0);
                    if (S[in.c].i == 0)
                        throw InterpError("integer division by zero");
                    S[in.a].i = S[in.b].i / S[in.c].i;
                    break;
                case Op::CAddD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d + S[in.c].d;
                    break;
                case Op::CSubD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d - S[in.c].d;
                    break;
                case Op::CMulD:
                    charge(1.0, 1.0);
                    S[in.a].d = S[in.b].d * S[in.c].d;
                    break;
                case Op::CDivD:
                    charge(4.0, 4.0);
                    S[in.a].d = S[in.b].d / S[in.c].d;
                    break;
                // Float compound targets compute in double, round once.
                case Op::CAddF:
                    charge(1.0, 1.0);
                    S[in.a].d = round_f(S[in.b].d + S[in.c].d);
                    break;
                case Op::CSubF:
                    charge(1.0, 1.0);
                    S[in.a].d = round_f(S[in.b].d - S[in.c].d);
                    break;
                case Op::CMulF:
                    charge(1.0, 1.0);
                    S[in.a].d = round_f(S[in.b].d * S[in.c].d);
                    break;
                case Op::CDivF:
                    charge(4.0, 4.0);
                    S[in.a].d = round_f(S[in.b].d / S[in.c].d);
                    break;
                // ---- comparisons ----
                case Op::LtI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i < S[in.c].i;
                    break;
                case Op::LeI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i <= S[in.c].i;
                    break;
                case Op::GtI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i > S[in.c].i;
                    break;
                case Op::GeI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i >= S[in.c].i;
                    break;
                case Op::EqI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i == S[in.c].i;
                    break;
                case Op::NeI:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].i != S[in.c].i;
                    break;
                case Op::LtD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d < S[in.c].d;
                    break;
                case Op::LeD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d <= S[in.c].d;
                    break;
                case Op::GtD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d > S[in.c].d;
                    break;
                case Op::GeD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d >= S[in.c].d;
                    break;
                case Op::EqD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d == S[in.c].d;
                    break;
                case Op::NeD:
                    charge(kCmpCost);
                    S[in.a].b = S[in.b].d != S[in.c].d;
                    break;
                case Op::NotB:
                    charge(kCmpCost);
                    S[in.a].b = !S[in.b].b;
                    break;
                // ---- loops ----
                case Op::LoopEnter:
                    if (options.profile) {
                        flush_charges();
                        LoopStats*& st =
                            loop_cache[static_cast<std::size_t>(in.a)];
                        if (st == nullptr)
                            st = &prof.loops[code.loop_pool
                                                 [static_cast<std::size_t>(
                                                     in.a)]];
                        ++st->entries;
                        loop_stack.push_back(
                            ActiveLoop{st, frames.size()});
                    }
                    break;
                case Op::LoopHead:
                    charge(kCmpCost);
                    if (S[in.a].i >= S[in.b].i) pc = in.c;
                    break;
                case Op::LoopTrip:
                    if (options.profile) ++loop_stack.back().stats->trips;
                    charge(kLoopIterCost);
                    break;
                case Op::LoopExit:
                    if (options.profile) {
                        flush_charges();
                        loop_stack.pop_back();
                    }
                    break;
                case Op::StepCheck:
                    if (S[in.a].i <= 0)
                        throw InterpError(
                            code.name_pool[static_cast<std::size_t>(in.b)]);
                    break;
                // ---- buffers ----
                case Op::NewBuf: {
                    const long long n = S[in.b].i;
                    const bc::BufDecl& d =
                        code.buf_pool[static_cast<std::size_t>(in.c)];
                    if (n < 0)
                        throw InterpError("negative array size for '" +
                                          d.name + "'");
                    B[in.a] = std::make_shared<Buffer>(
                        d.elem, static_cast<std::size_t>(n), d.name);
                    break;
                }
                case Op::LoadElemI: {
                    const long long idx = S[in.c].i;
                    note_access(B[in.b], idx, /*write=*/false);
                    S[in.a].i = static_cast<long long>(B[in.b]->load(idx));
                    break;
                }
                case Op::LoadElemF: {
                    const long long idx = S[in.c].i;
                    note_access(B[in.b], idx, /*write=*/false);
                    // of_float rounds; raw() writers may store unrounded.
                    S[in.a].d = round_f(B[in.b]->load(idx));
                    break;
                }
                case Op::LoadElemD: {
                    const long long idx = S[in.c].i;
                    note_access(B[in.b], idx, /*write=*/false);
                    S[in.a].d = B[in.b]->load(idx);
                    break;
                }
                case Op::StoreElem: {
                    const long long idx = S[in.b].i;
                    B[in.a]->store(idx, S[in.c].d); // throws before the
                    note_access(B[in.a], idx, true); // write charge, like
                    break;                           // the tree walker
                }
                // ---- calls ----
                case Op::CallBuiltin: {
                    const sema::BuiltinInfo* b =
                        code.builtin_pool[static_cast<std::size_t>(in.b)];
                    double argv[4];
                    for (int k = 0; k < b->arity; ++k)
                        argv[k] =
                            S[code.arg_pool[static_cast<std::size_t>(
                                  in.c + k)]]
                                .d;
                    charge(b->flop_cost, b->flop_cost);
                    if (options.profile)
                        prof.total_call_flops += b->flop_cost;
                    const double out = sema::eval_builtin(
                        *b, std::span<const double>(
                                argv, static_cast<std::size_t>(b->arity)));
                    S[in.a].d =
                        b->result == ast::Type::Float ? round_f(out) : out;
                    break;
                }
                case Op::CallUser: {
                    const bc::CompiledFunction& callee =
                        code.functions[static_cast<std::size_t>(in.b)];
                    charge(kCallCost); // attributed at the caller's depth
                    flush_charges();

                    const std::int32_t* argv =
                        code.arg_pool.data() + in.c;
                    scratch_s.clear();
                    scratch_b.clear();
                    for (std::size_t k = 0; k < callee.params.size(); ++k) {
                        if (callee.params[k].is_pointer)
                            scratch_b.push_back(B[argv[k]]);
                        else
                            scratch_s.push_back(S[argv[k]]);
                    }

                    Frame nf;
                    nf.fn = &callee;
                    nf.ret_pc = pc;
                    nf.ret_dst = in.a;
                    nf.sbase = sregs.size();
                    nf.bbase = bregs.size();
                    nf.loop_mark = loop_stack.size();
                    if (options.profile && callee.is_focus)
                        focus_enter(callee, nf, scratch_b);

                    // The tree walker re-validates buffer elem types on
                    // every call; keep the identical check and wording.
                    std::size_t bi = 0;
                    for (const bc::ParamSpec& p : callee.params) {
                        if (!p.is_pointer) continue;
                        ensure(scratch_b[bi]->elem_type() == p.elem,
                               "buffer element type mismatch for parameter "
                               "'" +
                                   p.name + "'");
                        ++bi;
                    }

                    frames.push_back(nf);
                    sregs.resize(nf.sbase + callee.n_sregs);
                    bregs.resize(nf.bbase + callee.n_bregs);
                    for (std::size_t k = 0; k < scratch_s.size(); ++k)
                        sregs[nf.sbase + k] = scratch_s[k];
                    for (std::size_t k = 0; k < scratch_b.size(); ++k)
                        bregs[nf.bbase + k] = scratch_b[k];

                    fr = &frames.back();
                    ip = callee.code.data();
                    pc = 0;
                    S = sregs.data() + fr->sbase;
                    B = bregs.data() + fr->bbase;
                    break;
                }
                case Op::Ret:
                case Op::RetVoid: {
                    flush_charges();
                    const Frame f = *fr;
                    if (options.profile && f.fn->is_focus) focus_exit(f);
                    Sreg rv{};
                    if (in.op == Op::Ret) rv = S[in.a];
                    // A return from inside loops unwinds every ActiveLoop
                    // this frame pushed, like the tree walker's per-loop
                    // pops on the Returned path.
                    loop_stack.resize(f.loop_mark);
                    frames.pop_back();
                    sregs.resize(f.sbase);
                    bregs.resize(f.bbase);
                    if (frames.empty())
                        return in.op == Op::Ret ? box(f.fn->ret, rv)
                                                : Value::void_value();
                    fr = &frames.back();
                    ip = fr->fn->code.data();
                    pc = f.ret_pc;
                    S = sregs.data() + fr->sbase;
                    B = bregs.data() + fr->bbase;
                    if (f.ret_dst >= 0) S[f.ret_dst] = rv;
                    break;
                }
                case Op::Trap:
                    throw InterpError(
                        code.name_pool[static_cast<std::size_t>(in.a)]);
            }
        }
    }
};

Vm::Vm(const ast::Module& module, const sema::TypeInfo& types,
       InterpOptions options)
    : impl_(std::make_unique<Impl>(module, types, std::move(options))) {}

Vm::~Vm() = default;

Value Vm::call(const std::string& name, const std::vector<Arg>& args) {
    const bc::CompiledFunction* fn = impl_->code.find(name);
    if (fn == nullptr)
        throw InterpError("entry function '" + name + "' not found");
    ensure(args.size() == fn->params.size(),
           "entry call arity mismatch for '" + name + "'");

    const long long steps_before = impl_->steps;
    Value out;
    try {
        out = impl_->call_entry(*fn, args);
    } catch (...) {
        // Keep the partial profile bit-identical to the tree walker's: the
        // charges since the last boundary are still pending.
        impl_->flush_charges();
        throw;
    }
    trace::Registry::current().count(
        "interp.steps",
        static_cast<std::uint64_t>(impl_->steps - steps_before));
    return out;
}

const ExecutionProfile& Vm::profile() const { return impl_->prof; }

} // namespace psaflow::interp
