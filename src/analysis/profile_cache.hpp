// Memoization of profiling interpreter runs.
//
// Every dynamic design-flow task executes the application under the
// tree-walking interpreter, which pays a ~100x constant factor versus
// native execution. Branched PSA-flows fork the FlowContext per path, and
// each fork lazily recomputes its kernel characterisation — re-running the
// *same* program on the *same* inputs whenever no transform has touched the
// module yet. DSE loops and the fig5/fig6 harnesses (which compile each app
// in both PSA modes) repeat the identical runs again.
//
// The cache keys a profiled run by
//   (module content hash, entry/focus function, argument digest, step limit)
// where the content hash covers the printed module source (the printer is
// source-faithful, so equal text implies an isomorphic AST) and the argument
// digest covers scalar values and full buffer contents. Profiles keyed this
// way are safe to share across AST clones with one correction: LoopStats are
// keyed by node id, and clones get fresh ids. Cached entries therefore also
// record the pre-order For-loop id sequence of the module they were computed
// on; a hit remaps the stats onto the current module's loop ids by position
// (equal source text guarantees the same loop structure and order).
//
// When the process-wide content-addressed store (support/cas) is
// configured — via --cache-dir or PSAFLOW_CACHE_DIR — profiles also
// persist on disk: an in-memory miss falls back to a checksum-verified
// disk read before recomputing, and fresh profiles are written through.
// Disk entries store loop stats keyed by *pre-order position* (not node
// id), with bit-exact doubles, so any later process — whose clones carry
// different node ids — can remap them onto its own module and reproduce
// the computed profile exactly.
//
// Process-wide and thread-safe. Disable with PSAFLOW_CACHE=0 (or
// set_enabled(false)); hits/misses are counted here and mirrored into the
// trace registry as "profile_cache.hits" / "profile_cache.misses" /
// "profile_cache.disk_hits".
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/nodes.hpp"
#include "interp/interpreter.hpp"
#include "sema/type_check.hpp"

namespace psaflow::analysis {

struct ProfileCacheStats {
    std::uint64_t hits = 0;      ///< in-memory hits
    std::uint64_t disk_hits = 0; ///< served from the content-addressed store
    std::uint64_t misses = 0;    ///< recomputed under the interpreter
};

class ProfileCache {
public:
    [[nodiscard]] static ProfileCache& global();

    /// Run `entry(args)` on `module` under the profiling interpreter, or
    /// return the memoized profile of an identical earlier run (with loop
    /// stats remapped onto this module's node ids). `options.profile` is
    /// forced on.
    [[nodiscard]] interp::ExecutionProfile
    run(const ast::Module& module, const sema::TypeInfo& types,
        const std::string& entry, const std::vector<interp::Arg>& args,
        interp::InterpOptions options = {});

    void set_enabled(bool on);
    [[nodiscard]] bool enabled() const;

    void clear();
    [[nodiscard]] ProfileCacheStats stats() const;

    /// Entry cap: when the cache grows past this many distinct runs it is
    /// flushed wholesale (profiles are small; the cap only bounds pathological
    /// DSE sweeps over ever-changing modules). 0 means unbounded.
    void set_max_entries(std::size_t n);

private:
    ProfileCache();

    struct Entry {
        interp::ExecutionProfile profile;
        /// Pre-order For-node ids of the module the profile was computed on.
        std::vector<ast::Node::Id> loop_order;
    };

    /// Remap `entry`'s loop stats onto `module`'s current node ids by
    /// pre-order position; nullopt when the loop structure differs (which
    /// equal source text should make impossible — recompute defensively).
    [[nodiscard]] static std::optional<interp::ExecutionProfile>
    remap_onto(const Entry& entry, const ast::Module& module);

    mutable std::mutex mu_;
    bool enabled_ = true;
    std::size_t max_entries_ = 4096;
    std::unordered_map<std::uint64_t, Entry> entries_;
    ProfileCacheStats stats_;
};

/// FNV-1a digest of a top-level argument list: scalar type tags and bit
/// patterns, buffer element types, sizes and full contents.
[[nodiscard]] std::uint64_t digest_args(const std::vector<interp::Arg>& args);

/// FNV-1a digest of arbitrary bytes, exposed for tests.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t size,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Serialise a profile for the content-addressed store. Loop stats are
/// keyed by their position in `loop_order` (the pre-order For-node ids of
/// the module the profile was computed on); doubles are stored as bit
/// patterns, so a reload reproduces the profile exactly. Exposed for the
/// CAS round-trip tests.
[[nodiscard]] std::string
serialize_profile_payload(const interp::ExecutionProfile& profile,
                          const std::vector<ast::Node::Id>& loop_order);

/// Parse a payload written by serialize_profile_payload. On success the
/// profile's loop stats are keyed by pre-order *position* (0..n-1) and
/// `loop_count` is the serialised module's For-loop count.
[[nodiscard]] bool parse_profile_payload(std::string_view payload,
                                         interp::ExecutionProfile& profile,
                                         std::size_t& loop_count);

} // namespace psaflow::analysis
