// Hotspot loop detection — the paper's "Identify Hotspot Loops" task
// (dynamic). The application is executed under the profiling interpreter
// (the stand-in for loop-timer instrumentation) and outermost loops are
// ranked by attributed cost.
#pragma once

#include <string>
#include <vector>

#include "analysis/workload.hpp"
#include "ast/nodes.hpp"
#include "sema/type_check.hpp"

namespace psaflow::analysis {

struct HotspotCandidate {
    ast::For* loop = nullptr;          ///< the outermost loop
    ast::Function* function = nullptr; ///< function containing it
    double cost = 0.0;                 ///< attributed cost units
    double fraction = 0.0;             ///< cost / total program cost
    long long trips = 0;               ///< total iterations observed
};

struct HotspotReport {
    /// Candidates sorted by descending cost. Empty if the program has no
    /// loops or they never executed.
    std::vector<HotspotCandidate> candidates;
    double total_cost = 0.0;

    [[nodiscard]] const HotspotCandidate* top() const {
        return candidates.empty() ? nullptr : &candidates.front();
    }
};

/// Run `workload` on `module` and rank outermost loops by cost. Loops inside
/// the entry function and all (transitively) called functions participate.
[[nodiscard]] HotspotReport detect_hotspots(ast::Module& module,
                                            const sema::TypeInfo& types,
                                            const Workload& workload);

} // namespace psaflow::analysis
