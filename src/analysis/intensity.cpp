#include "analysis/intensity.hpp"

#include <algorithm>

#include "meta/query.hpp"
#include "sema/builtins.hpp"

namespace psaflow::analysis {

using namespace psaflow::ast;

namespace {

struct Counter {
    const sema::TypeInfo& types;
    bool exact = true;

    StaticIntensity expr(const Expr& e) {
        StaticIntensity acc;
        switch (e.kind()) {
            case NodeKind::Binary: {
                const auto& b = static_cast<const Binary&>(e);
                acc = combine(expr(*b.lhs), expr(*b.rhs));
                if (is_arithmetic(b.op) && is_floating(types.type_of(b)))
                    acc.flops += b.op == BinaryOp::Div ? 4.0 : 1.0;
                return acc;
            }
            case NodeKind::Unary: {
                const auto& u = static_cast<const Unary&>(e);
                acc = expr(*u.operand);
                if (u.op == UnaryOp::Neg && is_floating(types.type_of(u)))
                    acc.flops += 1.0;
                return acc;
            }
            case NodeKind::Call: {
                const auto& c = static_cast<const Call&>(e);
                for (const auto& a : c.args) acc = combine(acc, expr(*a));
                if (const auto* b = sema::find_builtin(c.callee))
                    acc.flops += b->flop_cost;
                // User-function calls: counted as their body's cost would
                // require inlining; hotspot kernels contain no user calls
                // after extraction, so charge nothing and stay a lower bound.
                return acc;
            }
            case NodeKind::Index: {
                const auto& ix = static_cast<const Index&>(e);
                acc = expr(*ix.index);
                acc.bytes += size_of(types.type_of(ix));
                return acc;
            }
            default:
                return acc;
        }
    }

    StaticIntensity stmt(const Stmt& s) {
        switch (s.kind()) {
            case NodeKind::Block: {
                StaticIntensity acc;
                for (const auto& inner : static_cast<const Block&>(s).stmts)
                    acc = combine(acc, stmt(*inner));
                return acc;
            }
            case NodeKind::VarDecl: {
                const auto& d = static_cast<const VarDecl&>(s);
                return d.init ? expr(*d.init) : StaticIntensity{};
            }
            case NodeKind::Assign: {
                const auto& a = static_cast<const Assign&>(s);
                StaticIntensity acc = combine(expr(*a.value), lvalue(*a.target));
                if (a.op != AssignOp::Set &&
                    is_floating(types.type_of(*a.target)))
                    acc.flops += a.op == AssignOp::Div ? 4.0 : 1.0;
                return acc;
            }
            case NodeKind::If: {
                const auto& i = static_cast<const If&>(s);
                StaticIntensity cond = expr(*i.cond);
                StaticIntensity then_side = stmt(*i.then_body);
                StaticIntensity else_side =
                    i.else_body ? stmt(*i.else_body) : StaticIntensity{};
                // Worst case: heavier branch.
                const StaticIntensity& heavy =
                    then_side.flops + then_side.bytes >=
                            else_side.flops + else_side.bytes
                        ? then_side
                        : else_side;
                return combine(cond, heavy);
            }
            case NodeKind::For: {
                const auto& f = static_cast<const For&>(s);
                StaticIntensity body = stmt(*f.body);
                double trips = 1.0;
                if (meta::has_fixed_bounds(f)) {
                    trips = static_cast<double>(meta::constant_trip_count(f));
                } else {
                    exact = false;
                }
                body.flops *= trips;
                body.bytes *= trips;
                return body;
            }
            case NodeKind::While: {
                exact = false; // unknown iteration count: body counted once
                return stmt(*static_cast<const While&>(s).body);
            }
            case NodeKind::Return: {
                const auto& r = static_cast<const Return&>(s);
                return r.value ? expr(*r.value) : StaticIntensity{};
            }
            case NodeKind::ExprStmt:
                return expr(*static_cast<const ExprStmt&>(s).expr);
            default:
                return {};
        }
    }

    StaticIntensity lvalue(const Expr& target) {
        if (target.kind() == NodeKind::Index) {
            const auto& ix = static_cast<const Index&>(target);
            StaticIntensity acc = expr(*ix.index);
            acc.bytes += size_of(types.type_of(ix));
            return acc;
        }
        return {};
    }

    static StaticIntensity combine(StaticIntensity a,
                                   const StaticIntensity& b) {
        a.flops += b.flops;
        a.bytes += b.bytes;
        return a;
    }
};

} // namespace

StaticIntensity static_intensity(const For& loop,
                                 const sema::TypeInfo& types) {
    Counter counter{types};
    StaticIntensity out = counter.stmt(*loop.body);
    out.exact = counter.exact;
    return out;
}

} // namespace psaflow::analysis
