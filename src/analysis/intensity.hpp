// Static arithmetic-intensity analysis — counts floating-point work and
// memory traffic per iteration of a loop directly from the AST (no
// execution), the static half of the paper's compute-/memory-bound
// discriminator. The dynamic counterpart lives in characterize.hpp.
#pragma once

#include "ast/nodes.hpp"
#include "sema/type_check.hpp"

namespace psaflow::analysis {

struct StaticIntensity {
    double flops = 0.0; ///< weighted flops per outer-loop iteration
    double bytes = 0.0; ///< bytes accessed per outer-loop iteration
    /// False when a nested loop has non-constant bounds; its body was then
    /// counted once (a lower bound on the true work).
    bool exact = true;

    [[nodiscard]] double flops_per_byte() const {
        return bytes > 0.0 ? flops / bytes : 0.0;
    }
};

/// Per-iteration static work of `loop`'s body. Nested fixed-bound loops
/// multiply their body counts by the constant trip count; conditional
/// branches contribute the *heavier* side (worst-case work).
[[nodiscard]] StaticIntensity static_intensity(const ast::For& loop,
                                               const sema::TypeInfo& types);

} // namespace psaflow::analysis
