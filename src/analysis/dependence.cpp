#include "analysis/dependence.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"

namespace psaflow::analysis {

using namespace psaflow::ast;

namespace {

/// Names of scalars written anywhere in `body` (assignment targets).
std::unordered_set<std::string> written_scalars(const Block& body) {
    std::unordered_set<std::string> out;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* a = dyn_cast<Assign>(&n)) {
            if (const auto* id = dyn_cast<Ident>(a->target.get()))
                out.insert(id->name);
        }
        return true;
    });
    return out;
}

/// Names of arrays written anywhere in `body`.
std::unordered_set<std::string> written_arrays(const Block& body) {
    std::unordered_set<std::string> out;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* a = dyn_cast<Assign>(&n)) {
            if (const auto* ix = dyn_cast<Index>(a->target.get())) {
                if (const auto* base = dyn_cast<Ident>(ix->base.get()))
                    out.insert(base->name);
            }
        }
        return true;
    });
    return out;
}

/// Affine decomposition of an index expression with respect to the loop
/// variable `v`:  expr == coef * v + rest, where `coef` and `rest` are
/// loop-invariant *as strings* (canonical printed form). Returns nullopt
/// when the expression is not affine in `v` or references state mutated by
/// the loop body (non-invariant coefficient/rest).
struct Affine {
    std::string coef; ///< "0" when expr does not involve v
    std::string rest;
    std::optional<long long> coef_const; ///< set when coef is a constant
    std::optional<long long> rest_const; ///< set when rest is a constant
};

class AffineDecomposer {
public:
    AffineDecomposer(const std::string& v,
                     const std::unordered_set<std::string>& mutated_scalars,
                     const std::unordered_set<std::string>& mutated_arrays)
        : v_(v), mutated_scalars_(mutated_scalars),
          mutated_arrays_(mutated_arrays) {}

    std::optional<Affine> run(const Expr& e) { return decompose(e); }

private:
    static std::string sum(const std::string& a, const std::string& b) {
        if (a == "0") return b;
        if (b == "0") return a;
        return "(" + a + " + " + b + ")";
    }
    static std::string diff(const std::string& a, const std::string& b) {
        if (b == "0") return a;
        return "(" + a + " - " + b + ")";
    }
    static std::string prod(const std::string& a, const std::string& b) {
        if (a == "0" || b == "0") return "0";
        if (a == "1") return b;
        if (b == "1") return a;
        return "(" + a + " * " + b + ")";
    }

    /// True when `e` references the induction variable.
    bool contains_v(const Expr& e) const {
        bool found = false;
        walk(static_cast<const Node&>(e), [&](const Node& n) {
            if (const auto* id = dyn_cast<Ident>(&n)) {
                if (id->name == v_) found = true;
            }
            return !found;
        });
        return found;
    }

    /// True when `e` is loop-invariant modulo inner induction variables:
    /// no reference to scalars or arrays mutated by the body.
    bool invariant(const Expr& e) const {
        bool bad = false;
        walk(static_cast<const Node&>(e), [&](const Node& n) {
            if (const auto* id = dyn_cast<Ident>(&n)) {
                if (mutated_scalars_.count(id->name) != 0) bad = true;
            }
            if (const auto* ix = dyn_cast<Index>(&n)) {
                if (const auto* base = dyn_cast<Ident>(ix->base.get())) {
                    if (mutated_arrays_.count(base->name) != 0) bad = true;
                }
            }
            return !bad;
        });
        return !bad;
    }

    std::optional<Affine> decompose(const Expr& e) {
        if (!contains_v(e)) {
            if (!invariant(e)) return std::nullopt;
            return Affine{"0", to_source(e), 0, meta::fold_int_constant(e)};
        }
        switch (e.kind()) {
            case NodeKind::Ident: // must be v itself (contains_v holds)
                return Affine{"1", "0", 1, 0};
            case NodeKind::Binary: {
                const auto& b = static_cast<const Binary&>(e);
                switch (b.op) {
                    case BinaryOp::Add: {
                        auto l = decompose(*b.lhs);
                        auto r = decompose(*b.rhs);
                        if (!l || !r) return std::nullopt;
                        Affine out{sum(l->coef, r->coef),
                                   sum(l->rest, r->rest), std::nullopt,
                                   std::nullopt};
                        if (l->coef_const && r->coef_const)
                            out.coef_const = *l->coef_const + *r->coef_const;
                        if (l->rest_const && r->rest_const)
                            out.rest_const = *l->rest_const + *r->rest_const;
                        return out;
                    }
                    case BinaryOp::Sub: {
                        auto l = decompose(*b.lhs);
                        auto r = decompose(*b.rhs);
                        if (!l || !r) return std::nullopt;
                        // coef must stay "positive-looking": subtracting a
                        // v-term flips stride direction, which we treat
                        // conservatively.
                        if (r->coef != "0") return std::nullopt;
                        Affine out{l->coef, diff(l->rest, r->rest),
                                   l->coef_const, std::nullopt};
                        if (l->rest_const && r->rest_const)
                            out.rest_const = *l->rest_const - *r->rest_const;
                        return out;
                    }
                    case BinaryOp::Mul: {
                        const bool lv = contains_v(*b.lhs);
                        const bool rv = contains_v(*b.rhs);
                        if (lv && rv) return std::nullopt; // v * v
                        const Expr& with_v = lv ? *b.lhs : *b.rhs;
                        const Expr& factor = lv ? *b.rhs : *b.lhs;
                        if (!invariant(factor)) return std::nullopt;
                        auto inner = decompose(with_v);
                        if (!inner) return std::nullopt;
                        const std::string f = to_source(factor);
                        Affine out{prod(inner->coef, f),
                                   prod(inner->rest, f), std::nullopt,
                                   std::nullopt};
                        const auto fc = meta::fold_int_constant(factor);
                        if (fc && inner->coef_const)
                            out.coef_const = *inner->coef_const * *fc;
                        if (fc && inner->rest_const)
                            out.rest_const = *inner->rest_const * *fc;
                        return out;
                    }
                    default:
                        return std::nullopt; // div/mod of v: non-affine
                }
            }
            default:
                return std::nullopt; // calls, v inside a subscript, ...
        }
    }

    const std::string& v_;
    const std::unordered_set<std::string>& mutated_scalars_;
    const std::unordered_set<std::string>& mutated_arrays_;
};

struct ArrayAccess {
    const Expr* index = nullptr;
    bool is_write = false;
    bool is_accumulation = false; ///< compound assignment (+=, -=, ...)
};

} // namespace

DependenceInfo analyze_dependence(const Module& module, const For& loop) {
    DependenceInfo info;
    const Block& body = *loop.body;
    const std::string& v = loop.var;

    const auto mutated_scalars = written_scalars(body);
    const auto mutated_arrays = written_arrays(body);

    // Scalars declared inside the body (including inner induction variables)
    // are private to an iteration.
    std::unordered_set<std::string> private_names;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* d = dyn_cast<VarDecl>(&n)) private_names.insert(d->name);
        if (const auto* f = dyn_cast<For>(&n)) private_names.insert(f->var);
        return true;
    });

    // ---- induction variable integrity --------------------------------------
    if (mutated_scalars.count(v) != 0)
        info.carried.push_back("induction variable '" + v +
                               "' is written inside the loop body");

    // ---- calls with side effects -------------------------------------------
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* c = dyn_cast<Call>(&n)) {
            const Function* callee = module.find_function(c->callee);
            if (callee == nullptr) return true; // builtin: pure
            for (const auto& p : callee->params) {
                if (p->type.is_pointer &&
                    meta::writes_variable(const_cast<Function&>(*callee),
                                          p->name)) {
                    info.carried.push_back(
                        "call to '" + c->callee +
                        "' may write array argument '" + p->name + "'");
                    break;
                }
            }
        }
        return true;
    });

    // ---- array accesses ----------------------------------------------------
    std::unordered_map<std::string, std::vector<ArrayAccess>> accesses;
    std::unordered_set<const Expr*> write_targets;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* a = dyn_cast<Assign>(&n)) {
            if (const auto* ix = dyn_cast<Index>(a->target.get())) {
                const auto* base = dyn_cast<Ident>(ix->base.get());
                if (base != nullptr) {
                    accesses[base->name].push_back(
                        {ix->index.get(), true, a->op != AssignOp::Set});
                    write_targets.insert(a->target.get());
                }
            }
        }
        return true;
    });
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* ix = dyn_cast<Index>(&n)) {
            if (write_targets.count(static_cast<const Expr*>(ix)) != 0)
                return true; // counted as write
            const auto* base = dyn_cast<Ident>(ix->base.get());
            if (base != nullptr && mutated_arrays.count(base->name) != 0) {
                // Reads only matter for arrays that are also written.
                accesses[base->name].push_back({ix->index.get(), false, false});
            }
        }
        return true;
    });

    AffineDecomposer aff(v, mutated_scalars, mutated_arrays);
    for (auto& [array, list] : accesses) {
        if (private_names.count(array) != 0) continue; // local scratch array:
        // still shared across iterations? No: locals declared in the body are
        // re-created per iteration, hence private.

        bool all_accumulating = true;
        bool any_write = false;
        std::vector<Affine> forms;
        bool independent = true;
        std::string reason;

        for (const ArrayAccess& acc : list) {
            if (acc.is_write) {
                any_write = true;
                if (!acc.is_accumulation) all_accumulating = false;
            }
            auto form = aff.run(*acc.index);
            if (!form) {
                independent = false;
                reason = "index '" + to_source(*acc.index) +
                         "' of array '" + array + "' is not affine in '" + v +
                         "'";
                break;
            }
            if (form->coef == "0") {
                independent = false;
                reason = "array '" + array + "' accessed at index '" +
                         to_source(*acc.index) +
                         "' that does not advance with '" + v + "'";
                break;
            }
            forms.push_back(std::move(*form));
        }

        if (independent && !forms.empty()) {
            // All accesses must share the stride (coefficient of v).
            for (const Affine& f : forms) {
                if (f.coef != forms.front().coef) {
                    independent = false;
                    reason = "array '" + array +
                             "' accessed at mixed strides in '" + v + "'";
                    break;
                }
            }
        }
        if (independent && !forms.empty()) {
            // Identical offsets are always fine; distinct *constant*
            // offsets are fine when they all fall within one stride (the
            // multi-field record pattern a[i*13 + 0..12]).
            bool same_rest = true;
            for (const Affine& f : forms) {
                if (f.rest != forms.front().rest) same_rest = false;
            }
            if (!same_rest) {
                bool const_window = forms.front().coef_const.has_value();
                long long lo = 0;
                long long hi = 0;
                bool first = true;
                for (const Affine& f : forms) {
                    if (!f.rest_const) {
                        const_window = false;
                        break;
                    }
                    lo = first ? *f.rest_const : std::min(lo, *f.rest_const);
                    hi = first ? *f.rest_const : std::max(hi, *f.rest_const);
                    first = false;
                }
                if (!const_window ||
                    hi - lo >= std::abs(*forms.front().coef_const)) {
                    independent = false;
                    reason = "array '" + array +
                             "' accessed at offset index patterns that may "
                             "collide across iterations of '" + v + "'";
                }
            }
        }

        if (!any_write) continue;
        if (independent) continue;
        if (all_accumulating) {
            info.array_accumulations.push_back(array);
        } else {
            info.carried.push_back(reason);
        }
    }

    // ---- shared scalar writes ----------------------------------------------
    // Collect per-scalar assignment nodes, then decide reduction vs carried.
    std::unordered_map<std::string, std::vector<const Assign*>> scalar_writes;
    walk(static_cast<const Node&>(body), [&](const Node& n) {
        if (const auto* a = dyn_cast<Assign>(&n)) {
            if (const auto* id = dyn_cast<Ident>(a->target.get())) {
                if (private_names.count(id->name) == 0 && id->name != v)
                    scalar_writes[id->name].push_back(a);
            }
        }
        return true;
    });

    auto expr_reads_name = [](const Expr& e, const std::string& name) {
        bool found = false;
        walk(static_cast<const Node&>(e), [&](const Node& n) {
            if (const auto* id = dyn_cast<Ident>(&n)) {
                if (id->name == name) found = true;
            }
            return !found;
        });
        return found;
    };

    for (const auto& [name, writes] : scalar_writes) {
        char op = 0;
        bool is_reduction = true;
        for (const Assign* a : writes) {
            char this_op = 0;
            switch (a->op) {
                case AssignOp::Add: this_op = '+'; break;
                case AssignOp::Sub: this_op = '+'; break; // sum reduction
                case AssignOp::Mul: this_op = '*'; break;
                case AssignOp::Set: {
                    // Accept `s = s + e` / `s = e + s` / `s = s * e` forms.
                    const auto* b = dyn_cast<Binary>(a->value.get());
                    if (b != nullptr &&
                        (b->op == BinaryOp::Add || b->op == BinaryOp::Mul)) {
                        const auto* l = dyn_cast<Ident>(b->lhs.get());
                        const auto* r = dyn_cast<Ident>(b->rhs.get());
                        const bool l_is_s = l != nullptr && l->name == name;
                        const bool r_is_s = r != nullptr && r->name == name;
                        if (l_is_s != r_is_s) {
                            const Expr& other = l_is_s ? *b->rhs : *b->lhs;
                            if (!expr_reads_name(other, name)) {
                                this_op = b->op == BinaryOp::Add ? '+' : '*';
                                break;
                            }
                        }
                    }
                    is_reduction = false;
                    break;
                }
                default: is_reduction = false; break;
            }
            if (!is_reduction) break;
            if (this_op != 0 && a->op != AssignOp::Set &&
                expr_reads_name(*a->value, name)) {
                is_reduction = false;
                break;
            }
            if (op == 0) op = this_op;
            if (op != this_op) {
                is_reduction = false;
                break;
            }
        }

        if (is_reduction) {
            // The scalar must not be read outside its own accumulations.
            std::unordered_set<const Node*> allowed;
            for (const Assign* a : writes) {
                allowed.insert(a->target.get());
                if (a->op == AssignOp::Set) {
                    // The embedded `s` read inside `s = s + e`.
                    const auto* b = dyn_cast<Binary>(a->value.get());
                    if (b != nullptr) {
                        if (const auto* l = dyn_cast<Ident>(b->lhs.get());
                            l != nullptr && l->name == name)
                            allowed.insert(b->lhs.get());
                        if (const auto* r = dyn_cast<Ident>(b->rhs.get());
                            r != nullptr && r->name == name)
                            allowed.insert(b->rhs.get());
                    }
                }
            }
            bool read_elsewhere = false;
            walk(static_cast<const Node&>(body), [&](const Node& n) {
                if (const auto* id = dyn_cast<Ident>(&n)) {
                    if (id->name == name && allowed.count(&n) == 0)
                        read_elsewhere = true;
                }
                return !read_elsewhere;
            });
            if (read_elsewhere) is_reduction = false;
        }

        if (is_reduction) {
            info.reductions.push_back(Reduction{name, op});
        } else {
            info.carried.push_back("scalar '" + name +
                                   "' carries a value across iterations");
        }
    }

    info.parallel =
        info.carried.empty() && info.array_accumulations.empty();
    return info;
}

} // namespace psaflow::analysis
