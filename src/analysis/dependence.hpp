// Static loop-dependence analysis — the paper's "Loop Dependence Analysis"
// task. Decides, per canonical loop, whether iterations may execute in
// parallel, and classifies the dependencies it finds:
//
//   - scalar reductions  (s += expr): parallelisable with a reduction clause;
//   - array accumulation (a[e] += ..., e not a function of the induction
//     variable alone): the pattern the "Remove Array += Dependency"
//     transform targets;
//   - true loop-carried dependencies: anything else that reads or writes
//     across iterations.
//
// The analysis is conservative: when it cannot prove independence it reports
// a dependency. That matches the engineering reality of the paper's flow —
// a wrongly-parallelised loop is a broken design, a wrongly-serialised loop
// is only a slow one.
#pragma once

#include <string>
#include <vector>

#include "ast/nodes.hpp"

namespace psaflow::analysis {

/// A scalar reduction recognised in a loop body.
struct Reduction {
    std::string var;
    char op = '+'; ///< '+', '-', '*' (OpenMP reduction identifiers)
};

struct DependenceInfo {
    /// True when all iterations may run concurrently, treating recognised
    /// scalar reductions as parallelisable (OpenMP reduction clause, GPU
    /// atomic/tree reduction).
    bool parallel = false;

    std::vector<Reduction> reductions;

    /// Arrays accumulated at indices not injective in the induction
    /// variable, e.g. hist[bin[i]] += 1.
    std::vector<std::string> array_accumulations;

    /// Human-readable reasons for each dependency that blocks parallelism.
    std::vector<std::string> carried;

    [[nodiscard]] bool has_reductions() const { return !reductions.empty(); }
};

/// Analyse one canonical loop. `module` provides callee bodies for
/// (conservative) interprocedural effects of calls inside the loop.
[[nodiscard]] DependenceInfo analyze_dependence(const ast::Module& module,
                                                const ast::For& loop);

} // namespace psaflow::analysis
