#include "analysis/characterize.hpp"

#include <cmath>

#include "analysis/profile_cache.hpp"
#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "support/error.hpp"
#include "support/trace.hpp"

namespace psaflow::analysis {

using namespace psaflow::ast;

namespace {

/// Fit q(s) = base * s^k from observations at s=1 and s=2.
ScaledQuantity fit(double at_1x, double at_2x) {
    ScaledQuantity q;
    q.base = at_1x;
    if (at_1x > 0.0 && at_2x > 0.0) {
        q.exponent = std::log2(at_2x / at_1x);
        // Clamp tiny negative exponents from measurement noise on
        // scale-independent quantities.
        if (std::abs(q.exponent) < 1e-9) q.exponent = 0.0;
    }
    return q;
}

} // namespace

double ScaledQuantity::at(double relative_scale) const {
    ensure(relative_scale > 0.0, "ScaledQuantity: scale must be positive");
    return base * std::pow(relative_scale, exponent);
}

double KernelCharacterization::flops_per_byte(double relative_scale) const {
    const double bytes = footprint.at(relative_scale);
    if (bytes <= 0.0) return 0.0;
    return flops.at(relative_scale) / bytes;
}

const LoopProfile* KernelCharacterization::loop(Node::Id id) const {
    for (const auto& l : loops) {
        if (l.loop_id == id) return &l;
    }
    return nullptr;
}

KernelCharacterization characterize_kernel(Module& module,
                                           const sema::TypeInfo& types,
                                           const std::string& kernel,
                                           const Workload& workload) {
    Function* kernel_fn = module.find_function(kernel);
    ensure(kernel_fn != nullptr,
           "characterize_kernel: no function '" + kernel + "' in module");

    // Category records the engine that actually ran ("interp:tree" /
    // "interp:vm") so traces and BENCH reports can attribute cold time.
    trace::ScopedSpan span("characterize:" + kernel,
                           interp::engine_category(interp::default_engine()));

    auto profile_at = [&](double scale) {
        interp::InterpOptions opt;
        opt.profile = true;
        opt.focus_function = kernel;
        return ProfileCache::global().run(module, types, workload.entry,
                                          workload.make_args(scale), opt);
    };

    const double s1 = workload.profile_scale;
    const interp::ExecutionProfile p1 = profile_at(s1);
    const interp::ExecutionProfile p2 = profile_at(2.0 * s1);
    span.set_work_units(p1.total_cost + p2.total_cost);

    ensure(p1.focus_calls > 0, "characterize_kernel: kernel '" + kernel +
                                   "' was never called by the workload");

    KernelCharacterization ch;
    ch.kernel = kernel;
    ch.flops = fit(p1.focus_flops, p2.focus_flops);
    ch.call_flops = fit(p1.focus_call_flops, p2.focus_call_flops);
    ch.mem_bytes = fit(p1.focus_mem_bytes, p2.focus_mem_bytes);
    ch.cpu_cost = fit(p1.focus_cost, p2.focus_cost);
    ch.bytes_in = fit(static_cast<double>(p1.focus_bytes_in()),
                      static_cast<double>(p2.focus_bytes_in()));
    ch.bytes_out = fit(static_cast<double>(p1.focus_bytes_out()),
                       static_cast<double>(p2.focus_bytes_out()));
    ch.footprint =
        fit(static_cast<double>(p1.focus_bytes_in() + p1.focus_bytes_out()),
            static_cast<double>(p2.focus_bytes_in() + p2.focus_bytes_out()));
    ch.args_alias = p1.focus_args_alias || p2.focus_args_alias;
    ch.kernel_calls = p1.focus_calls;
    for (const auto& b1 : p1.focus_buffers) {
        const interp::BufferAccess* b2 = nullptr;
        for (const auto& cand : p2.focus_buffers) {
            if (cand.buffer_name == b1.buffer_name) b2 = &cand;
        }
        if (b2 == nullptr) continue;
        KernelCharacterization::BufferProfile bp;
        bp.name = b1.buffer_name;
        bp.elem_bytes = b1.elem_bytes;
        bp.bytes_in = fit(static_cast<double>(b1.bytes_in()),
                          static_cast<double>(b2->bytes_in()));
        bp.bytes_out = fit(static_cast<double>(b1.bytes_out()),
                           static_cast<double>(b2->bytes_out()));
        bp.accessed =
            fit(static_cast<double>(b1.reads + b1.writes) * b1.elem_bytes,
                static_cast<double>(b2->reads + b2->writes) * b2->elem_bytes);
        ch.buffers.push_back(bp);
    }

    // Per-loop trip-count laws, outer-first (pre-order).
    for (For* loop : meta::for_loops(*kernel_fn)) {
        const interp::LoopStats* s1_stats = p1.loop(loop->id);
        const interp::LoopStats* s2_stats = p2.loop(loop->id);
        if (s1_stats == nullptr || s2_stats == nullptr) continue;
        LoopProfile lp;
        lp.loop_id = loop->id;
        lp.entries = s1_stats->entries;
        lp.trips_per_entry =
            fit(s1_stats->avg_trip_count(), s2_stats->avg_trip_count());
        lp.trips_total = fit(static_cast<double>(s1_stats->trips),
                             static_cast<double>(s2_stats->trips));
        lp.flops = fit(s1_stats->flops, s2_stats->flops);
        ch.loops.push_back(lp);
    }
    return ch;
}

} // namespace psaflow::analysis
