// Workload descriptions: how to run an application for dynamic analyses.
//
// The paper's dynamic tasks execute the application on representative inputs.
// A Workload packages the entry point and an argument factory parameterised
// by problem scale, so the same description serves:
//   - hotspot detection and profiling at a small `profile_scale`,
//   - scaling-law fitting at `profile_scale` and 2x `profile_scale`,
//   - performance evaluation extrapolated to `eval_scale` (paper-sized).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"

namespace psaflow::analysis {

struct Workload {
    /// Entry function to call (the whole application, e.g. "run").
    std::string entry;

    /// Build entry arguments for a given problem scale. Scale 1.0 is the
    /// base profiling size; the factory must produce deterministic inputs.
    std::function<std::vector<interp::Arg>(double scale)> make_args;

    /// Scale used for profiling runs (kept small: the interpreter pays a
    /// large constant factor versus native execution).
    double profile_scale = 1.0;

    /// Scale the paper's evaluation corresponds to; performance estimates
    /// extrapolate to this size using the fitted scaling laws.
    double eval_scale = 64.0;
};

} // namespace psaflow::analysis
