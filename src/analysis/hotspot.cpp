#include "analysis/hotspot.hpp"

#include <algorithm>

#include "analysis/profile_cache.hpp"
#include "ast/walk.hpp"
#include "meta/query.hpp"
#include "support/trace.hpp"

namespace psaflow::analysis {

using namespace psaflow::ast;

HotspotReport detect_hotspots(Module& module, const sema::TypeInfo& types,
                              const Workload& workload) {
    interp::InterpOptions opt;
    opt.profile = true;
    // Category records the engine that actually ran ("interp:tree" /
    // "interp:vm") so traces and BENCH reports can attribute cold time.
    trace::ScopedSpan span(
        "detect_hotspots:" + workload.entry,
        interp::engine_category(opt.engine.value_or(interp::default_engine())));
    const interp::ExecutionProfile profile = ProfileCache::global().run(
        module, types, workload.entry,
        workload.make_args(workload.profile_scale), opt);
    span.set_work_units(profile.total_cost);

    HotspotReport report;
    report.total_cost = profile.total_cost;

    for (const auto& fn : module.functions) {
        for (For* loop : meta::outermost_for_loops(*fn)) {
            const interp::LoopStats* stats = profile.loop(loop->id);
            if (stats == nullptr || stats->trips == 0) continue;
            HotspotCandidate cand;
            cand.loop = loop;
            cand.function = fn.get();
            // Rank by self cost: a driver loop that merely *calls* the hot
            // function must not mask the loop doing the work.
            cand.cost = stats->self_cost;
            cand.fraction = report.total_cost > 0.0
                                ? stats->self_cost / report.total_cost
                                : 0.0;
            cand.trips = stats->trips;
            report.candidates.push_back(cand);
        }
    }

    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const HotspotCandidate& a, const HotspotCandidate& b) {
                  return a.cost > b.cost;
              });
    return report;
}

} // namespace psaflow::analysis
