#include "analysis/hotspot.hpp"

#include <algorithm>

#include "ast/walk.hpp"
#include "meta/query.hpp"

namespace psaflow::analysis {

using namespace psaflow::ast;

HotspotReport detect_hotspots(Module& module, const sema::TypeInfo& types,
                              const Workload& workload) {
    interp::InterpOptions opt;
    opt.profile = true;
    auto run = interp::run_function(module, types, workload.entry,
                                    workload.make_args(workload.profile_scale),
                                    opt);

    HotspotReport report;
    report.total_cost = run.profile.total_cost;

    for (const auto& fn : module.functions) {
        for (For* loop : meta::outermost_for_loops(*fn)) {
            const interp::LoopStats* stats = run.profile.loop(loop->id);
            if (stats == nullptr || stats->trips == 0) continue;
            HotspotCandidate cand;
            cand.loop = loop;
            cand.function = fn.get();
            // Rank by self cost: a driver loop that merely *calls* the hot
            // function must not mask the loop doing the work.
            cand.cost = stats->self_cost;
            cand.fraction = report.total_cost > 0.0
                                ? stats->self_cost / report.total_cost
                                : 0.0;
            cand.trips = stats->trips;
            report.candidates.push_back(cand);
        }
    }

    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const HotspotCandidate& a, const HotspotCandidate& b) {
                  return a.cost > b.cost;
              });
    return report;
}

} // namespace psaflow::analysis
