#include "analysis/profile_cache.hpp"

#include <cstdlib>
#include <cstring>

#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "support/trace.hpp"

namespace psaflow::analysis {

namespace {

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
    h = fnv1a(data, size, h);
}

void hash_u64(std::uint64_t& h, std::uint64_t v) {
    hash_bytes(h, &v, sizeof v);
}

void hash_double(std::uint64_t& h, double v) {
    // Bit-pattern hash: distinguishes -0.0/0.0 and NaN payloads, which is
    // exactly right for "same inputs" memoization.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    hash_u64(h, bits);
}

void hash_string(std::uint64_t& h, const std::string& s) {
    hash_u64(h, s.size());
    hash_bytes(h, s.data(), s.size());
}

/// Pre-order For-node ids of the whole module.
std::vector<ast::Node::Id> loop_id_order(const ast::Module& module) {
    std::vector<ast::Node::Id> out;
    ast::walk(static_cast<const ast::Node&>(module),
              [&](const ast::Node& n) {
                  if (n.kind() == ast::NodeKind::For) out.push_back(n.id);
                  return true;
              });
    return out;
}

} // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t digest_args(const std::vector<interp::Arg>& args) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    hash_u64(h, args.size());
    for (const interp::Arg& arg : args) {
        if (const auto* value = std::get_if<interp::Value>(&arg)) {
            hash_u64(h, 0x5163414c41435321ULL); // scalar marker
            hash_u64(h, static_cast<std::uint64_t>(value->type()));
            switch (value->type()) {
                case ast::Type::Int:
                    hash_u64(h, static_cast<std::uint64_t>(value->as_int()));
                    break;
                case ast::Type::Bool:
                    hash_u64(h, value->as_bool() ? 1 : 0);
                    break;
                case ast::Type::Float:
                case ast::Type::Double:
                    hash_double(h, value->as_double());
                    break;
                default: break; // void: type tag alone suffices
            }
        } else {
            const interp::BufferPtr& buf = std::get<interp::BufferPtr>(arg);
            hash_u64(h, 0x425546464552211fULL); // buffer marker
            hash_u64(h, static_cast<std::uint64_t>(buf->elem_type()));
            hash_u64(h, buf->size());
            const std::vector<double>& raw = buf->raw();
            hash_bytes(h, raw.data(), raw.size() * sizeof(double));
        }
    }
    return h;
}

ProfileCache::ProfileCache() {
    if (const char* env = std::getenv("PSAFLOW_CACHE"))
        enabled_ = std::string(env) != "0";
}

ProfileCache& ProfileCache::global() {
    static ProfileCache cache;
    return cache;
}

void ProfileCache::set_enabled(bool on) {
    std::lock_guard lock(mu_);
    enabled_ = on;
}

bool ProfileCache::enabled() const {
    std::lock_guard lock(mu_);
    return enabled_;
}

void ProfileCache::clear() {
    std::lock_guard lock(mu_);
    entries_.clear();
    stats_ = {};
}

ProfileCacheStats ProfileCache::stats() const {
    std::lock_guard lock(mu_);
    return stats_;
}

void ProfileCache::set_max_entries(std::size_t n) {
    std::lock_guard lock(mu_);
    max_entries_ = n;
}

interp::ExecutionProfile
ProfileCache::run(const ast::Module& module, const sema::TypeInfo& types,
                  const std::string& entry,
                  const std::vector<interp::Arg>& args,
                  interp::InterpOptions options) {
    options.profile = true;

    if (!enabled()) {
        auto result = interp::run_function(module, types, entry, args, options);
        return std::move(result.profile);
    }

    std::uint64_t key = 0xcbf29ce484222325ULL;
    hash_string(key, ast::to_source(module));
    hash_string(key, entry);
    hash_string(key, options.focus_function);
    hash_u64(key, static_cast<std::uint64_t>(options.max_steps));
    hash_u64(key, digest_args(args));

    {
        std::lock_guard lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Remap loop stats onto this module's (possibly re-cloned) node
            // ids by pre-order position.
            interp::ExecutionProfile profile = it->second.profile;
            const std::vector<ast::Node::Id> current = loop_id_order(module);
            if (current.size() == it->second.loop_order.size()) {
                std::unordered_map<ast::Node::Id, interp::LoopStats> remapped;
                remapped.reserve(profile.loops.size());
                for (std::size_t i = 0; i < current.size(); ++i) {
                    auto stats =
                        profile.loops.find(it->second.loop_order[i]);
                    if (stats != profile.loops.end())
                        remapped.emplace(current[i], stats->second);
                }
                profile.loops = std::move(remapped);
                ++stats_.hits;
                trace::Registry::global().count("profile_cache.hits", 1);
                return profile;
            }
            // Structure mismatch despite equal source text should be
            // impossible; recompute defensively.
        }
    }

    auto result = interp::run_function(module, types, entry, args, options);

    {
        std::lock_guard lock(mu_);
        ++stats_.misses;
        if (max_entries_ != 0 && entries_.size() >= max_entries_)
            entries_.clear();
        Entry& slot = entries_[key];
        slot.profile = result.profile;
        slot.loop_order = loop_id_order(module);
    }
    trace::Registry::global().count("profile_cache.misses", 1);
    return std::move(result.profile);
}

} // namespace psaflow::analysis
