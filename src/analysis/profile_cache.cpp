#include "analysis/profile_cache.hpp"

#include <cstdlib>
#include <cstring>

#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "support/cas/cas.hpp"
#include "support/trace.hpp"

namespace psaflow::analysis {

namespace {

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
    h = fnv1a(data, size, h);
}

void hash_u64(std::uint64_t& h, std::uint64_t v) {
    hash_bytes(h, &v, sizeof v);
}

void hash_double(std::uint64_t& h, double v) {
    // Bit-pattern hash: distinguishes -0.0/0.0 and NaN payloads, which is
    // exactly right for "same inputs" memoization.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    hash_u64(h, bits);
}

/// Pre-order For-node ids of the whole module.
std::vector<ast::Node::Id> loop_id_order(const ast::Module& module) {
    std::vector<ast::Node::Id> out;
    ast::walk(static_cast<const ast::Node&>(module),
              [&](const ast::Node& n) {
                  if (n.kind() == ast::NodeKind::For) out.push_back(n.id);
                  return true;
              });
    return out;
}

} // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t digest_args(const std::vector<interp::Arg>& args) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    hash_u64(h, args.size());
    for (const interp::Arg& arg : args) {
        if (const auto* value = std::get_if<interp::Value>(&arg)) {
            hash_u64(h, 0x5163414c41435321ULL); // scalar marker
            hash_u64(h, static_cast<std::uint64_t>(value->type()));
            switch (value->type()) {
                case ast::Type::Int:
                    hash_u64(h, static_cast<std::uint64_t>(value->as_int()));
                    break;
                case ast::Type::Bool:
                    hash_u64(h, value->as_bool() ? 1 : 0);
                    break;
                case ast::Type::Float:
                case ast::Type::Double:
                    hash_double(h, value->as_double());
                    break;
                default: break; // void: type tag alone suffices
            }
        } else {
            const interp::BufferPtr& buf = std::get<interp::BufferPtr>(arg);
            hash_u64(h, 0x425546464552211fULL); // buffer marker
            hash_u64(h, static_cast<std::uint64_t>(buf->elem_type()));
            hash_u64(h, buf->size());
            const std::vector<double>& raw = buf->raw();
            hash_bytes(h, raw.data(), raw.size() * sizeof(double));
        }
    }
    return h;
}

namespace {
/// Payload schema revision for serialize_profile_payload.
constexpr std::uint32_t kProfilePayloadVersion = 1;
} // namespace

std::string
serialize_profile_payload(const interp::ExecutionProfile& profile,
                          const std::vector<ast::Node::Id>& loop_order) {
    cas::Writer w;
    w.u32(kProfilePayloadVersion);
    w.u64(loop_order.size());

    // Loop stats in pre-order position order (deterministic payload bytes
    // for identical profiles, independent of hash-map iteration order).
    std::uint32_t with_stats = 0;
    for (ast::Node::Id id : loop_order)
        if (profile.loops.count(id) != 0) ++with_stats;
    w.u32(with_stats);
    for (std::size_t pos = 0; pos < loop_order.size(); ++pos) {
        auto it = profile.loops.find(loop_order[pos]);
        if (it == profile.loops.end()) continue;
        const interp::LoopStats& stats = it->second;
        w.u64(pos);
        w.i64(stats.entries);
        w.i64(stats.trips);
        w.real(stats.cost);
        w.real(stats.self_cost);
        w.real(stats.flops);
        w.real(stats.mem_bytes);
    }

    w.real(profile.total_cost);
    w.real(profile.total_flops);
    w.real(profile.total_call_flops);
    w.real(profile.total_mem_bytes);

    w.str(profile.focus_function);
    w.i64(profile.focus_calls);
    w.real(profile.focus_cost);
    w.real(profile.focus_flops);
    w.real(profile.focus_call_flops);
    w.real(profile.focus_mem_bytes);
    w.u32(static_cast<std::uint32_t>(profile.focus_buffers.size()));
    for (const interp::BufferAccess& buf : profile.focus_buffers) {
        w.str(buf.buffer_name);
        w.i64(buf.elem_bytes);
        w.i64(buf.min_read);
        w.i64(buf.max_read);
        w.i64(buf.min_write);
        w.i64(buf.max_write);
        w.i64(buf.reads);
        w.i64(buf.writes);
    }
    w.boolean(profile.focus_args_alias);
    return w.take();
}

bool parse_profile_payload(std::string_view payload,
                           interp::ExecutionProfile& profile,
                           std::size_t& loop_count) {
    cas::Reader r(payload);
    if (r.u32() != kProfilePayloadVersion) return false;
    const std::uint64_t loops = r.u64();
    if (!r.ok() || loops > (1u << 20)) return false;
    loop_count = static_cast<std::size_t>(loops);

    profile = interp::ExecutionProfile{};
    const std::uint32_t with_stats = r.u32();
    for (std::uint32_t i = 0; i < with_stats && r.ok(); ++i) {
        const std::uint64_t pos = r.u64();
        interp::LoopStats stats;
        stats.entries = r.i64();
        stats.trips = r.i64();
        stats.cost = r.real();
        stats.self_cost = r.real();
        stats.flops = r.real();
        stats.mem_bytes = r.real();
        if (pos >= loops) return false;
        profile.loops.emplace(static_cast<ast::Node::Id>(pos), stats);
    }

    profile.total_cost = r.real();
    profile.total_flops = r.real();
    profile.total_call_flops = r.real();
    profile.total_mem_bytes = r.real();

    profile.focus_function = r.str();
    profile.focus_calls = r.i64();
    profile.focus_cost = r.real();
    profile.focus_flops = r.real();
    profile.focus_call_flops = r.real();
    profile.focus_mem_bytes = r.real();
    const std::uint32_t buffers = r.u32();
    if (!r.ok() || buffers > (1u << 16)) return false;
    profile.focus_buffers.reserve(buffers);
    for (std::uint32_t i = 0; i < buffers && r.ok(); ++i) {
        interp::BufferAccess buf;
        buf.buffer_name = r.str();
        buf.elem_bytes = static_cast<int>(r.i64());
        buf.min_read = r.i64();
        buf.max_read = r.i64();
        buf.min_write = r.i64();
        buf.max_write = r.i64();
        buf.reads = r.i64();
        buf.writes = r.i64();
        profile.focus_buffers.push_back(std::move(buf));
    }
    profile.focus_args_alias = r.boolean();
    return r.complete();
}

ProfileCache::ProfileCache() {
    if (const char* env = std::getenv("PSAFLOW_CACHE"))
        enabled_ = std::string(env) != "0";
}

ProfileCache& ProfileCache::global() {
    static ProfileCache cache;
    return cache;
}

void ProfileCache::set_enabled(bool on) {
    std::lock_guard lock(mu_);
    enabled_ = on;
}

bool ProfileCache::enabled() const {
    std::lock_guard lock(mu_);
    return enabled_;
}

void ProfileCache::clear() {
    std::lock_guard lock(mu_);
    entries_.clear();
    stats_ = {};
}

ProfileCacheStats ProfileCache::stats() const {
    std::lock_guard lock(mu_);
    return stats_;
}

void ProfileCache::set_max_entries(std::size_t n) {
    std::lock_guard lock(mu_);
    max_entries_ = n;
}

std::optional<interp::ExecutionProfile>
ProfileCache::remap_onto(const Entry& entry, const ast::Module& module) {
    const std::vector<ast::Node::Id> current = loop_id_order(module);
    if (current.size() != entry.loop_order.size()) return std::nullopt;
    interp::ExecutionProfile profile = entry.profile;
    std::unordered_map<ast::Node::Id, interp::LoopStats> remapped;
    remapped.reserve(profile.loops.size());
    for (std::size_t i = 0; i < current.size(); ++i) {
        auto stats = profile.loops.find(entry.loop_order[i]);
        if (stats != profile.loops.end())
            remapped.emplace(current[i], stats->second);
    }
    profile.loops = std::move(remapped);
    return profile;
}

interp::ExecutionProfile
ProfileCache::run(const ast::Module& module, const sema::TypeInfo& types,
                  const std::string& entry,
                  const std::vector<interp::Arg>& args,
                  interp::InterpOptions options) {
    options.profile = true;

    if (!enabled()) {
        auto result = interp::run_function(module, types, entry, args, options);
        return std::move(result.profile);
    }

    cas::Hasher hasher;
    hasher.str("interp-profile");
    hasher.str(ast::to_source(module));
    hasher.str(entry);
    hasher.str(options.focus_function);
    hasher.u64(static_cast<std::uint64_t>(options.max_steps));
    hasher.u64(digest_args(args));
    const std::uint64_t key = hasher.digest();

    {
        std::lock_guard lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Remap loop stats onto this module's (possibly re-cloned) node
            // ids by pre-order position.
            if (auto profile = remap_onto(it->second, module)) {
                ++stats_.hits;
                trace::Registry::current().count("profile_cache.hits", 1);
                return std::move(*profile);
            }
            // Structure mismatch despite equal source text should be
            // impossible; recompute defensively.
        }
    }

    // In-memory miss: consult the persistent content-addressed store. A
    // disk hit is promoted into the memory map (position-keyed, exactly as
    // serialised) so later lookups in this process are memory hits.
    cas::CasStore* disk = cas::store();
    if (disk != nullptr) {
        if (auto payload = disk->get(key)) {
            Entry loaded;
            std::size_t loop_count = 0;
            if (parse_profile_payload(*payload, loaded.profile, loop_count)) {
                loaded.loop_order.resize(loop_count);
                for (std::size_t i = 0; i < loop_count; ++i)
                    loaded.loop_order[i] = static_cast<ast::Node::Id>(i);
                if (auto profile = remap_onto(loaded, module)) {
                    std::lock_guard lock(mu_);
                    ++stats_.disk_hits;
                    if (max_entries_ != 0 && entries_.size() >= max_entries_)
                        entries_.clear();
                    entries_[key] = std::move(loaded);
                    trace::Registry::current().count(
                        "profile_cache.disk_hits", 1);
                    return std::move(*profile);
                }
            }
            // Unparseable or structurally mismatched payload (e.g. written
            // by a differently-versioned binary racing on the same dir):
            // fall through and recompute.
        }
    }

    auto result = interp::run_function(module, types, entry, args, options);
    const std::vector<ast::Node::Id> loop_order = loop_id_order(module);

    {
        std::lock_guard lock(mu_);
        ++stats_.misses;
        if (max_entries_ != 0 && entries_.size() >= max_entries_)
            entries_.clear();
        Entry& slot = entries_[key];
        slot.profile = result.profile;
        slot.loop_order = loop_order;
    }
    trace::Registry::current().count("profile_cache.misses", 1);
    if (disk != nullptr)
        disk->put(key, serialize_profile_payload(result.profile, loop_order));
    return std::move(result.profile);
}

} // namespace psaflow::analysis
