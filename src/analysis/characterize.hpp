// Kernel characterisation: the bundle of target-independent analyses the
// PSA strategy consumes at branch point A (paper Fig. 3 / Fig. 4):
//
//   - Pointer Analysis          (dynamic)  -> args_alias
//   - Arithmetic Intensity      (static+dynamic) -> flops_per_byte
//   - Data In/Out Analysis      (dynamic)  -> bytes_in / bytes_out
//   - Loop Trip-Count Analysis  (dynamic)  -> per-loop trip counts
//   - scaling-law fit: the kernel is profiled at two scales and per-quantity
//     power laws q(s) = q1 * s^k are fitted, so paper-sized workloads can be
//     evaluated without interpreting them (the interpreter pays a ~100x
//     constant factor versus native execution).
#pragma once

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/workload.hpp"
#include "ast/nodes.hpp"
#include "interp/profile.hpp"
#include "sema/type_check.hpp"

namespace psaflow::analysis {

/// A quantity together with its fitted growth exponent: at workload scale s
/// (relative to profile scale), value(s) = base * s^exponent.
struct ScaledQuantity {
    double base = 0.0;     ///< observed at profile scale
    double exponent = 0.0; ///< fitted from profile scale and 2x profile scale

    [[nodiscard]] double at(double relative_scale) const;
};

/// Per-loop dynamic shape.
struct LoopProfile {
    ast::Node::Id loop_id = 0;
    ScaledQuantity trips_per_entry; ///< average trip count of one entry
    ScaledQuantity trips_total;     ///< total iterations per run
    ScaledQuantity flops;           ///< flops attributed (incl. nested)
    long long entries = 0;          ///< entries at profile scale
};

struct KernelCharacterization {
    std::string kernel;

    // Work (hotspot region, per application run).
    ScaledQuantity flops;
    ScaledQuantity call_flops; ///< flops from builtin math (transcendentals)
    ScaledQuantity mem_bytes;   ///< bytes touched by array accesses
    ScaledQuantity footprint;   ///< unique bytes in+out (transfer footprint)
    ScaledQuantity bytes_in;    ///< host->device transfer requirement
    ScaledQuantity bytes_out;   ///< device->host transfer requirement
    ScaledQuantity cpu_cost;    ///< interpreter cost units of the hotspot

    /// Arithmetic intensity against the streaming footprint (FLOPs/B). This
    /// is the paper's compute- vs memory-bound discriminator.
    [[nodiscard]] double flops_per_byte(double relative_scale = 1.0) const;

    /// Dynamic pointer-alias result: true when any two pointer arguments of
    /// a kernel call named the same buffer.
    bool args_alias = false;

    /// Trip counts per loop in the kernel, ordered outer-first.
    std::vector<LoopProfile> loops;

    [[nodiscard]] const LoopProfile* loop(ast::Node::Id id) const;

    /// Per-buffer scaling laws (fitted like the kernel-level quantities),
    /// for transfer sizing and on-chip-buffering decisions. A constant-size
    /// buffer (e.g. the centroid table of K-Means) has exponent 0 and stays
    /// recognisably small at any evaluation scale.
    struct BufferProfile {
        std::string name;       ///< kernel parameter name
        int elem_bytes = 0;
        ScaledQuantity bytes_in;   ///< read-range extent
        ScaledQuantity bytes_out;  ///< written-range extent
        ScaledQuantity accessed;   ///< raw bytes touched (reads+writes)

        [[nodiscard]] double footprint(double s) const {
            return bytes_in.at(s) + bytes_out.at(s);
        }
        [[nodiscard]] double extent(double s) const {
            return std::max(bytes_in.at(s), bytes_out.at(s));
        }
    };
    std::vector<BufferProfile> buffers;

    /// Invocations of the kernel per application run at profile scale.
    long long kernel_calls = 0;
};

/// Profile `module`'s function `kernel` under `workload` at two scales and
/// fit scaling laws. The module must already contain the extracted kernel
/// (called from the application entry).
[[nodiscard]] KernelCharacterization
characterize_kernel(ast::Module& module, const sema::TypeInfo& types,
                    const std::string& kernel, const Workload& workload);

} // namespace psaflow::analysis
