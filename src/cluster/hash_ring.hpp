// Consistent-hash ring for shard routing.
//
// Each shard contributes `vnodes` points on a 64-bit ring (hashes of
// "name#i"); a key is owned by the first point clockwise from the key's
// position. The classic properties the router leans on:
//
//   * Stability: adding or removing one shard only moves the keys whose
//     nearest point belonged to it — roughly 1/N of the keyspace — so a
//     topology change invalidates a minimal slice of every other shard's
//     warm caches (test_cluster pins this down).
//   * Failover determinism: `pick_if` walks clockwise past points whose
//     shard fails the predicate, so every router instance, given the same
//     ring and the same health view, sends a key to the same fallback
//     shard — no coordination needed.
//
// The ring itself is immutable-under-routing: the router builds it once
// from the static shard list and models drain/failure with the predicate,
// so a drained shard's keys come straight back to it on rejoin.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace psaflow::cluster {

class HashRing {
public:
    /// Points per shard. Enough that the largest/smallest shard load
    /// ratio stays near 1 for the shard counts psaflow clusters run
    /// (2..16); cheap enough that ring build time is irrelevant.
    static constexpr std::size_t kDefaultVnodes = 64;

    /// Add a shard (no-op if already present).
    void add(const std::string& shard, std::size_t vnodes = kDefaultVnodes);

    /// Remove a shard and all its points (no-op if absent).
    void remove(const std::string& shard);

    /// The owning shard for `key`, or nullopt on an empty ring.
    [[nodiscard]] std::optional<std::string> pick(std::uint64_t key) const;

    /// The first shard clockwise from `key` that satisfies `usable`
    /// (health/drain filter), or nullopt when none does. Distinct shards
    /// are tried in ring order, so the fallback for a failed owner is
    /// deterministic across routers.
    [[nodiscard]] std::optional<std::string>
    pick_if(std::uint64_t key,
            const std::function<bool(const std::string&)>& usable) const;

    /// Up to `count` distinct shards clockwise from `key`, ring order —
    /// the owner followed by its failover candidates.
    [[nodiscard]] std::vector<std::string>
    owners(std::uint64_t key, std::size_t count) const;

    [[nodiscard]] bool empty() const { return points_.empty(); }
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] std::vector<std::string> shards() const { return shards_; }

private:
    /// (ring position, shard) sorted by position; ties broken by shard
    /// name so the ring is identical regardless of insertion order.
    std::vector<std::pair<std::uint64_t, std::string>> points_;
    std::vector<std::string> shards_;
};

/// The ring-point hash: FNV-1a over the label, finished with the
/// splitmix64 mix so sequential vnode suffixes land far apart. Exposed for
/// tests (distribution/stability checks need to compute points directly).
[[nodiscard]] std::uint64_t ring_hash(const std::string& label);

} // namespace psaflow::cluster
