#include "cluster/hash_ring.hpp"

#include <algorithm>

namespace psaflow::cluster {

std::uint64_t ring_hash(const std::string& label) {
    // FNV-1a, then the splitmix64 finaliser: FNV alone clusters labels
    // that share a long prefix ("shard-a#1", "shard-a#2"), and clustered
    // points defeat the whole load-spreading purpose of vnodes.
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    return h ^ (h >> 31);
}

void HashRing::add(const std::string& shard, std::size_t vnodes) {
    if (std::find(shards_.begin(), shards_.end(), shard) != shards_.end())
        return;
    if (vnodes == 0) vnodes = 1;
    shards_.push_back(shard);
    points_.reserve(points_.size() + vnodes);
    for (std::size_t i = 0; i < vnodes; ++i)
        points_.emplace_back(ring_hash(shard + '#' + std::to_string(i)),
                             shard);
    std::sort(points_.begin(), points_.end());
}

void HashRing::remove(const std::string& shard) {
    shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                  shards_.end());
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const auto& point) {
                                     return point.second == shard;
                                 }),
                  points_.end());
}

std::optional<std::string> HashRing::pick(std::uint64_t key) const {
    return pick_if(key, [](const std::string&) { return true; });
}

std::optional<std::string>
HashRing::pick_if(std::uint64_t key,
                  const std::function<bool(const std::string&)>& usable)
    const {
    if (points_.empty()) return std::nullopt;
    auto it = std::lower_bound(
        points_.begin(), points_.end(), key,
        [](const auto& point, std::uint64_t k) { return point.first < k; });
    // Walk at most one full revolution; vnode points repeat shards, so
    // count distinct shards seen to bound the predicate calls.
    std::vector<const std::string*> seen;
    for (std::size_t step = 0; step < points_.size(); ++step, ++it) {
        if (it == points_.end()) it = points_.begin();
        const std::string& shard = it->second;
        const bool visited =
            std::any_of(seen.begin(), seen.end(),
                        [&](const std::string* s) { return *s == shard; });
        if (visited) continue;
        if (usable(shard)) return shard;
        seen.push_back(&shard);
        if (seen.size() == shards_.size()) break;
    }
    return std::nullopt;
}

std::vector<std::string> HashRing::owners(std::uint64_t key,
                                          std::size_t count) const {
    std::vector<std::string> out;
    if (points_.empty() || count == 0) return out;
    auto it = std::lower_bound(
        points_.begin(), points_.end(), key,
        [](const auto& point, std::uint64_t k) { return point.first < k; });
    for (std::size_t step = 0; step < points_.size(); ++step, ++it) {
        if (it == points_.end()) it = points_.begin();
        const std::string& shard = it->second;
        if (std::find(out.begin(), out.end(), shard) == out.end())
            out.push_back(shard);
        if (out.size() == count || out.size() == shards_.size()) break;
    }
    return out;
}

} // namespace psaflow::cluster
