// Client side of the remote-CAS wire protocol (serve/protocol.hpp
// cas_get/cas_put): lets one psaflowd shard read and publish artifacts in
// another shard's content-addressed store, making the disk tier a
// read-through cache over a shared cluster tier.
//
// Wiring (done by the psaflowd *tool*, not the serve library, so serve
// never depends on cluster): `--cas-upstream <endpoint>` constructs a
// RemoteCasClient and installs its hooks via cas::configure_remote. The
// upstream can be a peer shard or a router — the router consistent-hashes
// cas keys onto shards, which gives every artifact a home shard.
//
// Failure policy: the remote tier is an accelerator, never a correctness
// dependency. Any transport or protocol failure is a miss (fetch) or a
// dropped publish (put); the local store and the recompute path remain
// authoritative. Calls open a fresh connection per operation — CAS
// traffic is bursty and rare relative to compiles, and a fresh connection
// keeps the client trivially thread-safe for concurrent workers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/cas/cas.hpp"
#include "support/net.hpp"

namespace psaflow::cluster {

class RemoteCasClient {
public:
    RemoteCasClient(net::Endpoint upstream, long long recv_timeout_ms = 5000)
        : upstream_(std::move(upstream)), recv_timeout_ms_(recv_timeout_ms) {}

    /// cas_get round trip. nullopt on miss *or* any failure.
    [[nodiscard]] std::optional<std::string> fetch(std::uint64_t key) const;

    /// cas_put round trip. False when the upstream did not store it.
    [[nodiscard]] bool publish(std::uint64_t key,
                               std::string_view payload) const;

    /// Hooks for cas::configure_remote. They share ownership of this
    /// client, so the daemon can install them and forget.
    [[nodiscard]] static cas::RemoteFetch
    fetch_hook(std::shared_ptr<RemoteCasClient> client);
    [[nodiscard]] static cas::RemotePublish
    publish_hook(std::shared_ptr<RemoteCasClient> client);

    [[nodiscard]] const net::Endpoint& upstream() const { return upstream_; }

private:
    net::Endpoint upstream_;
    long long recv_timeout_ms_;
};

} // namespace psaflow::cluster
