#include "cluster/router.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/wire_trace.hpp"
#include "support/histogram.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace psaflow::cluster {

namespace {

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/// Send `payload` to `endpoint` and read one response frame. False on any
/// transport failure — the caller treats the shard as down for this
/// attempt.
bool exchange(const net::Endpoint& endpoint, const std::string& payload,
              long long recv_timeout_ms, std::string& response) {
    std::string error;
    net::Fd conn = net::connect_endpoint(endpoint, &error);
    if (!conn.valid()) return false;
    net::set_recv_timeout(conn.get(), recv_timeout_ms);
    if (!net::write_frame(conn.get(), payload)) return false;
    return net::read_frame(conn.get(), response) == net::FrameStatus::Ok;
}

} // namespace

std::optional<ShardConfig> parse_shard_spec(const std::string& spec,
                                            std::string* error) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        if (error != nullptr)
            *error = "shard spec must be name=endpoint, got '" + spec + "'";
        return std::nullopt;
    }
    ShardConfig config;
    config.name = spec.substr(0, eq);
    auto endpoint = net::parse_endpoint(spec.substr(eq + 1), error);
    if (!endpoint.has_value()) return std::nullopt;
    config.endpoint = std::move(*endpoint);
    return config;
}

Router::Router(RouterOptions options) : options_(std::move(options)) {
    for (const ShardConfig& config : options_.shards) {
        auto shard = std::make_unique<Shard>();
        shard->config = config;
        shards_.push_back(std::move(shard));
    }
}

Router::~Router() {
    notify_shutdown();
    if (health_thread_.joinable()) health_thread_.join();
    std::lock_guard lock(readers_mu_);
    for (std::thread& reader : readers_)
        if (reader.joinable()) reader.join();
}

std::optional<std::string> Router::start() {
    if (shards_.empty()) return "no shards configured";
    for (std::size_t i = 0; i < shards_.size(); ++i)
        for (std::size_t j = i + 1; j < shards_.size(); ++j)
            if (shards_[i]->config.name == shards_[j]->config.name)
                return "duplicate shard name '" + shards_[i]->config.name +
                       "'";
    if (options_.socket_path.empty() && options_.listen_tcp.empty())
        return "no listener configured (need a socket path or --listen)";

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) return "cannot create self-pipe";
    wake_read_.reset(pipe_fds[0]);
    wake_write_.reset(pipe_fds[1]);
    ::fcntl(wake_write_.get(), F_SETFL, O_NONBLOCK);

    std::string error;
    if (!options_.socket_path.empty()) {
        listen_fd_ = net::listen_unix(options_.socket_path, /*backlog=*/64,
                                      &error);
        if (!listen_fd_.valid()) return error;
    }
    if (!options_.listen_tcp.empty()) {
        auto endpoint = net::parse_endpoint(options_.listen_tcp, &error);
        if (!endpoint.has_value()) return error;
        if (endpoint->kind != net::Endpoint::Kind::Tcp)
            return "--listen expects host:port, got '" + options_.listen_tcp +
                   "'";
        tcp_listen_fd_ = net::listen_tcp(endpoint->host, endpoint->port,
                                         /*backlog=*/64, &error);
        if (!tcp_listen_fd_.valid()) return error;
        tcp_port_ = net::local_port(tcp_listen_fd_.get());
    }

    for (const auto& shard : shards_)
        ring_.add(shard->config.name, options_.vnodes);

    started_ = std::chrono::steady_clock::now();
    health_thread_ = std::thread([this] { health_loop(); });
    obs::info("cluster.router", "router listening",
              {{"socket", options_.socket_path},
               {"tcp", options_.listen_tcp.empty()
                           ? std::string()
                           : "port " + std::to_string(tcp_port_)},
               {"shards", std::to_string(shards_.size())}});
    return std::nullopt;
}

void Router::run() {
    while (true) {
        const int ready = net::wait_readable_any(
            {listen_fd_.get(), tcp_listen_fd_.get(), wake_read_.get()}, -1);
        const bool is_listener =
            (listen_fd_.valid() && ready == listen_fd_.get()) ||
            (tcp_listen_fd_.valid() && ready == tcp_listen_fd_.get());
        if (!is_listener) break; // shutdown wake (or poll failure)
        net::Fd conn = net::accept_connection(ready);
        if (!conn.valid()) continue;
        std::lock_guard lock(readers_mu_);
        readers_.emplace_back([this, fd = std::move(conn)]() mutable {
            serve_connection(std::move(fd));
        });
    }

    shutting_down_.store(true);
    listen_fd_.reset();
    tcp_listen_fd_.reset();
    std::error_code ec;
    if (!options_.socket_path.empty())
        std::filesystem::remove(options_.socket_path, ec);
    if (health_thread_.joinable()) health_thread_.join();
    std::vector<std::thread> readers;
    {
        std::lock_guard lock(readers_mu_);
        readers.swap(readers_);
    }
    for (std::thread& reader : readers) reader.join();
    obs::info("cluster.router", "router drained",
              {{"relayed", std::to_string(relayed_.load())}});
}

void Router::notify_shutdown() noexcept {
    shutting_down_.store(true);
    if (wake_write_.valid()) {
        const char byte = 'q';
        [[maybe_unused]] ssize_t rc = ::write(wake_write_.get(), &byte, 1);
    }
}

bool Router::usable(const std::string& name) const {
    for (const auto& shard : shards_)
        if (shard->config.name == name)
            return shard->healthy.load() && !shard->draining.load();
    return false;
}

Router::Shard* Router::find_shard(const std::string& name) {
    for (const auto& shard : shards_)
        if (shard->config.name == name) return shard.get();
    return nullptr;
}

std::optional<std::string> Router::route_key(std::uint64_t key) {
    return ring_.pick_if(key,
                         [this](const std::string& s) { return usable(s); });
}

Router::ForwardOutcome Router::forward(std::uint64_t key,
                                       const std::string& payload,
                                       SplitMix64& rng) {
    // Candidate shards in ring order: the owner, then its deterministic
    // failover successors. The attempt budget spans candidates — a dead
    // owner costs one attempt, its successor gets the next.
    const int budget =
        options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
    ForwardOutcome outcome;
    Shard* owner = nullptr;
    for (int attempt = 0; attempt < budget; ++attempt) {
        const auto picked = route_key(key);
        if (!picked.has_value()) break; // nothing usable right now
        Shard* shard = find_shard(*picked);
        if (shard == nullptr) break;
        if (owner == nullptr) owner = shard;
        if (attempt > 0) {
            retries_.fetch_add(1);
            const long long delay = options_.retry.delay_ms(attempt - 1, rng);
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        ++outcome.attempts;
        shard->routed.fetch_add(1);
        if (exchange(shard->config.endpoint, payload,
                     options_.recv_timeout_ms, outcome.response)) {
            relayed_.fetch_add(1);
            outcome.shard = shard->config.name;
            return outcome; // verbatim relay: byte-identical to direct
        }
        // Transport failure: eject immediately (the health loop readmits
        // once the shard answers pings again) and try the next candidate.
        shard->failures.fetch_add(1);
        shard->healthy.store(false);
        if (owner != nullptr && shard == owner)
            owner->rerouted_away.fetch_add(1);
        obs::warn("cluster.router", "shard failed, rerouting",
                  {{"shard", shard->config.name},
                   {"key", hex_u64(key)},
                   {"attempt", std::to_string(attempt + 1)}});
    }
    no_shard_.fetch_add(1);
    outcome.response = json::dump(serve::make_error_response(
        serve::ErrorKind::Overloaded, "no healthy shard available",
        options_.retry.base_ms * 2));
    return outcome;
}

std::string Router::relay(const serve::WireRequest& request,
                          const json::Value& doc, std::uint64_t key,
                          const std::string& payload, SplitMix64& rng) {
    const auto received = std::chrono::steady_clock::now();
    const bool traced = request.trace.traced();
    std::uint64_t relay_id = 0;
    std::string wire = payload;
    if (traced) {
        // Interpose the relay span: the shard parents its serve:request
        // on the relay, and the relay keeps the client's original parent.
        relay_id = trace::wire_span_id();
        json::Value rewritten = doc;
        serve::WireTraceContext ctx;
        ctx.trace_id = request.trace.trace_id;
        ctx.parent_span = relay_id;
        serve::set_trace_member(rewritten, ctx);
        wire = json::dump(rewritten);
    }

    const ForwardOutcome outcome = forward(key, wire, rng);
    const std::uint64_t elapsed_us = us_since(received);
    const auto response_doc = json::parse(outcome.response, nullptr);

    obs::FlightRecord flight;
    flight.trace_id = request.trace.trace_id;
    flight.set_shard(outcome.shard);
    flight.exec_us = elapsed_us;
    flight.total_us = elapsed_us;
    flight.retries = outcome.attempts > 0
                         ? static_cast<std::uint32_t>(outcome.attempts - 1)
                         : 0;
    switch (request.type) {
    case serve::RequestType::Compile:
        flight.set_app(request.compile.app);
        flight.set_lane(serve::to_string(request.compile.priority));
        break;
    case serve::RequestType::CasGet: flight.set_app("cas_get"); break;
    case serve::RequestType::CasPut: flight.set_app("cas_put"); break;
    case serve::RequestType::Sleep: flight.set_app("sleep"); break;
    default: flight.set_app("other"); break;
    }
    std::string status = "ok";
    if (!response_doc.has_value()) {
        status = "internal";
    } else if (const auto view = serve::parse_response(*response_doc);
               view.has_value() && !view->ok) {
        status = serve::to_string(view->error_kind);
    }
    flight.set_status(status);
    obs::FlightRecorder::global().record(flight);

    if (!traced || !response_doc.has_value()) return outcome.response;

    // Graft the shard's span summary under the relay span. Responses
    // without one (transport-level errors) still gain the relay span, so
    // the client's tree records the hop that failed.
    std::vector<trace::Span> spans =
        serve::response_trace_spans(*response_doc);
    trace::Span wrapper;
    wrapper.name = "router:relay";
    wrapper.category = "cluster";
    wrapper.id = relay_id;
    wrapper.parent = request.trace.parent_span;
    wrapper.start_us = 0;
    wrapper.duration_us = elapsed_us;
    wrapper.work_units = double(flight.retries);
    serve::nest_spans(spans, wrapper);
    json::Value rebuilt = *response_doc;
    serve::attach_response_trace(rebuilt, request.trace.trace_id, spans);
    return json::dump(rebuilt);
}

std::string Router::handle_admin(const json::Value& doc) {
    const json::Value* shard = doc.find("shard");
    const json::Value* draining = doc.find("draining");
    if (shard == nullptr || !shard->is_string() || draining == nullptr ||
        draining->kind != json::Value::Kind::Bool)
        return json::dump(serve::make_error_response(
            serve::ErrorKind::BadRequest,
            "drain needs string \"shard\" and bool \"draining\""));
    if (!set_drain(shard->string_value, draining->bool_value))
        return json::dump(serve::make_error_response(
            serve::ErrorKind::BadRequest,
            "unknown shard '" + shard->string_value + "'"));
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(serve::kSchemaVersion)));
    response.set("type", json::Value::string("drain"));
    response.set("shard", json::Value::string(shard->string_value));
    response.set("draining", json::Value::boolean(draining->bool_value));
    return json::dump(response);
}

bool Router::set_drain(const std::string& shard_name, bool draining) {
    Shard* shard = find_shard(shard_name);
    if (shard == nullptr) return false;
    shard->draining.store(draining);
    obs::info("cluster.router",
              draining ? "shard draining" : "shard rejoined",
              {{"shard", shard_name}});
    return true;
}

void Router::serve_connection(net::Fd conn) {
    // Per-connection jitter stream: seeded from the global seed and the
    // connection sequence so concurrent readers never share RNG state yet
    // a single-connection test replays exactly.
    SplitMix64 rng(options_.seed ^ request_seq_.fetch_add(1));
    while (!shutting_down_.load()) {
        const int ready =
            net::wait_readable(conn.get(), wake_read_.get(), -1);
        if (ready != conn.get()) break;

        std::string payload;
        const net::FrameStatus status = net::read_frame(conn.get(), payload);
        if (status == net::FrameStatus::Eof ||
            status == net::FrameStatus::Error)
            break;
        if (status != net::FrameStatus::Ok) {
            const json::Value response = serve::make_error_response(
                serve::ErrorKind::BadRequest,
                std::string("malformed frame: ") + net::to_string(status));
            (void)net::write_frame(conn.get(), json::dump(response));
            break;
        }

        requests_.fetch_add(1);
        std::string parse_error;
        const auto doc = json::parse(payload, &parse_error);
        if (!doc.has_value()) {
            bad_requests_.fetch_add(1);
            const std::string response =
                json::dump(serve::make_error_response(
                    serve::ErrorKind::BadRequest,
                    "invalid JSON: " + parse_error));
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }

        const json::Value* type_value = doc->find("type");
        const std::string type =
            type_value != nullptr ? type_value->string_or("compile")
                                  : "compile";
        std::string response;
        if (type == "ping") {
            inline_answers_.fetch_add(1);
            response = json::dump(serve::make_pong_response());
        } else if (type == "stats") {
            inline_answers_.fetch_add(1);
            response = json::dump(stats_json());
        } else if (type == "metrics") {
            inline_answers_.fetch_add(1);
            json::Value body = json::Value::object();
            body.set("ok", json::Value::boolean(true));
            body.set("schema_version",
                     json::Value::number(double(serve::kSchemaVersion)));
            body.set("type", json::Value::string("metrics"));
            body.set("content_type",
                     json::Value::string(
                         "text/plain; version=0.0.4; charset=utf-8"));
            body.set("body", json::Value::string(metrics_text()));
            response = json::dump(body);
        } else if (type == "logs") {
            inline_answers_.fetch_add(1);
            long long max_records = 100;
            std::string min_level;
            if (const json::Value* v = doc->find("max"))
                max_records = static_cast<long long>(v->number_or(100.0));
            if (const json::Value* v = doc->find("min_level"))
                min_level = v->string_or("");
            response = json::dump(
                serve::Daemon::logs_json(max_records, min_level));
        } else if (type == "drain") {
            inline_answers_.fetch_add(1);
            response = handle_admin(*doc);
        } else if (type == "flight") {
            inline_answers_.fetch_add(1);
            long long max_records = 0;
            if (const json::Value* v = doc->find("max"))
                max_records = static_cast<long long>(v->number_or(0.0));
            response = json::dump(serve::make_flight_response(
                obs::FlightRecorder::global(), max_records));
        } else if (type == "cluster_stats") {
            inline_answers_.fetch_add(1);
            response = json::dump(cluster_stats_json());
        } else if (type == "cluster_metrics") {
            inline_answers_.fetch_add(1);
            json::Value body = json::Value::object();
            body.set("ok", json::Value::boolean(true));
            body.set("schema_version",
                     json::Value::number(double(serve::kSchemaVersion)));
            body.set("type", json::Value::string("cluster_metrics"));
            body.set("content_type",
                     json::Value::string(
                         "text/plain; version=0.0.4; charset=utf-8"));
            body.set("body", json::Value::string(cluster_metrics_text()));
            response = json::dump(body);
        } else {
            // A routed request. Parse just enough to pick the key; the
            // original payload is forwarded untouched so the shard sees —
            // and the client receives — the exact bytes. (A *traced*
            // request is the one exception: the router re-points the
            // trace's parent_span at its own relay span before
            // forwarding, and wraps the shard's returned spans in that
            // relay span on the way back.)
            serve::WireRequest request;
            const auto request_error =
                serve::parse_wire_request(*doc, request);
            if (request_error.has_value()) {
                bad_requests_.fetch_add(1);
                response = json::dump(serve::make_error_response(
                    serve::ErrorKind::BadRequest, *request_error));
            } else {
                // Keyless requests (e.g. sleep) round-robin by sequence
                // number, but the raw counter must be mixed first: ring
                // positions are uniform 64-bit hashes, and sequential
                // integers all sit below the same first vnode — unmixed,
                // every keyless request would land on one shard.
                std::uint64_t key =
                    SplitMix64(request_seq_.fetch_add(1)).next_u64();
                if (request.type == serve::RequestType::Compile)
                    key = serve::affinity_digest(request.compile);
                else if (request.type == serve::RequestType::CasGet ||
                         request.type == serve::RequestType::CasPut)
                    key = request.cas_key;
                response = relay(request, *doc, key, payload, rng);
            }
        }
        if (!net::write_frame(conn.get(), response)) break;
    }
}

bool Router::ping_shard(Shard& shard) {
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("ping"));
    std::string response;
    // Health probes use a short stall cap: a shard that cannot answer a
    // ping within the health interval is not usefully alive.
    const long long timeout =
        options_.health_interval_ms > 0 ? options_.health_interval_ms : 500;
    return exchange(shard.config.endpoint, json::dump(request), timeout,
                    response);
}

void Router::health_loop() {
    const auto interval = std::chrono::milliseconds(
        options_.health_interval_ms > 0 ? options_.health_interval_ms : 500);
    while (!shutting_down_.load()) {
        for (const auto& shard : shards_) {
            if (shutting_down_.load()) return;
            if (ping_shard(*shard)) {
                shard->ping_failures.store(0);
                if (!shard->healthy.exchange(true))
                    obs::info("cluster.router", "shard rejoined",
                              {{"shard", shard->config.name}});
            } else {
                const int failures = shard->ping_failures.fetch_add(1) + 1;
                if (failures >= options_.health_failures_to_eject &&
                    shard->healthy.exchange(false))
                    obs::warn("cluster.router", "shard unhealthy",
                              {{"shard", shard->config.name},
                               {"failures", std::to_string(failures)}});
            }
        }
        // Sleep in small slices so shutdown stays prompt.
        auto remaining = interval;
        while (remaining.count() > 0 && !shutting_down_.load()) {
            const auto slice =
                std::min(remaining, std::chrono::milliseconds(50));
            std::this_thread::sleep_for(slice);
            remaining -= slice;
        }
    }
}

std::vector<ShardView> Router::shard_views() const {
    std::vector<ShardView> views;
    views.reserve(shards_.size());
    for (const auto& shard : shards_) {
        ShardView view;
        view.name = shard->config.name;
        view.endpoint = shard->config.endpoint.describe();
        view.healthy = shard->healthy.load();
        view.draining = shard->draining.load();
        view.routed = shard->routed.load();
        view.failures = shard->failures.load();
        view.rerouted_away = shard->rerouted_away.load();
        views.push_back(std::move(view));
    }
    return views;
}

json::Value Router::stats_json() {
    json::Value stats = json::Value::object();
    stats.set("ok", json::Value::boolean(true));
    stats.set("schema_version",
              json::Value::number(double(serve::kSchemaVersion)));
    stats.set("type", json::Value::string("stats"));
    stats.set("role", json::Value::string("router"));
    stats.set("uptime_us", json::Value::number(double(us_since(started_))));
    stats.set("requests", json::Value::number(double(requests_.load())));
    stats.set("relayed", json::Value::number(double(relayed_.load())));
    stats.set("retries", json::Value::number(double(retries_.load())));
    stats.set("no_shard", json::Value::number(double(no_shard_.load())));
    stats.set("bad_requests",
              json::Value::number(double(bad_requests_.load())));
    stats.set("inline_answers",
              json::Value::number(double(inline_answers_.load())));
    json::Value shards = json::Value::array();
    for (const ShardView& view : shard_views()) {
        json::Value entry = json::Value::object();
        entry.set("name", json::Value::string(view.name));
        entry.set("endpoint", json::Value::string(view.endpoint));
        entry.set("healthy", json::Value::boolean(view.healthy));
        entry.set("draining", json::Value::boolean(view.draining));
        entry.set("routed", json::Value::number(double(view.routed)));
        entry.set("failures", json::Value::number(double(view.failures)));
        entry.set("rerouted_away",
                  json::Value::number(double(view.rerouted_away)));
        shards.push(std::move(entry));
    }
    stats.set("shards", std::move(shards));
    return stats;
}

std::string Router::metrics_text() {
    obs::PrometheusRenderer renderer;
    renderer.gauge("psaflow_router_uptime_seconds",
                   "Seconds since router start",
                   double(us_since(started_)) / 1e6);
    renderer.counter("psaflow_router_requests_total",
                     "Frames received from clients",
                     double(requests_.load()));
    renderer.counter("psaflow_router_relayed_total",
                     "Requests forwarded and answered by a shard",
                     double(relayed_.load()));
    renderer.counter("psaflow_router_retries_total",
                     "Failover re-sends after a shard transport failure",
                     double(retries_.load()));
    renderer.counter("psaflow_router_no_shard_total",
                     "Requests failed with no healthy shard",
                     double(no_shard_.load()));
    renderer.counter("psaflow_router_bad_requests_total",
                     "Malformed client requests",
                     double(bad_requests_.load()));
    renderer.counter("psaflow_router_inline_answers_total",
                     "Requests the router answered itself",
                     double(inline_answers_.load()));
    for (const ShardView& view : shard_views()) {
        const obs::MetricLabels labels = {{"shard", view.name}};
        renderer.gauge("psaflow_router_shard_healthy",
                       "1 when the shard passes health checks",
                       view.healthy ? 1.0 : 0.0, labels);
        renderer.gauge("psaflow_router_shard_draining",
                       "1 while the shard is drained out of rotation",
                       view.draining ? 1.0 : 0.0, labels);
        renderer.counter("psaflow_router_shard_routed_total",
                         "Requests forwarded to this shard", // incl. retries
                         double(view.routed), labels);
        renderer.counter("psaflow_router_shard_failures_total",
                         "Transport failures talking to this shard",
                         double(view.failures), labels);
        renderer.counter("psaflow_router_shard_rerouted_total",
                         "Owned requests lost to a failover successor",
                         double(view.rerouted_away), labels);
    }
    return renderer.text();
}

namespace {

std::uint64_t member_u64(const json::Value& doc, const char* key) {
    const json::Value* v = doc.find(key);
    return v == nullptr ? 0 : static_cast<std::uint64_t>(v->number_or(0.0));
}

/// Rebuild a Histogram from a shard stats document's histogram member
/// (the {"count","sum","min","max",...,"buckets":[[floor,n],...]} shape
/// the daemon's stats endpoint emits). Missing/malformed members merge
/// as zeroes — an old shard without buckets degrades, it doesn't fail.
Histogram histogram_from_doc(const json::Value* value) {
    Histogram::Parts parts;
    if (value != nullptr && value->is_object()) {
        parts.count = member_u64(*value, "count");
        parts.sum = member_u64(*value, "sum");
        parts.min = member_u64(*value, "min");
        parts.max = member_u64(*value, "max");
        if (const json::Value* buckets = value->find("buckets");
            buckets != nullptr && buckets->is_array())
            for (const json::Value& pair : buckets->elements)
                if (pair.is_array() && pair.elements.size() == 2)
                    parts.buckets.emplace_back(
                        static_cast<std::uint64_t>(
                            pair.elements[0].number_or(0.0)),
                        static_cast<std::uint64_t>(
                            pair.elements[1].number_or(0.0)));
    }
    return Histogram::from_parts(parts);
}

/// Same histogram shape the daemon stats endpoint uses (percentiles for
/// humans, raw buckets so the document stays mergeable downstream).
json::Value histogram_value(const Histogram& hist) {
    json::Value out = json::Value::object();
    out.set("count", json::Value::number(double(hist.count())));
    out.set("sum", json::Value::number(double(hist.sum())));
    out.set("min", json::Value::number(double(hist.min())));
    out.set("max", json::Value::number(double(hist.max())));
    out.set("mean", json::Value::number(hist.mean()));
    out.set("p50", json::Value::number(double(hist.percentile(50))));
    out.set("p90", json::Value::number(double(hist.percentile(90))));
    out.set("p99", json::Value::number(double(hist.percentile(99))));
    json::Value buckets = json::Value::array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = hist.bucket_count(b);
        if (n == 0) continue;
        json::Value pair = json::Value::array();
        pair.push(json::Value::number(double(Histogram::bucket_floor(b))));
        pair.push(json::Value::number(double(n)));
        buckets.push(std::move(pair));
    }
    out.set("buckets", std::move(buckets));
    return out;
}

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

/// Everything the two cluster endpoints aggregate from one scrape pass.
struct FleetRollup {
    std::size_t live = 0;
    Histogram request_latency;
    Histogram queue_wait;
    std::map<std::string, std::uint64_t> counters;
    std::uint64_t completed = 0;
    std::uint64_t received = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t queue_depth = 0;
    std::vector<std::uint64_t> lane_depths;
    double aggregate_qps = 0.0; ///< sum of per-shard completed/uptime
};

void fold_shard(FleetRollup& fleet, const json::Value& doc) {
    ++fleet.live;
    fleet.request_latency.merge(
        histogram_from_doc(doc.find("request_latency_us")));
    fleet.queue_wait.merge(histogram_from_doc(doc.find("queue_wait_us")));
    if (const json::Value* counters = doc.find("counters");
        counters != nullptr && counters->is_object())
        for (const auto& [name, value] : counters->members)
            fleet.counters[name] +=
                static_cast<std::uint64_t>(value.number_or(0.0));
    std::uint64_t completed = 0;
    if (const json::Value* requests = doc.find("requests");
        requests != nullptr && requests->is_object()) {
        completed = member_u64(*requests, "completed");
        fleet.received += member_u64(*requests, "received");
    }
    fleet.completed += completed;
    const std::uint64_t uptime_us = member_u64(doc, "uptime_us");
    if (uptime_us > 0)
        fleet.aggregate_qps += static_cast<double>(completed) /
                               (static_cast<double>(uptime_us) / 1e6);
    fleet.in_flight += member_u64(doc, "in_flight");
    fleet.queue_depth += member_u64(doc, "queue_depth");
    if (const json::Value* lanes = doc.find("queue_lane_depths");
        lanes != nullptr && lanes->is_array()) {
        if (fleet.lane_depths.size() < lanes->elements.size())
            fleet.lane_depths.resize(lanes->elements.size(), 0);
        for (std::size_t lane = 0; lane < lanes->elements.size(); ++lane)
            fleet.lane_depths[lane] += static_cast<std::uint64_t>(
                lanes->elements[lane].number_or(0.0));
    }
}

} // namespace

std::vector<Router::ShardScrape> Router::scrape_shards() {
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("stats"));
    const std::string payload = json::dump(request);

    // One scrape thread per shard: the endpoints answer stats inline even
    // under full load, so the fan-in takes one round trip, not N.
    std::vector<ShardScrape> scrapes(shards_.size());
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i)
        threads.emplace_back([this, &scrapes, &payload, i] {
            std::string response;
            if (!exchange(shards_[i]->config.endpoint, payload,
                          options_.recv_timeout_ms, response))
                return;
            auto doc = json::parse(response, nullptr);
            if (!doc.has_value()) return;
            const json::Value* ok = doc->find("ok");
            if (ok == nullptr || !ok->bool_value) return;
            scrapes[i].reachable = true;
            scrapes[i].stats = std::move(*doc);
        });
    for (std::thread& thread : threads) thread.join();
    return scrapes;
}

json::Value Router::cluster_stats_json() {
    const std::vector<ShardScrape> scrapes = scrape_shards();

    json::Value stats = json::Value::object();
    stats.set("ok", json::Value::boolean(true));
    stats.set("schema_version",
              json::Value::number(double(serve::kSchemaVersion)));
    stats.set("type", json::Value::string("cluster_stats"));
    stats.set("role", json::Value::string("router"));
    stats.set("uptime_us", json::Value::number(double(us_since(started_))));

    FleetRollup fleet;
    json::Value shard_list = json::Value::array();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        json::Value entry = json::Value::object();
        entry.set("name", json::Value::string(shard.config.name));
        entry.set("endpoint",
                  json::Value::string(shard.config.endpoint.describe()));
        entry.set("healthy", json::Value::boolean(shard.healthy.load()));
        entry.set("draining", json::Value::boolean(shard.draining.load()));
        entry.set("reachable",
                  json::Value::boolean(scrapes[i].reachable));
        if (scrapes[i].reachable) {
            fold_shard(fleet, scrapes[i].stats);
            entry.set("stats", scrapes[i].stats); // the raw shard document
        }
        shard_list.push(std::move(entry));
    }
    stats.set("shards_total", json::Value::number(double(shards_.size())));
    stats.set("shards_live", json::Value::number(double(fleet.live)));
    stats.set("shards", std::move(shard_list));

    json::Value rollup = json::Value::object();
    rollup.set("completed", json::Value::number(double(fleet.completed)));
    rollup.set("received", json::Value::number(double(fleet.received)));
    rollup.set("aggregate_qps", json::Value::number(fleet.aggregate_qps));
    rollup.set("in_flight", json::Value::number(double(fleet.in_flight)));
    rollup.set("queue_depth",
               json::Value::number(double(fleet.queue_depth)));
    json::Value lanes = json::Value::array();
    for (const std::uint64_t depth : fleet.lane_depths)
        lanes.push(json::Value::number(double(depth)));
    rollup.set("queue_lane_depths", std::move(lanes));
    rollup.set("request_latency_us",
               histogram_value(fleet.request_latency));
    rollup.set("queue_wait_us", histogram_value(fleet.queue_wait));

    const auto counter = [&fleet](const char* name) {
        auto it = fleet.counters.find(name);
        return it == fleet.counters.end() ? std::uint64_t{0} : it->second;
    };
    json::Value cache = json::Value::object();
    cache.set("cas_hit_rate",
              json::Value::number(
                  hit_rate(counter("cas.hits"), counter("cas.misses"))));
    cache.set("profile_cache_hit_rate",
              json::Value::number(
                  hit_rate(counter("profile_cache.hits"),
                           counter("profile_cache.misses"))));
    cache.set("remote_cas_hit_rate",
              json::Value::number(hit_rate(counter("cas.remote_hits"),
                                           counter("cas.remote_misses"))));
    rollup.set("cache", std::move(cache));

    json::Value merged_counters = json::Value::object();
    for (const auto& [name, value] : fleet.counters)
        merged_counters.set(name, json::Value::number(double(value)));
    rollup.set("counters", std::move(merged_counters));
    stats.set("fleet", std::move(rollup));
    return stats;
}

std::string Router::cluster_metrics_text() {
    const std::vector<ShardScrape> scrapes = scrape_shards();

    obs::PrometheusRenderer renderer;
    FleetRollup fleet;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        const obs::MetricLabels labels = {
            {"shard", shard.config.name},
            {"endpoint", shard.config.endpoint.describe()}};
        renderer.gauge("psaflow_cluster_shard_up",
                       "1 when the shard answered the stats scrape",
                       scrapes[i].reachable ? 1.0 : 0.0, labels);
        if (!scrapes[i].reachable) continue;
        const json::Value& doc = scrapes[i].stats;
        fold_shard(fleet, doc);

        // Per-shard-labeled re-exposure of each shard's histograms and
        // outcome tallies: the merged psaflow_cluster_* series below are
        // rebuilt from the same scraped buckets, so merged counts are
        // exactly the sums of these.
        renderer.histogram("psaflow_cluster_shard_request_latency_us",
                           "Per-shard receipt-to-response latency",
                           histogram_from_doc(
                               doc.find("request_latency_us")),
                           labels);
        renderer.histogram("psaflow_cluster_shard_queue_wait_us",
                           "Per-shard admission-to-execution wait",
                           histogram_from_doc(doc.find("queue_wait_us")),
                           labels);
        if (const json::Value* requests = doc.find("requests");
            requests != nullptr && requests->is_object())
            for (const auto& [outcome, value] : requests->members) {
                obs::MetricLabels outcome_labels = labels;
                outcome_labels.emplace_back("outcome", outcome);
                renderer.counter("psaflow_cluster_shard_requests_total",
                                 "Per-shard requests by outcome",
                                 value.number_or(0.0), outcome_labels);
            }
        const std::uint64_t uptime_us = member_u64(doc, "uptime_us");
        const std::uint64_t completed =
            doc.find("requests") != nullptr
                ? member_u64(*doc.find("requests"), "completed")
                : 0;
        if (uptime_us > 0)
            renderer.gauge("psaflow_cluster_shard_qps",
                           "Per-shard completed requests per second",
                           static_cast<double>(completed) /
                               (static_cast<double>(uptime_us) / 1e6),
                           labels);
        if (const json::Value* lanes = doc.find("queue_lane_depths");
            lanes != nullptr && lanes->is_array())
            for (std::size_t lane = 0; lane < lanes->elements.size();
                 ++lane) {
                obs::MetricLabels lane_labels = labels;
                lane_labels.emplace_back("lane", std::to_string(lane));
                renderer.gauge("psaflow_cluster_shard_queue_lane_depth",
                               "Per-shard jobs waiting, by priority lane",
                               lanes->elements[lane].number_or(0.0),
                               lane_labels);
            }
    }

    renderer.gauge("psaflow_cluster_shards", "Configured shards",
                   double(shards_.size()));
    renderer.gauge("psaflow_cluster_shards_live",
                   "Shards that answered the stats scrape",
                   double(fleet.live));
    renderer.gauge("psaflow_cluster_aggregate_qps",
                   "Sum of per-shard completed requests per second",
                   fleet.aggregate_qps);
    renderer.gauge("psaflow_cluster_in_flight",
                   "Jobs executing across the fleet",
                   double(fleet.in_flight));
    renderer.gauge("psaflow_cluster_queue_depth",
                   "Jobs waiting across the fleet",
                   double(fleet.queue_depth));
    for (std::size_t lane = 0; lane < fleet.lane_depths.size(); ++lane)
        renderer.gauge("psaflow_cluster_queue_lane_depth",
                       "Fleet jobs waiting, by priority lane",
                       double(fleet.lane_depths[lane]),
                       {{"lane", std::to_string(lane)}});
    renderer.counter("psaflow_cluster_completed_total",
                     "Completed requests across the fleet",
                     double(fleet.completed));
    renderer.histogram("psaflow_cluster_request_latency_us",
                       "Merged receipt-to-response latency (all shards)",
                       fleet.request_latency);
    renderer.histogram("psaflow_cluster_queue_wait_us",
                       "Merged admission-to-execution wait (all shards)",
                       fleet.queue_wait);

    const auto counter = [&fleet](const char* name) {
        auto it = fleet.counters.find(name);
        return it == fleet.counters.end() ? std::uint64_t{0} : it->second;
    };
    renderer.gauge("psaflow_cluster_cas_hit_rate",
                   "Fleet CAS hit rate",
                   hit_rate(counter("cas.hits"), counter("cas.misses")));
    renderer.gauge("psaflow_cluster_profile_cache_hit_rate",
                   "Fleet profile-cache hit rate",
                   hit_rate(counter("profile_cache.hits"),
                            counter("profile_cache.misses")));
    renderer.gauge("psaflow_cluster_remote_cas_hit_rate",
                   "Fleet remote-CAS hit rate",
                   hit_rate(counter("cas.remote_hits"),
                            counter("cas.remote_misses")));
    for (const auto& [name, value] : fleet.counters)
        renderer.counter(
            obs::sanitize_metric_name(name, "psaflow_cluster_"),
            "Fleet-summed psaflow trace counter " + name, double(value));
    return renderer.text();
}

} // namespace psaflow::cluster
