#include "cluster/router.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "support/string_util.hpp"

namespace psaflow::cluster {

namespace {

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/// Send `payload` to `endpoint` and read one response frame. False on any
/// transport failure — the caller treats the shard as down for this
/// attempt.
bool exchange(const net::Endpoint& endpoint, const std::string& payload,
              long long recv_timeout_ms, std::string& response) {
    std::string error;
    net::Fd conn = net::connect_endpoint(endpoint, &error);
    if (!conn.valid()) return false;
    net::set_recv_timeout(conn.get(), recv_timeout_ms);
    if (!net::write_frame(conn.get(), payload)) return false;
    return net::read_frame(conn.get(), response) == net::FrameStatus::Ok;
}

} // namespace

std::optional<ShardConfig> parse_shard_spec(const std::string& spec,
                                            std::string* error) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        if (error != nullptr)
            *error = "shard spec must be name=endpoint, got '" + spec + "'";
        return std::nullopt;
    }
    ShardConfig config;
    config.name = spec.substr(0, eq);
    auto endpoint = net::parse_endpoint(spec.substr(eq + 1), error);
    if (!endpoint.has_value()) return std::nullopt;
    config.endpoint = std::move(*endpoint);
    return config;
}

Router::Router(RouterOptions options) : options_(std::move(options)) {
    for (const ShardConfig& config : options_.shards) {
        auto shard = std::make_unique<Shard>();
        shard->config = config;
        shards_.push_back(std::move(shard));
    }
}

Router::~Router() {
    notify_shutdown();
    if (health_thread_.joinable()) health_thread_.join();
    std::lock_guard lock(readers_mu_);
    for (std::thread& reader : readers_)
        if (reader.joinable()) reader.join();
}

std::optional<std::string> Router::start() {
    if (shards_.empty()) return "no shards configured";
    for (std::size_t i = 0; i < shards_.size(); ++i)
        for (std::size_t j = i + 1; j < shards_.size(); ++j)
            if (shards_[i]->config.name == shards_[j]->config.name)
                return "duplicate shard name '" + shards_[i]->config.name +
                       "'";
    if (options_.socket_path.empty() && options_.listen_tcp.empty())
        return "no listener configured (need a socket path or --listen)";

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) return "cannot create self-pipe";
    wake_read_.reset(pipe_fds[0]);
    wake_write_.reset(pipe_fds[1]);
    ::fcntl(wake_write_.get(), F_SETFL, O_NONBLOCK);

    std::string error;
    if (!options_.socket_path.empty()) {
        listen_fd_ = net::listen_unix(options_.socket_path, /*backlog=*/64,
                                      &error);
        if (!listen_fd_.valid()) return error;
    }
    if (!options_.listen_tcp.empty()) {
        auto endpoint = net::parse_endpoint(options_.listen_tcp, &error);
        if (!endpoint.has_value()) return error;
        if (endpoint->kind != net::Endpoint::Kind::Tcp)
            return "--listen expects host:port, got '" + options_.listen_tcp +
                   "'";
        tcp_listen_fd_ = net::listen_tcp(endpoint->host, endpoint->port,
                                         /*backlog=*/64, &error);
        if (!tcp_listen_fd_.valid()) return error;
        tcp_port_ = net::local_port(tcp_listen_fd_.get());
    }

    for (const auto& shard : shards_)
        ring_.add(shard->config.name, options_.vnodes);

    started_ = std::chrono::steady_clock::now();
    health_thread_ = std::thread([this] { health_loop(); });
    obs::info("cluster.router", "router listening",
              {{"socket", options_.socket_path},
               {"tcp", options_.listen_tcp.empty()
                           ? std::string()
                           : "port " + std::to_string(tcp_port_)},
               {"shards", std::to_string(shards_.size())}});
    return std::nullopt;
}

void Router::run() {
    while (true) {
        const int ready = net::wait_readable_any(
            {listen_fd_.get(), tcp_listen_fd_.get(), wake_read_.get()}, -1);
        const bool is_listener =
            (listen_fd_.valid() && ready == listen_fd_.get()) ||
            (tcp_listen_fd_.valid() && ready == tcp_listen_fd_.get());
        if (!is_listener) break; // shutdown wake (or poll failure)
        net::Fd conn = net::accept_connection(ready);
        if (!conn.valid()) continue;
        std::lock_guard lock(readers_mu_);
        readers_.emplace_back([this, fd = std::move(conn)]() mutable {
            serve_connection(std::move(fd));
        });
    }

    shutting_down_.store(true);
    listen_fd_.reset();
    tcp_listen_fd_.reset();
    std::error_code ec;
    if (!options_.socket_path.empty())
        std::filesystem::remove(options_.socket_path, ec);
    if (health_thread_.joinable()) health_thread_.join();
    std::vector<std::thread> readers;
    {
        std::lock_guard lock(readers_mu_);
        readers.swap(readers_);
    }
    for (std::thread& reader : readers) reader.join();
    obs::info("cluster.router", "router drained",
              {{"relayed", std::to_string(relayed_.load())}});
}

void Router::notify_shutdown() noexcept {
    shutting_down_.store(true);
    if (wake_write_.valid()) {
        const char byte = 'q';
        [[maybe_unused]] ssize_t rc = ::write(wake_write_.get(), &byte, 1);
    }
}

bool Router::usable(const std::string& name) const {
    for (const auto& shard : shards_)
        if (shard->config.name == name)
            return shard->healthy.load() && !shard->draining.load();
    return false;
}

Router::Shard* Router::find_shard(const std::string& name) {
    for (const auto& shard : shards_)
        if (shard->config.name == name) return shard.get();
    return nullptr;
}

std::optional<std::string> Router::route_key(std::uint64_t key) {
    return ring_.pick_if(key,
                         [this](const std::string& s) { return usable(s); });
}

std::string Router::forward(std::uint64_t key, const std::string& payload,
                            SplitMix64& rng) {
    // Candidate shards in ring order: the owner, then its deterministic
    // failover successors. The attempt budget spans candidates — a dead
    // owner costs one attempt, its successor gets the next.
    const int budget =
        options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
    std::string response;
    Shard* owner = nullptr;
    for (int attempt = 0; attempt < budget; ++attempt) {
        const auto picked = route_key(key);
        if (!picked.has_value()) break; // nothing usable right now
        Shard* shard = find_shard(*picked);
        if (shard == nullptr) break;
        if (owner == nullptr) owner = shard;
        if (attempt > 0) {
            retries_.fetch_add(1);
            const long long delay = options_.retry.delay_ms(attempt - 1, rng);
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        shard->routed.fetch_add(1);
        if (exchange(shard->config.endpoint, payload,
                     options_.recv_timeout_ms, response)) {
            relayed_.fetch_add(1);
            return response; // verbatim relay: byte-identical to direct
        }
        // Transport failure: eject immediately (the health loop readmits
        // once the shard answers pings again) and try the next candidate.
        shard->failures.fetch_add(1);
        shard->healthy.store(false);
        if (owner != nullptr && shard == owner)
            owner->rerouted_away.fetch_add(1);
        obs::warn("cluster.router", "shard failed, rerouting",
                  {{"shard", shard->config.name},
                   {"key", hex_u64(key)},
                   {"attempt", std::to_string(attempt + 1)}});
    }
    no_shard_.fetch_add(1);
    return json::dump(serve::make_error_response(
        serve::ErrorKind::Overloaded, "no healthy shard available",
        options_.retry.base_ms * 2));
}

std::string Router::handle_admin(const json::Value& doc) {
    const json::Value* shard = doc.find("shard");
    const json::Value* draining = doc.find("draining");
    if (shard == nullptr || !shard->is_string() || draining == nullptr ||
        draining->kind != json::Value::Kind::Bool)
        return json::dump(serve::make_error_response(
            serve::ErrorKind::BadRequest,
            "drain needs string \"shard\" and bool \"draining\""));
    if (!set_drain(shard->string_value, draining->bool_value))
        return json::dump(serve::make_error_response(
            serve::ErrorKind::BadRequest,
            "unknown shard '" + shard->string_value + "'"));
    json::Value response = json::Value::object();
    response.set("ok", json::Value::boolean(true));
    response.set("schema_version",
                 json::Value::number(double(serve::kSchemaVersion)));
    response.set("type", json::Value::string("drain"));
    response.set("shard", json::Value::string(shard->string_value));
    response.set("draining", json::Value::boolean(draining->bool_value));
    return json::dump(response);
}

bool Router::set_drain(const std::string& shard_name, bool draining) {
    Shard* shard = find_shard(shard_name);
    if (shard == nullptr) return false;
    shard->draining.store(draining);
    obs::info("cluster.router",
              draining ? "shard draining" : "shard rejoined",
              {{"shard", shard_name}});
    return true;
}

void Router::serve_connection(net::Fd conn) {
    // Per-connection jitter stream: seeded from the global seed and the
    // connection sequence so concurrent readers never share RNG state yet
    // a single-connection test replays exactly.
    SplitMix64 rng(options_.seed ^ request_seq_.fetch_add(1));
    while (!shutting_down_.load()) {
        const int ready =
            net::wait_readable(conn.get(), wake_read_.get(), -1);
        if (ready != conn.get()) break;

        std::string payload;
        const net::FrameStatus status = net::read_frame(conn.get(), payload);
        if (status == net::FrameStatus::Eof ||
            status == net::FrameStatus::Error)
            break;
        if (status != net::FrameStatus::Ok) {
            const json::Value response = serve::make_error_response(
                serve::ErrorKind::BadRequest,
                std::string("malformed frame: ") + net::to_string(status));
            (void)net::write_frame(conn.get(), json::dump(response));
            break;
        }

        requests_.fetch_add(1);
        std::string parse_error;
        const auto doc = json::parse(payload, &parse_error);
        if (!doc.has_value()) {
            bad_requests_.fetch_add(1);
            const std::string response =
                json::dump(serve::make_error_response(
                    serve::ErrorKind::BadRequest,
                    "invalid JSON: " + parse_error));
            if (!net::write_frame(conn.get(), response)) break;
            continue;
        }

        const json::Value* type_value = doc->find("type");
        const std::string type =
            type_value != nullptr ? type_value->string_or("compile")
                                  : "compile";
        std::string response;
        if (type == "ping") {
            inline_answers_.fetch_add(1);
            response = json::dump(serve::make_pong_response());
        } else if (type == "stats") {
            inline_answers_.fetch_add(1);
            response = json::dump(stats_json());
        } else if (type == "metrics") {
            inline_answers_.fetch_add(1);
            json::Value body = json::Value::object();
            body.set("ok", json::Value::boolean(true));
            body.set("schema_version",
                     json::Value::number(double(serve::kSchemaVersion)));
            body.set("type", json::Value::string("metrics"));
            body.set("content_type",
                     json::Value::string(
                         "text/plain; version=0.0.4; charset=utf-8"));
            body.set("body", json::Value::string(metrics_text()));
            response = json::dump(body);
        } else if (type == "logs") {
            inline_answers_.fetch_add(1);
            long long max_records = 100;
            std::string min_level;
            if (const json::Value* v = doc->find("max"))
                max_records = static_cast<long long>(v->number_or(100.0));
            if (const json::Value* v = doc->find("min_level"))
                min_level = v->string_or("");
            response = json::dump(
                serve::Daemon::logs_json(max_records, min_level));
        } else if (type == "drain") {
            inline_answers_.fetch_add(1);
            response = handle_admin(*doc);
        } else {
            // A routed request. Parse just enough to pick the key; the
            // original payload is forwarded untouched so the shard sees —
            // and the client receives — the exact bytes.
            serve::WireRequest request;
            const auto request_error =
                serve::parse_wire_request(*doc, request);
            if (request_error.has_value()) {
                bad_requests_.fetch_add(1);
                response = json::dump(serve::make_error_response(
                    serve::ErrorKind::BadRequest, *request_error));
            } else {
                // Keyless requests (e.g. sleep) round-robin by sequence
                // number, but the raw counter must be mixed first: ring
                // positions are uniform 64-bit hashes, and sequential
                // integers all sit below the same first vnode — unmixed,
                // every keyless request would land on one shard.
                std::uint64_t key =
                    SplitMix64(request_seq_.fetch_add(1)).next_u64();
                if (request.type == serve::RequestType::Compile)
                    key = serve::affinity_digest(request.compile);
                else if (request.type == serve::RequestType::CasGet ||
                         request.type == serve::RequestType::CasPut)
                    key = request.cas_key;
                response = forward(key, payload, rng);
            }
        }
        if (!net::write_frame(conn.get(), response)) break;
    }
}

bool Router::ping_shard(Shard& shard) {
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("ping"));
    std::string response;
    // Health probes use a short stall cap: a shard that cannot answer a
    // ping within the health interval is not usefully alive.
    const long long timeout =
        options_.health_interval_ms > 0 ? options_.health_interval_ms : 500;
    return exchange(shard.config.endpoint, json::dump(request), timeout,
                    response);
}

void Router::health_loop() {
    const auto interval = std::chrono::milliseconds(
        options_.health_interval_ms > 0 ? options_.health_interval_ms : 500);
    while (!shutting_down_.load()) {
        for (const auto& shard : shards_) {
            if (shutting_down_.load()) return;
            if (ping_shard(*shard)) {
                shard->ping_failures.store(0);
                if (!shard->healthy.exchange(true))
                    obs::info("cluster.router", "shard rejoined",
                              {{"shard", shard->config.name}});
            } else {
                const int failures = shard->ping_failures.fetch_add(1) + 1;
                if (failures >= options_.health_failures_to_eject &&
                    shard->healthy.exchange(false))
                    obs::warn("cluster.router", "shard unhealthy",
                              {{"shard", shard->config.name},
                               {"failures", std::to_string(failures)}});
            }
        }
        // Sleep in small slices so shutdown stays prompt.
        auto remaining = interval;
        while (remaining.count() > 0 && !shutting_down_.load()) {
            const auto slice =
                std::min(remaining, std::chrono::milliseconds(50));
            std::this_thread::sleep_for(slice);
            remaining -= slice;
        }
    }
}

std::vector<ShardView> Router::shard_views() const {
    std::vector<ShardView> views;
    views.reserve(shards_.size());
    for (const auto& shard : shards_) {
        ShardView view;
        view.name = shard->config.name;
        view.endpoint = shard->config.endpoint.describe();
        view.healthy = shard->healthy.load();
        view.draining = shard->draining.load();
        view.routed = shard->routed.load();
        view.failures = shard->failures.load();
        view.rerouted_away = shard->rerouted_away.load();
        views.push_back(std::move(view));
    }
    return views;
}

json::Value Router::stats_json() {
    json::Value stats = json::Value::object();
    stats.set("ok", json::Value::boolean(true));
    stats.set("schema_version",
              json::Value::number(double(serve::kSchemaVersion)));
    stats.set("type", json::Value::string("stats"));
    stats.set("role", json::Value::string("router"));
    stats.set("uptime_us", json::Value::number(double(us_since(started_))));
    stats.set("requests", json::Value::number(double(requests_.load())));
    stats.set("relayed", json::Value::number(double(relayed_.load())));
    stats.set("retries", json::Value::number(double(retries_.load())));
    stats.set("no_shard", json::Value::number(double(no_shard_.load())));
    stats.set("bad_requests",
              json::Value::number(double(bad_requests_.load())));
    stats.set("inline_answers",
              json::Value::number(double(inline_answers_.load())));
    json::Value shards = json::Value::array();
    for (const ShardView& view : shard_views()) {
        json::Value entry = json::Value::object();
        entry.set("name", json::Value::string(view.name));
        entry.set("endpoint", json::Value::string(view.endpoint));
        entry.set("healthy", json::Value::boolean(view.healthy));
        entry.set("draining", json::Value::boolean(view.draining));
        entry.set("routed", json::Value::number(double(view.routed)));
        entry.set("failures", json::Value::number(double(view.failures)));
        entry.set("rerouted_away",
                  json::Value::number(double(view.rerouted_away)));
        shards.push(std::move(entry));
    }
    stats.set("shards", std::move(shards));
    return stats;
}

std::string Router::metrics_text() {
    obs::PrometheusRenderer renderer;
    renderer.gauge("psaflow_router_uptime_seconds",
                   "Seconds since router start",
                   double(us_since(started_)) / 1e6);
    renderer.counter("psaflow_router_requests_total",
                     "Frames received from clients",
                     double(requests_.load()));
    renderer.counter("psaflow_router_relayed_total",
                     "Requests forwarded and answered by a shard",
                     double(relayed_.load()));
    renderer.counter("psaflow_router_retries_total",
                     "Failover re-sends after a shard transport failure",
                     double(retries_.load()));
    renderer.counter("psaflow_router_no_shard_total",
                     "Requests failed with no healthy shard",
                     double(no_shard_.load()));
    renderer.counter("psaflow_router_bad_requests_total",
                     "Malformed client requests",
                     double(bad_requests_.load()));
    renderer.counter("psaflow_router_inline_answers_total",
                     "Requests the router answered itself",
                     double(inline_answers_.load()));
    for (const ShardView& view : shard_views()) {
        const obs::MetricLabels labels = {{"shard", view.name}};
        renderer.gauge("psaflow_router_shard_healthy",
                       "1 when the shard passes health checks",
                       view.healthy ? 1.0 : 0.0, labels);
        renderer.gauge("psaflow_router_shard_draining",
                       "1 while the shard is drained out of rotation",
                       view.draining ? 1.0 : 0.0, labels);
        renderer.counter("psaflow_router_shard_routed_total",
                         "Requests forwarded to this shard", // incl. retries
                         double(view.routed), labels);
        renderer.counter("psaflow_router_shard_failures_total",
                         "Transport failures talking to this shard",
                         double(view.failures), labels);
        renderer.counter("psaflow_router_shard_rerouted_total",
                         "Owned requests lost to a failover successor",
                         double(view.rerouted_away), labels);
    }
    return renderer.text();
}

} // namespace psaflow::cluster
