// psaflow-router — consistent-hash front door for a psaflowd shard fleet.
//
// Speaks the same framed wire protocol as psaflowd on both sides, so
// clients cannot tell a router from a daemon (byte-identical responses —
// the router relays a shard's response payload verbatim, it never
// re-serialises). Per request:
//
//   * compile   → routed by affinity_digest (the module-content key every
//                 warm cache keys off), so repeat compiles of one module
//                 land on the shard that already holds its artifacts.
//   * cas_get/  → routed by the cas key, giving each artifact a home
//     cas_put     shard; shards pointed at the router with --cas-upstream
//                 get a shared cluster artifact tier for free.
//   * sleep     → routed by request sequence (spreads test load).
//   * ping/stats/metrics/logs → answered by the router itself: its own
//                 liveness, the cluster view (per-shard health/counters),
//                 psaflow_router_* Prometheus series, its own log ring.
//   * drain     → admin: {"type":"drain","shard":"a","draining":true}
//                 takes a shard out of rotation without killing it (and
//                 back in with false) for graceful rolling restarts.
//
// Failure handling: a transport failure on a shard marks it unhealthy and
// the request retries on the next ring candidate after a jittered backoff
// (cluster/retry.hpp), up to the attempt budget. A health thread pings
// every shard on an interval; a previously failed shard that answers again
// rejoins the ring automatically. Application-level errors (bad_request,
// overloaded, …) are relayed untouched — the shard knows, the client
// decides.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/retry.hpp"
#include "serve/protocol.hpp"
#include "support/json.hpp"
#include "support/net.hpp"

namespace psaflow::cluster {

struct ShardConfig {
    std::string name;
    net::Endpoint endpoint;
};

/// Parse a `--shard name=endpoint` spec. nullopt + `*error` on bad input.
[[nodiscard]] std::optional<ShardConfig>
parse_shard_spec(const std::string& spec, std::string* error);

struct RouterOptions {
    std::string socket_path;       ///< Unix listener ("" = TCP only)
    std::string listen_tcp;        ///< "host:port" ("" = none; port 0 = ephemeral)
    std::vector<ShardConfig> shards;
    std::size_t vnodes = HashRing::kDefaultVnodes;
    long long health_interval_ms = 500;
    int health_failures_to_eject = 2; ///< consecutive ping failures
    BackoffPolicy retry;           ///< failover attempts + backoff window
    long long recv_timeout_ms = 30000; ///< shard response stall cap
    std::uint64_t seed = 0x8a5cd789635d2dffULL; ///< backoff jitter seed
};

/// Per-shard monotonic tallies, readable while serving.
struct ShardView {
    std::string name;
    std::string endpoint;
    bool healthy = true;
    bool draining = false;
    std::uint64_t routed = 0;     ///< requests forwarded (incl. retries)
    std::uint64_t failures = 0;   ///< transport failures observed
    std::uint64_t rerouted_away = 0; ///< requests this shard owned but lost
};

class Router {
public:
    explicit Router(RouterOptions options);
    ~Router();

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /// Bind listeners, build the ring, start the health thread. Error
    /// message on failure (router unusable afterwards).
    [[nodiscard]] std::optional<std::string> start();

    /// Accept/serve until notify_shutdown().
    void run();

    /// Async-signal-safe shutdown request (self-pipe write).
    void notify_shutdown() noexcept;

    [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

    /// Cluster stats document ({"type":"stats"} answered by the router).
    [[nodiscard]] json::Value stats_json();

    /// Prometheus exposition: psaflow_router_* series.
    [[nodiscard]] std::string metrics_text();

    /// Fleet fan-in ({"type":"cluster_stats"}): scrape every shard's
    /// stats endpoint concurrently and return the per-shard documents
    /// plus merged fleet rollups (aggregate qps, merged latency/queue
    /// histograms, summed counters, cache hit rates, lane depths).
    [[nodiscard]] json::Value cluster_stats_json();

    /// {"type":"cluster_metrics"}: Prometheus exposition of the same
    /// fan-in — every shard histogram re-exposed under psaflow_cluster_*
    /// with shard/endpoint labels, beside merged (label-free) series
    /// rebuilt via Histogram::from_parts so merged bucket counts are
    /// exactly the sums of the per-shard scrapes.
    [[nodiscard]] std::string cluster_metrics_text();

    /// Admin drain toggle; false when the shard name is unknown.
    bool set_drain(const std::string& shard, bool draining);

    [[nodiscard]] std::vector<ShardView> shard_views() const;

    /// The shard a key routes to right now (health- and drain-aware);
    /// exposed for tests and the drain admin path.
    [[nodiscard]] std::optional<std::string> route_key(std::uint64_t key);

private:
    struct Shard {
        ShardConfig config;
        std::atomic<bool> healthy{true};
        std::atomic<bool> draining{false};
        std::atomic<int> ping_failures{0};
        std::atomic<std::uint64_t> routed{0};
        std::atomic<std::uint64_t> failures{0};
        std::atomic<std::uint64_t> rerouted_away{0};
    };

    void serve_connection(net::Fd conn);
    /// One relayed request's outcome: the response to send back plus the
    /// relay telemetry the flight recorder wants.
    struct ForwardOutcome {
        std::string response; ///< winning shard's raw response, or a
                              ///< locally minted error document
        std::string shard;    ///< winning shard's name ("" = none)
        int attempts = 0;     ///< shards tried (retries = attempts - 1)
    };
    /// Forward `payload` to the shards owning `key` (ring order, with
    /// backoff between attempts).
    [[nodiscard]] ForwardOutcome forward(std::uint64_t key,
                                         const std::string& payload,
                                         SplitMix64& rng);
    /// Relay one routed request: rewrite the trace context when traced,
    /// forward, wrap the returned spans, and drop a flight record.
    [[nodiscard]] std::string relay(const serve::WireRequest& request,
                                    const json::Value& doc,
                                    std::uint64_t key,
                                    const std::string& payload,
                                    SplitMix64& rng);
    /// One shard's {"type":"stats"} scrape (cluster_stats fan-in).
    struct ShardScrape {
        bool reachable = false;
        json::Value stats; ///< the shard's raw stats document
    };
    /// Scrape every shard concurrently, in shards_ order.
    [[nodiscard]] std::vector<ShardScrape> scrape_shards();
    [[nodiscard]] std::string handle_admin(const json::Value& doc);
    void health_loop();
    [[nodiscard]] bool ping_shard(Shard& shard);
    [[nodiscard]] Shard* find_shard(const std::string& name);
    [[nodiscard]] bool usable(const std::string& name) const;

    RouterOptions options_;
    HashRing ring_; ///< immutable after start(); health is a predicate
    std::vector<std::unique_ptr<Shard>> shards_;
    net::Fd listen_fd_;
    net::Fd tcp_listen_fd_;
    std::uint16_t tcp_port_ = 0;
    net::Fd wake_read_;
    net::Fd wake_write_;
    std::thread health_thread_;
    std::vector<std::thread> readers_;
    std::mutex readers_mu_;
    std::atomic<bool> shutting_down_{false};
    std::atomic<std::uint64_t> request_seq_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> relayed_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> no_shard_{0};
    std::atomic<std::uint64_t> bad_requests_{0};
    std::atomic<std::uint64_t> inline_answers_{0};
    std::chrono::steady_clock::time_point started_;
};

} // namespace psaflow::cluster
