// Jittered retry backoff, shared by everything that re-sends a request:
// psaflow-client (overloaded responses), the router (shard failover) and
// the load generator.
//
// Full jitter over an exponentially growing window: attempt k draws
// uniformly from [base/2, cap(base * 2^k)). The half-floor keeps retries
// from landing instantly (a zero draw would), the jitter de-synchronises
// the thundering herd a shard failure creates — every client that saw the
// same failure at the same moment retries at a different moment. When the
// server supplied a retry_after hint, the hint replaces the exponential
// base for that attempt (the server knows its queue better than we do)
// but is still jittered for the same reason.
//
// Deterministic: delays come from a caller-owned SplitMix64, so tests and
// the load generator replay identical schedules from a seed.
#pragma once

#include <cstdint>

#include "support/prng.hpp"

namespace psaflow::cluster {

struct BackoffPolicy {
    long long base_ms = 50;   ///< window for attempt 0
    long long max_ms = 2000;  ///< window growth cap
    int max_attempts = 3;     ///< total tries (1 = no retry)

    /// The delay before retry `attempt` (0-based: the wait after the
    /// first failure is attempt 0). `hint_ms` > 0 is a server-provided
    /// retry_after that overrides the exponential window.
    [[nodiscard]] long long delay_ms(int attempt, SplitMix64& rng,
                                     long long hint_ms = 0) const {
        long long window = hint_ms > 0 ? hint_ms : base_ms;
        if (hint_ms <= 0) {
            for (int i = 0; i < attempt && window < max_ms; ++i)
                window *= 2;
        }
        if (window > max_ms) window = max_ms;
        if (window < 1) window = 1;
        const long long floor = window / 2;
        return floor +
               static_cast<long long>(rng.next_below(
                   static_cast<std::uint64_t>(window - floor) + 1));
    }
};

} // namespace psaflow::cluster
