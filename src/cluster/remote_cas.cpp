#include "cluster/remote_cas.hpp"

#include <memory>
#include <utility>

#include "obs/log.hpp"
#include "serve/protocol.hpp"
#include "serve/wire_trace.hpp"
#include "support/json.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace psaflow::cluster {

namespace {

/// One request/response exchange on a fresh connection. nullopt on any
/// transport or parse failure (logged at debug — remote-CAS trouble is
/// routine during shard churn, not an operator alert).
std::optional<json::Value> round_trip(const net::Endpoint& upstream,
                                      long long recv_timeout_ms,
                                      const json::Value& request) {
    std::string error;
    net::Fd conn = net::connect_endpoint(upstream, &error);
    if (!conn.valid()) {
        obs::debug("cluster.cas", "upstream unreachable",
                   {{"upstream", upstream.describe()}, {"error", error}});
        return std::nullopt;
    }
    net::set_recv_timeout(conn.get(), recv_timeout_ms);
    if (!net::write_frame(conn.get(), json::dump(request))) return std::nullopt;
    std::string payload;
    if (net::read_frame(conn.get(), payload) != net::FrameStatus::Ok)
        return std::nullopt;
    return json::parse(payload, nullptr);
}

} // namespace

std::optional<std::string> RemoteCasClient::fetch(std::uint64_t key) const {
    // The fetch runs inside the requesting flow's span tree; when the
    // enclosing request is distributed-traced (the daemon installed its
    // trace id on this thread), the upstream hop is traced too: the
    // upstream daemon parents its serve:cas_get span on this span and we
    // graft it back into the current registry, so the cross-process tree
    // shows the time spent inside the upstream store.
    trace::ScopedSpan span("cas:remote-get", "cluster");
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("cas_get"));
    request.set("key", json::Value::string(hex_u64(key)));
    serve::WireTraceContext ctx;
    ctx.trace_id = trace::current_trace_id();
    ctx.parent_span = span.id();
    serve::set_trace_member(request, ctx);
    const std::uint64_t sent_at = trace::Registry::current().now_us();

    const auto response = round_trip(upstream_, recv_timeout_ms_, request);
    if (!response.has_value()) return std::nullopt;
    if (ctx.traced() && serve::response_trace_id(*response) == ctx.trace_id) {
        // Rebase the upstream's hop spans (based at its t=0) into this
        // fetch's window and record them beside the local span.
        std::vector<trace::Span> remote =
            serve::response_trace_spans(*response);
        trace::Registry& registry = trace::Registry::current();
        trace::Span window;
        window.start_us = sent_at;
        window.duration_us = registry.now_us() - sent_at;
        serve::nest_spans(remote, window);
        remote.pop_back(); // the window is span's own job, not a new span
        for (trace::Span& hop : remote) registry.add_span(std::move(hop));
    }
    const json::Value* ok = response->find("ok");
    const json::Value* found = response->find("found");
    if (ok == nullptr || !ok->bool_value || found == nullptr ||
        !found->bool_value)
        return std::nullopt;
    const json::Value* payload = response->find("payload");
    if (payload == nullptr || !payload->is_string()) return std::nullopt;
    return base64_decode(payload->string_value);
}

bool RemoteCasClient::publish(std::uint64_t key,
                              std::string_view payload) const {
    trace::ScopedSpan span("cas:remote-put", "cluster");
    json::Value request = json::Value::object();
    request.set("schema_version",
                json::Value::number(double(serve::kSchemaVersion)));
    request.set("type", json::Value::string("cas_put"));
    request.set("key", json::Value::string(hex_u64(key)));
    request.set("payload",
                json::Value::string(base64_encode(payload)));

    const auto response = round_trip(upstream_, recv_timeout_ms_, request);
    if (!response.has_value()) return false;
    const json::Value* ok = response->find("ok");
    const json::Value* stored = response->find("stored");
    return ok != nullptr && ok->bool_value && stored != nullptr &&
           stored->bool_value;
}

cas::RemoteFetch
RemoteCasClient::fetch_hook(std::shared_ptr<RemoteCasClient> client) {
    return [client = std::move(client)](std::uint64_t key) {
        return client->fetch(key);
    };
}

cas::RemotePublish
RemoteCasClient::publish_hook(std::shared_ptr<RemoteCasClient> client) {
    return [client = std::move(client)](std::uint64_t key,
                                        std::string_view payload) {
        return client->publish(key, payload);
    };
}

} // namespace psaflow::cluster
