// Token stream for HLC.
#pragma once

#include <string>

#include "support/source_location.hpp"

namespace psaflow::frontend {

enum class TokKind {
    End,
    Identifier,
    IntLiteral,
    FloatLiteral,
    Pragma, ///< a full `#pragma ...` line; text holds everything after "#pragma "
    // keywords
    KwVoid, KwBool, KwInt, KwFloat, KwDouble,
    KwIf, KwElse, KwFor, KwWhile, KwReturn, KwTrue, KwFalse,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semicolon, Comma,
    // operators
    Plus, Minus, Star, Slash, Percent,
    Lt, Le, Gt, Ge, EqEq, NotEq,
    AndAnd, OrOr, Not,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PlusPlus, MinusMinus,
};

[[nodiscard]] const char* to_string(TokKind kind);

struct Token {
    TokKind kind = TokKind::End;
    std::string text;   ///< spelling (identifiers, literals, pragma payloads)
    long long int_value = 0;
    double float_value = 0.0;
    bool float_single = false; ///< literal had an 'f' suffix
    SrcLoc loc;
};

} // namespace psaflow::frontend
