#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace psaflow::frontend {

namespace {

const std::unordered_map<std::string_view, TokKind>& keywords() {
    static const std::unordered_map<std::string_view, TokKind> map = {
        {"void", TokKind::KwVoid},     {"bool", TokKind::KwBool},
        {"int", TokKind::KwInt},       {"float", TokKind::KwFloat},
        {"double", TokKind::KwDouble}, {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},     {"for", TokKind::KwFor},
        {"while", TokKind::KwWhile},   {"return", TokKind::KwReturn},
        {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
    };
    return map;
}

class Cursor {
public:
    explicit Cursor(std::string_view src) : src_(src) {}

    [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char advance() {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }
    [[nodiscard]] SrcLoc loc() const { return {line_, col_}; }

private:
    std::string_view src_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t col_ = 1;
};

} // namespace

std::vector<Token> lex(std::string_view source) {
    std::vector<Token> out;
    Cursor cur(source);

    auto push = [&](TokKind kind, SrcLoc loc, std::string text = {}) {
        Token t;
        t.kind = kind;
        t.loc = loc;
        t.text = std::move(text);
        out.push_back(std::move(t));
    };

    while (!cur.done()) {
        const SrcLoc loc = cur.loc();
        const char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }

        // Comments.
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.done() && cur.peek() != '\n') cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (true) {
                if (cur.done()) throw ParseError(loc, "unterminated /* comment");
                if (cur.peek() == '*' && cur.peek(1) == '/') {
                    cur.advance();
                    cur.advance();
                    break;
                }
                cur.advance();
            }
            continue;
        }

        // #pragma lines.
        if (c == '#') {
            std::string line;
            while (!cur.done() && cur.peek() != '\n') line += cur.advance();
            std::string_view rest = trim(line);
            if (!starts_with(rest, "#pragma"))
                throw ParseError(loc, "only #pragma directives are supported");
            rest.remove_prefix(7);
            push(TokKind::Pragma, loc, std::string(trim(rest)));
            continue;
        }

        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (!cur.done() && (std::isalnum(static_cast<unsigned char>(
                                       cur.peek())) ||
                                   cur.peek() == '_'))
                word += cur.advance();
            auto it = keywords().find(word);
            if (it != keywords().end()) {
                push(it->second, loc, std::move(word));
            } else {
                push(TokKind::Identifier, loc, std::move(word));
            }
            continue;
        }

        // Numeric literals.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            std::string digits;
            bool is_float = false;
            while (!cur.done()) {
                char d = cur.peek();
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    digits += cur.advance();
                } else if (d == '.') {
                    is_float = true;
                    digits += cur.advance();
                } else if (d == 'e' || d == 'E') {
                    is_float = true;
                    digits += cur.advance();
                    if (cur.peek() == '+' || cur.peek() == '-')
                        digits += cur.advance();
                } else {
                    break;
                }
            }
            bool single = false;
            if (cur.peek() == 'f' || cur.peek() == 'F') {
                single = true;
                is_float = true;
                cur.advance();
            }
            Token t;
            t.loc = loc;
            if (is_float) {
                t.kind = TokKind::FloatLiteral;
                t.text = digits;
                t.float_single = single;
                char* end = nullptr;
                t.float_value = std::strtod(digits.c_str(), &end);
                if (end == nullptr || *end != '\0')
                    throw ParseError(loc, "malformed float literal '" + digits + "'");
            } else {
                t.kind = TokKind::IntLiteral;
                t.text = digits;
                char* end = nullptr;
                t.int_value = std::strtoll(digits.c_str(), &end, 10);
                if (end == nullptr || *end != '\0')
                    throw ParseError(loc, "malformed int literal '" + digits + "'");
            }
            out.push_back(std::move(t));
            continue;
        }

        // Operators and punctuation.
        auto two = [&](char second) { return cur.peek(1) == second; };
        switch (c) {
            case '(': cur.advance(); push(TokKind::LParen, loc); continue;
            case ')': cur.advance(); push(TokKind::RParen, loc); continue;
            case '{': cur.advance(); push(TokKind::LBrace, loc); continue;
            case '}': cur.advance(); push(TokKind::RBrace, loc); continue;
            case '[': cur.advance(); push(TokKind::LBracket, loc); continue;
            case ']': cur.advance(); push(TokKind::RBracket, loc); continue;
            case ';': cur.advance(); push(TokKind::Semicolon, loc); continue;
            case ',': cur.advance(); push(TokKind::Comma, loc); continue;
            case '%': cur.advance(); push(TokKind::Percent, loc); continue;
            case '+':
                cur.advance();
                if (cur.peek() == '+') { cur.advance(); push(TokKind::PlusPlus, loc); }
                else if (cur.peek() == '=') { cur.advance(); push(TokKind::PlusAssign, loc); }
                else push(TokKind::Plus, loc);
                continue;
            case '-':
                cur.advance();
                if (cur.peek() == '-') { cur.advance(); push(TokKind::MinusMinus, loc); }
                else if (cur.peek() == '=') { cur.advance(); push(TokKind::MinusAssign, loc); }
                else push(TokKind::Minus, loc);
                continue;
            case '*':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::StarAssign, loc); }
                else push(TokKind::Star, loc);
                continue;
            case '/':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::SlashAssign, loc); }
                else push(TokKind::Slash, loc);
                continue;
            case '<':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::Le, loc); }
                else push(TokKind::Lt, loc);
                continue;
            case '>':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::Ge, loc); }
                else push(TokKind::Gt, loc);
                continue;
            case '=':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::EqEq, loc); }
                else push(TokKind::Assign, loc);
                continue;
            case '!':
                cur.advance();
                if (cur.peek() == '=') { cur.advance(); push(TokKind::NotEq, loc); }
                else push(TokKind::Not, loc);
                continue;
            case '&':
                if (two('&')) { cur.advance(); cur.advance(); push(TokKind::AndAnd, loc); continue; }
                throw ParseError(loc, "single '&' is not an HLC operator");
            case '|':
                if (two('|')) { cur.advance(); cur.advance(); push(TokKind::OrOr, loc); continue; }
                throw ParseError(loc, "single '|' is not an HLC operator");
            default:
                throw ParseError(loc, std::string("unexpected character '") + c + "'");
        }
    }

    push(TokKind::End, cur.loc());
    return out;
}

const char* to_string(TokKind kind) {
    switch (kind) {
        case TokKind::End: return "<eof>";
        case TokKind::Identifier: return "identifier";
        case TokKind::IntLiteral: return "int literal";
        case TokKind::FloatLiteral: return "float literal";
        case TokKind::Pragma: return "#pragma";
        case TokKind::KwVoid: return "void";
        case TokKind::KwBool: return "bool";
        case TokKind::KwInt: return "int";
        case TokKind::KwFloat: return "float";
        case TokKind::KwDouble: return "double";
        case TokKind::KwIf: return "if";
        case TokKind::KwElse: return "else";
        case TokKind::KwFor: return "for";
        case TokKind::KwWhile: return "while";
        case TokKind::KwReturn: return "return";
        case TokKind::KwTrue: return "true";
        case TokKind::KwFalse: return "false";
        case TokKind::LParen: return "(";
        case TokKind::RParen: return ")";
        case TokKind::LBrace: return "{";
        case TokKind::RBrace: return "}";
        case TokKind::LBracket: return "[";
        case TokKind::RBracket: return "]";
        case TokKind::Semicolon: return ";";
        case TokKind::Comma: return ",";
        case TokKind::Plus: return "+";
        case TokKind::Minus: return "-";
        case TokKind::Star: return "*";
        case TokKind::Slash: return "/";
        case TokKind::Percent: return "%";
        case TokKind::Lt: return "<";
        case TokKind::Le: return "<=";
        case TokKind::Gt: return ">";
        case TokKind::Ge: return ">=";
        case TokKind::EqEq: return "==";
        case TokKind::NotEq: return "!=";
        case TokKind::AndAnd: return "&&";
        case TokKind::OrOr: return "||";
        case TokKind::Not: return "!";
        case TokKind::Assign: return "=";
        case TokKind::PlusAssign: return "+=";
        case TokKind::MinusAssign: return "-=";
        case TokKind::StarAssign: return "*=";
        case TokKind::SlashAssign: return "/=";
        case TokKind::PlusPlus: return "++";
        case TokKind::MinusMinus: return "--";
    }
    return "?";
}

} // namespace psaflow::frontend
