// Hand-written lexer for HLC. Produces the full token vector up front;
// sources are small (applications, not corpora) so there is no need to
// stream.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.hpp"

namespace psaflow::frontend {

/// Tokenise `source`. Throws ParseError on malformed input (unknown
/// character, bad numeric literal, unterminated comment).
[[nodiscard]] std::vector<Token> lex(std::string_view source);

} // namespace psaflow::frontend
