// Recursive-descent parser for HLC, producing the source-faithful AST.
//
// For-loops are normalised to the canonical counted form
//     for (int i = <init>; i < <limit>; i = i + <step>)
// accepting `i < e`, `i <= e` (rewritten to `i < e + 1`), and the step
// spellings `i = i + c`, `i += c`, `i++`, `++i`. The paper's loop analyses
// (dependence, trip count, unroll DSE) all assume canonical loops.
#pragma once

#include <string>
#include <string_view>

#include "ast/nodes.hpp"

namespace psaflow::frontend {

/// Parse a full translation unit. `module_name` labels the design in reports.
/// Throws ParseError on malformed input.
[[nodiscard]] ast::ModulePtr parse_module(std::string_view source,
                                          std::string module_name = "module");

/// Parse a single expression (used by tests and pragma payloads).
[[nodiscard]] ast::ExprPtr parse_expression(std::string_view source);

} // namespace psaflow::frontend
