#include "frontend/parser.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "ast/builder.hpp"
#include "frontend/lexer.hpp"
#include "support/error.hpp"

namespace psaflow::frontend {

namespace {

using namespace psaflow::ast;

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    ModulePtr module(std::string name) {
        auto mod = std::make_unique<Module>();
        mod->name = std::move(name);
        mod->loc = peek().loc;
        while (!at(TokKind::End)) mod->functions.push_back(function());
        return mod;
    }

    ExprPtr bare_expression() {
        ExprPtr e = expression();
        expect(TokKind::End, "end of expression");
        return e;
    }

private:
    // ---- token plumbing ----------------------------------------------------

    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    [[nodiscard]] bool at(TokKind kind) const { return peek().kind == kind; }

    const Token& advance() { return toks_[pos_++]; }

    bool accept(TokKind kind) {
        if (!at(kind)) return false;
        advance();
        return true;
    }

    const Token& expect(TokKind kind, const char* what) {
        if (!at(kind)) {
            throw ParseError(peek().loc,
                             std::string("expected ") + what + ", found '" +
                                 to_string(peek().kind) + "'");
        }
        return advance();
    }

    [[noreturn]] void fail(const std::string& msg) const {
        throw ParseError(peek().loc, msg);
    }

    // ---- declarations ------------------------------------------------------

    [[nodiscard]] bool at_type() const {
        switch (peek().kind) {
            case TokKind::KwVoid:
            case TokKind::KwBool:
            case TokKind::KwInt:
            case TokKind::KwFloat:
            case TokKind::KwDouble: return true;
            default: return false;
        }
    }

    Type type_keyword() {
        switch (advance().kind) {
            case TokKind::KwVoid: return Type::Void;
            case TokKind::KwBool: return Type::Bool;
            case TokKind::KwInt: return Type::Int;
            case TokKind::KwFloat: return Type::Float;
            case TokKind::KwDouble: return Type::Double;
            default: fail("expected a type keyword");
        }
    }

    FunctionPtr function() {
        auto fn = std::make_unique<Function>();
        fn->loc = peek().loc;
        if (!at_type()) fail("expected function return type");
        fn->ret = type_keyword();
        fn->name = expect(TokKind::Identifier, "function name").text;
        expect(TokKind::LParen, "'('");
        if (!at(TokKind::RParen)) {
            do {
                auto p = std::make_unique<Param>();
                p->loc = peek().loc;
                if (!at_type()) fail("expected parameter type");
                p->type.elem = type_keyword();
                p->type.is_pointer = accept(TokKind::Star);
                p->name = expect(TokKind::Identifier, "parameter name").text;
                fn->params.push_back(std::move(p));
            } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "')'");
        fn->body = block();
        return fn;
    }

    // ---- statements ----------------------------------------------------

    BlockPtr block() {
        auto b = std::make_unique<Block>();
        b->loc = peek().loc;
        expect(TokKind::LBrace, "'{'");
        while (!at(TokKind::RBrace)) {
            if (at(TokKind::End)) fail("unterminated block");
            b->stmts.push_back(statement());
        }
        expect(TokKind::RBrace, "'}'");
        return b;
    }

    /// A braced block, or a single statement wrapped in a block.
    BlockPtr block_or_single() {
        if (at(TokKind::LBrace)) return block();
        auto b = std::make_unique<Block>();
        b->loc = peek().loc;
        b->stmts.push_back(statement());
        return b;
    }

    StmtPtr statement() {
        // Attach any pragma lines to the statement they precede.
        std::vector<std::string> pragmas;
        while (at(TokKind::Pragma)) pragmas.push_back(advance().text);

        StmtPtr s = core_statement();
        // Prepend so pragmas written in source come before any attached later.
        s->pragmas.insert(s->pragmas.begin(), pragmas.begin(), pragmas.end());
        return s;
    }

    StmtPtr core_statement() {
        if (at(TokKind::LBrace)) return block();
        if (at(TokKind::KwIf)) return if_statement();
        if (at(TokKind::KwFor)) return for_statement();
        if (at(TokKind::KwWhile)) return while_statement();
        if (at(TokKind::KwReturn)) return return_statement();
        if (at_type()) return var_decl_statement();
        return assign_or_expr_statement();
    }

    StmtPtr var_decl_statement() {
        auto d = std::make_unique<VarDecl>();
        d->loc = peek().loc;
        d->elem = type_keyword();
        if (d->elem == Type::Void) fail("cannot declare a 'void' variable");
        d->name = expect(TokKind::Identifier, "variable name").text;
        if (accept(TokKind::LBracket)) {
            d->is_array = true;
            d->array_size = expression();
            expect(TokKind::RBracket, "']'");
        }
        if (accept(TokKind::Assign)) {
            if (d->is_array) fail("array initialisers are not supported");
            d->init = expression();
        }
        expect(TokKind::Semicolon, "';'");
        return d;
    }

    StmtPtr if_statement() {
        auto s = std::make_unique<If>();
        s->loc = peek().loc;
        expect(TokKind::KwIf, "'if'");
        expect(TokKind::LParen, "'('");
        s->cond = expression();
        expect(TokKind::RParen, "')'");
        s->then_body = block_or_single();
        if (accept(TokKind::KwElse)) {
            if (at(TokKind::KwIf)) {
                // `else if` chain: wrap the nested if into an else-block.
                auto wrapper = std::make_unique<Block>();
                wrapper->loc = peek().loc;
                wrapper->stmts.push_back(if_statement());
                s->else_body = std::move(wrapper);
            } else {
                s->else_body = block_or_single();
            }
        }
        return s;
    }

    StmtPtr for_statement() {
        auto s = std::make_unique<For>();
        s->loc = peek().loc;
        expect(TokKind::KwFor, "'for'");
        expect(TokKind::LParen, "'('");

        expect(TokKind::KwInt, "'int' (for-loops must declare their induction "
                               "variable as 'int')");
        s->var = expect(TokKind::Identifier, "induction variable").text;
        expect(TokKind::Assign, "'='");
        s->init = expression();
        expect(TokKind::Semicolon, "';'");

        // Condition: `i < e` or `i <= e` (normalised to `< e + 1`).
        const std::string& cond_var =
            expect(TokKind::Identifier, "induction variable in condition").text;
        if (cond_var != s->var)
            fail("for-loop condition must test the induction variable '" +
                 s->var + "'");
        if (accept(TokKind::Lt)) {
            s->limit = expression();
        } else if (accept(TokKind::Le)) {
            s->limit = build::add(expression(), build::int_lit(1));
        } else {
            fail("for-loop condition must be '<' or '<='");
        }
        expect(TokKind::Semicolon, "';'");

        // Step: `i = i + c` | `i += c` | `i++` | `++i`.
        if (accept(TokKind::PlusPlus)) {
            const std::string& v =
                expect(TokKind::Identifier, "induction variable").text;
            if (v != s->var) fail("for-loop step must update '" + s->var + "'");
            s->step = build::int_lit(1);
        } else {
            const std::string& v =
                expect(TokKind::Identifier, "induction variable").text;
            if (v != s->var) fail("for-loop step must update '" + s->var + "'");
            if (accept(TokKind::PlusPlus)) {
                s->step = build::int_lit(1);
            } else if (accept(TokKind::PlusAssign)) {
                s->step = expression();
            } else if (accept(TokKind::Assign)) {
                const std::string& v2 =
                    expect(TokKind::Identifier, "induction variable").text;
                if (v2 != s->var)
                    fail("for-loop step must be '" + s->var + " = " + s->var +
                         " + <expr>'");
                expect(TokKind::Plus, "'+'");
                s->step = expression();
            } else {
                fail("unsupported for-loop step form");
            }
        }
        expect(TokKind::RParen, "')'");
        s->body = block_or_single();
        return s;
    }

    StmtPtr while_statement() {
        auto s = std::make_unique<While>();
        s->loc = peek().loc;
        expect(TokKind::KwWhile, "'while'");
        expect(TokKind::LParen, "'('");
        s->cond = expression();
        expect(TokKind::RParen, "')'");
        s->body = block_or_single();
        return s;
    }

    StmtPtr return_statement() {
        auto s = std::make_unique<Return>();
        s->loc = peek().loc;
        expect(TokKind::KwReturn, "'return'");
        if (!at(TokKind::Semicolon)) s->value = expression();
        expect(TokKind::Semicolon, "';'");
        return s;
    }

    StmtPtr assign_or_expr_statement() {
        const SrcLoc loc = peek().loc;
        ExprPtr lhs = expression();

        std::optional<AssignOp> op;
        if (accept(TokKind::Assign)) op = AssignOp::Set;
        else if (accept(TokKind::PlusAssign)) op = AssignOp::Add;
        else if (accept(TokKind::MinusAssign)) op = AssignOp::Sub;
        else if (accept(TokKind::StarAssign)) op = AssignOp::Mul;
        else if (accept(TokKind::SlashAssign)) op = AssignOp::Div;

        if (op.has_value()) {
            if (lhs->kind() != NodeKind::Ident && lhs->kind() != NodeKind::Index)
                throw ParseError(loc, "assignment target must be a variable or "
                                      "array element");
            auto s = std::make_unique<Assign>();
            s->loc = loc;
            s->op = *op;
            s->target = std::move(lhs);
            s->value = expression();
            expect(TokKind::Semicolon, "';'");
            return s;
        }

        auto s = std::make_unique<ExprStmt>();
        s->loc = loc;
        s->expr = std::move(lhs);
        expect(TokKind::Semicolon, "';'");
        return s;
    }

    // ---- expressions ----------------------------------------------------

    ExprPtr expression() { return binary_expr(0); }

    struct OpInfo {
        BinaryOp op;
        int prec;
    };

    [[nodiscard]] std::optional<OpInfo> binop_at() const {
        switch (peek().kind) {
            case TokKind::OrOr: return OpInfo{BinaryOp::Or, 1};
            case TokKind::AndAnd: return OpInfo{BinaryOp::And, 2};
            case TokKind::EqEq: return OpInfo{BinaryOp::Eq, 3};
            case TokKind::NotEq: return OpInfo{BinaryOp::Ne, 3};
            case TokKind::Lt: return OpInfo{BinaryOp::Lt, 4};
            case TokKind::Le: return OpInfo{BinaryOp::Le, 4};
            case TokKind::Gt: return OpInfo{BinaryOp::Gt, 4};
            case TokKind::Ge: return OpInfo{BinaryOp::Ge, 4};
            case TokKind::Plus: return OpInfo{BinaryOp::Add, 5};
            case TokKind::Minus: return OpInfo{BinaryOp::Sub, 5};
            case TokKind::Star: return OpInfo{BinaryOp::Mul, 6};
            case TokKind::Slash: return OpInfo{BinaryOp::Div, 6};
            case TokKind::Percent: return OpInfo{BinaryOp::Mod, 6};
            default: return std::nullopt;
        }
    }

    ExprPtr binary_expr(int min_prec) {
        ExprPtr lhs = unary_expr();
        while (true) {
            auto info = binop_at();
            if (!info.has_value() || info->prec < min_prec) return lhs;
            const SrcLoc loc = peek().loc;
            advance();
            // Left-associative: parse the right side at prec+1.
            ExprPtr rhs = binary_expr(info->prec + 1);
            auto node = std::make_unique<Binary>();
            node->loc = loc;
            node->op = info->op;
            node->lhs = std::move(lhs);
            node->rhs = std::move(rhs);
            lhs = std::move(node);
        }
    }

    ExprPtr unary_expr() {
        const SrcLoc loc = peek().loc;
        if (accept(TokKind::Minus)) {
            auto node = std::make_unique<Unary>();
            node->loc = loc;
            node->op = UnaryOp::Neg;
            node->operand = unary_expr();
            return node;
        }
        if (accept(TokKind::Not)) {
            auto node = std::make_unique<Unary>();
            node->loc = loc;
            node->op = UnaryOp::Not;
            node->operand = unary_expr();
            return node;
        }
        return postfix_expr();
    }

    ExprPtr postfix_expr() {
        ExprPtr e = primary_expr();
        while (true) {
            if (at(TokKind::LBracket)) {
                const SrcLoc loc = peek().loc;
                advance();
                auto node = std::make_unique<Index>();
                node->loc = loc;
                node->base = std::move(e);
                node->index = expression();
                expect(TokKind::RBracket, "']'");
                e = std::move(node);
            } else {
                return e;
            }
        }
    }

    ExprPtr primary_expr() {
        const Token& tok = peek();
        switch (tok.kind) {
            case TokKind::IntLiteral: {
                advance();
                auto e = std::make_unique<IntLit>();
                e->loc = tok.loc;
                e->value = tok.int_value;
                return e;
            }
            case TokKind::FloatLiteral: {
                advance();
                auto e = std::make_unique<FloatLit>();
                e->loc = tok.loc;
                e->value = tok.float_value;
                e->single = tok.float_single;
                e->spelling = tok.text;
                return e;
            }
            case TokKind::KwTrue:
            case TokKind::KwFalse: {
                advance();
                auto e = std::make_unique<BoolLit>();
                e->loc = tok.loc;
                e->value = tok.kind == TokKind::KwTrue;
                return e;
            }
            case TokKind::Identifier: {
                advance();
                if (at(TokKind::LParen)) {
                    advance();
                    auto e = std::make_unique<Call>();
                    e->loc = tok.loc;
                    e->callee = tok.text;
                    if (!at(TokKind::RParen)) {
                        do {
                            e->args.push_back(expression());
                        } while (accept(TokKind::Comma));
                    }
                    expect(TokKind::RParen, "')'");
                    return e;
                }
                auto e = std::make_unique<Ident>();
                e->loc = tok.loc;
                e->name = tok.text;
                return e;
            }
            case TokKind::LParen: {
                advance();
                ExprPtr e = expression();
                expect(TokKind::RParen, "')'");
                return e;
            }
            default:
                fail(std::string("expected an expression, found '") +
                     to_string(tok.kind) + "'");
        }
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

ast::ModulePtr parse_module(std::string_view source, std::string module_name) {
    Parser p(lex(source));
    return p.module(std::move(module_name));
}

ast::ExprPtr parse_expression(std::string_view source) {
    Parser p(lex(source));
    return p.bare_expression();
}

} // namespace psaflow::frontend
