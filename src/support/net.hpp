// EINTR-safe framed-socket I/O for the serving layer.
//
// psaflowd speaks length-prefixed JSON frames over Unix-domain and TCP
// stream sockets. This header owns everything POSIX about that: file-
// descriptor RAII, full-buffer read/write loops that retry on EINTR and
// partial transfers, the frame codec (8-byte header: "PSAF" magic + u32 LE
// payload length, then the payload), and the listen/connect/socketpair
// plumbing. Nothing here knows about JSON or the request schema —
// serve/protocol layers that on top.
//
// Frame I/O is deliberately paranoid in both directions: a torn header, a
// bad magic, an over-long length and a truncated payload are all distinct,
// non-throwing outcomes (FrameStatus on reads, WriteStatus on writes),
// because a network peer's malformed bytes or a vanished peer mid-write
// are expected inputs, not programming errors.
//
// Endpoints are spelled as strings so every tool shares one flag syntax:
// "host:port" (or "tcp:host:port") is TCP, anything else is a Unix-domain
// socket path ("unix:" prefix accepted). `parse_endpoint` is the single
// decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace psaflow::net {

/// Move-only owner of a POSIX file descriptor.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    [[nodiscard]] int get() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    /// Give up ownership without closing.
    [[nodiscard]] int release() {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset(int fd = -1);

private:
    int fd_ = -1;
};

/// Read exactly `size` bytes, retrying on EINTR and short reads. Returns
/// false on EOF or error; `*got` (optional) receives the byte count
/// actually read, so callers can tell clean EOF (0) from a torn transfer.
/// On clean EOF errno is set to 0 (read(2) leaves it untouched), so
/// `!ok && got == 0 && errno == 0` identifies an orderly close.
bool read_exact(int fd, void* buf, std::size_t size,
                std::size_t* got = nullptr);

/// Write exactly `size` bytes, retrying on EINTR and short writes. Uses
/// send(MSG_NOSIGNAL) on sockets so a vanished peer yields EPIPE instead
/// of killing the process.
bool write_exact(int fd, const void* buf, std::size_t size);

inline constexpr std::uint32_t kFrameMagic = 0x50534146u; ///< "FASP" LE → "PSAF"
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameStatus {
    Ok,       ///< payload filled
    Eof,      ///< clean close before any header byte
    Torn,     ///< header or payload truncated, or bad magic
    TooLarge, ///< declared length exceeds kMaxFramePayload
    Error,    ///< read error (errno preserved), e.g. a receive timeout
};
[[nodiscard]] const char* to_string(FrameStatus status);

[[nodiscard]] FrameStatus read_frame(int fd, std::string& payload);

/// Typed outcome of a frame write. `Error` preserves errno (EPIPE when the
/// peer vanished mid-frame), so callers can distinguish "peer gone" from
/// "we handed the codec an impossible frame" instead of a silent bool.
enum class WriteStatus {
    Ok,
    TooLarge, ///< payload exceeds kMaxFramePayload; nothing was sent
    Error,    ///< write/send failed (errno preserved); stream is torn
};
[[nodiscard]] const char* to_string(WriteStatus status);

[[nodiscard]] WriteStatus write_frame_status(int fd, std::string_view payload);
/// Convenience wrapper; prefer write_frame_status where the failure class
/// matters (the serving layer logs EPIPE differently from oversize bugs).
[[nodiscard]] inline bool write_frame(int fd, std::string_view payload) {
    return write_frame_status(fd, payload) == WriteStatus::Ok;
}

/// One parsed "where to listen/connect" spec: a Unix socket path or a TCP
/// host:port.
struct Endpoint {
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    std::string path; ///< Unix socket path (Kind::Unix)
    std::string host; ///< TCP host (Kind::Tcp)
    std::uint16_t port = 0;

    [[nodiscard]] std::string describe() const;
};

/// Decode an endpoint spec: "tcp:host:port" and "host:port" (a single ':'
/// with a numeric suffix and no '/') are TCP; "unix:path" and anything
/// else are Unix socket paths. nullopt + `*error` on a malformed spec
/// (e.g. an out-of-range port).
[[nodiscard]] std::optional<Endpoint> parse_endpoint(const std::string& spec,
                                                     std::string* error);

/// Bind + listen on a Unix-domain stream socket at `path` (unlinking a
/// stale socket file first). Invalid Fd + `*error` message on failure.
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog,
                             std::string* error);

/// Connect to the daemon's socket. Invalid Fd + `*error` on failure.
[[nodiscard]] Fd connect_unix(const std::string& path, std::string* error);

/// Bind + listen on a TCP socket (SO_REUSEADDR; port 0 binds ephemeral —
/// recover the real port with local_port). Invalid Fd + `*error` on
/// failure.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            int backlog, std::string* error);

/// Connect to a TCP peer (TCP_NODELAY: frames are latency-sensitive
/// request/response traffic, not bulk). Invalid Fd + `*error` on failure.
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port,
                             std::string* error);

/// listen/connect through a parsed Endpoint (dispatches on kind).
[[nodiscard]] Fd listen_endpoint(const Endpoint& ep, int backlog,
                                 std::string* error);
[[nodiscard]] Fd connect_endpoint(const Endpoint& ep, std::string* error);

/// The locally bound TCP port of a listening socket (0 on error) — how a
/// caller who asked for port 0 learns what the kernel picked.
[[nodiscard]] std::uint16_t local_port(int fd);

/// accept(2) with EINTR retry; invalid Fd on error.
[[nodiscard]] Fd accept_connection(int listen_fd);

/// AF_UNIX stream socketpair (tests and in-process loopback).
[[nodiscard]] bool socket_pair(Fd& a, Fd& b);

/// SO_RCVTIMEO; `ms <= 0` clears the timeout.
void set_recv_timeout(int fd, long long ms);

/// Block until `fd_a` or `fd_b` (pass -1 to ignore one) is readable.
/// Returns the readable fd, or -1 on timeout/error. `timeout_ms < 0`
/// blocks indefinitely. EINTR retries.
[[nodiscard]] int wait_readable(int fd_a, int fd_b, int timeout_ms);

/// N-fd variant (the daemon polls {unix listener, tcp listener, self-pipe}).
/// Entries < 0 are ignored. Same return convention as the 2-fd form.
[[nodiscard]] int wait_readable_any(const std::vector<int>& fds,
                                    int timeout_ms);

} // namespace psaflow::net
