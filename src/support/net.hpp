// EINTR-safe framed-socket I/O for the serving layer.
//
// psaflowd speaks length-prefixed JSON frames over Unix-domain stream
// sockets. This header owns everything POSIX about that: file-descriptor
// RAII, full-buffer read/write loops that retry on EINTR and partial
// transfers, the frame codec (8-byte header: "PSAF" magic + u32 LE payload
// length, then the payload), and the listen/connect/socketpair plumbing.
// Nothing here knows about JSON or the request schema — serve/protocol
// layers that on top.
//
// Frame reading is deliberately paranoid: a torn header, a bad magic, an
// over-long length and a truncated payload are all distinct, non-throwing
// outcomes (FrameStatus), because a network peer's malformed bytes are an
// expected input, not a programming error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace psaflow::net {

/// Move-only owner of a POSIX file descriptor.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    [[nodiscard]] int get() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    /// Give up ownership without closing.
    [[nodiscard]] int release() {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset(int fd = -1);

private:
    int fd_ = -1;
};

/// Read exactly `size` bytes, retrying on EINTR and short reads. Returns
/// false on EOF or error; `*got` (optional) receives the byte count
/// actually read, so callers can tell clean EOF (0) from a torn transfer.
/// On clean EOF errno is set to 0 (read(2) leaves it untouched), so
/// `!ok && got == 0 && errno == 0` identifies an orderly close.
bool read_exact(int fd, void* buf, std::size_t size,
                std::size_t* got = nullptr);

/// Write exactly `size` bytes, retrying on EINTR and short writes. Uses
/// send(MSG_NOSIGNAL) on sockets so a vanished peer yields EPIPE instead
/// of killing the process.
bool write_exact(int fd, const void* buf, std::size_t size);

inline constexpr std::uint32_t kFrameMagic = 0x50534146u; ///< "FASP" LE → "PSAF"
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameStatus {
    Ok,       ///< payload filled
    Eof,      ///< clean close before any header byte
    Torn,     ///< header or payload truncated, or bad magic
    TooLarge, ///< declared length exceeds kMaxFramePayload
    Error,    ///< read error (errno preserved), e.g. a receive timeout
};
[[nodiscard]] const char* to_string(FrameStatus status);

[[nodiscard]] FrameStatus read_frame(int fd, std::string& payload);
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

/// Bind + listen on a Unix-domain stream socket at `path` (unlinking a
/// stale socket file first). Invalid Fd + `*error` message on failure.
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog,
                             std::string* error);

/// Connect to the daemon's socket. Invalid Fd + `*error` on failure.
[[nodiscard]] Fd connect_unix(const std::string& path, std::string* error);

/// accept(2) with EINTR retry; invalid Fd on error.
[[nodiscard]] Fd accept_connection(int listen_fd);

/// AF_UNIX stream socketpair (tests and in-process loopback).
[[nodiscard]] bool socket_pair(Fd& a, Fd& b);

/// SO_RCVTIMEO; `ms <= 0` clears the timeout.
void set_recv_timeout(int fd, long long ms);

/// Block until `fd_a` or `fd_b` (pass -1 to ignore one) is readable.
/// Returns the readable fd, or -1 on timeout/error. `timeout_ms < 0`
/// blocks indefinitely. EINTR retries.
[[nodiscard]] int wait_readable(int fd_a, int fd_b, int timeout_ms);

} // namespace psaflow::net
