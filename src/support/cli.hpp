// Shared command-line option handling for the psaflow tools.
//
// psaflowc and psaflow-fuzz used to carry two hand-rolled copies of the
// same argv loop (next()/next_int()/next_double() lambdas, usage banners,
// checked numeric parsing). This typed options table replaces both:
//
//     cli::OptionParser parser("psaflowc", {"--list", "--app <name> ..."});
//     parser.str("--app", "<name>", "application to compile", &app_name);
//     parser.integer("--jobs", "<n>", "worker threads", &jobs, /*min=*/0);
//     if (!parser.parse(argc, argv)) return 2;
//
// Error behaviour matches the historical drivers, which the CLI tests pin
// down: every malformed invocation ("missing value for --x", "invalid
// integer 'y' for --x", "--x must be >= n", "unknown option '--z'") prints
// the message and the generated usage banner to stderr, and parse()
// returns false so the caller exits with status 2. `--help`/`-h` also
// print the banner and return false.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace psaflow::cli {

class OptionParser {
public:
    /// `synopsis` lines are rendered as "usage: <program> <line>" (first)
    /// and "       <program> <line>" (rest).
    OptionParser(std::string program, std::vector<std::string> synopsis);

    /// Boolean switch: present sets `*out` to true.
    void flag(const std::string& name, const std::string& help, bool* out);

    /// String-valued option.
    void str(const std::string& name, const std::string& value_name,
             const std::string& help, std::string* out);

    /// Checked integer option; `min`/`max` (inclusive) violations report
    /// "--name must be >= min" / "--name must be <= max".
    void integer(const std::string& name, const std::string& value_name,
                 const std::string& help, long long* out,
                 std::optional<long long> min = std::nullopt,
                 std::optional<long long> max = std::nullopt);

    /// Checked floating-point option.
    void real(const std::string& name, const std::string& value_name,
              const std::string& help, double* out);

    /// Repeatable string option: every occurrence appends to `*out`
    /// (psaflow-router's `--shard a=... --shard b=...`).
    void multi(const std::string& name, const std::string& value_name,
               const std::string& help, std::vector<std::string>* out);

    /// Enumerated string option; values outside `allowed` report
    /// "--name must be one of: a|b".
    void choice(const std::string& name, const std::string& value_name,
                const std::string& help, std::string* out,
                std::vector<std::string> allowed);

    /// Parse the whole argv. On any error (or --help), prints to stderr
    /// and returns false; the caller is expected to exit with status 2.
    [[nodiscard]] bool parse(int argc, char** argv);

    [[nodiscard]] std::string usage() const;

private:
    struct Option {
        std::string name;
        std::string value_name; ///< empty for flags
        std::string help;
        /// Consumes the (already validated non-null) value; returns an
        /// error message on a malformed value, nullopt on success.
        std::function<std::optional<std::string>(const char*)> apply;
        bool takes_value = true;
    };

    [[nodiscard]] bool fail(const std::string& message) const;

    std::string program_;
    std::vector<std::string> synopsis_;
    std::vector<Option> options_;
};

/// The flow-running flags every driver shares. `add_flow_flags` registers
/// them with identical names, validation and help text in each tool, so
/// `--jobs/--trace-out/--cache-dir/--cache-max-mb/--interp` mean the same
/// thing everywhere.
struct FlowFlags {
    long long jobs = 0;        ///< 0 = PSAFLOW_JOBS / hardware concurrency
    std::string trace_out;     ///< trace registry JSON dump path
    std::string cache_dir;     ///< disk cache root ("" = PSAFLOW_CACHE_DIR)
    long long cache_max_mb = 0; ///< disk cache size cap (0 = env / default)
    std::string interp;        ///< "tree"|"vm" ("" = PSAFLOW_INTERP / vm)
};

void add_flow_flags(OptionParser& parser, FlowFlags& flags);

} // namespace psaflow::cli
