#include "support/histogram.hpp"

#include <algorithm>
#include <bit>

namespace psaflow {

namespace {
int bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}
} // namespace

void Histogram::record(std::uint64_t value) {
    buckets_[static_cast<std::size_t>(bucket_of(value))] += 1;
    count_ += 1;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
    for (int b = 0; b < kBuckets; ++b)
        buckets_[static_cast<std::size_t>(b)] =
            sat_add(buckets_[static_cast<std::size_t>(b)],
                    other.buckets_[static_cast<std::size_t>(b)]);
    count_ = sat_add(count_, other.count_);
    sum_ = sat_add(sum_, other.sum_);
    if (other.count_ > 0) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
}

Histogram Histogram::from_parts(const Parts& parts) {
    Histogram h;
    h.count_ = parts.count;
    h.sum_ = parts.sum;
    h.min_ = parts.count == 0 ? UINT64_MAX : parts.min;
    h.max_ = parts.max;
    for (const auto& [floor, n] : parts.buckets) {
        // A bucket's floor identifies it: bucket_of(floor) inverts
        // bucket_floor (floor 0 → bucket 0, 2^(b-1) → bucket b). Tolerate
        // non-canonical floors by filing under the containing bucket.
        h.buckets_[static_cast<std::size_t>(bucket_of(floor))] =
            sat_add(h.buckets_[static_cast<std::size_t>(bucket_of(floor))],
                    n);
    }
    return h;
}

std::uint64_t Histogram::bucket_floor(int bucket) {
    if (bucket <= 0) return 0;
    return 1ull << (bucket - 1);
}

std::uint64_t Histogram::percentile(double p) const {
    if (count_ == 0) return 0;
    p = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)];
        if (seen > rank) {
            // Upper bound of bucket b, clamped to the observed extremes so
            // p0/p100 report real samples.
            const std::uint64_t upper =
                b == 0 ? 0
                       : (b >= 64 ? UINT64_MAX : (1ull << b) - 1);
            return std::clamp(upper, min(), max_);
        }
    }
    return max_;
}

std::string Histogram::to_json() const {
    std::string out = "{\"count\":" + std::to_string(count_);
    out += ",\"sum\":" + std::to_string(sum_);
    out += ",\"min\":" + std::to_string(min());
    out += ",\"max\":" + std::to_string(max_);
    out += ",\"p50\":" + std::to_string(percentile(50));
    out += ",\"p90\":" + std::to_string(percentile(90));
    out += ",\"p99\":" + std::to_string(percentile(99));
    out += ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (!first) out += ",";
        first = false;
        out += "[" + std::to_string(bucket_floor(b)) + "," +
               std::to_string(n) + "]";
    }
    out += "]}";
    return out;
}

} // namespace psaflow
